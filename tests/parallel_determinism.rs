//! Determinism regression for the parallel sharded engine.
//!
//! The multi-NIC simulation fans shards out across OS worker threads,
//! but its results must be a pure function of (config, seed, request
//! stream): each shard's evolution depends only on its own state and the
//! per-window `(horizon, floor)` pair, and the arbiter's stall depends
//! only on the aggregate line count — a sum of `u64`s accumulated in
//! shard order. These tests pin that contract: a run is bit-identical
//! for any worker count, for repeated runs, and regardless of the test
//! harness's own thread scheduling (CI runs this suite under different
//! `--test-threads` values).

use kv_direct::parallel::{ParallelSimConfig, ParallelSimReport, ParallelSystemSim};
use kv_direct::workloads::presets::{PresetWorkload, YcsbPreset};
use kv_direct::{KvDirectConfig, KvRequest};

fn workload(n: usize, seed: u64) -> Vec<KvRequest> {
    let mut w = PresetWorkload::new(YcsbPreset::A, 5_000, 16, seed);
    w.batch(n)
}

fn run_with_workers(workers: usize, reqs: &[KvRequest]) -> ParallelSimReport {
    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 24, 10);
    cfg.workers = workers;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..5_000u64 {
        sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
            .expect("preload fits");
    }
    sim.run(reqs)
}

#[test]
fn worker_count_does_not_change_results() {
    let reqs = workload(12_000, 0xD371);
    let r1 = run_with_workers(1, &reqs);
    let r2 = run_with_workers(2, &reqs);
    let r8 = run_with_workers(8, &reqs);
    assert_eq!(r1.ops, 12_000);
    // Bit-identical: every field, including merged latency summaries,
    // per-shard reports and arbiter counters.
    assert_eq!(r1, r2, "1 worker vs 2 workers diverged");
    assert_eq!(r1, r8, "1 worker vs 8 workers diverged");
}

#[test]
fn repeated_runs_are_bit_identical() {
    let reqs = workload(6_000, 0xD372);
    let a = run_with_workers(0, &reqs); // auto worker count
    let b = run_with_workers(0, &reqs);
    assert_eq!(a, b, "same seed + config must reproduce exactly");
}

fn run_faulty(workers: usize, reqs: &[KvRequest]) -> ParallelSimReport {
    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 24, 6);
    cfg.workers = workers;
    cfg.shard.store.fault_rates = kv_direct::FaultRates::uniform(0.02);
    cfg.shard.store.fault_seed = 0xFA_17;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..5_000u64 {
        sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
            .expect("preload fits");
    }
    sim.run(reqs)
}

#[test]
fn fault_counters_bit_identical_across_worker_counts() {
    // Faults fork per shard from the store seed, so the schedule is part
    // of the (config, seed, stream) function and must not care how
    // shards map onto OS threads. `ParallelSimReport` equality covers
    // the merged rollup and every per-shard `faults` field.
    let reqs = workload(9_000, 0xD375);
    let r1 = run_faulty(1, &reqs);
    let r2 = run_faulty(2, &reqs);
    let r8 = run_faulty(8, &reqs);
    assert!(
        r1.faults.total_faults() > 0,
        "2% uniform rates over 9k ops must inject"
    );
    assert!(
        r1.per_shard
            .iter()
            .any(|s| s.faults.total_faults() != r1.per_shard[0].faults.total_faults()),
        "per-shard schedules should be decorrelated"
    );
    assert_eq!(r1, r2, "fault schedule diverged between 1 and 2 workers");
    assert_eq!(r1, r8, "fault schedule diverged between 1 and 8 workers");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the equality above is meaningful: the engine is
    // sensitive to its inputs, so identical reports cannot come from a
    // constant function.
    let ra = run_with_workers(1, &workload(6_000, 0xD373));
    let rb = run_with_workers(1, &workload(6_000, 0xD374));
    assert_ne!(ra, rb, "distinct workloads should not collide bit-for-bit");
}
