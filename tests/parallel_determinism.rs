//! Determinism regression for the parallel sharded engine.
//!
//! The multi-NIC simulation fans shards out across OS worker threads
//! drawing windows from an asynchronous credit arbiter, but its results
//! must be a pure function of (config, seed, request stream): each
//! shard's evolution depends only on its own state and the per-window
//! `(horizon, floor)` pair, and the arbiter's stall depends only on the
//! aggregate line count — a commutative sum of `u64`s. These tests pin
//! that contract: a run is bit-identical for any worker count, any
//! lookahead depth, for repeated runs, and regardless of the test
//! harness's own thread scheduling (CI runs this suite under different
//! `--test-threads` values).

use kv_direct::parallel::{ParallelSimConfig, ParallelSimReport, ParallelSystemSim};
use kv_direct::sim::{Bandwidth, DetRng, SimTime};
use kv_direct::workloads::presets::{PresetWorkload, YcsbPreset};
use kv_direct::{KvDirectConfig, KvRequest, OpClass, OpLedger};
use proptest::prelude::*;

fn workload(n: usize, seed: u64) -> Vec<KvRequest> {
    let mut w = PresetWorkload::new(YcsbPreset::A, 5_000, 16, seed);
    w.batch(n)
}

/// A 10-shard run with explicit scheduling knobs: worker count,
/// lookahead depth, quantum. None of the three may change any bit of
/// the report.
fn run_scheduled(
    workers: usize,
    lookahead: u32,
    quantum: SimTime,
    reqs: &[KvRequest],
) -> ParallelSimReport {
    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 24, 10);
    cfg.workers = workers;
    cfg.arbiter.lookahead = lookahead;
    cfg.arbiter.quantum = quantum;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..5_000u64 {
        sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
            .expect("preload fits");
    }
    sim.run(reqs)
}

fn run_with_workers(workers: usize, reqs: &[KvRequest]) -> ParallelSimReport {
    run_scheduled(workers, 1, SimTime::from_us(8), reqs)
}

#[test]
fn worker_count_does_not_change_results() {
    let reqs = workload(12_000, 0xD371);
    let r1 = run_with_workers(1, &reqs);
    let r2 = run_with_workers(2, &reqs);
    let r8 = run_with_workers(8, &reqs);
    assert_eq!(r1.ops, 12_000);
    // Bit-identical: every field, including merged latency summaries
    // and arbiter counters.
    assert_eq!(r1, r2, "1 worker vs 2 workers diverged");
    assert_eq!(r1, r8, "1 worker vs 8 workers diverged");
}

#[test]
fn lookahead_worker_quantum_matrix_is_bit_identical() {
    // The ISSUE 7 oracle: merged ledgers and `RunSummary` bit-identical
    // to the single-worker run for any worker count and any lookahead
    // depth, at more than one quantum. The depth axis is guaranteed by
    // construction (the conservative stall oracle caps the semantic
    // lookahead at one window; deeper credit only reorders wall-clock
    // scheduling), and this matrix is the executable proof.
    let reqs = workload(9_000, 0xD377);
    for quantum in [SimTime::from_us(4), SimTime::from_us(8)] {
        let baseline = run_scheduled(1, 1, quantum, &reqs);
        assert_eq!(baseline.ops, 9_000);
        for lookahead in [1u32, 4, 16] {
            for workers in [1usize, 2, 8] {
                let r = run_scheduled(workers, lookahead, quantum, &reqs);
                assert_eq!(
                    baseline, r,
                    "diverged at workers={workers} lookahead={lookahead} \
                     quantum={quantum:?}"
                );
            }
        }
    }
}

#[test]
fn stalling_runs_are_schedule_invariant() {
    // Starve the host arbiter so windows oversubscribe and every floor
    // carries a stall: the stall feedback path (charge → floor → next
    // window's issue times → backpressure gauge) must itself be
    // schedule-independent, not just the zero-stall fast path.
    let reqs = workload(9_000, 0xD378);
    let starve = |workers, lookahead| {
        let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 24, 10);
        cfg.workers = workers;
        cfg.arbiter.lookahead = lookahead;
        cfg.arbiter.bandwidth = Bandwidth::from_gbytes_per_sec(0.4);
        let mut sim = ParallelSystemSim::new(cfg);
        for id in 0..5_000u64 {
            sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
                .expect("preload fits");
        }
        sim.run(&reqs)
    };
    let base = starve(1, 1);
    assert!(
        base.arbiter.oversubscribed > 0 && base.arbiter.stall > SimTime::ZERO,
        "a 0.4 GB/s host must oversubscribe: {:?}",
        base.arbiter
    );
    for (workers, lookahead) in [(2usize, 1u32), (8, 4), (2, 16)] {
        let r = starve(workers, lookahead);
        assert_eq!(
            base, r,
            "stalling run diverged at workers={workers} lookahead={lookahead}"
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let reqs = workload(6_000, 0xD372);
    let a = run_with_workers(0, &reqs); // auto worker count
    let b = run_with_workers(0, &reqs);
    assert_eq!(a, b, "same seed + config must reproduce exactly");
}

fn run_faulty(workers: usize, reqs: &[KvRequest]) -> ParallelSimReport {
    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 24, 6)
        .with_per_shard_reports();
    cfg.workers = workers;
    cfg.shard.store.fault_rates = kv_direct::FaultRates::uniform(0.02);
    cfg.shard.store.fault_seed = 0xFA_17;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..5_000u64 {
        sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
            .expect("preload fits");
    }
    sim.run(reqs)
}

#[test]
fn fault_counters_bit_identical_across_worker_counts() {
    // Faults fork per shard from the store seed, so the schedule is part
    // of the (config, seed, stream) function and must not care how
    // shards map onto OS threads. `ParallelSimReport` equality covers
    // the merged rollup and every per-shard `faults` field.
    let reqs = workload(9_000, 0xD375);
    let r1 = run_faulty(1, &reqs);
    let r2 = run_faulty(2, &reqs);
    let r8 = run_faulty(8, &reqs);
    assert!(
        r1.faults.total_faults() > 0,
        "2% uniform rates over 9k ops must inject"
    );
    assert!(
        r1.per_shard
            .iter()
            .any(|s| s.faults.total_faults() != r1.per_shard[0].faults.total_faults()),
        "per-shard schedules should be decorrelated"
    );
    assert_eq!(r1, r2, "fault schedule diverged between 1 and 2 workers");
    assert_eq!(r1, r8, "fault schedule diverged between 1 and 8 workers");
}

/// A run with the full adaptive cache plane on: per-shard frequency
/// sketch, TinyLFU fill admission, online dispatch retuning and the
/// hot-key-aware overload gate — every seeded, stateful piece the
/// ISSUE 10 plane added.
fn run_adaptive(workers: usize, reqs: &[KvRequest]) -> ParallelSimReport {
    let mut store = KvDirectConfig::with_memory(1 << 20);
    let mut adaptive = kv_direct::mem::AdaptiveCacheConfig::data_path(0xADA7);
    // Small epochs so the retune loop actually fires within the run.
    adaptive.epoch_accesses = 512;
    store.adaptive_cache = Some(adaptive);
    store.overload = kv_direct::OverloadConfig::hot_key_aware();
    let mut cfg = ParallelSimConfig::paper(store, 24, 10);
    cfg.workers = workers;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..5_000u64 {
        sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
            .expect("preload fits");
    }
    sim.run(reqs)
}

#[test]
fn adaptive_cache_plane_bit_identical_across_worker_counts() {
    // The sketch samples, the admission filter consults it, the retune
    // loop moves each shard's dispatch ratio — all of it per-shard
    // seeded state, so the report (merged ledger included) must stay a
    // pure function of (config, seed, stream) under an adversarial
    // moving-hot-set Zipf 1.2 mix.
    let mut w = kv_direct::workloads::ZipfHotWorkload::new(kv_direct::workloads::ZipfHotSpec {
        n_keys: 5_000,
        theta: 1.2,
        kv_size: 24,
        put_ratio: 0.3,
        shift_every: 3_000,
        seed: 0xD379,
    });
    let reqs = w.batch(9_000);
    let r1 = run_adaptive(1, &reqs);
    let r2 = run_adaptive(2, &reqs);
    let r8 = run_adaptive(8, &reqs);
    assert!(
        r1.ledger.cache.sketch_samples > 0,
        "the sketch must sample: {:?}",
        r1.ledger.cache
    );
    assert!(
        r1.ledger.cache.admitted_fills + r1.ledger.cache.rejected_fills > 0,
        "the admission filter must decide fills: {:?}",
        r1.ledger.cache
    );
    assert_eq!(r1, r2, "adaptive plane diverged between 1 and 2 workers");
    assert_eq!(r1, r8, "adaptive plane diverged between 1 and 8 workers");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the equality above is meaningful: the engine is
    // sensitive to its inputs, so identical reports cannot come from a
    // constant function.
    let ra = run_with_workers(1, &workload(6_000, 0xD373));
    let rb = run_with_workers(1, &workload(6_000, 0xD374));
    assert_ne!(ra, rb, "distinct workloads should not collide bit-for-bit");
}

#[test]
fn worker_count_does_not_change_merged_ledger() {
    // The explicit tentpole invariant, separate from whole-report
    // equality: the shard-order ledger fold is bit-identical for any
    // worker count, on a fig18-shaped run and on a faulty one.
    let reqs = workload(9_000, 0xD376);
    let (c1, c8) = (run_with_workers(1, &reqs), run_with_workers(8, &reqs));
    assert_eq!(c1.ledger, c8.ledger, "fig18-shaped merged ledger diverged");
    let (f1, f8) = (run_faulty(1, &reqs), run_faulty(8, &reqs));
    assert_eq!(f1.ledger, f8.ledger, "faulty merged ledger diverged");
    assert!(
        f1.ledger.fault_view().total_faults() > 0,
        "faults must fire"
    );
    // The merged ledger is exactly the shard-order fold of the per-shard
    // slices: re-deriving it from a fresh sequential run agrees.
    let total: u64 = OpClass::ALL.iter().map(|&c| f1.ledger.latency.ops(c)).sum();
    assert!(total > 0, "latency attribution must record answered ops");
}

/// A ledger with every counter (and gauge) populated from `seed` —
/// random enough that a non-associative merge would be caught.
fn random_ledger(seed: u64) -> OpLedger {
    let mut rng = DetRng::seed(seed);
    let mut l = OpLedger::default();
    macro_rules! fill {
        ($($f:expr),+ $(,)?) => { $( $f = rng.u64_below(1 << 16); )+ };
    }
    fill!(
        l.net.packets,
        l.net.payload_bytes,
        l.net.retransmits,
        l.net.drops,
        l.net.reorders,
        l.net.batches,
        l.net.batch_ops,
        l.net.client_expired,
        l.pcie.dma_reads,
        l.pcie.dma_writes,
        l.pcie.read_bytes,
        l.pcie.write_bytes,
        l.pcie.tag_stalls,
        l.pcie.credit_stalls,
        l.pcie.corruptions,
        l.pcie.replays,
        l.pcie.timeouts,
        l.pcie.retries,
        l.pcie.exhausted,
        l.dram.reads,
        l.dram.writes,
        l.dram.cache_hits,
        l.dram.cache_misses,
        l.dram.corrected,
        l.dram.uncorrectable,
        l.dram.host_stalls,
        l.dram.refetches,
        l.dram.rescue_writebacks,
        l.station.forwarded,
        l.station.issued,
        l.station.queued,
        l.station.writebacks,
        l.station.rejected,
        l.station.reclaimed,
        l.station.high_water,
        l.slab.allocs,
        l.slab.frees,
        l.slab.failed_allocs,
        l.slab.dma_syncs,
        l.slab.entries_synced,
        l.slab.splits,
        l.slab.merges,
        l.slab.merge_passes,
        l.core.requests,
        l.core.reads,
        l.core.puts,
        l.core.deletes,
        l.core.updates,
        l.core.invalid,
        l.core.oom,
        l.core.writeback_failures,
        l.core.fault_retries,
        l.core.device_errors,
        l.core.admitted,
        l.core.shed_overload,
        l.core.shed_expired,
        l.core.shed_read_only,
        l.core.read_only_entries,
        l.core.read_only_exits,
        l.core.shed_transitions,
        l.core.retired_ok,
        l.core.retired_not_found,
        l.core.retired_failed,
        l.cache.sketch_samples,
        l.cache.admitted_fills,
        l.cache.rejected_fills,
        l.cache.evict_clean,
        l.cache.evict_dirty,
        l.cache.conflict_fills,
        l.cache.retune_steps,
        l.cache.demoted_lines,
        l.cache.hot_key_sheds,
        l.pressure.station_backlog_ps,
        l.pressure.station_cap_ps,
        l.pressure.tag_backlog_ps,
        l.pressure.tag_cap_ps,
        l.pressure.stall_ps,
        l.pressure.quantum_ps,
    );
    for class in OpClass::ALL {
        for _ in 0..rng.u64_below(4) {
            l.latency.record(
                class,
                [
                    rng.u64_below(1 << 16),
                    rng.u64_below(1 << 16),
                    rng.u64_below(1 << 16),
                    rng.u64_below(1 << 16),
                ],
            );
        }
    }
    l
}

fn merged(a: &OpLedger, b: &OpLedger) -> OpLedger {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merge is associative: the shard fold can be parenthesized any way
    /// a worker partition induces without changing the result.
    #[test]
    fn ledger_merge_is_associative(sa in 0u64..1 << 48, sb in 0u64..1 << 48, sc in 0u64..1 << 48) {
        let (a, b, c) = (random_ledger(sa), random_ledger(sb), random_ledger(sc));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// Merge is commutative with identity zero: shard order is a
    /// convention, not a correctness requirement.
    #[test]
    fn ledger_merge_is_commutative_with_identity(sa in 0u64..1 << 48, sb in 0u64..1 << 48) {
        let (a, b) = (random_ledger(sa), random_ledger(sb));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        prop_assert_eq!(merged(&a, &OpLedger::default()), a);
    }
}
