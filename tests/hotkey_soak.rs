//! Hot-key soak: the adversarial Zipf-1.2 mix against the hot-key-aware
//! adaptive cache plane.
//!
//! An open-loop client offers ~4x the closed-loop throughput of
//! a bursty (0.5x–6x phase swings) Zipf-1.2 stream whose hot set shifts
//! wholesale at the midpoint — the workload the ROADMAP's hot-key open
//! item names as the collapse case for the paper's static policies.
//! The engine runs with the full adaptive plane: frequency sketch,
//! TinyLFU admission, online retune, and the heavy-hitter rollup wired
//! into admission control. Three invariant families are enforced:
//!
//! 1. **Per-hot-key shedding** — overload sheds concentrate on the keys
//!    that earn them: the shed *rate* of the traffic-heaviest keys
//!    strictly exceeds the spread traffic's shed rate, and at least one
//!    shed is attributed to the hot-key carve-out
//!    (`CacheCosts::hot_key_sheds`).
//! 2. **Goodput holds** — at ~4x offered load the engine keeps serving:
//!    goodput stays at or above 60% of the closed-loop saturation
//!    throughput instead of collapsing under the celebrity keys.
//! 3. **Determinism** — sketch sampling, admission, retuning and
//!    shedding included, the merged report is bit-identical across
//!    worker counts for a fixed seed.

use std::collections::HashMap;

use kv_direct::net::shard_of;
use kv_direct::parallel::{ParallelSimConfig, ParallelSimReport, ParallelSystemSim};
use kv_direct::sim::SimTime;
use kv_direct::workloads::{ZipfHotSpec, ZipfHotWorkload};
use kv_direct::{ChaosConfig, ChaosSchedule, KvDirectConfig, KvRequest, Status};

const SHARDS: usize = 4;
const KEYS: u64 = 2_000;
const OPS: usize = 12_000;
const DEADLINE_SLACK_US: u32 = 2_000;
const SEED: u64 = 0x507E;

/// The adversarial stream: Zipf 1.2 over 2k keys, 20% PUTs, the whole
/// hot set re-scrambled at the midpoint.
fn soak_ops() -> Vec<KvRequest> {
    let mut w = ZipfHotWorkload::new(ZipfHotSpec {
        n_keys: KEYS,
        theta: 1.2,
        kv_size: 24,
        put_ratio: 0.2,
        shift_every: (OPS / 2) as u64,
        seed: SEED,
    });
    w.batch(OPS)
}

fn engine(workers: usize) -> ParallelSystemSim {
    let mut store = KvDirectConfig::with_memory(1 << 20);
    let mut adaptive = kv_direct::mem::AdaptiveCacheConfig::data_path(SEED);
    // Small epochs so the retune loop fires well within the soak.
    adaptive.epoch_accesses = 512;
    store.adaptive_cache = Some(adaptive);
    store.overload = kv_direct::OverloadConfig::hot_key_aware();
    let mut cfg = ParallelSimConfig::paper(store, 16, SHARDS);
    cfg.workers = workers;
    cfg.seed = SEED;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..KEYS {
        sim.preload_put(&id.to_le_bytes(), &[id as u8; 16])
            .expect("preload fits");
    }
    sim
}

/// Closed-loop saturation throughput of the same engine geometry — the
/// baseline the soak's goodput is measured against.
fn saturation_mops() -> f64 {
    engine(2).run(&soak_ops()).mops
}

/// Bursty open-loop schedule offering `offered_mops` on average.
fn soak_schedule(offered_mops: f64) -> Vec<(SimTime, KvRequest)> {
    // `ChaosConfig::bursty` phase multipliers average ~1.37; divide it
    // out so the schedule's mean rate is the requested offered load.
    let base = offered_mops * 1e6 / 1.375;
    let mut chaos = ChaosSchedule::new(ChaosConfig::bursty(base), SEED ^ 0xB0057);
    chaos
        .arrivals(OPS)
        .into_iter()
        .zip(soak_ops())
        .map(|(t, mut r)| {
            r = r.with_deadline(t.as_us() as u32 + DEADLINE_SLACK_US);
            (t, r)
        })
        .collect()
}

/// Recorded per-shard outcome streams: `(status, value)` per routed op.
type OutcomeStreams = Vec<Vec<(Status, Vec<u8>)>>;

fn run_soak(workers: usize, offered_mops: f64) -> (ParallelSimReport, OutcomeStreams) {
    let mut sim = engine(workers);
    sim.set_record_outcomes(true);
    let report = sim.run_open(&soak_schedule(offered_mops));
    let outcomes = (0..SHARDS)
        .map(|s| sim.shard_outcomes(s).to_vec())
        .collect();
    (report, outcomes)
}

/// Per-key `(traffic, sheds)` tallied from the recorded shard outcome
/// streams (index-aligned with the requests routed to each shard).
fn shed_tally(
    schedule: &[(SimTime, KvRequest)],
    outcomes: &[Vec<(Status, Vec<u8>)>],
) -> HashMap<Vec<u8>, (u64, u64)> {
    let mut tally: HashMap<Vec<u8>, (u64, u64)> = HashMap::new();
    for (shard, stream) in outcomes.iter().enumerate() {
        let routed: Vec<&KvRequest> = schedule
            .iter()
            .map(|(_, r)| r)
            .filter(|r| shard_of(&r.key, SHARDS) == shard)
            .collect();
        assert_eq!(
            routed.len(),
            stream.len(),
            "shard {shard}: every routed op resolves exactly once"
        );
        for (req, (status, _)) in routed.iter().zip(stream) {
            let e = tally.entry(req.key.clone()).or_insert((0, 0));
            e.0 += 1;
            if *status == Status::Overloaded {
                e.1 += 1;
            }
        }
    }
    tally
}

#[test]
fn hot_keys_shed_first_and_goodput_holds() {
    let sat = saturation_mops();
    assert!(sat > 0.0, "saturation baseline must be positive");
    let offered = 4.0 * sat;
    let (report, outcomes) = run_soak(2, offered);
    assert_eq!(report.ops, OPS as u64, "every op resolves");

    // The adaptive plane must actually be live under the mix.
    let cache = &report.ledger.cache;
    assert!(cache.sketch_samples > 0, "sketch sampled: {cache:?}");
    assert!(
        cache.admitted_fills + cache.rejected_fills > 0,
        "admission decided fills: {cache:?}"
    );

    // Sheds happen at 4x offered load, and the hot-key carve-out
    // attributes some of them to provably hot keys.
    assert!(report.shed_ops > 0, "4x offered load must shed");
    assert!(
        cache.hot_key_sheds > 0,
        "the hot-key carve-out never fired: {cache:?} (sheds {})",
        report.shed_ops
    );
    assert!(
        cache.hot_key_sheds <= report.shed_ops,
        "attributed sheds exceed total sheds"
    );

    // Sheds concentrate on the keys that earn them: the top-16 keys by
    // traffic shed at a strictly higher rate than the spread traffic.
    let schedule = soak_schedule(offered);
    let tally = shed_tally(&schedule, &outcomes);
    let mut by_traffic: Vec<(&Vec<u8>, &(u64, u64))> = tally.iter().collect();
    by_traffic.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    let (hot, spread) = by_traffic.split_at(16.min(by_traffic.len()));
    let (hot_traffic, hot_sheds) = hot
        .iter()
        .fold((0u64, 0u64), |(t, s), (_, &(kt, ks))| (t + kt, s + ks));
    let (spread_traffic, spread_sheds) = spread
        .iter()
        .fold((0u64, 0u64), |(t, s), (_, &(kt, ks))| (t + kt, s + ks));
    let hot_rate = hot_sheds as f64 / hot_traffic.max(1) as f64;
    let spread_rate = spread_sheds as f64 / spread_traffic.max(1) as f64;
    assert!(
        hot_rate > spread_rate,
        "hot keys must shed at a higher rate: hot {hot_sheds}/{hot_traffic} ({hot_rate:.4}) \
         vs spread {spread_sheds}/{spread_traffic} ({spread_rate:.4})"
    );

    // Goodput holds instead of collapsing under the celebrities.
    assert!(
        report.goodput_mops >= 0.6 * sat,
        "goodput collapsed: {:.3} Mops vs saturation {:.3} (sheds {}, expired {})",
        report.goodput_mops,
        sat,
        report.shed_ops,
        report.expired_ops
    );
}

#[test]
fn hotkey_soak_bit_identical_across_worker_counts() {
    let sat = saturation_mops();
    let offered = 4.0 * sat;
    let (r1, o1) = run_soak(1, offered);
    let (r2, o2) = run_soak(2, offered);
    let (r8, o8) = run_soak(8, offered);
    assert_eq!(r1, r2, "workers 1 vs 2 diverged");
    assert_eq!(r1, r8, "workers 1 vs 8 diverged");
    assert_eq!(o1, o2, "outcome streams diverged (1 vs 2 workers)");
    assert_eq!(o1, o8, "outcome streams diverged (1 vs 8 workers)");
    assert!(
        r1.ledger.cache.hot_key_sheds > 0,
        "determinism soak must exercise the carve-out: {:?}",
        r1.ledger.cache
    );
}
