//! Chaos soak: bursty overload + fault injection + consistency checking.
//!
//! The full overload plane under the worst conditions the simulator can
//! produce: an open-loop client offering ~2x the measured saturation
//! throughput in bursty phases (0.5x–6x swings from the chaos
//! scheduler), PR-1 fault rates on every component (PCIe corruption,
//! DRAM bit errors, packet drops/reorders), admission control and
//! deadlines enabled. Three invariant families are enforced:
//!
//! 1. **Sequential consistency per key** — keys are shard-partitioned
//!    and each shard executes its stream in order, so replaying each
//!    shard's recorded outcomes against a `HashMap` model must agree
//!    exactly: every `Ok` GET returns the latest acknowledged PUT (no
//!    lost writes, no resurrection of failed writes), versions embedded
//!    in values never run backwards, and shed/expired/faulted ops have
//!    no effect.
//! 2. **Goodput holds at the knee** — at ~2x offered load, goodput stays
//!    at or above 70% of the measured saturation throughput instead of
//!    collapsing.
//! 3. **Determinism** — the whole soak, faults and sheds included, is
//!    bit-identical across worker counts for a fixed seed.

use std::collections::HashMap;

use kv_direct::net::shard_of;
use kv_direct::parallel::{ParallelSimConfig, ParallelSimReport, ParallelSystemSim};
use kv_direct::sim::{DetRng, SimTime};
use kv_direct::{
    ChaosConfig, ChaosSchedule, FaultRates, KvDirectConfig, KvRequest, OpCode, OverloadConfig,
    Status,
};

const SHARDS: usize = 4;
const KEYS: u64 = 1_500;
const OPS: usize = 10_000;
const DEADLINE_SLACK_US: u32 = 2_000;

/// Values carry `(key id, version)` so consistency violations are
/// attributable: a stale read names the exact write it lost.
fn encode(id: u64, version: u64) -> Vec<u8> {
    let mut v = id.to_le_bytes().to_vec();
    v.extend_from_slice(&version.to_le_bytes());
    v
}

fn version_of(value: &[u8]) -> u64 {
    u64::from_le_bytes(value[8..16].try_into().expect("16-byte soak value"))
}

/// 70% GET / 25% PUT / 5% DELETE over a uniform key space, each PUT
/// stamping the next version of its key.
fn soak_ops(seed: u64) -> Vec<KvRequest> {
    let mut rng = DetRng::seed(seed);
    let mut versions: HashMap<u64, u64> = HashMap::new();
    (0..OPS)
        .map(|_| {
            let id = rng.u64_below(KEYS);
            let key = id.to_le_bytes();
            let roll = rng.u64_below(100);
            if roll < 70 {
                KvRequest::get(&key)
            } else if roll < 95 {
                let v = versions.entry(id).and_modify(|v| *v += 1).or_insert(1);
                KvRequest::put(&key, &encode(id, *v))
            } else {
                KvRequest::delete(&key)
            }
        })
        .collect()
}

fn engine(seed: u64, workers: usize, faults: bool) -> ParallelSystemSim {
    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 16, SHARDS);
    cfg.workers = workers;
    cfg.seed = seed;
    cfg.shard.store.overload = OverloadConfig::enabled();
    if faults {
        // PR-1 rates: every channel at 1%, the regime the fault-plane
        // suite validates recovery under.
        cfg.shard.store.fault_rates = FaultRates::uniform(0.01);
        cfg.shard.store.fault_seed = seed ^ 0xC_4A05;
    }
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..KEYS {
        sim.preload_put(&id.to_le_bytes(), &encode(id, 0))
            .expect("preload fits");
    }
    sim
}

/// Closed-loop saturation throughput of the same engine geometry,
/// fault-free: the baseline the soak's goodput is measured against.
fn saturation_mops(seed: u64) -> f64 {
    let mut sim = engine(seed, 2, false);
    sim.run(&soak_ops(seed)).mops
}

/// Bursty open-loop schedule offering `offered_mops` on average.
fn soak_schedule(seed: u64, offered_mops: f64) -> Vec<(SimTime, KvRequest)> {
    // `ChaosConfig::bursty` phase multipliers average ~1.37; divide it
    // out so the schedule's mean rate is the requested offered load.
    let base = offered_mops * 1e6 / 1.375;
    let mut chaos = ChaosSchedule::new(ChaosConfig::bursty(base), seed ^ 0xB0057);
    let arrivals = chaos.arrivals(OPS);
    arrivals
        .into_iter()
        .zip(soak_ops(seed))
        .map(|(t, mut r)| {
            r = r.with_deadline(t.as_us() as u32 + DEADLINE_SLACK_US);
            (t, r)
        })
        .collect()
}

/// One shard's recorded `(status, value)` stream, index-aligned with
/// the requests routed to it.
type ShardOutcomes = Vec<(Status, Vec<u8>)>;

fn run_soak(
    seed: u64,
    workers: usize,
    offered_mops: f64,
) -> (ParallelSimReport, Vec<ShardOutcomes>) {
    let mut sim = engine(seed, workers, true);
    sim.set_record_outcomes(true);
    let report = sim.run_open(&soak_schedule(seed, offered_mops));
    let outcomes = (0..SHARDS)
        .map(|s| sim.shard_outcomes(s).to_vec())
        .collect();
    (report, outcomes)
}

/// Replays one shard's outcome stream against a sequential model.
/// Returns the number of operations that had a visible effect.
fn check_shard(
    schedule: &[(SimTime, KvRequest)],
    shard: usize,
    outcomes: &[(Status, Vec<u8>)],
) -> u64 {
    let routed: Vec<&KvRequest> = schedule
        .iter()
        .map(|(_, r)| r)
        .filter(|r| shard_of(&r.key, SHARDS) == shard)
        .collect();
    assert_eq!(
        routed.len(),
        outcomes.len(),
        "shard {shard}: every routed op resolves exactly once"
    );
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for id in 0..KEYS {
        let key = id.to_le_bytes();
        if shard_of(&key, SHARDS) == shard {
            model.insert(key.to_vec(), encode(id, 0));
        }
    }
    let mut last_read_version: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut applied = 0u64;
    for (i, (req, (status, value))) in routed.iter().zip(outcomes).enumerate() {
        match (req.op, status) {
            (OpCode::Get, Status::Ok) => {
                let expect = model.get(&req.key).unwrap_or_else(|| {
                    panic!("shard {shard} op {i}: GET returned Ok for a deleted key")
                });
                assert_eq!(
                    value, expect,
                    "shard {shard} op {i}: GET diverged from the acknowledged history"
                );
                let v = version_of(value);
                let floor = last_read_version.entry(req.key.clone()).or_insert(0);
                assert!(
                    v >= *floor,
                    "shard {shard} op {i}: version ran backwards ({v} < {floor})"
                );
                *floor = v;
            }
            (OpCode::Get, Status::NotFound) => {
                assert!(
                    !model.contains_key(&req.key),
                    "shard {shard} op {i}: GET lost an acknowledged write"
                );
            }
            (OpCode::Put, Status::Ok) => {
                model.insert(req.key.clone(), req.value.clone());
                applied += 1;
            }
            (OpCode::Delete, Status::Ok) => {
                assert!(
                    model.remove(&req.key).is_some(),
                    "shard {shard} op {i}: DELETE acknowledged for an absent key"
                );
                last_read_version.remove(&req.key);
                applied += 1;
            }
            (OpCode::Delete, Status::NotFound) => {
                assert!(
                    !model.contains_key(&req.key),
                    "shard {shard} op {i}: DELETE missed a present key"
                );
            }
            // Shed, expired, faulted or rejected: the contract is *no
            // effect*, which the model checks by not updating.
            (
                _,
                Status::Overloaded
                | Status::Expired
                | Status::DeviceError
                | Status::OutOfMemory
                | Status::Invalid,
            ) => {}
            (op, s) => panic!("shard {shard} op {i}: unexpected {op:?} -> {s:?}"),
        }
    }
    applied
}

#[test]
fn chaos_soak_consistency_holds_across_seeds() {
    for seed in [1u64, 2, 3] {
        let sat = saturation_mops(seed);
        let offered = 2.0 * sat;
        let schedule = soak_schedule(seed, offered);
        let (report, outcomes) = run_soak(seed, 2, offered);
        assert_eq!(report.ops, OPS as u64, "seed {seed}: every op resolves");
        let applied: u64 = (0..SHARDS)
            .map(|s| check_shard(&schedule, s, &outcomes[s]))
            .sum();
        assert!(applied > 0, "seed {seed}: soak applied no writes at all");
        assert!(
            report.faults.total_faults() > 0,
            "seed {seed}: fault plane must actually fire"
        );
        // The knee: goodput at 2x offered load stays within 70% of the
        // fault-free saturation throughput — shed, don't collapse.
        assert!(
            report.goodput_mops >= 0.7 * sat,
            "seed {seed}: goodput {:.1} Mops collapsed below 70% of saturation {:.1} Mops \
             (shed {} expired {} of {} ops)",
            report.goodput_mops,
            sat,
            report.shed_ops,
            report.expired_ops,
            report.ops,
        );
    }
}

#[test]
fn chaos_soak_is_bit_identical_across_worker_counts() {
    let seed = 7u64;
    let sat = saturation_mops(seed);
    let offered = 2.0 * sat;
    let (r1, o1) = run_soak(seed, 1, offered);
    let (r2, o2) = run_soak(seed, 2, offered);
    let (r8, o8) = run_soak(seed, 8, offered);
    assert_eq!(r1, r2, "soak diverged between 1 and 2 workers");
    assert_eq!(r1, r8, "soak diverged between 1 and 8 workers");
    assert_eq!(o1, o2, "outcomes diverged between 1 and 2 workers");
    assert_eq!(o1, o8, "outcomes diverged between 1 and 8 workers");
    assert!(r1.ops == OPS as u64 && r1.goodput_ops > 0);
}
