//! Chaos soak: bursty overload + fault injection + consistency checking.
//!
//! The full overload plane under the worst conditions the simulator can
//! produce: an open-loop client offering ~2x the measured saturation
//! throughput in bursty phases (0.5x–6x swings from the chaos
//! scheduler), PR-1 fault rates on every component (PCIe corruption,
//! DRAM bit errors, packet drops/reorders), admission control and
//! deadlines enabled. Three invariant families are enforced:
//!
//! 1. **Sequential consistency per key** — keys are shard-partitioned
//!    and each shard executes its stream in order, so replaying each
//!    shard's recorded outcomes against a `HashMap` model must agree
//!    exactly: every `Ok` GET returns the latest acknowledged PUT (no
//!    lost writes, no resurrection of failed writes), versions embedded
//!    in values never run backwards, and shed/expired/faulted ops have
//!    no effect.
//! 2. **Goodput holds at the knee** — at ~2x offered load, goodput stays
//!    at or above 70% of the measured saturation throughput instead of
//!    collapsing.
//! 3. **Determinism** — the whole soak, faults and sheds included, is
//!    bit-identical across worker counts for a fixed seed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use kv_direct::net::shard_of;
use kv_direct::parallel::{ParallelSimConfig, ParallelSimReport, ParallelSystemSim};
use kv_direct::sim::{DetRng, SimTime};
use kv_direct::{
    ChaosConfig, ChaosSchedule, FaultRates, KvDirectConfig, KvRequest, OpCode, OverloadConfig,
    Status,
};
use kvd_server::{serve, ServerConfig};

const SHARDS: usize = 4;
const KEYS: u64 = 1_500;
const OPS: usize = 10_000;
const DEADLINE_SLACK_US: u32 = 2_000;

/// Values carry `(key id, version)` so consistency violations are
/// attributable: a stale read names the exact write it lost.
fn encode(id: u64, version: u64) -> Vec<u8> {
    let mut v = id.to_le_bytes().to_vec();
    v.extend_from_slice(&version.to_le_bytes());
    v
}

fn version_of(value: &[u8]) -> u64 {
    u64::from_le_bytes(value[8..16].try_into().expect("16-byte soak value"))
}

/// 70% GET / 25% PUT / 5% DELETE over a uniform key space, each PUT
/// stamping the next version of its key.
fn soak_ops(seed: u64) -> Vec<KvRequest> {
    let mut rng = DetRng::seed(seed);
    let mut versions: HashMap<u64, u64> = HashMap::new();
    (0..OPS)
        .map(|_| {
            let id = rng.u64_below(KEYS);
            let key = id.to_le_bytes();
            let roll = rng.u64_below(100);
            if roll < 70 {
                KvRequest::get(&key)
            } else if roll < 95 {
                let v = versions.entry(id).and_modify(|v| *v += 1).or_insert(1);
                KvRequest::put(&key, &encode(id, *v))
            } else {
                KvRequest::delete(&key)
            }
        })
        .collect()
}

fn engine(seed: u64, workers: usize, faults: bool) -> ParallelSystemSim {
    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 16, SHARDS);
    cfg.workers = workers;
    cfg.seed = seed;
    cfg.shard.store.overload = OverloadConfig::enabled();
    if faults {
        // PR-1 rates: every channel at 1%, the regime the fault-plane
        // suite validates recovery under.
        cfg.shard.store.fault_rates = FaultRates::uniform(0.01);
        cfg.shard.store.fault_seed = seed ^ 0xC_4A05;
    }
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..KEYS {
        sim.preload_put(&id.to_le_bytes(), &encode(id, 0))
            .expect("preload fits");
    }
    sim
}

/// Closed-loop saturation throughput of the same engine geometry,
/// fault-free: the baseline the soak's goodput is measured against.
fn saturation_mops(seed: u64) -> f64 {
    let mut sim = engine(seed, 2, false);
    sim.run(&soak_ops(seed)).mops
}

/// Bursty open-loop schedule offering `offered_mops` on average.
fn soak_schedule(seed: u64, offered_mops: f64) -> Vec<(SimTime, KvRequest)> {
    // `ChaosConfig::bursty` phase multipliers average ~1.37; divide it
    // out so the schedule's mean rate is the requested offered load.
    let base = offered_mops * 1e6 / 1.375;
    let mut chaos = ChaosSchedule::new(ChaosConfig::bursty(base), seed ^ 0xB0057);
    let arrivals = chaos.arrivals(OPS);
    arrivals
        .into_iter()
        .zip(soak_ops(seed))
        .map(|(t, mut r)| {
            r = r.with_deadline(t.as_us() as u32 + DEADLINE_SLACK_US);
            (t, r)
        })
        .collect()
}

/// One shard's recorded `(status, value)` stream, index-aligned with
/// the requests routed to it.
type ShardOutcomes = Vec<(Status, Vec<u8>)>;

fn run_soak(
    seed: u64,
    workers: usize,
    offered_mops: f64,
) -> (ParallelSimReport, Vec<ShardOutcomes>) {
    let mut sim = engine(seed, workers, true);
    sim.set_record_outcomes(true);
    let report = sim.run_open(&soak_schedule(seed, offered_mops));
    let outcomes = (0..SHARDS)
        .map(|s| sim.shard_outcomes(s).to_vec())
        .collect();
    (report, outcomes)
}

/// Replays one shard's outcome stream against a sequential model.
/// Returns the number of operations that had a visible effect.
fn check_shard(
    schedule: &[(SimTime, KvRequest)],
    shard: usize,
    outcomes: &[(Status, Vec<u8>)],
) -> u64 {
    let routed: Vec<&KvRequest> = schedule
        .iter()
        .map(|(_, r)| r)
        .filter(|r| shard_of(&r.key, SHARDS) == shard)
        .collect();
    assert_eq!(
        routed.len(),
        outcomes.len(),
        "shard {shard}: every routed op resolves exactly once"
    );
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for id in 0..KEYS {
        let key = id.to_le_bytes();
        if shard_of(&key, SHARDS) == shard {
            model.insert(key.to_vec(), encode(id, 0));
        }
    }
    let mut last_read_version: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut applied = 0u64;
    for (i, (req, (status, value))) in routed.iter().zip(outcomes).enumerate() {
        match (req.op, status) {
            (OpCode::Get, Status::Ok) => {
                let expect = model.get(&req.key).unwrap_or_else(|| {
                    panic!("shard {shard} op {i}: GET returned Ok for a deleted key")
                });
                assert_eq!(
                    value, expect,
                    "shard {shard} op {i}: GET diverged from the acknowledged history"
                );
                let v = version_of(value);
                let floor = last_read_version.entry(req.key.clone()).or_insert(0);
                assert!(
                    v >= *floor,
                    "shard {shard} op {i}: version ran backwards ({v} < {floor})"
                );
                *floor = v;
            }
            (OpCode::Get, Status::NotFound) => {
                assert!(
                    !model.contains_key(&req.key),
                    "shard {shard} op {i}: GET lost an acknowledged write"
                );
            }
            (OpCode::Put, Status::Ok) => {
                model.insert(req.key.clone(), req.value.clone());
                applied += 1;
            }
            (OpCode::Delete, Status::Ok) => {
                assert!(
                    model.remove(&req.key).is_some(),
                    "shard {shard} op {i}: DELETE acknowledged for an absent key"
                );
                last_read_version.remove(&req.key);
                applied += 1;
            }
            (OpCode::Delete, Status::NotFound) => {
                assert!(
                    !model.contains_key(&req.key),
                    "shard {shard} op {i}: DELETE missed a present key"
                );
            }
            // Shed, expired, faulted or rejected: the contract is *no
            // effect*, which the model checks by not updating.
            (
                _,
                Status::Overloaded
                | Status::Expired
                | Status::DeviceError
                | Status::OutOfMemory
                | Status::Invalid,
            ) => {}
            (op, s) => panic!("shard {shard} op {i}: unexpected {op:?} -> {s:?}"),
        }
    }
    applied
}

#[test]
fn chaos_soak_consistency_holds_across_seeds() {
    for seed in [1u64, 2, 3] {
        let sat = saturation_mops(seed);
        let offered = 2.0 * sat;
        let schedule = soak_schedule(seed, offered);
        let (report, outcomes) = run_soak(seed, 2, offered);
        assert_eq!(report.ops, OPS as u64, "seed {seed}: every op resolves");
        let applied: u64 = (0..SHARDS)
            .map(|s| check_shard(&schedule, s, &outcomes[s]))
            .sum();
        assert!(applied > 0, "seed {seed}: soak applied no writes at all");
        assert!(
            report.faults.total_faults() > 0,
            "seed {seed}: fault plane must actually fire"
        );
        // The knee: goodput at 2x offered load stays within 70% of the
        // fault-free saturation throughput — shed, don't collapse.
        assert!(
            report.goodput_mops >= 0.7 * sat,
            "seed {seed}: goodput {:.1} Mops collapsed below 70% of saturation {:.1} Mops \
             (shed {} expired {} of {} ops)",
            report.goodput_mops,
            sat,
            report.shed_ops,
            report.expired_ops,
            report.ops,
        );
    }
}

#[test]
fn chaos_soak_is_bit_identical_across_worker_counts() {
    let seed = 7u64;
    let sat = saturation_mops(seed);
    let offered = 2.0 * sat;
    let (r1, o1) = run_soak(seed, 1, offered);
    let (r2, o2) = run_soak(seed, 2, offered);
    let (r8, o8) = run_soak(seed, 8, offered);
    assert_eq!(r1, r2, "soak diverged between 1 and 2 workers");
    assert_eq!(r1, r8, "soak diverged between 1 and 8 workers");
    assert_eq!(o1, o2, "outcomes diverged between 1 and 2 workers");
    assert_eq!(o1, o8, "outcomes diverged between 1 and 8 workers");
    assert!(r1.ops == OPS as u64 && r1.goodput_ops > 0);
}

// ---------------------------------------------------------------------
// TCP front-end churn: the same chaos regime (1% fault rates on every
// store channel) applied through the real memcache server, with clients
// abruptly killed mid-run — some mid-frame — and reconnected. Keys are
// partitioned per client, so each client's synchronous request/reply
// stream is a total order per key and a HashMap replay is an exact
// sequential-consistency check: every VALUE must be the latest
// acknowledged STORED, every miss must follow a DELETED or precede any
// store, and faulted ops (SERVER_ERROR) must have no visible effect.
// ---------------------------------------------------------------------

const TCP_CLIENTS: usize = 4;
const TCP_OPS_PER_CLIENT: usize = 1_500;
const TCP_KEYS_PER_CLIENT: u64 = 64;
/// Abruptly drop and re-dial the connection every this many ops.
const TCP_KILL_EVERY: usize = 300;

/// One synchronous memcache client with an exact per-key model.
struct SoakClient {
    addr: SocketAddr,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// Latest acknowledged data block per owned key id.
    model: HashMap<u64, Vec<u8>>,
    /// Ops the fault plane visibly refused (`SERVER_ERROR`).
    faulted: u64,
    reconnects: u64,
}

fn dial(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("soak client connect");
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone soak stream"));
    (stream, reader)
}

impl SoakClient {
    fn new(addr: SocketAddr) -> Self {
        let (stream, reader) = dial(addr);
        SoakClient {
            addr,
            stream,
            reader,
            model: HashMap::new(),
            faulted: 0,
            reconnects: 0,
        }
    }

    fn read_line(&mut self) -> Vec<u8> {
        let mut line = Vec::new();
        self.reader
            .read_until(b'\n', &mut line)
            .expect("soak reply line");
        assert!(line.ends_with(b"\r\n"), "truncated reply: {line:?}");
        line.truncate(line.len() - 2);
        line
    }

    /// Kills the connection abruptly — optionally mid-frame, leaving the
    /// server holding an incomplete command — then re-dials.
    fn kill_and_reconnect(&mut self, mid_frame: bool) {
        if mid_frame {
            // A declared 64-byte data block, cut off after 3 bytes. The
            // server must discard it on EOF with no state change.
            self.stream.write_all(b"set torn 0 0 64\r\nab").ok();
        }
        let (stream, reader) = dial(self.addr);
        self.stream = stream;
        self.reader = reader;
        self.reconnects += 1;
    }

    fn set(&mut self, key: u64, data: Vec<u8>) {
        let mut req = format!("set sk{key} 0 0 {}\r\n", data.len()).into_bytes();
        req.extend_from_slice(&data);
        req.extend_from_slice(b"\r\n");
        self.stream.write_all(&req).expect("soak set");
        let line = self.read_line();
        match line.as_slice() {
            b"STORED" => {
                self.model.insert(key, data);
            }
            l if l.starts_with(b"SERVER_ERROR") => self.faulted += 1,
            l => panic!("unexpected set reply: {:?}", String::from_utf8_lossy(l)),
        }
    }

    fn delete(&mut self, key: u64) {
        self.stream
            .write_all(format!("delete sk{key}\r\n").as_bytes())
            .expect("soak delete");
        let line = self.read_line();
        match line.as_slice() {
            b"DELETED" => {
                assert!(
                    self.model.remove(&key).is_some(),
                    "key sk{key}: DELETED acknowledged for a key never stored"
                );
            }
            b"NOT_FOUND" => {
                assert!(
                    !self.model.contains_key(&key),
                    "key sk{key}: DELETE missed an acknowledged store"
                );
            }
            l if l.starts_with(b"SERVER_ERROR") => self.faulted += 1,
            l => panic!("unexpected delete reply: {:?}", String::from_utf8_lossy(l)),
        }
    }

    fn get(&mut self, key: u64) {
        self.stream
            .write_all(format!("get sk{key}\r\n").as_bytes())
            .expect("soak get");
        let line = self.read_line();
        if line == b"END" {
            assert!(
                !self.model.contains_key(&key),
                "key sk{key}: GET lost an acknowledged write"
            );
            return;
        }
        if line.starts_with(b"SERVER_ERROR") {
            self.faulted += 1;
            return;
        }
        let text = String::from_utf8_lossy(&line);
        let mut parts = text.split(' ');
        assert_eq!(
            parts.next(),
            Some("VALUE"),
            "unexpected get reply: {text:?}"
        );
        assert_eq!(parts.next(), Some(format!("sk{key}").as_str()));
        let _flags = parts.next().expect("flags token");
        let len: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .expect("length token");
        let mut data = vec![0u8; len + 2];
        self.reader.read_exact(&mut data).expect("soak value block");
        assert_eq!(&data[len..], b"\r\n");
        data.truncate(len);
        assert_eq!(self.read_line(), b"END");
        let expect = self
            .model
            .get(&key)
            .unwrap_or_else(|| panic!("key sk{key}: GET returned a value for a key never stored"));
        assert_eq!(
            &data, expect,
            "key sk{key}: GET diverged from the acknowledged history"
        );
    }
}

/// One client's soak: synchronous ops over its own key range with
/// periodic abrupt kills. Returns `(faulted, reconnects)`.
fn tcp_soak_client(addr: SocketAddr, client: usize) -> (u64, u64) {
    let mut rng = kv_direct::sim::DetRng::seed(0x7C9_50AC ^ client as u64);
    let mut c = SoakClient::new(addr);
    let base = client as u64 * TCP_KEYS_PER_CLIENT;
    for i in 0..TCP_OPS_PER_CLIENT {
        if i > 0 && i % TCP_KILL_EVERY == 0 {
            // Alternate clean kills with mid-frame tears.
            c.kill_and_reconnect(i % (2 * TCP_KILL_EVERY) == 0);
        }
        let key = base + rng.u64_below(TCP_KEYS_PER_CLIENT);
        let roll = rng.u64_below(100);
        if roll < 60 {
            c.get(key);
        } else if roll < 90 {
            let data = format!("c{client}k{key}v{i}").into_bytes();
            c.set(key, data);
        } else {
            c.delete(key);
        }
    }
    // Final sweep: every owned key must read back exactly the model.
    for key in base..base + TCP_KEYS_PER_CLIENT {
        c.get(key);
    }
    (c.faulted, c.reconnects)
}

#[test]
fn chaos_soak_survives_tcp_client_churn() {
    let mut cfg = ServerConfig::loopback(2);
    cfg.store.fault_rates = FaultRates::uniform(0.01);
    cfg.store.fault_seed = 0xC_4A05;
    let server = serve("127.0.0.1:0", cfg).expect("bind churn server");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..TCP_CLIENTS)
        .map(|client| std::thread::spawn(move || tcp_soak_client(addr, client)))
        .collect();
    let mut faulted = 0u64;
    let mut reconnects = 0u64;
    for h in handles {
        let (f, r) = h.join().expect("soak client panicked");
        faulted += f;
        reconnects += r;
    }

    let expected_kills = (TCP_OPS_PER_CLIENT - 1) / TCP_KILL_EVERY;
    assert_eq!(
        reconnects,
        (TCP_CLIENTS * expected_kills) as u64,
        "every scheduled kill reconnected"
    );

    let ledger = server.stop();
    let conns = (TCP_CLIENTS * (expected_kills + 1)) as u64;
    assert_eq!(ledger.server.connections, conns, "dials = initial + kills");
    assert_eq!(
        ledger.server.disconnects, conns,
        "every connection (torn frames included) tore down cleanly"
    );
    assert!(
        ledger.server.requests >= (TCP_CLIENTS * TCP_OPS_PER_CLIENT) as u64,
        "every surviving op reached the data plane"
    );
    assert!(
        ledger.fault_view().total_faults() > 0,
        "the 1% fault plane must actually fire under TCP traffic"
    );
    // Retries absorb most injected faults; the ones that exhaust their
    // budget surface as SERVER_ERROR and are counted by the clients.
    assert_eq!(
        ledger.core.device_errors, faulted,
        "visible SERVER_ERRORs match the store's exhausted-retry count"
    );
}
