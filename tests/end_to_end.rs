//! End-to-end system behaviour under the paper's workloads.
//!
//! Runs YCSB-style workloads through the full store and checks the
//! system-level properties the evaluation depends on: preload to a target
//! utilization, correct data under uniform and long-tail mixes, the
//! skew-dependent behaviour of the forwarding and caching layers, and
//! the throughput composition's headline shapes.

use kv_direct::timing::{measure_workload, KeyDist, SystemModel, WorkloadSpec};
use kv_direct::workloads::{Dist, YcsbSpec, YcsbWorkload};
use kv_direct::{KvDirectConfig, KvDirectStore, OpCode};

fn run_workload(dist: Dist, put_ratio: f64) -> KvDirectStore {
    use kv_direct::mem::MemoryEngine;
    let mut store = KvDirectStore::new(KvDirectConfig::with_memory(8 << 20));
    // Enough keys that the touched hash-index lines dwarf the NIC DRAM
    // (8 MiB / 16 = 512 KiB), as in the paper's 64 GiB : 4 GiB setup.
    let mut w = YcsbWorkload::new(YcsbSpec {
        n_keys: 40_000,
        kv_size: 16,
        put_ratio,
        dist,
        seed: 99,
    });
    for chunk in w.preload_requests().chunks(64) {
        for r in store.execute_batch(chunk) {
            assert_eq!(r.status, kv_direct::Status::Ok);
        }
    }
    // Measure steady state, not the preload.
    store.processor_mut().table_mut().mem_mut().reset_stats();
    for _ in 0..200 {
        let batch = w.batch(40);
        let rs = store.execute_batch(&batch);
        // Every GET of a preloaded key must return its deterministic
        // value or the most recent overwrite — never garbage sizes.
        for (req, resp) in batch.iter().zip(&rs) {
            if req.op == OpCode::Get {
                assert_eq!(resp.status, kv_direct::Status::Ok, "missing preloaded key");
                assert_eq!(resp.value.len(), 8, "value length corrupted");
            }
        }
    }
    store
}

#[test]
fn ycsb_uniform_all_mixes() {
    for put in [0.0, 0.5, 1.0] {
        let store = run_workload(Dist::Uniform, put);
        assert_eq!(store.processor().table().len(), 40_000);
        assert_eq!(store.stats().writeback_failures, 0);
    }
}

#[test]
fn ycsb_longtail_all_mixes() {
    for put in [0.0, 0.5, 1.0] {
        let store = run_workload(Dist::long_tail(), put);
        assert_eq!(store.processor().table().len(), 40_000);
    }
}

#[test]
fn longtail_forwards_more_than_uniform() {
    // Paper §5.2.2: "the out-of-order execution engine merges up to 15%
    // operations on the most popular keys" under long-tail.
    let uni = run_workload(Dist::Uniform, 0.5);
    let zipf = run_workload(Dist::long_tail(), 0.5);
    let fu = uni.processor().station_stats().forwarded as f64 / uni.stats().requests as f64;
    let fz = zipf.processor().station_stats().forwarded as f64 / zipf.stats().requests as f64;
    assert!(fz > fu, "zipf {fz} should forward more than uniform {fu}");
    assert!(fz > 0.02, "long-tail merge rate suspiciously low: {fz}");
}

#[test]
fn longtail_caches_better_than_uniform() {
    use kv_direct::mem::MemoryEngine;
    let uni = run_workload(Dist::Uniform, 0.0);
    let zipf = run_workload(Dist::long_tail(), 0.0);
    // Steady-state (post-preload) hit rates from the resettable stats.
    let rate = |s: &KvDirectStore| {
        let m = s.processor().table().mem().stats();
        m.cache_hits as f64 / (m.cache_hits + m.cache_misses).max(1) as f64
    };
    let hu = rate(&uni);
    let hz = rate(&zipf);
    assert!(hz > hu, "zipf hit rate {hz} vs uniform {hu}");
}

#[test]
fn throughput_composition_headline_shapes() {
    // The three Figure 16 regimes, at laptop scale:
    let cfg = KvDirectConfig::with_memory(1 << 20);
    let model = SystemModel::paper();

    // (1) tiny KVs, long-tail, read-heavy → clock- or memory-bound well
    //     above the network bound for ≥62B KVs;
    let tiny = WorkloadSpec::ycsb(10, 0.1, KeyDist::Zipf);
    let m_tiny = measure_workload(&cfg, &tiny, 0.4, 15_000, 5);
    let t_tiny = model.throughput(&tiny, &m_tiny);

    // (2) large KVs → network-bound;
    let large = WorkloadSpec::ycsb(254, 0.1, KeyDist::Uniform);
    let m_large = measure_workload(&cfg, &large, 0.3, 5_000, 5);
    let t_large = model.throughput(&large, &m_large);

    assert!(
        t_tiny.mops > t_large.mops * 2.0,
        "{} vs {}",
        t_tiny.mops,
        t_large.mops
    );
    assert!((t_large.mops - t_large.network_bound_mops).abs() < 1e-9);

    // (3) write-heavy costs more memory accesses than read-heavy.
    let writes = WorkloadSpec::ycsb(10, 1.0, KeyDist::Uniform);
    let reads = WorkloadSpec::ycsb(10, 0.0, KeyDist::Uniform);
    let mw = measure_workload(&cfg, &writes, 0.4, 10_000, 6);
    let mr = measure_workload(&cfg, &reads, 0.4, 10_000, 6);
    assert!(
        mw.accesses_per_op() > mr.accesses_per_op(),
        "PUT {} vs GET {}",
        mw.accesses_per_op(),
        mr.accesses_per_op()
    );
}

#[test]
fn store_survives_memory_pressure_gracefully() {
    // Fill a small store past capacity through the public API; once full,
    // errors must be clean and reads must stay correct.
    let mut store = KvDirectStore::new(KvDirectConfig::with_memory(256 << 10));
    let mut ok = Vec::new();
    for i in 0..20_000u64 {
        match store.put(&i.to_le_bytes(), &[7u8; 40]) {
            Ok(()) => ok.push(i),
            Err(kv_direct::StoreError::OutOfMemory) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(!ok.is_empty());
    for i in &ok {
        assert!(
            store.get(&i.to_le_bytes()).is_some(),
            "acknowledged key {i} lost under pressure"
        );
    }
}

#[test]
fn ycsb_presets_run_clean_through_the_store() {
    use kv_direct::workloads::{PresetWorkload, YcsbPreset};
    for preset in YcsbPreset::all() {
        let mut store = KvDirectStore::new(KvDirectConfig::with_memory(8 << 20));
        let mut w = PresetWorkload::new(preset, 5_000, 16, 11);
        for chunk in w.preload().chunks(64) {
            for r in store.execute_batch(chunk) {
                assert_eq!(r.status, kv_direct::Status::Ok, "{preset:?} preload");
            }
        }
        let mut errors = 0;
        for _ in 0..100 {
            let batch = w.batch(40);
            for r in store.execute_batch(&batch) {
                if r.status != kv_direct::Status::Ok {
                    errors += 1;
                }
            }
        }
        assert_eq!(errors, 0, "{preset:?} produced failing responses");
        assert_eq!(store.stats().writeback_failures, 0, "{preset:?}");
        // F's RMWs really mutate: some counter moved off its preload value.
        if preset == YcsbPreset::F {
            assert!(store.stats().updates > 0);
        }
    }
}
