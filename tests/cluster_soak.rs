//! Cluster chaos soak: kill a whole member mid-run and check the
//! survivors against a per-key linearizability model.
//!
//! The fault plane one level up from `chaos_soak.rs`: instead of DMA
//! faults inside one host, an entire member of an M-node cluster loses
//! power mid-run ([`NodeKill`]). The soak drives a seeded mixed
//! PUT/GET/DELETE workload across the failover window and then replays
//! every read against a HashMap model of the per-key mutation history:
//!
//! * **Zero acked writes lost** — a write the cluster acknowledged must
//!   be visible to every read that starts after the ack, including the
//!   trailing read-back pass after the failover settles.
//! * **Linearizability per key** — each read must observe the state of
//!   some prefix of that key's client-ordered mutation history, where
//!   the admissible prefix range is bounded below by what had committed
//!   before the read was issued and above by what had been issued when
//!   the read resolved.
//! * **Monotonic versions** — reads of one key in issue order never
//!   observe a version going backwards across the failover window
//!   (tails apply in order; promotion moves the tail strictly up-chain).
//!
//! The companion determinism test re-runs one soak on 1/2/4 OS workers
//! and requires the merged ledgers to be bit-identical — the window
//! lockstep discipline, restated as an end-to-end assertion.

use kvd_core::{ClusterSim, ClusterSimConfig, NodeKill, OpRecord};
use kvd_net::{KvRequest, OpCode, Status};
use kvd_sim::{DetRng, SimTime};

const KEYS: u64 = 40;
const OPS: usize = 360;

/// 16 LE bytes of (key id, version) — the soak's value encoding.
fn val(id: u64, version: u64) -> Vec<u8> {
    let mut v = id.to_le_bytes().to_vec();
    v.extend_from_slice(&version.to_le_bytes());
    v
}

fn version_of(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[8..16].try_into().expect("16-byte value"))
}

fn key_of(req: &KvRequest) -> u64 {
    u64::from_le_bytes(req.key[..8].try_into().expect("8-byte key"))
}

/// A seeded mixed workload spanning the kill: writes and reads
/// interleave from before the kill window until well after detection,
/// then a quiet gap and one trailing GET per key reads the final state
/// back.
fn soak_schedule(seed: u64) -> Vec<(SimTime, KvRequest)> {
    let mut rng = DetRng::seed(seed);
    let mut versions = vec![0u64; KEYS as usize];
    let mut next_version = 1u64;
    let mut sched = Vec::with_capacity(OPS + KEYS as usize);
    let mut t = SimTime::ZERO;
    for _ in 0..OPS {
        // ~140 us of traffic: the kill at window 40 (80 us) and the
        // detection window land mid-stream.
        t += SimTime::from_ns(300 + rng.u64_below(200));
        let id = rng.u64_below(KEYS);
        let roll = rng.f64();
        let req = if roll < 0.50 {
            KvRequest::get(&id.to_le_bytes())
        } else if roll < 0.92 || versions[id as usize] == 0 {
            versions[id as usize] = next_version;
            next_version += 1;
            KvRequest::put(&id.to_le_bytes(), &val(id, versions[id as usize]))
        } else {
            versions[id as usize] = 0;
            KvRequest::delete(&id.to_le_bytes())
        };
        sched.push((t, req));
    }
    // Quiet period, then read back every key.
    let mut late = t + SimTime::from_us(300);
    for id in 0..KEYS {
        sched.push((late, KvRequest::get(&id.to_le_bytes())));
        late += SimTime::from_ns(400);
    }
    sched
}

/// One key's mutation, reconstructed from the schedule + records.
struct Mutation {
    /// `Some(version)` for a PUT, `None` for a DELETE.
    put: Option<u64>,
    acked: bool,
    issue_window: u64,
    done_window: u64,
}

/// What the model says a read observes after `p` mutations applied.
fn model_state(muts: &[Mutation], p: usize) -> Option<u64> {
    muts[..p].last().and_then(|m| m.put)
}

/// Replays every read against the per-key model; panics with context on
/// the first linearizability violation.
fn check_linearizable(
    sched: &[(SimTime, KvRequest)],
    records: &[OpRecord],
    quantum: SimTime,
    label: &str,
) {
    let win = |t: SimTime| t.as_ps() / quantum.as_ps();
    // Client-ordered mutation history per key.
    let mut history: Vec<Vec<Mutation>> = (0..KEYS).map(|_| Vec::new()).collect();
    for ((t, req), rec) in sched.iter().zip(records) {
        if matches!(req.op, OpCode::Put | OpCode::Delete) {
            assert!(
                rec.acked && rec.status == Status::Ok,
                "{label}: write to key {} at {t:?} not acked (status {:?}) — \
                 a single node kill at RF>=2 must not fail writes",
                key_of(req),
                rec.status
            );
            history[key_of(req) as usize].push(Mutation {
                put: (req.op == OpCode::Put).then(|| version_of(&req.value)),
                acked: rec.acked,
                issue_window: win(*t),
                done_window: rec.done_window,
            });
        }
    }
    let mut last_seen: Vec<Option<u64>> = vec![None; KEYS as usize];
    for ((t, req), rec) in sched.iter().zip(records) {
        if req.op != OpCode::Get {
            continue;
        }
        let id = key_of(req);
        let muts = &history[id as usize];
        let observed = match rec.status {
            Status::Ok => Some(version_of(&rec.value)),
            Status::NotFound => None,
            other => panic!("{label}: read of key {id} failed with {other:?}"),
        };
        // Admissible prefix range: everything committed before the read
        // was issued must be visible; nothing issued after the read
        // resolved can be.
        let issue_w = win(*t);
        let p_min = muts
            .iter()
            .filter(|m| m.acked && m.done_window < issue_w)
            .count();
        let p_max = muts
            .iter()
            .filter(|m| m.issue_window <= rec.done_window)
            .count();
        let admissible = (p_min..=p_max).any(|p| model_state(muts, p) == observed);
        assert!(
            admissible,
            "{label}: read of key {id} at {t:?} observed {observed:?}, but \
             admissible prefixes {p_min}..={p_max} of {} mutations allow {:?}",
            muts.len(),
            (p_min..=p_max)
                .map(|p| model_state(muts, p))
                .collect::<Vec<_>>()
        );
        // Monotonic per-key versions across the failover window.
        if let (Some(prev), Some(now)) = (last_seen[id as usize], observed) {
            assert!(
                now >= prev,
                "{label}: key {id} version went backwards {prev} -> {now}"
            );
        }
        if observed.is_some() {
            last_seen[id as usize] = observed;
        }
    }
}

fn soak(
    seed: u64,
    rf: usize,
    workers: usize,
) -> (Vec<(SimTime, KvRequest)>, kvd_core::ClusterReport) {
    let mut cfg = ClusterSimConfig::smoke(4, rf);
    cfg.workers = workers;
    cfg.kill = Some(NodeKill {
        node: 1,
        window: 40,
    });
    let quantum = cfg.quantum;
    let sched = soak_schedule(seed);
    let mut cluster = ClusterSim::new(cfg);
    let report = cluster.run(&sched);
    assert_eq!(
        report.kill_window,
        Some(40),
        "seed {seed:#x}: kill must fire"
    );
    let detect = report
        .detect_window
        .expect("survivors must detect the dead member");
    assert!(detect > 40, "detection strictly after the kill");
    assert_eq!(report.ledger.cluster.node_kills, 1);
    assert_eq!(report.ledger.cluster.failovers, 1);
    assert_eq!(
        report.ledger.cluster.writes_failed, 0,
        "seed {seed:#x}: no write may fail under a single kill at RF {rf}"
    );
    check_linearizable(
        &sched,
        &report.records,
        quantum,
        &format!("seed {seed:#x} rf {rf}"),
    );
    (sched, report)
}

#[test]
fn rf2_node_kill_soak_is_linearizable() {
    for seed in [0xC1A0_5001u64, 0xC1A0_5002, 0xC1A0_5003] {
        let (_, report) = soak(seed, 2, 1);
        // The failover left its footprint in the ledger.
        assert!(report.ledger.cluster.rep_frames > 0);
        assert!(report.ledger.cluster.heartbeats > 0);
        assert!(report.ledger.cluster.failover_depth_windows > 0);
    }
}

#[test]
fn rf3_node_kill_soak_is_linearizable() {
    for seed in [0xC1A0_5001u64, 0xC1A0_5004] {
        let (_, report) = soak(seed, 3, 1);
        // RF=3 pushes strictly more replication traffic than the same
        // schedule at RF=2 — the cost the EXPERIMENTS table measures.
        assert!(report.ledger.cluster.rep_frames > 0);
    }
}

/// TTL stamps ride the replication chain: a stamped write acked before
/// a node kill must still expire on the survivors, and an immortal
/// write must still be served — whoever ends up as tail after failover.
///
/// Keys 0..12 are written before the kill (odd ids stamped to die at
/// tick 1 = 1 ms of sim time, even ids immortal); key 12 is stamped
/// during the failover window. An early read pass (~300 µs, failover
/// settled, TTL not yet lapsed) must serve every key; a late pass
/// (3 ms, two ticks past every stamp) must miss exactly the stamped
/// keys. Lazy expiry on the read path and the per-batch reaper both
/// run on the member stores, so the merged ledger also shows the
/// stamps were *applied* (not just forwarded) on more than one node.
#[test]
fn ttl_stamps_survive_failover_and_expire_on_survivors() {
    const N: u64 = 12;
    let stamped = |id: u64| id % 2 == 1 || id == N;
    let mut sched: Vec<(SimTime, KvRequest)> = Vec::new();
    let mut t = SimTime::ZERO;
    for id in 0..N {
        t += SimTime::from_ns(500);
        let req = KvRequest::put(&id.to_le_bytes(), &val(id, 1));
        let req = if stamped(id) { req.with_ttl(1) } else { req };
        sched.push((t, req));
    }
    // Stamped write issued mid-failover (kill at 80 µs, detection later).
    sched.push((
        SimTime::from_us(200),
        KvRequest::put(&N.to_le_bytes(), &val(N, 1)).with_ttl(1),
    ));
    let mut early = SimTime::from_us(300);
    for id in 0..=N {
        sched.push((early, KvRequest::get(&id.to_le_bytes())));
        early += SimTime::from_ns(400);
    }
    let mut late = SimTime::from_ms(3);
    for id in 0..=N {
        sched.push((late, KvRequest::get(&id.to_le_bytes())));
        late += SimTime::from_ns(400);
    }

    let mut cfg = ClusterSimConfig::smoke(4, 2);
    cfg.kill = Some(NodeKill {
        node: 1,
        window: 40,
    });
    cfg.node.store.reap_buckets_per_batch = 16;
    let mut cluster = ClusterSim::new(cfg);
    let report = cluster.run(&sched);
    assert_eq!(report.kill_window, Some(40), "kill must fire");
    assert!(report.detect_window.is_some(), "kill must be detected");
    assert_eq!(report.ledger.cluster.writes_failed, 0);

    let reads = &report.records[sched.len() - 2 * (N as usize + 1)..];
    let (early_reads, late_reads) = reads.split_at(N as usize + 1);
    for (id, rec) in early_reads.iter().enumerate() {
        assert_eq!(
            rec.status,
            Status::Ok,
            "key {id} must still be served at 300 us (stamp not lapsed)"
        );
        assert_eq!(rec.value, val(id as u64, 1), "key {id} bytes intact");
    }
    for (id, rec) in late_reads.iter().enumerate() {
        if stamped(id as u64) {
            assert_eq!(
                rec.status,
                Status::NotFound,
                "stamped key {id} must be expired on the surviving tail at 3 ms"
            );
        } else {
            assert_eq!(
                rec.status,
                Status::Ok,
                "immortal key {id} must survive both the kill and the sweep"
            );
            assert_eq!(rec.value, val(id as u64, 1));
        }
    }

    // The stamp was applied down-chain, not just at the head: every
    // pre-kill stamped write charged ttl_puts on both RF=2 members.
    // Key 12 lands mid-failover, where a chain that contained the dead
    // member degrades to one live replica until repair — so it is only
    // guaranteed a single apply.
    let stamped_writes = (0..=N).filter(|&id| stamped(id)).count() as u64;
    let pre_kill_stamped = stamped_writes - 1;
    assert!(
        report.ledger.expiry.ttl_puts > 2 * pre_kill_stamped,
        "stamps must replicate: {} ttl_puts for {} pre-kill stamped writes at RF=2",
        report.ledger.expiry.ttl_puts,
        pre_kill_stamped
    );
    // And the corpses were reclaimed on the members that served the
    // late reads (lazily or by the per-batch reaper).
    assert!(
        report.ledger.expiry.reaped_entries >= stamped_writes,
        "only {} reclaims for {} stamped keys",
        report.ledger.expiry.reaped_entries,
        stamped_writes
    );
}

#[test]
fn soak_ledger_bit_identical_across_worker_counts() {
    let mut reports = Vec::new();
    for workers in [1usize, 2, 4] {
        reports.push(soak(0xC1A0_5001, 2, workers).1);
    }
    let base = &reports[0];
    for r in &reports[1..] {
        assert_eq!(
            format!("{:?}", base.ledger),
            format!("{:?}", r.ledger),
            "merged cluster ledger must be bit-identical across worker counts"
        );
        assert_eq!(base.windows, r.windows);
        assert_eq!(base.detect_window, r.detect_window);
        for (a, b) in base.records.iter().zip(&r.records) {
            assert_eq!(a.status, b.status);
            assert_eq!(a.value, b.value);
            assert_eq!(a.done_window, b.done_window);
        }
    }
}
