//! Memcache protocol conformance: golden request/response transcripts.
//!
//! Every supported command and error path is pinned as a byte transcript
//! — the exact request bytes a client sends and the exact response bytes
//! the server must produce — replayed against an in-process loopback
//! server and compared byte-for-byte. The transcripts are the wire
//! contract: any change to response framing, status lines, error
//! wording, ordering, or whitespace is a breaking change and must show
//! up here as a diff.
//!
//! Transcripts run against a single-shard server so cas uniques are
//! deterministic (1, 2, 3 … in command order); shard-layout coverage
//! (multi-shard scatter/gather ordering) has its own test.

use std::io::{Read, Write};
use std::net::TcpStream;

use kvd_server::{serve, ServerConfig, ServerHandle};

/// One conversation: client bytes in, expected server bytes out.
struct Transcript {
    name: &'static str,
    send: Vec<u8>,
    expect: Vec<u8>,
}

fn t(name: &'static str, send: impl Into<Vec<u8>>, expect: impl Into<Vec<u8>>) -> Transcript {
    Transcript {
        name,
        send: send.into(),
        expect: expect.into(),
    }
}

/// The golden transcript table. Each runs on a fresh single-shard
/// server, so cas uniques restart at 1.
fn transcripts() -> Vec<Transcript> {
    let mut all = vec![
        // --- storage + retrieval ---------------------------------
        t(
            "set_then_get",
            &b"set k 0 0 5\r\nhello\r\nget k\r\n"[..],
            &b"STORED\r\nVALUE k 0 5\r\nhello\r\nEND\r\n"[..],
        ),
        t(
            "set_echoes_flags",
            &b"set k 4242 0 2\r\nhi\r\nget k\r\n"[..],
            &b"STORED\r\nVALUE k 4242 2\r\nhi\r\nEND\r\n"[..],
        ),
        t(
            "set_overwrites",
            &b"set k 0 0 1\r\na\r\nset k 7 0 1\r\nb\r\nget k\r\n"[..],
            &b"STORED\r\nSTORED\r\nVALUE k 7 1\r\nb\r\nEND\r\n"[..],
        ),
        t(
            "set_noreply_is_silent",
            &b"set k 0 0 1 noreply\r\nx\r\nget k\r\n"[..],
            &b"VALUE k 0 1\r\nx\r\nEND\r\n"[..],
        ),
        t(
            "get_miss_is_bare_end",
            &b"get nothere\r\n"[..],
            &b"END\r\n"[..],
        ),
        t(
            "multi_get_in_request_order",
            &b"set a 0 0 1\r\n1\r\nset b 0 0 1\r\n2\r\nget a missing b\r\n"[..],
            &b"STORED\r\nSTORED\r\nVALUE a 0 1\r\n1\r\nVALUE b 0 1\r\n2\r\nEND\r\n"[..],
        ),
        t(
            "gets_reports_cas_uniques",
            &b"set k 0 0 1\r\na\r\nset j 0 0 1\r\nb\r\ngets k j\r\n"[..],
            &b"STORED\r\nSTORED\r\nVALUE k 0 1 1\r\na\r\nVALUE j 0 1 2\r\nb\r\nEND\r\n"[..],
        ),
        t(
            "empty_value_roundtrips",
            &b"set k 0 0 0\r\n\r\nget k\r\n"[..],
            &b"STORED\r\nVALUE k 0 0\r\n\r\nEND\r\n"[..],
        ),
        // --- add / replace preconditions -------------------------
        t(
            "add_only_when_absent",
            &b"add k 0 0 1\r\na\r\nadd k 0 0 1\r\nb\r\nget k\r\n"[..],
            &b"STORED\r\nNOT_STORED\r\nVALUE k 0 1\r\na\r\nEND\r\n"[..],
        ),
        t(
            "replace_only_when_present",
            &b"replace k 0 0 1\r\na\r\nset k 0 0 1\r\nb\r\nreplace k 0 0 1\r\nc\r\nget k\r\n"[..],
            &b"NOT_STORED\r\nSTORED\r\nSTORED\r\nVALUE k 0 1\r\nc\r\nEND\r\n"[..],
        ),
        // --- exptime / touch -------------------------------------
        // exptime 0 = never expires; a large relative exptime keeps
        // the value alive for the whole transcript.
        t(
            "future_exptime_still_served",
            &b"set k 0 300 1\r\na\r\nget k\r\n"[..],
            &b"STORED\r\nVALUE k 0 1\r\na\r\nEND\r\n"[..],
        ),
        // An absolute exptime in the past (> 30 days reads as a Unix
        // timestamp; 2592001 is in 1970) is accepted but the value is
        // dead on arrival: the set is STORED, the get a plain miss.
        t(
            "past_absolute_exptime_dead_on_arrival",
            &b"set k 0 2592001 1\r\na\r\nget k\r\n"[..],
            &b"STORED\r\nEND\r\n"[..],
        ),
        t(
            "touch_present_key",
            &b"set k 0 0 1\r\na\r\ntouch k 300\r\nget k\r\n"[..],
            &b"STORED\r\nTOUCHED\r\nVALUE k 0 1\r\na\r\nEND\r\n"[..],
        ),
        t(
            "touch_into_past_kills",
            &b"set k 0 0 1\r\na\r\ntouch k 2592001\r\nget k\r\n"[..],
            &b"STORED\r\nTOUCHED\r\nEND\r\n"[..],
        ),
        t(
            "touch_missing_key",
            &b"touch nothere 300\r\n"[..],
            &b"NOT_FOUND\r\n"[..],
        ),
        t(
            "touch_noreply_is_silent",
            &b"set k 0 0 1\r\na\r\ntouch k 300 noreply\r\nget k\r\n"[..],
            &b"STORED\r\nVALUE k 0 1\r\na\r\nEND\r\n"[..],
        ),
        t(
            "touch_without_exptime",
            &b"touch k\r\n"[..],
            &b"CLIENT_ERROR bad command line format\r\n"[..],
        ),
        t(
            "touch_with_bad_exptime",
            &b"touch k never\r\n"[..],
            &b"CLIENT_ERROR bad command line format\r\n"[..],
        ),
        // --- delete ----------------------------------------------
        t(
            "delete_present_then_absent",
            &b"set k 0 0 1\r\nv\r\ndelete k\r\ndelete k\r\nget k\r\n"[..],
            &b"STORED\r\nDELETED\r\nNOT_FOUND\r\nEND\r\n"[..],
        ),
        t(
            "delete_noreply_is_silent",
            &b"set k 0 0 1\r\nv\r\ndelete k noreply\r\nget k\r\n"[..],
            &b"STORED\r\nEND\r\n"[..],
        ),
        // --- control ---------------------------------------------
        t(
            "version_line",
            &b"version\r\n"[..],
            &b"VERSION kvd-server 0.1.0\r\n"[..],
        ),
        t("quit_closes_silently", &b"quit\r\n"[..], &b""[..]),
        t(
            "quit_after_pipeline_flushes_first",
            &b"set k 0 0 1\r\nz\r\nquit\r\n"[..],
            &b"STORED\r\n"[..],
        ),
        // --- ERROR: unknown commands -----------------------------
        t("unknown_command", &b"stats\r\n"[..], &b"ERROR\r\n"[..]),
        t("empty_line", &b"\r\n"[..], &b"ERROR\r\n"[..]),
        t(
            "unknown_then_recovers",
            &b"bogus\r\nget k\r\n"[..],
            &b"ERROR\r\nEND\r\n"[..],
        ),
        // --- CLIENT_ERROR: malformed arguments -------------------
        t(
            "get_without_key",
            &b"get\r\n"[..],
            &b"CLIENT_ERROR bad command line format\r\n"[..],
        ),
        t(
            "set_with_missing_fields",
            &b"set k 0 0\r\n"[..],
            &b"CLIENT_ERROR bad command line format\r\n"[..],
        ),
        t(
            "set_with_bad_number",
            &b"set k zero 0 1\r\n"[..],
            &b"CLIENT_ERROR bad command line format\r\n"[..],
        ),
        t(
            "bad_data_chunk",
            // 3 declared, but the block isn't CRLF-terminated there.
            // The frame is consumed to its declared boundary (data +
            // 2), so the stream resynchronizes at `get k`.
            &b"set k 0 0 3\r\nabcXXget k\r\n"[..],
            &b"CLIENT_ERROR bad data chunk\r\nEND\r\n"[..],
        ),
        t(
            "oversized_key",
            {
                let mut v = b"get ".to_vec();
                v.extend(vec![b'k'; 251]);
                v.extend_from_slice(b"\r\n");
                v
            },
            &b"CLIENT_ERROR bad command line format\r\n"[..],
        ),
        // --- SERVER_ERROR: oversized object ----------------------
        t(
            "object_too_large_swallowed",
            {
                let n = 70_000; // > MAX_DATA_LEN
                let mut v = format!("set big 0 0 {n}\r\n").into_bytes();
                v.extend(vec![b'x'; n]);
                v.extend_from_slice(b"\r\nget ok\r\n");
                v
            },
            &b"SERVER_ERROR object too large for cache\r\nEND\r\n"[..],
        ),
        // --- binary safety ---------------------------------------
        t(
            "crlf_inside_data_block",
            &b"set k 0 0 6\r\nab\r\ncd\r\nget k\r\n"[..],
            &b"STORED\r\nVALUE k 0 6\r\nab\r\ncd\r\nEND\r\n"[..],
        ),
    ];
    // All 256 byte values as a data block.
    let data: Vec<u8> = (0..=255u8).collect();
    let mut send = format!("set bin 0 0 {}\r\n", data.len()).into_bytes();
    send.extend_from_slice(&data);
    send.extend_from_slice(b"\r\nget bin\r\n");
    let mut expect = b"STORED\r\nVALUE bin 0 256\r\n".to_vec();
    expect.extend_from_slice(&data);
    expect.extend_from_slice(b"\r\nEND\r\n");
    all.push(t("all_byte_values_roundtrip", send, expect));
    all
}

fn fresh_server(shards: usize) -> ServerHandle {
    serve("127.0.0.1:0", ServerConfig::loopback(shards)).expect("bind loopback")
}

/// Plays a transcript: writes everything, half-closes, reads to EOF.
fn play(server: &ServerHandle, send: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.write_all(send).expect("send");
    s.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut got = Vec::new();
    s.read_to_end(&mut got).expect("read");
    got
}

#[test]
fn golden_transcripts_are_byte_exact() {
    for tr in transcripts() {
        let server = fresh_server(1);
        let got = play(&server, &tr.send);
        assert_eq!(
            got,
            tr.expect,
            "transcript `{}` diverged\n  got:    {:?}\n  expect: {:?}",
            tr.name,
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&tr.expect),
        );
        server.stop();
    }
}

#[test]
fn transcripts_survive_one_byte_segmentation() {
    // The same conversations dribbled a byte at a time must produce
    // identical responses: reassembly is invisible on the wire.
    for tr in transcripts() {
        // Skip the 70 KB swallow transcript: 70k one-byte writes is
        // pure test latency with no extra coverage (the swallow path
        // crosses segment boundaries in the full-table run already).
        if tr.send.len() > 4096 {
            continue;
        }
        let server = fresh_server(1);
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        for &b in &tr.send {
            s.write_all(&[b]).expect("byte");
        }
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut got = Vec::new();
        s.read_to_end(&mut got).expect("read");
        assert_eq!(
            got, tr.expect,
            "segmented transcript `{}` diverged",
            tr.name
        );
        server.stop();
    }
}

#[test]
fn transcripts_are_shard_layout_invariant() {
    // Responses must not depend on how keys scatter across workers
    // (cas-bearing transcripts excluded: uniques are assigned in
    // completion order, which legitimately varies across layouts).
    for shards in [2, 4] {
        for tr in transcripts() {
            if tr.name == "gets_reports_cas_uniques" {
                continue;
            }
            let server = fresh_server(shards);
            let got = play(&server, &tr.send);
            assert_eq!(
                got, tr.expect,
                "transcript `{}` diverged on {shards}-shard layout",
                tr.name
            );
            server.stop();
        }
    }
}

#[test]
fn conformance_traffic_lands_in_ledger() {
    let server = fresh_server(2);
    play(
        &server,
        b"set k 0 0 1\r\nv\r\nget k\r\nget miss\r\ndelete k\r\nbogus\r\n",
    );
    let ledger = server.stop();
    assert_eq!(ledger.server.requests, 4, "4 well-formed commands");
    assert_eq!(ledger.server.frames, 5, "plus the ERROR frame");
    assert_eq!(ledger.server.protocol_errors, 1);
    assert_eq!(ledger.server.get_hits, 1);
    assert_eq!(ledger.server.get_misses, 1);
    assert_eq!(ledger.server.stored, 1);
    assert_eq!(ledger.server.deleted, 1);
    assert_eq!(ledger.server.connections, 1);
    assert_eq!(ledger.server.disconnects, 1);
    assert!(ledger.server.bytes_in > 0 && ledger.server.bytes_out > 0);
    assert!(ledger.core.requests >= 4, "data plane attribution");
}
