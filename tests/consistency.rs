//! Property-based consistency tests.
//!
//! The paper's central correctness claim for the out-of-order engine is
//! that it resolves data hazards "while maximizing the throughput of
//! independent requests" — i.e., the whole NIC (station + hash table +
//! slab allocator + write-back caches) is indistinguishable from a
//! sequential map. These properties check that against arbitrary
//! operation interleavings, key shapes and value sizes.

use std::collections::HashMap;

use kv_direct::lambda::decode_scalar;
use kv_direct::{builtin, KvDirectConfig, KvDirectStore, KvRequest, OpCode, Status};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, len: usize },
    Get { key: u8 },
    Delete { key: u8 },
    FetchAdd { key: u8, delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0usize..300).prop_map(|(key, len)| Op::Put { key: key % 24, len }),
        any::<u8>().prop_map(|key| Op::Get { key: key % 24 }),
        any::<u8>().prop_map(|key| Op::Delete { key: key % 24 }),
        (any::<u8>(), 1u64..100).prop_map(|(key, delta)| Op::FetchAdd {
            key: key % 24,
            delta
        }),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

fn value_bytes(k: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| k.wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of operations matches a HashMap reference, both
    /// in responses and in final table contents.
    #[test]
    fn store_matches_reference_map(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut store = KvDirectStore::new(KvDirectConfig::with_memory(4 << 20));
        let mut reference: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Put { key, len } => {
                    let k = key_bytes(*key);
                    let v = value_bytes(*key, *len);
                    store.put(&k, &v).expect("4MiB fits this workload");
                    reference.insert(k, v);
                }
                Op::Get { key } => {
                    let k = key_bytes(*key);
                    prop_assert_eq!(store.get(&k), reference.get(&k).cloned());
                }
                Op::Delete { key } => {
                    let k = key_bytes(*key);
                    let existed = store.delete(&k);
                    prop_assert_eq!(existed, reference.remove(&k).is_some());
                }
                Op::FetchAdd { key, delta } => {
                    let k = key_bytes(*key);
                    let expect_old = decode_scalar(reference.get(&k).map(|v| v.as_slice()));
                    let old = store.fetch_add(&k, *delta).expect("atomics cannot OOM here");
                    prop_assert_eq!(old, expect_old);
                    reference.insert(k, (expect_old + delta).to_le_bytes().to_vec());
                }
            }
        }
        // Final state equivalence.
        for (k, v) in &reference {
            let got = store.get(k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        prop_assert_eq!(store.processor().table().len(), reference.len() as u64);
    }

    /// Batched execution is equivalent to one-at-a-time execution.
    #[test]
    fn batching_is_transparent(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let to_req = |op: &Op| -> KvRequest {
            match op {
                Op::Put { key, len } => KvRequest::put(&key_bytes(*key), &value_bytes(*key, *len)),
                Op::Get { key } => KvRequest::get(&key_bytes(*key)),
                Op::Delete { key } => KvRequest::delete(&key_bytes(*key)),
                Op::FetchAdd { key, delta } => KvRequest {
                    op: OpCode::UpdateScalar,
                    key: key_bytes(*key),
                    value: delta.to_le_bytes().to_vec(),
                    lambda: builtin::ADD,
                    deadline_us: 0,
                    expiry_tick: 0,
                },
            }
        };
        let reqs: Vec<KvRequest> = ops.iter().map(to_req).collect();
        let mut batched = KvDirectStore::new(KvDirectConfig::with_memory(4 << 20));
        let mut serial = KvDirectStore::new(KvDirectConfig::with_memory(4 << 20));
        let rb = batched.execute_batch(&reqs);
        let rs: Vec<_> = reqs
            .iter()
            .flat_map(|r| serial.execute_batch(std::slice::from_ref(r)))
            .collect();
        prop_assert_eq!(rb, rs);
    }

    /// The wire codec is lossless for arbitrary batches.
    #[test]
    fn wire_codec_roundtrip(
        ops in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 1..32),
             prop::collection::vec(any::<u8>(), 0..64)),
            0..50,
        )
    ) {
        let reqs: Vec<KvRequest> = ops
            .into_iter()
            .map(|(sel, key, value)| match sel % 3 {
                0 => KvRequest::get(&key),
                1 => KvRequest::put(&key, &value),
                _ => KvRequest::delete(&key),
            })
            .collect();
        let bytes = kv_direct::encode_packet(&reqs);
        let decoded = kv_direct::decode_packet(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, reqs);
    }

    /// Sequencer linearizability: N fetch-adds on one key hand out the
    /// ticket range 0..N exactly once, in order, regardless of batching.
    #[test]
    fn sequencer_tickets_dense(batch_sizes in prop::collection::vec(1usize..50, 1..12)) {
        let mut store = KvDirectStore::new(KvDirectConfig::with_memory(1 << 20));
        let mut tickets = Vec::new();
        for n in &batch_sizes {
            let reqs: Vec<KvRequest> = (0..*n)
                .map(|_| KvRequest {
                    op: OpCode::UpdateScalar,
                    key: b"seq".to_vec(),
                    value: 1u64.to_le_bytes().to_vec(),
                    lambda: builtin::ADD,
                    deadline_us: 0,
                    expiry_tick: 0,
                })
                .collect();
            for r in store.execute_batch(&reqs) {
                prop_assert_eq!(r.status, Status::Ok);
                tickets.push(decode_scalar(Some(&r.value)));
            }
        }
        let expect: Vec<u64> = (0..tickets.len() as u64).collect();
        prop_assert_eq!(tickets, expect);
    }
}
