//! Cross-crate integration: wire format → KV processor → memory stack.
//!
//! These tests exercise the full request path the way a client would:
//! encode a packet, decode it NIC-side, execute it on a store backed by
//! the dispatched memory stack (host memory + NIC DRAM cache + PCIe
//! accounting), and check both the responses and the hardware-side
//! counters.

use kv_direct::lambda::{decode_scalar, encode_vector};
use kv_direct::mem::MemoryEngine;
use kv_direct::{
    builtin, decode_packet, encode_packet, KvDirectConfig, KvDirectStore, KvRequest, OpCode, Status,
};

fn store() -> KvDirectStore {
    KvDirectStore::new(KvDirectConfig::with_memory(4 << 20))
}

#[test]
fn packet_roundtrip_through_store() {
    let mut s = store();
    let reqs = vec![
        KvRequest::put(b"alpha", b"1"),
        KvRequest::put(b"beta", b"2"),
        KvRequest::get(b"alpha"),
        KvRequest {
            op: OpCode::UpdateScalar,
            key: b"ctr".to_vec(),
            value: 3u64.to_le_bytes().to_vec(),
            lambda: builtin::ADD,
            deadline_us: 0,
            expiry_tick: 0,
        },
        KvRequest::get(b"ctr"),
        KvRequest::delete(b"beta"),
        KvRequest::get(b"beta"),
    ];
    // Through the wire: encode client-side, decode NIC-side.
    let packet = encode_packet(&reqs);
    let decoded = decode_packet(&packet).expect("well-formed packet");
    assert_eq!(decoded, reqs);
    let rs = s.execute_batch(&decoded);
    assert_eq!(rs[2].value, b"1");
    assert_eq!(decode_scalar(Some(&rs[3].value)), 0, "original value");
    assert_eq!(decode_scalar(Some(&rs[4].value)), 3, "GET sees the add");
    assert_eq!(rs[5].status, Status::Ok);
    assert_eq!(rs[6].status, Status::NotFound);
}

#[test]
fn dispatched_memory_serves_both_devices() {
    // With load dispatch ratio 0.5, a busy store must touch both PCIe
    // and NIC DRAM, and the cache must produce hits on hot keys.
    let mut s = store();
    for i in 0..2000u64 {
        s.put(&i.to_le_bytes(), &i.to_be_bytes()).unwrap();
    }
    // Hot reads over a small working set.
    for _ in 0..10 {
        for i in 0..64u64 {
            assert!(s.get(&i.to_le_bytes()).is_some());
        }
    }
    let m = s.processor().table().mem().stats();
    assert!(m.dma_reads + m.dma_writes > 0, "PCIe untouched");
    assert!(m.dram_reads + m.dram_writes > 0, "NIC DRAM untouched");
    assert!(m.cache_hits > 0, "cache never hit");
}

#[test]
fn station_forwarding_reduces_memory_traffic_end_to_end() {
    let mut s = store();
    s.put(b"hot", b"x").unwrap();
    let before = s.processor().table().mem().stats().accesses();
    // 1000 GETs of one key in one batch: the station forwards all but
    // the first.
    let reqs: Vec<KvRequest> = (0..1000).map(|_| KvRequest::get(b"hot")).collect();
    let rs = s.execute_batch(&reqs);
    assert!(rs.iter().all(|r| r.value == b"x"));
    let after = s.processor().table().mem().stats().accesses();
    assert!(
        after - before <= 2,
        "forwarding failed: {} accesses",
        after - before
    );
}

#[test]
fn vector_pipeline_with_user_lambda() {
    let mut s = store();
    s.register_lambda(
        77,
        kv_direct::Lambda::ScalarToVector(std::sync::Arc::new(|e, p| e.max(p))),
    );
    s.put(b"v", &encode_vector(&[1, 100, 3])).unwrap();
    let orig = s.vector_update(b"v", 77, 50).unwrap();
    assert_eq!(orig, vec![1, 100, 3]);
    let now = kv_direct::lambda::decode_vector(&s.get(b"v").unwrap());
    assert_eq!(now, vec![50, 100, 50]);
}

#[test]
fn slab_reuse_under_churn() {
    // Insert/delete churn of non-inline values must not leak dynamic
    // memory: the Nth generation still fits.
    let mut s = store();
    for gen in 0..20 {
        for i in 0..200u64 {
            let key = i.to_le_bytes();
            s.put(&key, &[gen as u8; 200]).unwrap();
        }
        for i in 0..200u64 {
            assert!(s.delete(&i.to_le_bytes()));
        }
    }
    let a = s.processor().table().allocator().stats();
    assert_eq!(a.allocs, a.frees, "allocator leak: {a:?}");
}

#[test]
fn utilization_metric_consistent_across_stack() {
    let mut s = store();
    for i in 0..500u64 {
        s.put(&i.to_le_bytes(), &[1u8; 16]).unwrap();
    }
    let t = s.processor().table();
    assert_eq!(t.len(), 500);
    assert_eq!(t.stored_bytes(), 500 * 24);
    let u = t.memory_utilization();
    assert!((u - (500.0 * 24.0 / (4 << 20) as f64)).abs() < 1e-12);
}

#[test]
fn multi_nic_matches_single_nic_semantics() {
    use kv_direct::MultiNicStore;
    let mut single = store();
    let mut multi = MultiNicStore::new(KvDirectConfig::with_memory(4 << 20), 4);
    for i in 0..300u64 {
        let k = i.to_le_bytes();
        let v = (i * 17).to_le_bytes();
        single.put(&k, &v).unwrap();
        multi.put(&k, &v).unwrap();
    }
    for i in 0..300u64 {
        let k = i.to_le_bytes();
        assert_eq!(single.get(&k), multi.get(&k), "key {i}");
    }
    for i in (0..300u64).step_by(3) {
        assert_eq!(
            single.delete(&i.to_le_bytes()),
            multi.delete(&i.to_le_bytes())
        );
    }
    for i in 0..300u64 {
        assert_eq!(single.get(&i.to_le_bytes()), multi.get(&i.to_le_bytes()));
    }
}

#[test]
fn client_session_full_loop() {
    use kv_direct::net::client::ClientSession;
    use kv_direct::net::{encode_responses, NetConfig};

    let mut server = store();
    let mut session = ClientSession::new(NetConfig::forty_gbe(), 8);

    // The client queues a mixed stream; every full packet crosses the
    // "wire" (real encode/decode), executes on the store, and the
    // responses correlate back to the right handles.
    let mut expected = std::collections::HashMap::new();
    let mut handles = Vec::new();
    for i in 0..50u64 {
        let put = session.submit(KvRequest::put(&i.to_le_bytes(), &i.to_be_bytes()));
        let get = session.submit(KvRequest::get(&i.to_le_bytes()));
        expected.insert(get, i.to_be_bytes().to_vec());
        handles.push((put, get));
        while let Some(pkt) = session.take_packet() {
            let reqs = decode_packet(&pkt.payload).expect("client encoding decodes");
            let resps = server.execute_batch(&reqs);
            for (h, r) in session
                .on_response(pkt.seq, &encode_responses(&resps))
                .expect("in-order responses")
            {
                if let Some(want) = expected.remove(&h) {
                    assert_eq!(r.value, want, "handle {h:?}");
                }
            }
        }
    }
    if let Some(pkt) = session.flush() {
        let reqs = decode_packet(&pkt.payload).expect("decodes");
        let resps = server.execute_batch(&reqs);
        for (h, r) in session
            .on_response(pkt.seq, &encode_responses(&resps))
            .expect("tail responses")
        {
            if let Some(want) = expected.remove(&h) {
                assert_eq!(r.value, want);
            }
        }
    }
    assert!(expected.is_empty(), "every GET response correlated");
    assert_eq!(session.inflight_packets(), 0);
}
