//! Fault-injection differential and determinism tests.
//!
//! The fault plane's contract has three testable halves:
//!
//! 1. **Differential safety** — under any fault rate, an operation that
//!    acknowledges `Ok` behaves exactly like a fault-free HashMap; an
//!    operation that reports `DeviceError` was not applied at all. The
//!    store never panics and never hangs, whatever the schedule.
//! 2. **Determinism** — the schedule is a pure function of the config
//!    seed: same seed, same faults, same counters, same responses.
//!    Different seeds diverge.
//! 3. **Inertness** — a zero-rate plane consumes no randomness and the
//!    store is bit-identical to one built without fault injection.

use std::collections::HashMap;

use kv_direct::lambda::decode_scalar;
use kv_direct::{
    builtin, FaultCounters, FaultRates, KvDirectConfig, KvDirectStore, KvRequest, KvResponse,
    OpCode, Status,
};
use proptest::prelude::*;

/// The fault pressures exercised by every differential property.
const RATES: [f64; 3] = [0.0, 0.01, 0.1];

fn faulty_store(rate: f64, seed: u64) -> KvDirectStore {
    KvDirectStore::new(KvDirectConfig {
        fault_rates: FaultRates::uniform(rate),
        fault_seed: seed,
        ..KvDirectConfig::with_memory(4 << 20)
    })
}

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, len: usize },
    Get { key: u8 },
    Delete { key: u8 },
    FetchAdd { key: u8, delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0usize..200).prop_map(|(key, len)| Op::Put { key: key % 24, len }),
        any::<u8>().prop_map(|key| Op::Get { key: key % 24 }),
        any::<u8>().prop_map(|key| Op::Delete { key: key % 24 }),
        (any::<u8>(), 1u64..100).prop_map(|(key, delta)| Op::FetchAdd {
            key: key % 24,
            delta
        }),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

fn value_bytes(k: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| k.wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

fn to_request(op: &Op) -> KvRequest {
    match op {
        Op::Put { key, len } => KvRequest::put(&key_bytes(*key), &value_bytes(*key, *len)),
        Op::Get { key } => KvRequest::get(&key_bytes(*key)),
        Op::Delete { key } => KvRequest::delete(&key_bytes(*key)),
        Op::FetchAdd { key, delta } => KvRequest {
            op: OpCode::UpdateScalar,
            key: key_bytes(*key),
            value: delta.to_le_bytes().to_vec(),
            lambda: builtin::ADD,
            deadline_us: 0,
            expiry_tick: 0,
        },
    }
}

/// Replays `ops` against a faulty store and a fault-free HashMap model,
/// asserting agreement on every response that is not a `DeviceError`.
/// Returns the number of device errors observed.
fn run_differential(store: &mut KvDirectStore, ops: &[Op]) -> Result<u64, TestCaseError> {
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let mut device_errors = 0u64;
    for op in ops {
        let req = to_request(op);
        let resp = store
            .execute_batch(std::slice::from_ref(&req))
            .pop()
            .expect("one response per request");
        if resp.status == Status::DeviceError {
            // Contract: the operation was not applied. The model keeps
            // its state and subsequent ops must still agree.
            device_errors += 1;
            continue;
        }
        match op {
            Op::Put { key, len } => {
                prop_assert_eq!(resp.status, Status::Ok, "4MiB fits this workload");
                model.insert(key_bytes(*key), value_bytes(*key, *len));
            }
            Op::Get { key } => match model.get(&key_bytes(*key)) {
                Some(v) => {
                    prop_assert_eq!(resp.status, Status::Ok);
                    prop_assert_eq!(&resp.value, v, "GET diverged from model");
                }
                None => prop_assert_eq!(resp.status, Status::NotFound),
            },
            Op::Delete { key } => {
                let existed = model.remove(&key_bytes(*key)).is_some();
                prop_assert_eq!(
                    resp.status,
                    if existed {
                        Status::Ok
                    } else {
                        Status::NotFound
                    }
                );
            }
            Op::FetchAdd { key, delta } => {
                prop_assert_eq!(resp.status, Status::Ok);
                let k = key_bytes(*key);
                let old = decode_scalar(model.get(&k).map(|v| v.as_slice()));
                prop_assert_eq!(decode_scalar(Some(&resp.value)), old);
                model.insert(k, (old + delta).to_le_bytes().to_vec());
            }
        }
    }
    // Final state: every model key the store acknowledged must still read
    // back correctly (tolerating read-time device errors).
    for (k, v) in &model {
        match store.try_get(k) {
            Ok(got) => prop_assert_eq!(got.as_ref(), Some(v), "final state diverged"),
            Err(kv_direct::StoreError::DeviceError) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
    Ok(device_errors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// At fault rates 0, 1% and 10%, any interleaving of operations
    /// agrees with a fault-free reference map on every acknowledged
    /// response, and the run always terminates without a panic.
    #[test]
    fn faulty_store_matches_reference_map(
        ops in prop::collection::vec(op_strategy(), 1..250),
        seed in any::<u64>(),
    ) {
        for rate in RATES {
            let mut store = faulty_store(rate, seed);
            let device_errors = run_differential(&mut store, &ops)?;
            if rate == 0.0 {
                prop_assert_eq!(device_errors, 0, "zero rate cannot fail ops");
                prop_assert_eq!(store.fault_counters().total_faults(), 0);
            }
        }
    }

    /// The injected fault schedule is a pure function of the seed:
    /// replaying the same ops with the same seed reproduces responses,
    /// processor stats and fault counters bit-for-bit.
    #[test]
    fn fault_schedule_reproducible_for_any_seed(
        ops in prop::collection::vec(op_strategy(), 1..150),
        seed in any::<u64>(),
    ) {
        let reqs: Vec<KvRequest> = ops.iter().map(to_request).collect();
        let run = |seed: u64| -> (Vec<KvResponse>, FaultCounters) {
            let mut store = faulty_store(0.1, seed);
            let responses = store.execute_batch(&reqs);
            (responses, store.fault_counters())
        };
        prop_assert_eq!(run(seed), run(seed), "same seed must replay exactly");
    }
}

/// Same seed → identical run; different seed → different fault schedule.
/// (Deterministic regression twin of the property above, pinned so a
/// schedule change shows up as a plain test failure.)
#[test]
fn determinism_regression_same_and_different_seeds() {
    let workload: Vec<KvRequest> = (0..600u64)
        .flat_map(|i| {
            let k = (i % 48).to_le_bytes();
            vec![KvRequest::put(&k, &i.to_le_bytes()), KvRequest::get(&k)]
        })
        .collect();
    let run = |seed: u64| {
        let mut store = faulty_store(0.1, seed);
        let responses = store.execute_batch(&workload);
        (responses, store.stats(), store.fault_counters())
    };
    let (ra, sa, ca) = run(1234);
    let (rb, sb, cb) = run(1234);
    assert_eq!(ra, rb, "same seed, same responses");
    assert_eq!(sa, sb, "same seed, same processor stats");
    assert_eq!(ca, cb, "same seed, same fault counters");
    assert!(ca.total_faults() > 0, "10% pressure injects faults");

    let (_, _, cc) = run(5678);
    assert_ne!(ca, cc, "different seeds, different schedules");
}

/// A zero-rate fault plane is inert: the store's observable behavior is
/// bit-identical to one built from a plain config, fault seed ignored.
#[test]
fn zero_rate_plane_is_bit_identical_to_plain_store() {
    let workload: Vec<KvRequest> = (0..500u64)
        .flat_map(|i| {
            let k = (i % 40).to_le_bytes();
            vec![
                KvRequest::put(&k, &(i * 7).to_le_bytes()),
                KvRequest::get(&k),
                KvRequest::delete(&(i % 80).to_le_bytes()),
            ]
        })
        .collect();
    let mut plain = KvDirectStore::new(KvDirectConfig::with_memory(1 << 20));
    let mut zeroed = KvDirectStore::new(KvDirectConfig {
        fault_rates: FaultRates::uniform(0.0),
        fault_seed: 0x5EED,
        ..KvDirectConfig::with_memory(1 << 20)
    });
    assert_eq!(
        plain.execute_batch(&workload),
        zeroed.execute_batch(&workload)
    );
    assert_eq!(plain.stats(), zeroed.stats());
    assert_eq!(zeroed.fault_counters(), FaultCounters::default());
    assert!(!zeroed.ecc_stats().bypassed);
}

/// Sustained uncorrectable ECC pressure trips the DRAM-cache bypass
/// breaker; the store keeps serving correct data over PCIe afterwards.
#[test]
fn ecc_pressure_degrades_to_pcie_but_stays_correct() {
    let mut store = KvDirectStore::new(KvDirectConfig {
        fault_rates: FaultRates {
            dram_bit_error: 0.4,
            dram_uncorrectable: 0.5,
            ..FaultRates::ZERO
        },
        fault_seed: 99,
        ..KvDirectConfig::with_memory(1 << 20)
    });
    let mut model = HashMap::new();
    for i in 0..2000u64 {
        let k = (i % 64).to_le_bytes();
        let v = i.to_le_bytes();
        store
            .put(&k, &v)
            .expect("ECC faults retry inside the engine");
        model.insert(k, v);
    }
    let ecc = store.ecc_stats();
    assert!(ecc.uncorrectable > 0, "pressure did fire");
    assert!(ecc.bypassed, "breaker trips under sustained pressure");
    for (k, v) in &model {
        assert_eq!(
            store.get(k).as_deref(),
            Some(v.as_slice()),
            "degraded store lost data"
        );
    }
}
