//! Differential soak for the entry-lifecycle (TTL/expiry) plane.
//!
//! The expiry stamp rides the slot layout, the station write-back path,
//! the lazy read-side reclaim, the budgeted reaper, and `touch` — five
//! mechanisms that must agree on one semantic: an entry whose stamp has
//! passed is *gone* (never served, eventually reclaimed), and an entry
//! whose stamp has not passed is *intact* (never dropped, bytes exact).
//! These tests check the whole store against a time-aware `HashMap`
//! model:
//!
//! 1. a property test over arbitrary interleavings of TTL puts, gets,
//!    deletes, touches, clock advances and reaper sweeps;
//! 2. a seeded soak across seeds × fault rates, where the model tracks
//!    only acknowledged mutations (a `DeviceError` op is not applied);
//! 3. a workers sweep: the parallel engine with the reaper enabled must
//!    stay bit-identical across worker counts — the background sweep is
//!    part of the deterministic schedule, not a wall-clock daemon.

use std::collections::HashMap;

use kv_direct::parallel::{ParallelSimConfig, ParallelSystemSim};
use kv_direct::sim::SimTime;
use kv_direct::workloads::ttl::{MemcacheTtl, MemcacheTtlWorkload};
use kv_direct::{FaultRates, KvDirectConfig, KvDirectStore, KvResponse, OpCode, Status};
use proptest::prelude::*;

/// The model: value + stamp per key (stamp 0 = immortal).
type Model = HashMap<Vec<u8>, (Vec<u8>, u32)>;

fn live(stamp: u32, now: u32) -> bool {
    stamp == 0 || stamp > now
}

#[derive(Debug, Clone)]
enum Op {
    /// `ttl` 0 = immortal, else the stamp is `now + ttl`.
    PutTtl {
        key: u8,
        len: usize,
        ttl: u16,
    },
    Get {
        key: u8,
    },
    Delete {
        key: u8,
    },
    /// Same `ttl` encoding as `PutTtl`.
    Touch {
        key: u8,
        ttl: u16,
    },
    /// Advance the clock `dt` ticks.
    Advance {
        dt: u16,
    },
    /// One bounded reaper pass.
    Sweep {
        buckets: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0usize..200, any::<u16>())
            .prop_map(|(key, len, ttl)| Op::PutTtl { key: key % 24, len, ttl: ttl % 50 }),
        4 => any::<u8>().prop_map(|key| Op::Get { key: key % 24 }),
        1 => any::<u8>().prop_map(|key| Op::Delete { key: key % 24 }),
        2 => (any::<u8>(), any::<u16>())
            .prop_map(|(key, ttl)| Op::Touch { key: key % 24, ttl: ttl % 50 }),
        2 => any::<u16>().prop_map(|dt| Op::Advance { dt: dt % 20 }),
        1 => any::<u8>().prop_map(|buckets| Op::Sweep { buckets }),
    ]
}

fn key_bytes(k: u8) -> Vec<u8> {
    format!("key-{k}").into_bytes()
}

fn value_bytes(k: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| k.wrapping_mul(37).wrapping_add(i as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of lifecycle operations matches the time-aware
    /// model: dead entries are invisible, live entries are intact, and
    /// after a full sweep the table holds exactly the live set.
    #[test]
    fn store_matches_time_aware_model(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut store = KvDirectStore::new(KvDirectConfig::with_memory(4 << 20));
        let mut model: Model = HashMap::new();
        // Tick 0 would make fresh stamps ambiguous with the immortal
        // sentinel; start at 1 like every production clock does.
        let mut now: u32 = 1;
        store.processor_mut().set_now(SimTime::from_ms(now as u64));
        for op in &ops {
            match op {
                Op::PutTtl { key, len, ttl } => {
                    let k = key_bytes(*key);
                    let v = value_bytes(*key, *len);
                    let stamp = if *ttl == 0 { 0 } else { now + *ttl as u32 };
                    store.put_ttl(&k, &v, stamp).expect("4MiB fits this workload");
                    model.insert(k, (v, stamp));
                }
                Op::Get { key } => {
                    let k = key_bytes(*key);
                    let want = match model.get(&k) {
                        Some((v, stamp)) if live(*stamp, now) => Some(v.clone()),
                        _ => None,
                    };
                    prop_assert_eq!(store.get(&k), want, "GET diverged at tick {}", now);
                    // The store reclaims a dead entry it probes; mirror.
                    if let Some((_, stamp)) = model.get(&k) {
                        if !live(*stamp, now) {
                            model.remove(&k);
                        }
                    }
                }
                Op::Delete { key } => {
                    let k = key_bytes(*key);
                    let want = matches!(model.get(&k), Some((_, s)) if live(*s, now));
                    prop_assert_eq!(store.delete(&k), want, "DELETE diverged at tick {}", now);
                    model.remove(&k);
                }
                Op::Touch { key, ttl } => {
                    let k = key_bytes(*key);
                    let stamp = if *ttl == 0 { 0 } else { now + *ttl as u32 };
                    let want = matches!(model.get(&k), Some((_, s)) if live(*s, now));
                    prop_assert_eq!(store.touch(&k, stamp), want, "TOUCH diverged at tick {}", now);
                    if want {
                        model.get_mut(&k).expect("checked live").1 = stamp;
                    } else {
                        model.remove(&k);
                    }
                }
                Op::Advance { dt } => {
                    now += *dt as u32;
                    store.processor_mut().set_now(SimTime::from_ms(now as u64));
                }
                Op::Sweep { buckets } => {
                    store.processor_mut().sweep_expired(*buckets as u64);
                }
            }
        }
        // Final audit: every live model entry reads back exactly; after
        // a full-table sweep, residency equals the live set.
        model.retain(|_, (_, stamp)| live(*stamp, now));
        for (k, (v, _)) in &model {
            let got = store.get(k);
            prop_assert_eq!(got.as_ref(), Some(v), "live entry dropped");
        }
        let full = store.processor().table().n_buckets() * 4;
        store.processor_mut().sweep_expired(full);
        prop_assert_eq!(
            store.processor().table().len(),
            model.len() as u64,
            "post-sweep residency != live set"
        );
    }
}

/// Seeds × fault rates: the TTL cache mix against a model that tracks
/// only acknowledged mutations. Two invariants survive every fault
/// schedule: an expired key is never served, and an unexpired
/// acknowledged write is never silently dropped (a `DeviceError` read
/// is a fault, not a drop).
#[test]
fn seeded_soak_across_seeds_and_fault_rates() {
    for seed in [0x5EED1u64, 0x5EED2, 0x5EED3] {
        for fault_rate in [0.0, 0.01] {
            let mut cfg = KvDirectConfig::with_memory(8 << 20);
            if fault_rate > 0.0 {
                cfg.fault_rates = FaultRates::uniform(fault_rate);
                cfg.fault_seed = seed ^ 0xFA_17;
            }
            let mut store = KvDirectStore::new(cfg);
            let ttl_cfg = MemcacheTtl {
                update_ratio: 0.4,
                ttl_ratio: 0.8,
                min_ttl_ticks: 1,
                max_ttl_ticks: 60,
            };
            let mut w = MemcacheTtlWorkload::new(ttl_cfg, 600, 24, seed);
            let mut model: Model = HashMap::new();
            let mut resp = KvResponse {
                status: Status::Ok,
                value: Vec::new(),
            };
            let mut served_expired = 0u64;
            let mut dropped_live = 0u64;
            for round in 1u32..=40 {
                let now = round * 5;
                store.processor_mut().set_now(SimTime::from_ms(now as u64));
                for req in w.batch(500, now) {
                    store.execute_one_into(req.as_ref(), &mut resp);
                    if resp.status == Status::DeviceError {
                        continue; // not applied; model unchanged
                    }
                    match req.op {
                        OpCode::Put => {
                            model.insert(req.key.clone(), (req.value.clone(), req.expiry_tick));
                        }
                        OpCode::Get => match model.get(&req.key) {
                            Some((_, stamp)) if !live(*stamp, now) => {
                                if resp.status == Status::Ok {
                                    served_expired += 1;
                                }
                                model.remove(&req.key);
                            }
                            Some((v, _)) if resp.status != Status::Ok || &resp.value != v => {
                                dropped_live += 1;
                            }
                            Some(_) | None => {}
                        },
                        _ => {}
                    }
                }
                store.processor_mut().sweep_expired(64);
            }
            assert_eq!(
                served_expired, 0,
                "expired keys served (seed {seed:#x}, faults {fault_rate})"
            );
            assert_eq!(
                dropped_live, 0,
                "live keys dropped or corrupted (seed {seed:#x}, faults {fault_rate})"
            );
        }
    }
}

/// The reaper is part of the deterministic schedule: a parallel run
/// with TTL-stamped traffic and a per-batch sweep budget must be
/// bit-identical for any worker count, faults on or off.
#[test]
fn reaper_runs_are_bit_identical_across_workers() {
    let run = |workers: usize, faults: bool| {
        let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 16, 4);
        cfg.workers = workers;
        cfg.shard.store.reap_buckets_per_batch = 32;
        if faults {
            cfg.shard.store.fault_rates = FaultRates::uniform(0.01);
            cfg.shard.store.fault_seed = 0xC_4A05;
        }
        let mut sim = ParallelSystemSim::new(cfg);
        let mut w = MemcacheTtlWorkload::new(
            MemcacheTtl {
                update_ratio: 0.5,
                ttl_ratio: 0.8,
                min_ttl_ticks: 1,
                max_ttl_ticks: 40,
            },
            2_000,
            16,
            0xD1F,
        );
        sim.run(&w.batch(10_000, 1))
    };
    for faults in [false, true] {
        let r1 = run(1, faults);
        let r2 = run(2, faults);
        let r8 = run(8, faults);
        assert!(
            r1.ledger.expiry.ttl_puts > 0,
            "soak must exercise the TTL plane"
        );
        assert_eq!(r1, r2, "1 vs 2 workers diverged (faults: {faults})");
        assert_eq!(r1, r8, "1 vs 8 workers diverged (faults: {faults})");
    }
}
