//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits.
//!
//! Unlike the real crate this keeps a plain `Vec<u8>` behind an `Arc`
//! (no sliced views, no refcounted sub-ranges); the wire codec here only
//! needs append-then-freeze on the encode side and cursor reads over
//! `&[u8]` on the decode side.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side cursor operations (little-endian variants only).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations. Reads past the end panic, matching the
/// upstream crate; callers check `remaining()` first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u8(7);
        buf.put_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 6);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 6);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(&cursor[..2], b"ab");
        cursor.advance(2);
        assert_eq!(cursor, b"c");
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }
}
