//! Offline stand-in for the subset of `rand_distr` this workspace uses:
//! the [`Distribution`] trait and a [`Zipf`] sampler.
//!
//! `Zipf` implements Hörmann & Derflinger rejection-inversion (the same
//! algorithm the upstream crate and Apache Commons use): O(1) per sample
//! for any `n`, exact for every exponent `s >= 0`, including the uniform
//! degenerate case `s = 0` where the envelope is tight and every proposal
//! is accepted. Samples are in `[1, n]` with `P(k) ∝ k^-s`.

use rand::RngCore;

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error from [`Zipf::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfError(&'static str);

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `{1, ..., n}` with exponent `s`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// `H(1.5) - h(1)`: upper edge of the inversion interval.
    h_x1: F,
    /// `H(n + 0.5)`: lower edge of the inversion interval.
    h_n: F,
    /// Threshold for the quick-accept test.
    quick: F,
}

/// `h(x) = x^-s`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// `H(x) = (x^(1-s) - 1) / (1 - s)` computed stably near `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `H^-1(y) = (1 + y(1-s))^(1/(1-s))` computed stably near `s = 1`.
fn h_integral_inverse(y: f64, s: f64) -> f64 {
    let mut t = y * (1.0 - s);
    if t < -1.0 {
        // Numerical guard: t may round slightly below the domain edge.
        t = -1.0;
    }
    (helper1(t) * y).exp()
}

/// `log(1+x)/x`, continuous at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(exp(x)-1)/x`, continuous at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

impl Zipf<f64> {
    /// Creates the distribution; `n >= 1` and `s >= 0` are required.
    pub fn new(n: f64, s: f64) -> Result<Self, ZipfError> {
        if !n.is_finite() || n < 1.0 {
            return Err(ZipfError("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError("Zipf requires exponent s >= 0"));
        }
        Ok(Zipf {
            n,
            s,
            h_x1: h_integral(1.5, s) - 1.0,
            h_n: h_integral(n + 0.5, s),
            quick: 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s),
        })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let r = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let u = self.h_n + r * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.quick || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0.0, 1.0).is_err());
        assert!(Zipf::new(10.0, -0.5).is_err());
        assert!(Zipf::new(10.0, 0.0).is_ok());
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100.0, 0.99).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v), "out of range: {v}");
            assert_eq!(v, v.floor());
        }
    }

    #[test]
    fn matches_exact_pmf() {
        // Compare empirical top-rank frequencies with the exact PMF.
        let n = 50usize;
        let s = 0.99;
        let z = Zipf::new(n as f64, s).unwrap();
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 200_000;
        let mut counts = vec![0u32; n];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        for k in 1..=8usize {
            let expect = (k as f64).powf(-s) / norm;
            let got = counts[k - 1] as f64 / trials as f64;
            assert!((got - expect).abs() < 0.01, "rank {k}: {got} vs {expect}");
        }
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10.0, 0.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let trials = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.1).abs() < 0.01, "not uniform: {f}");
        }
    }

    #[test]
    fn single_element_always_one() {
        let z = Zipf::new(1.0, 0.99).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut rng), 1.0);
        }
    }
}
