//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64` and the `RngExt`
//! convenience methods (`random`, `random_range`, `random_bool`, `fill`).
//!
//! The build environment has no crates.io access, so external dependencies
//! are vendored as small API-compatible subsets. The generator here is
//! xoshiro256++ seeded through SplitMix64 — the same family the real
//! `SmallRng` uses on 64-bit targets — which is fast, deterministic and
//! statistically sound for simulation workloads. Streams are *not*
//! bit-compatible with the upstream crate; every consumer in this
//! workspace only relies on self-consistency (same seed, same stream).

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Random: Sized {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits; result in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform draw in `[0, span)` by 128-bit multiply-shift. The bias is at
/// most `span / 2^64`, far below anything a simulation can observe.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges that an [`RngExt::random_range`] call can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span as u64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::RngExt`.
pub trait RngExt: RngCore {
    /// Uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw; `p` must be in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        // Draw unconditionally so the stream advances identically
        // regardless of `p`; degenerate probabilities still decide exactly.
        let u = self.random::<f64>();
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            u < p
        }
    }

    /// Fills `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 100_000;
        let hits = (0..trials)
            .filter(|_| rng.random_range(0u64..10) == 0)
            .count() as f64;
        let frac = hits / trials as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        // Overwhelmingly unlikely that all 13 bytes stay zero.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
