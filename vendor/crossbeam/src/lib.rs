//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` / `Scope::spawn`.
//!
//! Implemented as a thin shim over `std::thread::scope` (stable since
//! Rust 1.63), preserving crossbeam's two API differences: `scope`
//! returns `Result` (`Err` when a child thread panicked) and spawn
//! closures receive a `&Scope` argument for nested spawning.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to [`scope`] closures and spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a scope handle so
        /// it can spawn further siblings, mirroring crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning. Returns `Err` with the
    /// panic payload if any thread (or `f` itself) panicked.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_see_borrowed_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        let sum_ref = &sum;
        thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(move |_| {
                    let local: u64 = chunk.iter().sum();
                    sum_ref.fetch_add(local as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn child_panic_reported_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let count = AtomicUsize::new(0);
        thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panics");
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
