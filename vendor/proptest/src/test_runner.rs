//! Deterministic case runner: seeding, per-case RNG streams, and the
//! error type `prop_assert!` produces.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert!` inside one generated case.
#[derive(Debug)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Creates a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic generator driving strategies: xoshiro256++ seeded via
/// SplitMix64 (duplicated from the vendored `rand` so this crate stays
/// dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut state = seed;
        TestRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test driver: owns the base seed and derives one decorrelated RNG
/// stream per case.
#[derive(Debug)]
pub struct TestRunner {
    seed: u64,
}

impl TestRunner {
    /// Uses `PROPTEST_SEED` from the environment when set, otherwise a
    /// fixed default so results are reproducible run to run.
    pub fn from_env() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CA5E_0001_F00D);
        TestRunner { seed }
    }

    /// The base seed in effect (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Independent RNG for one case index.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::seed(self.seed ^ (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_streams_reproducible_and_distinct() {
        let runner = TestRunner { seed: 42 };
        let a: Vec<u64> = {
            let mut r = runner.rng_for_case(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = runner.rng_for_case(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = runner.rng_for_case(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::seed(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }
}
