//! The [`Strategy`] trait and the strategy combinators this workspace
//! uses: ranges, `Just`, tuples, `prop_map`, and weighted unions.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy simply draws a value from the runner's deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map: f,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span as u64) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    entries: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

/// Boxes one `prop_oneof!` alternative with its weight.
#[allow(clippy::type_complexity)]
pub fn union_entry<S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

impl<T: Debug> Union<T> {
    /// Builds a union; weights must sum to a nonzero value.
    #[allow(clippy::type_complexity)]
    pub fn new(entries: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = entries.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { entries, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (weight, strategy) in &self.entries {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights summed to total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_map() {
        let mut rng = TestRng::seed(1);
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::seed(2);
        let s = 0u32..=1;
        let draws: Vec<u32> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&1));
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::seed(3);
        let u = Union::new(vec![union_entry(9, Just(0u8)), union_entry(1, Just(1u8))]);
        let ones = (0..10_000).filter(|_| u.generate(&mut rng) == 1).count() as f64;
        let frac = ones / 10_000.0;
        assert!((frac - 0.1).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::seed(4);
        let s = (0u8..4, 0u16..4, 0u32..4, 0u64..4);
        let (a, b, c, d) = s.generate(&mut rng);
        assert!(a < 4 && b < 4 && c < 4 && d < 4);
    }
}
