//! `any::<T>()`: uniform generation over a type's whole domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_domain_reached_for_u8() {
        let mut rng = TestRng::seed(5);
        let s = any::<u8>();
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 250);
    }
}
