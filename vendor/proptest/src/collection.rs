//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Allowed element counts for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.lo < self.hi_exclusive);
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>`; up to `size` draws are inserted,
/// so duplicates may make the set smaller than the drawn size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::seed(6);
        let s = vec(0u8..10, 2..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn btree_set_bounded() {
        let mut rng = TestRng::seed(7);
        let s = btree_set(0u64..512, 0..256);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 256);
            assert!(set.iter().all(|&e| e < 512));
        }
    }
}
