//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` test macro (with `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!` (weighted and
//! unweighted), `any::<T>()`, `Just`, ranges as strategies, tuples,
//! `.prop_map`, `prop::collection::{vec, btree_set}` and
//! `prop::option::of`.
//!
//! Differences from the real crate: no shrinking (failing inputs are
//! printed verbatim instead of minimized) and generation is driven by a
//! fixed default seed, overridable with the `PROPTEST_SEED` environment
//! variable, so failures reproduce across runs by default.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};

/// Asserts a condition inside a `proptest!` body; failures abort only
/// the current case, reporting the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Builds a union strategy choosing among alternatives, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_entry($weight, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_entry(1, $strat)),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` body
/// runs `cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::from_env();
            for case in 0..config.cases {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let mut inputs = ::std::string::String::new();
                $({
                    use ::std::fmt::Write as _;
                    let _ = ::std::writeln!(inputs, "    {} = {:?}", stringify!($arg), &$arg);
                })+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        ::std::panic!(
                            "[proptest] {} failed at case {} (seed {:#x}):\n{}\ninputs:\n{}",
                            stringify!($name), case, runner.seed(), e, inputs
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        ::std::eprintln!(
                            "[proptest] {} panicked at case {} (seed {:#x}); inputs:\n{}",
                            stringify!($name), case, runner.seed(), inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
