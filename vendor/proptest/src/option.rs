//! `prop::option::of`: optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` about a quarter of the time, otherwise `Some` of the
/// inner strategy's value.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Output of [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::seed(8);
        let s = of(0u32..100);
        let draws: Vec<Option<u32>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }
}
