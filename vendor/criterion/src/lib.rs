//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `Bencher::iter` and `Bencher::iter_batched_ref`.
//!
//! Instead of criterion's full statistical pipeline this runs a short
//! warmup, then times a fixed wall-clock budget per benchmark and
//! reports mean ns/iter — enough for coarse regression spotting and for
//! keeping the bench targets compiling and runnable without crates.io.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched*` amortizes setup; sizes are accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the fixed time budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "{}/{}: {:.1} ns/iter ({} iters)",
            self.name, id, ns, bencher.iters
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; accumulates timed iterations.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(20);
const WARMUP_ITERS: u64 = 3;

impl Bencher {
    /// Times `routine` back to back until the budget is spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std_black_box(routine());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            std_black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over inputs built by `setup` outside the timing.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        {
            let mut input = setup();
            for _ in 0..WARMUP_ITERS {
                std_black_box(routine(&mut input));
            }
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let mut input = setup();
            let t = Instant::now();
            std_black_box(routine(&mut input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(10);
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_ref_separates_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![0u8; 16],
                |v| {
                    v[0] = 1;
                    v[0]
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
