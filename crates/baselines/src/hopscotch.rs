//! FaRM-style chain-associative hopscotch hashing (paper §5.1.1,
//! Figure 11).
//!
//! An open-addressed slot array where every key lives within a fixed
//! neighbourhood (H slots) of its home bucket, so a GET reads one
//! neighbourhood-sized line plus the value slab. Insertion linearly
//! probes for a free slot, then *hops* it backwards into the
//! neighbourhood by displacing entries whose own neighbourhood still
//! covers the free slot. FaRM's variant chains overflow blocks when a
//! hop is impossible.
//!
//! Reproduced behaviour: GETs are cheap (often beating chaining at high
//! utilization, paper: "hopscotch hashing performs better in GET"), but
//! PUTs degrade "significantly worse" as hop cascades lengthen.

use crate::{slab_size_for, BaselineStats, TableFull};

/// Neighbourhood size (slots per home bucket; FaRM reads it as one line).
const H: usize = 8;
/// Linear-probe limit before declaring the region full.
const MAX_PROBE: usize = 4096;

#[derive(Debug, Clone)]
struct Entry {
    key: Vec<u8>,
    value: Vec<u8>,
    home: usize,
}

/// A hopscotch hash table with overflow chaining and access accounting.
///
/// # Examples
///
/// ```
/// use kvd_baselines::HopscotchTable;
///
/// let mut t = HopscotchTable::new(1 << 20, 0.5);
/// t.put(b"k", b"v").unwrap();
/// assert_eq!(t.get(b"k").unwrap(), b"v");
/// assert!(t.delete(b"k"));
/// ```
pub struct HopscotchTable {
    slots: Vec<Option<Entry>>,
    /// Overflow chain per home bucket (FaRM's chained blocks).
    chains: Vec<Vec<Entry>>,
    n_slots: usize,
    total_memory: u64,
    stored_bytes: u64,
    slab_bytes: u64,
    slab_capacity: u64,
    stats: BaselineStats,
}

/// Bytes per slot in the index (8 B inline key + pointer + metadata).
const SLOT_BYTES: u64 = 16;

impl HopscotchTable {
    /// Creates a table over `total_memory` bytes with `index_ratio` of it
    /// in the slot array.
    pub fn new(total_memory: u64, index_ratio: f64) -> Self {
        assert!((0.0..1.0).contains(&index_ratio));
        let index_bytes = (total_memory as f64 * index_ratio) as u64;
        let n_slots = (index_bytes / SLOT_BYTES).max(2 * H as u64) as usize;
        HopscotchTable {
            slots: vec![None; n_slots],
            chains: vec![Vec::new(); n_slots],
            n_slots,
            total_memory,
            stored_bytes: 0,
            slab_bytes: 0,
            slab_capacity: total_memory.saturating_sub(n_slots as u64 * SLOT_BYTES),
            stats: BaselineStats::default(),
        }
    }

    fn home_of(&self, key: &[u8]) -> usize {
        (hash(key) % self.n_slots as u64) as usize
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> BaselineStats {
        self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = BaselineStats::default();
    }

    /// Memory utilization, same metric as KV-Direct.
    pub fn memory_utilization(&self) -> f64 {
        self.stored_bytes as f64 / self.total_memory as f64
    }

    fn neighbourhood(&self, home: usize) -> impl Iterator<Item = usize> + '_ {
        (0..H).map(move |i| (home + i) % self.n_slots)
    }

    /// Looks up `key`: one neighbourhood read + chain blocks + value.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let home = self.home_of(key);
        self.stats.reads += 1; // the neighbourhood line
        for s in self.neighbourhood(home).collect::<Vec<_>>() {
            if let Some(e) = &self.slots[s] {
                if e.key == key {
                    self.stats.reads += 1; // value slab
                    return Some(e.value.clone());
                }
            }
        }
        if !self.chains[home].is_empty() {
            self.stats.reads += 1; // chained block
            if let Some(e) = self.chains[home].iter().find(|e| e.key == key) {
                self.stats.reads += 1; // value slab
                return Some(e.value.clone());
            }
        }
        None
    }

    /// Inserts or replaces.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), TableFull> {
        let home = self.home_of(key);
        self.stats.reads += 1; // neighbourhood line
                               // Replace in neighbourhood?
        for s in self.neighbourhood(home).collect::<Vec<_>>() {
            let found = self.slots[s].as_ref().is_some_and(|e| e.key == key);
            if found {
                return self.replace_at(s, key, value);
            }
        }
        // Replace in chain?
        if !self.chains[home].is_empty() {
            self.stats.reads += 1;
            if let Some(i) = self.chains[home].iter().position(|e| e.key == key) {
                let (old_k, old_v) = {
                    let e = &self.chains[home][i];
                    (e.key.len(), e.value.len())
                };
                let old_slab = slab_size_for(old_v) as u64;
                let new_slab = slab_size_for(value.len()) as u64;
                if self.slab_bytes - old_slab + new_slab > self.slab_capacity {
                    return Err(TableFull);
                }
                self.slab_bytes = self.slab_bytes - old_slab + new_slab;
                self.stored_bytes -= (old_k + old_v) as u64;
                self.stored_bytes += (key.len() + value.len()) as u64;
                self.chains[home][i].value = value.to_vec();
                self.stats.writes += 1;
                return Ok(());
            }
        }
        // New key: slab space first.
        let slab = slab_size_for(value.len()) as u64;
        if self.slab_bytes + slab > self.slab_capacity {
            return Err(TableFull);
        }
        let entry = Entry {
            key: key.to_vec(),
            value: value.to_vec(),
            home,
        };
        // Free slot in the neighbourhood?
        for s in self.neighbourhood(home).collect::<Vec<_>>() {
            if self.slots[s].is_none() {
                self.slots[s] = Some(entry);
                self.stats.writes += 2; // line + value slab
                self.finish_insert(key, value, slab);
                return Ok(());
            }
        }
        // Linear probe for a free slot, then hop it back.
        let mut free = None;
        for d in H..MAX_PROBE {
            let s = (home + d) % self.n_slots;
            self.stats.reads += 1; // probe reads lines beyond the home
            if self.slots[s].is_none() {
                free = Some(s);
                break;
            }
        }
        let Some(mut free) = free else {
            // No free slot in reach: chain at the home bucket (FaRM's
            // chained blocks).
            self.chains[home].push(entry);
            self.stats.writes += 2; // chain block + value slab
            self.finish_insert(key, value, slab);
            return Ok(());
        };
        // Hop the free slot backwards until it enters the neighbourhood.
        loop {
            let dist = (free + self.n_slots - home) % self.n_slots;
            if dist < H {
                self.slots[free] = Some(entry);
                self.stats.writes += 2;
                self.finish_insert(key, value, slab);
                return Ok(());
            }
            // Find an entry in the H-1 slots before `free` whose home
            // still covers `free`.
            let mut hopped = false;
            for back in (1..H).rev() {
                let cand = (free + self.n_slots - back) % self.n_slots;
                let can_move = self.slots[cand].as_ref().is_some_and(|e| {
                    let d = (free + self.n_slots - e.home) % self.n_slots;
                    d < H
                });
                if can_move {
                    self.slots[free] = self.slots[cand].take();
                    self.stats.reads += 1; // read candidate line
                    self.stats.writes += 1; // rewrite both lines (batched)
                    free = cand;
                    hopped = true;
                    break;
                }
            }
            if !hopped {
                // Hop impossible: fall back to chaining.
                self.chains[home].push(entry);
                self.stats.writes += 2;
                self.finish_insert(key, value, slab);
                return Ok(());
            }
        }
    }

    fn replace_at(&mut self, slot: usize, key: &[u8], value: &[u8]) -> Result<(), TableFull> {
        let e = self.slots[slot].as_mut().expect("caller found the key");
        let old_slab = slab_size_for(e.value.len()) as u64;
        let new_slab = slab_size_for(value.len()) as u64;
        if self.slab_bytes - old_slab + new_slab > self.slab_capacity {
            return Err(TableFull);
        }
        self.slab_bytes = self.slab_bytes - old_slab + new_slab;
        self.stored_bytes -= (e.key.len() + e.value.len()) as u64;
        self.stored_bytes += (key.len() + value.len()) as u64;
        e.value = value.to_vec();
        self.stats.writes += 1; // value slab
        Ok(())
    }

    fn finish_insert(&mut self, key: &[u8], value: &[u8], slab: u64) {
        self.stored_bytes += (key.len() + value.len()) as u64;
        self.slab_bytes += slab;
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let home = self.home_of(key);
        self.stats.reads += 1;
        for s in self.neighbourhood(home).collect::<Vec<_>>() {
            let found = self.slots[s].as_ref().is_some_and(|e| e.key == key);
            if found {
                let e = self.slots[s].take().expect("found");
                self.account_removal(&e);
                self.stats.writes += 1;
                return true;
            }
        }
        if !self.chains[home].is_empty() {
            self.stats.reads += 1;
            if let Some(i) = self.chains[home].iter().position(|e| e.key == key) {
                let e = self.chains[home].swap_remove(i);
                self.account_removal(&e);
                self.stats.writes += 1;
                return true;
            }
        }
        false
    }

    fn account_removal(&mut self, e: &Entry) {
        self.stored_bytes -= (e.key.len() + e.value.len()) as u64;
        self.slab_bytes -= slab_size_for(e.value.len()) as u64;
    }
}

fn hash(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ 0x1357_9BDF_2468_ACE0;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_keys() {
        let mut t = HopscotchTable::new(1 << 20, 0.5);
        for i in 0..3000u32 {
            t.put(&i.to_le_bytes(), &i.to_be_bytes()).unwrap();
        }
        for i in 0..3000u32 {
            assert_eq!(t.get(&i.to_le_bytes()).unwrap(), i.to_be_bytes());
        }
        for i in (0..3000u32).step_by(2) {
            assert!(t.delete(&i.to_le_bytes()));
        }
        for i in 0..3000u32 {
            assert_eq!(t.get(&i.to_le_bytes()).is_some(), i % 2 == 1, "{i}");
        }
    }

    #[test]
    fn get_is_two_accesses_in_neighbourhood() {
        let mut t = HopscotchTable::new(1 << 20, 0.5);
        t.put(b"k", b"v").unwrap();
        t.reset_stats();
        t.get(b"k").unwrap();
        assert_eq!(t.stats().accesses(), 2, "line + value");
    }

    #[test]
    fn put_cost_fluctuates_at_high_utilization() {
        let mut t = HopscotchTable::new(1 << 18, 0.6);
        let mut costs = Vec::new();
        let mut i = 0u64;
        loop {
            t.reset_stats();
            if t.put(&i.to_le_bytes(), &[1u8; 8]).is_err() {
                break;
            }
            costs.push(t.stats().accesses());
            i += 1;
            assert!(i < 1_000_000);
        }
        let early_max = *costs[..costs.len() / 4].iter().max().unwrap();
        let late_max = *costs[costs.len() * 3 / 4..].iter().max().unwrap();
        assert!(
            late_max > early_max,
            "no hop cascade: early {early_max}, late {late_max}"
        );
    }

    #[test]
    fn replace_keeps_single_copy() {
        let mut t = HopscotchTable::new(1 << 20, 0.5);
        t.put(b"dup", b"v1").unwrap();
        t.put(b"dup", b"v2").unwrap();
        assert_eq!(t.get(b"dup").unwrap(), b"v2");
        assert!(t.delete(b"dup"));
        assert_eq!(t.get(b"dup"), None);
    }

    #[test]
    fn chains_absorb_overflow() {
        // A tiny slot array forces chaining; everything stays reachable.
        let mut t = HopscotchTable::new(1 << 14, 0.02);
        for i in 0..200u32 {
            t.put(&i.to_le_bytes(), b"x").unwrap();
        }
        for i in 0..200u32 {
            assert!(t.get(&i.to_le_bytes()).is_some(), "{i}");
        }
    }
}
