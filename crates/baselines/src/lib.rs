#![warn(missing_docs)]
//! Baseline comparators for the KV-Direct evaluation.
//!
//! The paper compares its hash index against the two dominant
//! alternatives (§5.1.1, Figure 11) and the out-of-order engine against
//! RDMA-based designs (§5.1.3, Figure 13):
//!
//! * [`cuckoo`] — MemC3-style bucketized cuckoo hashing (two candidate
//!   buckets, four ways, kick chains on insertion).
//! * [`hopscotch`] — FaRM-style chain-associative hopscotch hashing
//!   (neighbourhood displacement, overflow chaining).
//! * [`rdma`] — throughput models for one-sided and two-sided RDMA KVS
//!   (client-side vs server-CPU-side KV processing).
//! * [`cpu`] — the CPU-based KVS arithmetic of §2.2 (instruction window
//!   vs memory-access interleaving, with and without batching).
//!
//! The hash tables are real, functional stores; per Figure 11's
//! methodology, keys are held inline in buckets and compared in parallel
//! while values live in dynamically allocated slabs, and every random
//! access (bucket line or slab) counts as one memory access.

pub mod cpu;
pub mod cuckoo;
pub mod hopscotch;
pub mod measure;
pub mod rdma;

pub use cpu::CpuKvsModel;
pub use cuckoo::CuckooTable;
pub use hopscotch::HopscotchTable;
pub use measure::{measure_baseline, BaselineCosts, MeasurableTable};
pub use rdma::{OneSidedRdma, RdmaModel, TwoSidedRdma};

/// Shared access accounting for baseline tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Random memory reads (bucket lines and slabs).
    pub reads: u64,
    /// Random memory writes.
    pub writes: u64,
}

impl BaselineStats {
    /// Total random memory accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Error returned when a baseline table cannot accept an insertion
/// (index full after displacement attempts, or slab region exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline table full")
    }
}

impl std::error::Error for TableFull {}

/// Slab bytes consumed by a value allocation of `len` bytes, using the
/// same power-of-two ladder (32 B granule) as KV-Direct's allocator so
/// utilization numbers are comparable.
pub fn slab_size_for(len: usize) -> usize {
    let granules = len.div_ceil(32).max(1);
    granules.next_power_of_two() * 32
}
