//! MemC3-style bucketized cuckoo hashing (paper §5.1.1, Figure 11).
//!
//! Two candidate buckets per key (4 ways each, one 64 B cache line per
//! bucket); keys are stored inline in the bucket and compared in parallel,
//! values in slab-allocated memory. Insertions into full buckets displace
//! a victim to its alternate bucket, chaining kicks until a slot frees up.
//!
//! Expected behaviour reproduced from the paper: a GET costs up to two
//! bucket reads plus the value read (more than KV-Direct's single access
//! for inline KVs); PUT under high memory utilization suffers "large
//! fluctuations" as kick chains grow.

use crate::{slab_size_for, BaselineStats, TableFull};

const WAYS: usize = 4;
const BUCKET_BYTES: u64 = 64;
const MAX_KICKS: usize = 512;

#[derive(Debug, Clone)]
struct Entry {
    key: Vec<u8>,
    value: Vec<u8>,
}

/// A bucketized cuckoo hash table with access accounting.
///
/// # Examples
///
/// ```
/// use kvd_baselines::CuckooTable;
///
/// let mut t = CuckooTable::new(1 << 20, 0.5);
/// t.put(b"k", b"v").unwrap();
/// assert_eq!(t.get(b"k").unwrap(), b"v");
/// assert!(t.delete(b"k"));
/// ```
pub struct CuckooTable {
    buckets: Vec<[Option<Entry>; WAYS]>,
    n_buckets: u64,
    total_memory: u64,
    stored_bytes: u64,
    slab_bytes: u64,
    slab_capacity: u64,
    stats: BaselineStats,
}

impl CuckooTable {
    /// Creates a table over `total_memory` bytes, giving `index_ratio` of
    /// it to the bucket array (the rest backs value slabs).
    pub fn new(total_memory: u64, index_ratio: f64) -> Self {
        assert!((0.0..1.0).contains(&index_ratio));
        let index_bytes = (total_memory as f64 * index_ratio) as u64;
        let n_buckets = (index_bytes / BUCKET_BYTES).max(2);
        CuckooTable {
            buckets: vec![[const { None }; WAYS]; n_buckets as usize],
            n_buckets,
            total_memory,
            stored_bytes: 0,
            slab_bytes: 0,
            slab_capacity: total_memory - n_buckets * BUCKET_BYTES,
            stats: BaselineStats::default(),
        }
    }

    fn hashes(&self, key: &[u8]) -> (u64, u64) {
        let h1 = hash(key, 0x9E37_79B9) % self.n_buckets;
        // MemC3's partial-key alternate bucket: derived from h1 and a tag.
        let tag = hash(key, 0x85EB_CA6B);
        let h2 = (h1 ^ (tag % self.n_buckets).max(1)) % self.n_buckets;
        (h1, h2)
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> BaselineStats {
        self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = BaselineStats::default();
    }

    /// Memory utilization: stored KV bytes over total memory (the paper's
    /// metric).
    pub fn memory_utilization(&self) -> f64 {
        self.stored_bytes as f64 / self.total_memory as f64
    }

    /// Looks up `key`, counting bucket and slab accesses.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let (b1, b2) = self.hashes(key);
        self.stats.reads += 1; // bucket 1 line
        if let Some(v) = find(&self.buckets[b1 as usize], key) {
            self.stats.reads += 1; // value slab
            return Some(v);
        }
        self.stats.reads += 1; // bucket 2 line
        if let Some(v) = find(&self.buckets[b2 as usize], key) {
            self.stats.reads += 1; // value slab
            return Some(v);
        }
        None
    }

    /// Inserts or replaces; `Err(())` when the table is full (kick chain
    /// exhausted or slab region full).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), TableFull> {
        let (b1, b2) = self.hashes(key);
        // Check both buckets for an existing key (2 reads).
        self.stats.reads += 2;
        for b in [b1, b2] {
            if let Some(slot) = position(&self.buckets[b as usize], key) {
                let e = self.buckets[b as usize][slot].as_mut().expect("found");
                let old_slab = slab_size_for(e.value.len()) as u64;
                let new_slab = slab_size_for(value.len()) as u64;
                if self.slab_bytes - old_slab + new_slab > self.slab_capacity {
                    return Err(TableFull);
                }
                self.stored_bytes -= (e.key.len() + e.value.len()) as u64;
                self.slab_bytes = self.slab_bytes - old_slab + new_slab;
                e.value = value.to_vec();
                self.stored_bytes += (key.len() + value.len()) as u64;
                self.stats.writes += 1; // value slab
                return Ok(());
            }
        }
        // New key: slab space first.
        let slab = slab_size_for(value.len()) as u64;
        if self.slab_bytes + slab > self.slab_capacity {
            return Err(TableFull);
        }
        // Try a free way in either bucket.
        for b in [b1, b2] {
            if let Some(slot) = free_way(&self.buckets[b as usize]) {
                self.buckets[b as usize][slot] = Some(Entry {
                    key: key.to_vec(),
                    value: value.to_vec(),
                });
                self.stats.writes += 2; // value slab + bucket line
                self.finish_insert(key, value, slab);
                return Ok(());
            }
        }
        // Kick path: BFS for the shortest displacement chain ending in a
        // free slot (MemC3's approach — nothing moves until a full path
        // is known, so failure leaves the table untouched).
        match self.find_kick_path(b1, b2) {
            Some(path) => {
                // Execute the chain from the free end backwards: each
                // (bucket, way) entry moves to the next bucket in the
                // path.
                for i in (1..path.len()).rev() {
                    let (from_b, from_w) = path[i - 1];
                    let (to_b, _) = path[i];
                    let moved = self.buckets[from_b as usize][from_w]
                        .take()
                        .expect("kick path entries exist");
                    let to_slot =
                        free_way(&self.buckets[to_b as usize]).expect("path end has room");
                    self.buckets[to_b as usize][to_slot] = Some(moved);
                    self.stats.writes += 1; // destination bucket line
                }
                let (b0, w0) = path[0];
                debug_assert!(self.buckets[b0 as usize][w0].is_none());
                self.buckets[b0 as usize][w0] = Some(Entry {
                    key: key.to_vec(),
                    value: value.to_vec(),
                });
                self.stats.writes += 2; // home bucket line + value slab
                self.finish_insert(key, value, slab);
                Ok(())
            }
            None => Err(TableFull),
        }
    }

    /// BFS for a displacement path: returns `[(bucket, way), ...]` where
    /// the first element is where the new key will land and the last
    /// element's bucket has a free way. Counts one read per bucket
    /// expanded.
    fn find_kick_path(&mut self, b1: u64, b2: u64) -> Option<Vec<(u64, usize)>> {
        use std::collections::{HashMap, VecDeque};
        let mut queue: VecDeque<u64> = VecDeque::new();
        // parent[b] = (previous bucket, way whose entry hops to b).
        let mut parent: HashMap<u64, (u64, usize)> = HashMap::new();
        queue.push_back(b1);
        queue.push_back(b2);
        parent.insert(b1, (b1, usize::MAX));
        parent.insert(b2, (b2, usize::MAX));
        let mut expanded = 0usize;
        while let Some(b) = queue.pop_front() {
            expanded += 1;
            if expanded > MAX_KICKS {
                return None;
            }
            self.stats.reads += 1; // bucket line examined
            if free_way(&self.buckets[b as usize]).is_some() {
                // Reconstruct the path back to a root.
                let mut rev = vec![(b, usize::MAX)];
                let mut cur = b;
                while let Some(&(prev, way)) = parent.get(&cur) {
                    if way == usize::MAX {
                        break;
                    }
                    rev.push((prev, way));
                    cur = prev;
                }
                rev.reverse();
                // The first element is (root, way); fix the way of each
                // hop: element i's way is the slot whose entry moves to
                // element i+1's bucket.
                return Some(rev);
            }
            for w in 0..WAYS {
                let e = self.buckets[b as usize][w].as_ref().expect("bucket full");
                let (h1, h2) = self.hashes(&e.key);
                let alt = if h1 == b { h2 } else { h1 };
                if let std::collections::hash_map::Entry::Vacant(v) = parent.entry(alt) {
                    v.insert((b, w));
                    queue.push_back(alt);
                }
            }
        }
        None
    }

    fn finish_insert(&mut self, key: &[u8], value: &[u8], slab: u64) {
        self.stored_bytes += (key.len() + value.len()) as u64;
        self.slab_bytes += slab;
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let (b1, b2) = self.hashes(key);
        self.stats.reads += 1;
        for (i, b) in [b1, b2].into_iter().enumerate() {
            if i == 1 {
                self.stats.reads += 1;
            }
            if let Some(slot) = position(&self.buckets[b as usize], key) {
                let e = self.buckets[b as usize][slot].take().expect("found");
                self.stored_bytes -= (e.key.len() + e.value.len()) as u64;
                self.slab_bytes -= slab_size_for(e.value.len()) as u64;
                self.stats.writes += 1;
                return true;
            }
        }
        false
    }
}

fn find(bucket: &[Option<Entry>; WAYS], key: &[u8]) -> Option<Vec<u8>> {
    bucket
        .iter()
        .flatten()
        .find(|e| e.key == key)
        .map(|e| e.value.clone())
}

fn position(bucket: &[Option<Entry>; WAYS], key: &[u8]) -> Option<usize> {
    bucket
        .iter()
        .position(|e| e.as_ref().is_some_and(|e| e.key == key))
}

fn free_way(bucket: &[Option<Entry>; WAYS]) -> Option<usize> {
    bucket.iter().position(Option::is_none)
}

fn hash(key: &[u8], seed: u64) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_many_keys() {
        let mut t = CuckooTable::new(1 << 20, 0.5);
        for i in 0..2000u32 {
            t.put(&i.to_le_bytes(), &i.to_be_bytes()).unwrap();
        }
        for i in 0..2000u32 {
            assert_eq!(t.get(&i.to_le_bytes()).unwrap(), i.to_be_bytes());
        }
        for i in (0..2000u32).step_by(3) {
            assert!(t.delete(&i.to_le_bytes()));
        }
        for i in 0..2000u32 {
            assert_eq!(t.get(&i.to_le_bytes()).is_some(), i % 3 != 0);
        }
    }

    #[test]
    fn get_costs_at_least_two_accesses() {
        // Bucket line + value slab: the structural disadvantage vs
        // KV-Direct's inline single access (Figure 11a).
        let mut t = CuckooTable::new(1 << 20, 0.5);
        t.put(b"k", b"v").unwrap();
        t.reset_stats();
        t.get(b"k").unwrap();
        assert!(t.stats().accesses() >= 2);
    }

    #[test]
    fn replace_updates_value_and_accounting() {
        let mut t = CuckooTable::new(1 << 20, 0.5);
        t.put(b"k", b"short").unwrap();
        let u1 = t.memory_utilization();
        t.put(b"k", &[7u8; 100]).unwrap();
        assert_eq!(t.get(b"k").unwrap(), vec![7u8; 100]);
        assert!(t.memory_utilization() > u1);
    }

    #[test]
    fn kick_chains_grow_put_cost_at_high_load() {
        // A small index (most memory to slabs) so the bucket array —
        // not the slab region — is what fills up and forces kicks.
        let mut t = CuckooTable::new(1 << 18, 0.1);
        let mut cheap = Vec::new();
        let mut i = 0u64;
        // Fill until failure, tracking insert costs.
        loop {
            t.reset_stats();
            if t.put(&i.to_le_bytes(), &[1u8; 2]).is_err() {
                break;
            }
            cheap.push(t.stats().accesses());
            i += 1;
            assert!(i < 1_000_000, "table never filled");
        }
        let early: f64 =
            cheap[..cheap.len() / 4].iter().sum::<u64>() as f64 / (cheap.len() / 4) as f64;
        let late_slice = &cheap[cheap.len() * 9 / 10..];
        let late_max = *late_slice.iter().max().unwrap();
        assert!(
            late_max as f64 > early * 2.0,
            "no kick fluctuation: early {early}, late max {late_max}"
        );
    }

    #[test]
    fn max_utilization_below_kv_direct() {
        // 10B KVs: keys in buckets, 2B values round to 32B slabs — the
        // paper notes MemC3/FaRM "cannot support more than 55% memory
        // utilization for 10B KV size".
        let mut t = CuckooTable::new(1 << 18, 0.5);
        let mut i = 0u64;
        while t.put(&i.to_le_bytes(), &[1u8; 2]).is_ok() {
            i += 1;
        }
        let u = t.memory_utilization();
        assert!(u < 0.55, "utilization {u} too high");
        assert!(u > 0.02, "utilization {u} suspiciously low");
    }

    #[test]
    fn missing_key_two_bucket_reads() {
        let mut t = CuckooTable::new(1 << 20, 0.5);
        t.reset_stats();
        assert!(t.get(b"missing").is_none());
        assert_eq!(t.stats().reads, 2);
    }
}
