//! Fill-and-measure drivers for the baseline tables (Figure 11).
//!
//! Mirrors `kvd_hash::tuning`: fill a table with fixed-size KVs (8-byte
//! keys) to a target memory utilization, then sample average GET and PUT
//! (update) access counts.

use kvd_sim::DetRng;

use crate::cuckoo::CuckooTable;
use crate::hopscotch::HopscotchTable;
use crate::TableFull;

/// Average access costs of a baseline at some utilization.
#[derive(Debug, Clone, Copy)]
pub struct BaselineCosts {
    /// Utilization actually reached.
    pub utilization: f64,
    /// Mean accesses per GET of an existing key.
    pub get_avg: f64,
    /// Mean accesses per PUT (update) of an existing key.
    pub put_avg: f64,
    /// Mean accesses per insertion during the fill.
    pub insert_avg: f64,
}

fn key_bytes(id: u64) -> [u8; 8] {
    id.to_le_bytes()
}

fn value_for(kv_size: usize, id: u64) -> Vec<u8> {
    assert!(kv_size > 8, "kv size must exceed the 8-byte key");
    let mut v = vec![0u8; kv_size - 8];
    let tag = id.to_le_bytes();
    let n = v.len().min(8);
    v[..n].copy_from_slice(&tag[..n]);
    v
}

/// A common measuring interface over the two baseline tables.
pub trait MeasurableTable {
    /// Inserts or replaces; `Err` when full.
    fn bput(&mut self, key: &[u8], value: &[u8]) -> Result<(), TableFull>;
    /// Looks up.
    fn bget(&mut self, key: &[u8]) -> Option<Vec<u8>>;
    /// Accesses so far.
    fn baccesses(&self) -> u64;
    /// Utilization.
    fn butilization(&self) -> f64;
}

impl MeasurableTable for CuckooTable {
    fn bput(&mut self, key: &[u8], value: &[u8]) -> Result<(), TableFull> {
        self.put(key, value)
    }
    fn bget(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.get(key)
    }
    fn baccesses(&self) -> u64 {
        self.stats().accesses()
    }
    fn butilization(&self) -> f64 {
        self.memory_utilization()
    }
}

impl MeasurableTable for HopscotchTable {
    fn bput(&mut self, key: &[u8], value: &[u8]) -> Result<(), TableFull> {
        self.put(key, value)
    }
    fn bget(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.get(key)
    }
    fn baccesses(&self) -> u64 {
        self.stats().accesses()
    }
    fn butilization(&self) -> f64 {
        self.memory_utilization()
    }
}

/// Fills `table` to `target_utilization` with `kv_size`-byte KVs and
/// measures average GET and PUT access counts over `samples` operations.
///
/// Returns `None` if the target utilization is unreachable for this
/// design (the paper: MemC3/FaRM "cannot support more than 55% memory
/// utilization for 10B KV size").
pub fn measure_baseline<T: MeasurableTable>(
    table: &mut T,
    kv_size: usize,
    target_utilization: f64,
    samples: usize,
    seed: u64,
) -> Option<BaselineCosts> {
    let mut ids = Vec::new();
    let mut id = 0u64;
    let before = table.baccesses();
    while table.butilization() < target_utilization {
        if table.bput(&key_bytes(id), &value_for(kv_size, id)).is_err() {
            return None;
        }
        ids.push(id);
        id += 1;
    }
    if ids.is_empty() {
        return None;
    }
    let insert_avg = (table.baccesses() - before) as f64 / ids.len() as f64;
    let mut rng = DetRng::seed(seed);
    let mut get_total = 0u64;
    let mut put_total = 0u64;
    for _ in 0..samples {
        let id = ids[rng.usize_below(ids.len())];
        let a = table.baccesses();
        assert!(table.bget(&key_bytes(id)).is_some(), "key {id} lost");
        get_total += table.baccesses() - a;
        let a = table.baccesses();
        table
            .bput(&key_bytes(id), &value_for(kv_size, id))
            .expect("update of existing key");
        put_total += table.baccesses() - a;
    }
    Some(BaselineCosts {
        utilization: table.butilization(),
        get_avg: get_total as f64 / samples as f64,
        put_avg: put_total as f64 / samples as f64,
        insert_avg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuckoo_measurable_at_low_utilization() {
        let mut t = CuckooTable::new(1 << 19, 0.3);
        let c = measure_baseline(&mut t, 16, 0.1, 500, 1).expect("reachable");
        assert!(c.utilization >= 0.1);
        assert!(c.get_avg >= 2.0, "GET {}", c.get_avg);
        assert!(c.put_avg >= 1.0);
    }

    #[test]
    fn hopscotch_gets_cheaper_than_cuckoo() {
        let mut c = CuckooTable::new(1 << 19, 0.3);
        let mut h = HopscotchTable::new(1 << 19, 0.3);
        let cc = measure_baseline(&mut c, 16, 0.1, 500, 2).unwrap();
        let hc = measure_baseline(&mut h, 16, 0.1, 500, 2).unwrap();
        // Paper: "hopscotch hashing performs better in GET".
        assert!(
            hc.get_avg <= cc.get_avg + 0.05,
            "{} vs {}",
            hc.get_avg,
            cc.get_avg
        );
    }

    #[test]
    fn unreachable_utilization_reports_none() {
        let mut t = CuckooTable::new(1 << 16, 0.5);
        assert!(measure_baseline(&mut t, 10, 0.9, 10, 3).is_none());
    }
}
