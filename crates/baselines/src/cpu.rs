//! CPU-based KVS performance arithmetic (paper §2.2).
//!
//! The paper's motivation quantifies why CPUs bottleneck a modern KVS:
//! a 64-byte random read costs ~110 ns; a core can keep only 3–4 memory
//! accesses in flight (load-store units), while a KV operation needs
//! ~100 ns of computation (~500 instructions) that does not fit the
//! instruction window (measured 100–200). Interleaving computation with
//! memory access yields 5.5 Mops per core; batching memory accesses
//! lifts it to 7.9 Mops — still far from the host DRAM's random 64 B
//! capacity.

/// Microarchitectural constants measured in the paper.
#[derive(Debug, Clone, Copy)]
pub struct CpuKvsModel {
    /// Random 64 B read latency (ns).
    pub mem_latency_ns: f64,
    /// Concurrent memory accesses a core sustains (load-store units).
    pub load_store_units: f64,
    /// Computation per KV operation (ns).
    pub compute_ns: f64,
    /// Memory accesses per KV operation.
    pub accesses_per_op: f64,
}

impl CpuKvsModel {
    /// The paper's measured machine (Xeon E5-2650 v2).
    pub fn paper() -> Self {
        CpuKvsModel {
            mem_latency_ns: 110.0,
            load_store_units: 3.5,
            compute_ns: 100.0,
            accesses_per_op: 1.0,
        }
    }

    /// Peak random 64 B accesses per second per core (paper: 29.3 M).
    pub fn random_access_mops(&self) -> f64 {
        self.load_store_units / self.mem_latency_ns * 1e3
    }

    /// KV ops per second per core when computation and memory access
    /// interleave (paper: 5.5 Mops). The computation does not fit the
    /// instruction window, so each op serializes compute + miss latency,
    /// with the load-store units providing limited overlap.
    pub fn interleaved_mops(&self) -> f64 {
        let serial_ns = self.compute_ns
            + self.accesses_per_op * self.mem_latency_ns / self.load_store_units * 2.0;
        1e3 / serial_ns
    }

    /// KV ops per second per core with software batching of memory
    /// accesses (paper: 7.9 Mops) — batching hides most of the miss
    /// latency behind computation of neighbouring operations.
    pub fn batched_mops(&self) -> f64 {
        let serial_ns = self.compute_ns + self.mem_latency_ns / self.load_store_units;
        1e3 / serial_ns
    }

    /// Cores needed to match a given throughput — the paper's headline
    /// "equivalent to the throughput of tens of CPU cores".
    pub fn cores_to_match(&self, mops: f64) -> f64 {
        mops / self.batched_mops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_access_rate_matches_paper() {
        let m = CpuKvsModel::paper();
        let r = m.random_access_mops();
        assert!((r - 29.3).abs() < 3.0, "got {r}");
    }

    #[test]
    fn interleaved_rate_matches_paper() {
        let m = CpuKvsModel::paper();
        let r = m.interleaved_mops();
        assert!((r - 5.5).abs() < 0.9, "got {r}");
    }

    #[test]
    fn batched_rate_matches_paper() {
        let m = CpuKvsModel::paper();
        let r = m.batched_mops();
        assert!((r - 7.9).abs() < 0.8, "got {r}");
    }

    #[test]
    fn kv_direct_equals_tens_of_cores() {
        // Paper: 180 Mops "equivalent to the throughput of 36 CPU cores".
        let m = CpuKvsModel::paper();
        let cores = m.cores_to_match(180.0);
        assert!((20.0..45.0).contains(&cores), "got {cores}");
    }
}
