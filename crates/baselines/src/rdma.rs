//! RDMA-based KVS throughput models (paper §2.2, §5.1.3, Figure 13a).
//!
//! * **One-sided RDMA** (FaRM/Pilaf style): clients run the KV logic and
//!   the server NIC only moves memory. Atomics serialize *per key* inside
//!   the NIC — the paper cites 2.24 Mops single-key fetch-and-add, and
//!   notes commutativity-based spreading does not help non-commutative
//!   atomics such as compare-and-swap.
//! * **Two-sided RDMA** (HERD style): the server CPU executes operations;
//!   single-key atomics cannot scale beyond one core (the paper cites
//!   MICA's same limitation).
//!
//! Both models grow linearly with the number of independent keys until
//! the NIC message rate (one-sided) or the CPU cores × per-core rate
//! (two-sided) saturate — the linear ramps of Figure 13a.

/// A simple per-key-serialized throughput model.
#[derive(Debug, Clone, Copy)]
pub struct RdmaModel {
    /// Throughput of dependent operations on one key (Mops).
    pub per_key_mops: f64,
    /// Aggregate ceiling across independent keys (Mops).
    pub max_mops: f64,
}

impl RdmaModel {
    /// Throughput of an atomics workload spread over `keys` equally
    /// popular keys.
    pub fn atomics_mops(&self, keys: u64) -> f64 {
        (self.per_key_mops * keys as f64).min(self.max_mops)
    }
}

/// One-sided RDMA (client-side KV processing).
#[derive(Debug, Clone, Copy)]
pub struct OneSidedRdma;

impl OneSidedRdma {
    /// The paper's cited numbers: 2.24 Mops single-key atomics, message
    /// rates up to ~115 Mops for independent operations.
    pub fn model() -> RdmaModel {
        RdmaModel {
            per_key_mops: 2.24,
            max_mops: 115.0,
        }
    }

    /// GET throughput (reads bypass the CPU; bounded by message rate and
    /// the multiple round trips of hash-walk reads — the paper cites
    /// 8–150 Mops message rates, with ~2 reads per GET lookup).
    pub fn get_mops() -> f64 {
        OneSidedRdma::model().max_mops / 2.0
    }

    /// PUT throughput: multiple network round trips plus client-side
    /// synchronization push writes back to the server CPU in most
    /// systems (the paper: "for PUT operations, they fall back to the
    /// server CPU").
    pub fn put_mops(server_cores: u32) -> f64 {
        TwoSidedRdma::per_core_mops() * server_cores as f64
    }
}

/// Two-sided RDMA (server-CPU KV processing).
#[derive(Debug, Clone, Copy)]
pub struct TwoSidedRdma;

impl TwoSidedRdma {
    /// Per-core KV throughput with batched memory access (paper §2.2:
    /// 7.9 Mops with batching, 5.5 Mops without).
    pub fn per_core_mops() -> f64 {
        7.9
    }

    /// The throughput model for atomics: one core owns a key.
    pub fn model(cores: u32) -> RdmaModel {
        RdmaModel {
            // A single core executing dependent read-modify-writes,
            // bounded by its random-access pipeline.
            per_key_mops: 2.0,
            max_mops: TwoSidedRdma::per_core_mops() * cores as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_atomics_match_cited_numbers() {
        assert!((OneSidedRdma::model().atomics_mops(1) - 2.24).abs() < 1e-9);
        let two = TwoSidedRdma::model(16).atomics_mops(1);
        assert!(two < 3.0, "server CPU serializes same-key atomics");
    }

    #[test]
    fn linear_growth_then_saturation() {
        let m = OneSidedRdma::model();
        assert!((m.atomics_mops(10) - 22.4).abs() < 1e-9);
        assert_eq!(m.atomics_mops(100), 115.0, "saturates at message rate");
        let t = TwoSidedRdma::model(16);
        assert_eq!(t.atomics_mops(4), 8.0);
        assert!((t.atomics_mops(1000) - 126.4).abs() < 0.1);
    }

    #[test]
    fn ooo_engine_dwarfs_rdma_atomics() {
        // Paper: KV-Direct single-key atomics reach 180 Mops vs 2.24.
        let kv_direct = 180.0;
        assert!(kv_direct / OneSidedRdma::model().atomics_mops(1) > 50.0);
    }

    #[test]
    fn write_path_falls_back_to_cpu() {
        // One-sided RDMA PUTs are CPU-bound, not NIC-bound: the 16-core
        // write path tops out near (but not wildly above) the GET rate.
        let puts = OneSidedRdma::put_mops(16);
        let gets = OneSidedRdma::get_mops();
        assert!(puts <= gets * 3.0, "puts {puts} vs gets {gets}");
        assert!(puts > 50.0 && puts < 200.0);
    }
}
