#![warn(missing_docs)]
//! # KV-Direct
//!
//! A Rust reproduction of *KV-Direct: High-Performance In-Memory
//! Key-Value Store with Programmable NIC* (Li, Ruan et al., SOSP 2017).
//!
//! KV-Direct offloads key-value processing from the host CPU onto a
//! programmable NIC, extending one-sided RDMA from memory semantics
//! (READ/WRITE) to key-value semantics (GET/PUT/DELETE/atomics) plus
//! vector operations with user-defined functions. The NIC reaches the
//! host key-value storage over PCIe, so the system's novelty is a stack
//! of techniques that squeeze ~one memory access out of each KV
//! operation and hide the PCIe latency:
//!
//! * a hash index with **inline KVs** in 64 B buckets ([`hash`]),
//! * a split NIC/host **slab allocator** with lazy merging ([`slab`]),
//! * an **out-of-order execution engine** with data forwarding ([`ooo`]),
//! * a **load dispatcher** between PCIe and the NIC's on-board DRAM
//!   ([`mem`]),
//! * client-side **network batching** and a vector-operation decoder
//!   ([`net`]).
//!
//! Since the original runs on an FPGA, this crate substitutes
//! cycle-approximate software models for the hardware (PCIe Gen3
//! endpoints, DDR3 NIC DRAM, 40 GbE) while keeping every algorithm
//! functional and testable; see `DESIGN.md` for the substitution map and
//! `EXPERIMENTS.md` for paper-vs-measured numbers of every table and
//! figure.
//!
//! ## Quickstart
//!
//! ```
//! use kv_direct::{builtin, KvDirectConfig, KvDirectStore};
//!
//! let mut store = KvDirectStore::new(KvDirectConfig::with_memory(1 << 20));
//! store.put(b"greeting", b"hello").unwrap();
//! assert_eq!(store.get(b"greeting").unwrap(), b"hello");
//!
//! // Atomics and vector operations execute NIC-side:
//! assert_eq!(store.fetch_add(b"counter", 5).unwrap(), 0);
//! store.put(b"v", &kv_direct::lambda::encode_vector(&[1, 2, 3])).unwrap();
//! assert_eq!(store.vector_reduce(b"v", builtin::SUM, 0).unwrap(), 6);
//! ```

pub use kvd_core::{
    builtin, tick_of_us, AdmissionController, ClusterReport, ClusterSim, ClusterSimConfig,
    HotKeyConfig, KvDirectConfig, KvDirectStore, KvProcessor, Lambda, LambdaRegistry,
    MultiNicStore, NodeKill, OpRecord, OverloadConfig, OverloadCounters, ParallelSimConfig,
    ParallelSimReport, ParallelSystemSim, StoreError, SystemModel, ThroughputBreakdown, Watermarks,
    WorkloadSpec, EXPIRY_TICK_US,
};
pub use kvd_net::{
    decode_packet, decode_packet_ref, encode_packet, HashRing, KvRequest, KvRequestRef, KvResponse,
    NetConfig, OpCode, Status,
};
pub use kvd_sim::{
    ChaosConfig, ChaosSchedule, Component, CostSource, FaultCounters, FaultPlane, FaultRates,
    OpClass, OpLedger, Percentile, PressureGauge, RunSummary,
};

/// The paper's λ machinery (element codecs, registry).
pub mod lambda {
    pub use kvd_core::lambda::*;
}

/// The hash index (paper §3.3.1).
pub mod hash {
    pub use kvd_hash::*;
}

/// The slab allocator (paper §3.3.2).
pub mod slab {
    pub use kvd_slab::*;
}

/// The out-of-order execution engine (paper §3.3.3).
pub mod ooo {
    pub use kvd_ooo::*;
}

/// Memory models: host memory, NIC DRAM, load dispatcher (paper §3.3.4).
pub mod mem {
    pub use kvd_mem::*;
}

/// PCIe Gen3 DMA models (paper §2.4).
pub mod pcie {
    pub use kvd_pcie::*;
}

/// Network models and wire format (paper §4).
pub mod net {
    pub use kvd_net::*;
}

/// Simulation substrate (virtual time, RNG, statistics).
pub mod sim {
    pub use kvd_sim::*;
}

/// Baseline comparators (MemC3 cuckoo, FaRM hopscotch, RDMA models).
pub mod baselines {
    pub use kvd_baselines::*;
}

/// YCSB-style workload generators.
pub mod workloads {
    pub use kvd_workloads::*;
}

/// Timing composition for the system benchmarks.
pub mod timing {
    pub use kvd_core::timing::*;
}

/// The end-to-end timed pipeline (client ↔ NIC ↔ host memory).
pub mod system {
    pub use kvd_core::system::*;
}

/// The parallel sharded multi-NIC engine (paper §5.2, Figure 18).
pub mod parallel {
    pub use kvd_core::parallel::*;
}
