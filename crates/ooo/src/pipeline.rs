//! Cycle-level pipeline timing model (paper Figure 13).
//!
//! Reproduces the paper's comparison of the out-of-order engine against a
//! pipeline that stalls on data hazards:
//!
//! * **Without OoO**, an atomic on a key must wait out the full memory
//!   round trip (~1 µs over PCIe plus NIC processing) before the next
//!   dependent operation can issue — 0.94 Mops single-key in the paper.
//! * **With OoO**, dependent operations are queued in the reservation
//!   station and executed by data forwarding at one per clock cycle,
//!   reaching the 180 Mops clock bound (a 191× improvement).
//!
//! The model admits at most one operation per cycle (the fully pipelined
//! decoder), tracks up to `max_inflight` concurrent memory operations
//! (the paper: 256 in-flight KV operations saturate PCIe/DRAM), and
//! charges `memory_latency_cycles` per memory access.

use std::collections::{HashMap, VecDeque};

use kvd_sim::{EventQueue, Freq, SimTime};

/// Operation kind for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOp {
    /// A read (GET).
    Get,
    /// A write (PUT).
    Put,
    /// An atomic read-modify-write.
    Atomic,
}

impl SimOp {
    fn writes(self) -> bool {
        matches!(self, SimOp::Put | SimOp::Atomic)
    }
}

/// Configuration of the pipeline model.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Processor clock (paper: 180 MHz, one op per cycle).
    pub clock: Freq,
    /// Memory round trip in cycles (PCIe RTT + NIC processing ≈ 1.05 µs
    /// ≈ 190 cycles at 180 MHz).
    pub memory_latency_cycles: u64,
    /// Concurrent memory operations supported (paper: 256 in-flight).
    pub max_inflight: usize,
    /// Enable the out-of-order engine.
    pub ooo: bool,
    /// Reservation station hash slots (paper: 1024).
    pub station_slots: u64,
    /// Reservation station capacity (paper: 256).
    pub station_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            clock: Freq::from_mhz(180),
            memory_latency_cycles: 190,
            max_inflight: 256,
            ooo: true,
            station_slots: 1024,
            station_capacity: 256,
        }
    }
}

/// Result of a pipeline simulation.
#[derive(Debug, Clone, Copy)]
pub struct PipelineResult {
    /// Operations simulated.
    pub ops: u64,
    /// Total cycles until the last operation retired.
    pub cycles: u64,
    /// Sustained throughput in Mops.
    pub mops: f64,
    /// Operations served by data forwarding (no memory access).
    pub forwarded: u64,
    /// Cycles lost to hazard stalls (no-OoO) or backpressure.
    pub stall_cycles: u64,
}

#[derive(Default)]
struct SimSlot {
    busy: bool,
    busy_key: u64,
    pending: VecDeque<(u64, SimOp)>,
    cached_key: Option<u64>,
}

/// Simulates the pipeline over an operation trace of `(key, op)` pairs.
///
/// # Examples
///
/// ```
/// use kvd_ooo::{simulate_throughput, PipelineConfig, SimOp};
///
/// // Single-key atomics, with and without the engine.
/// let trace: Vec<(u64, SimOp)> = (0..20_000).map(|_| (0u64, SimOp::Atomic)).collect();
/// let with = simulate_throughput(&PipelineConfig::default(), &trace);
/// let without = simulate_throughput(
///     &PipelineConfig { ooo: false, ..PipelineConfig::default() },
///     &trace,
/// );
/// assert!(with.mops / without.mops > 50.0);
/// ```
pub fn simulate_throughput(cfg: &PipelineConfig, trace: &[(u64, SimOp)]) -> PipelineResult {
    if cfg.ooo {
        simulate_ooo(cfg, trace)
    } else {
        simulate_stalling(cfg, trace)
    }
}

/// The baseline: in-order issue, stall while a hazardous operation is in
/// flight. The paper stalls "when a PUT operation finds any in-flight
/// operation with the same key" (reads may share).
fn simulate_stalling(cfg: &PipelineConfig, trace: &[(u64, SimOp)]) -> PipelineResult {
    let mut cycle = 0u64;
    let mut completions: EventQueue<(u64, bool)> = EventQueue::new(); // (key, writes)
    let mut inflight: HashMap<u64, (u32, u32)> = HashMap::new(); // key → (readers, writers)
    let mut inflight_total = 0usize;
    let mut stall_cycles = 0u64;
    let mut last_retire = 0u64;

    let drain = |cycle: u64,
                 completions: &mut EventQueue<(u64, bool)>,
                 inflight: &mut HashMap<u64, (u32, u32)>,
                 inflight_total: &mut usize,
                 last_retire: &mut u64| {
        while let Some(at) = completions.peek_time() {
            if at.as_ps() > cycle {
                break;
            }
            let (at, (key, writes)) = completions.pop().expect("peeked");
            let e = inflight.get_mut(&key).expect("inflight accounting");
            if writes {
                e.1 -= 1;
            } else {
                e.0 -= 1;
            }
            if *e == (0, 0) {
                inflight.remove(&key);
            }
            *inflight_total -= 1;
            *last_retire = (*last_retire).max(at.as_ps());
        }
    };

    for &(key, op) in trace {
        loop {
            drain(
                cycle,
                &mut completions,
                &mut inflight,
                &mut inflight_total,
                &mut last_retire,
            );
            let hazard = match inflight.get(&key) {
                Some(&(readers, writers)) => writers > 0 || (op.writes() && readers > 0),
                None => false,
            };
            if !hazard && inflight_total < cfg.max_inflight {
                break;
            }
            // Stall until the next completion.
            let next = completions
                .peek_time()
                .expect("stalled with nothing in flight")
                .as_ps();
            stall_cycles += next.saturating_sub(cycle);
            cycle = cycle.max(next);
        }
        let e = inflight.entry(key).or_insert((0, 0));
        if op.writes() {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
        inflight_total += 1;
        completions.push(
            SimTime::from_ps(cycle + cfg.memory_latency_cycles),
            (key, op.writes()),
        );
        cycle += 1;
    }
    // Drain the tail.
    while let Some((at, _)) = completions.pop() {
        last_retire = last_retire.max(at.as_ps());
    }
    finish(cfg, trace.len() as u64, last_retire, 0, stall_cycles)
}

/// The out-of-order engine: dependent ops queue in the reservation
/// station and retire by data forwarding at one per cycle.
fn simulate_ooo(cfg: &PipelineConfig, trace: &[(u64, SimOp)]) -> PipelineResult {
    let mut cycle = 0u64;
    let mut completions: EventQueue<u64> = EventQueue::new(); // slot index
    let mut slots: HashMap<u64, SimSlot> = HashMap::new();
    let mut inflight_total = 0usize;
    let mut tracked = 0usize; // queued + busy in the station
    let mut forwarded = 0u64;
    let mut stall_cycles = 0u64;
    let mut last_retire = 0u64;
    let mut retired = 0u64;
    let n = trace.len() as u64;

    let slot_of = |key: u64| -> u64 {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % cfg.station_slots
    };

    let mut idx = 0usize;
    while retired < n {
        // Process completions due at this cycle: drain chains by
        // forwarding (the dedicated execution engine retires one op per
        // cycle; we account that by bumping `cycle` per drained op when
        // the decoder is idle — conservatively, chain drain and admission
        // share the one-op-per-cycle retire bound).
        let mut progressed = false;
        while let Some(at) = completions.peek_time() {
            if at.as_ps() > cycle {
                break;
            }
            let (_, sidx) = completions.pop().expect("peeked");
            let slot = slots.get_mut(&sidx).expect("completion for unknown slot");
            slot.busy = false;
            slot.cached_key = Some(slot.busy_key);
            inflight_total -= 1;
            tracked -= 1;
            retired += 1;
            last_retire = last_retire.max(cycle);
            progressed = true;
            // Drain forwarding chain.
            while let Some(&(k, _op)) = slot.pending.front() {
                if Some(k) == slot.cached_key {
                    slot.pending.pop_front();
                    tracked -= 1;
                    retired += 1;
                    forwarded += 1;
                    // One retire per cycle for the chain.
                    cycle += 1;
                    last_retire = last_retire.max(cycle);
                } else if inflight_total < cfg.max_inflight {
                    let (k, _op) = slot.pending.pop_front().expect("front");
                    slot.busy = true;
                    slot.busy_key = k;
                    slot.cached_key = None;
                    inflight_total += 1;
                    completions.push(SimTime::from_ps(cycle + cfg.memory_latency_cycles), sidx);
                    break;
                } else {
                    break;
                }
            }
        }

        // Admit the next operation (at most one per cycle).
        if idx < trace.len() {
            let (key, _op) = trace[idx];
            let sidx = slot_of(key);
            let slot = slots.entry(sidx).or_default();
            if slot.busy || !slot.pending.is_empty() {
                if tracked < cfg.station_capacity {
                    slot.pending.push_back(trace[idx]);
                    tracked += 1;
                    idx += 1;
                    progressed = true;
                } // else: backpressure — wait for completions.
            } else if slot.cached_key == Some(key) {
                // Fast path: forwarding cache hit.
                retired += 1;
                forwarded += 1;
                idx += 1;
                last_retire = last_retire.max(cycle);
                progressed = true;
            } else if inflight_total < cfg.max_inflight {
                slot.busy = true;
                slot.busy_key = key;
                slot.cached_key = None;
                tracked += 1;
                inflight_total += 1;
                completions.push(SimTime::from_ps(cycle + cfg.memory_latency_cycles), sidx);
                idx += 1;
                progressed = true;
            }
        }

        if progressed {
            cycle += 1;
        } else {
            // Nothing to do this cycle: jump to the next completion.
            match completions.peek_time() {
                Some(at) => {
                    stall_cycles += at.as_ps().saturating_sub(cycle);
                    cycle = cycle.max(at.as_ps());
                }
                None => {
                    assert!(
                        idx >= trace.len() && retired >= n,
                        "deadlock: idle with work remaining"
                    );
                    break;
                }
            }
        }
    }
    finish(cfg, n, last_retire.max(cycle), forwarded, stall_cycles)
}

fn finish(
    cfg: &PipelineConfig,
    ops: u64,
    cycles: u64,
    forwarded: u64,
    stall_cycles: u64,
) -> PipelineResult {
    let cycles = cycles.max(1);
    let secs = cycles as f64 / cfg.clock.ops_per_sec();
    PipelineResult {
        ops,
        cycles,
        mops: ops as f64 / secs / 1e6,
        forwarded,
        stall_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::{DetRng, ZipfSampler};

    fn atomics_trace(keys: u64, n: usize, seed: u64) -> Vec<(u64, SimOp)> {
        let mut rng = DetRng::seed(seed);
        (0..n)
            .map(|_| (rng.u64_below(keys), SimOp::Atomic))
            .collect()
    }

    #[test]
    fn single_key_atomics_without_ooo_matches_paper() {
        // Paper: 0.94 Mops (one op per ~1.06us memory round trip).
        let cfg = PipelineConfig {
            ooo: false,
            ..PipelineConfig::default()
        };
        let r = simulate_throughput(&cfg, &atomics_trace(1, 5000, 1));
        assert!(r.mops > 0.8 && r.mops < 1.1, "got {} Mops", r.mops);
    }

    #[test]
    fn single_key_atomics_with_ooo_reach_clock_bound() {
        // Paper: 180 Mops, one per clock cycle.
        let r = simulate_throughput(&PipelineConfig::default(), &atomics_trace(1, 50_000, 2));
        assert!(r.mops > 150.0, "got {} Mops", r.mops);
        assert!(r.forwarded > 45_000);
    }

    #[test]
    fn ooo_speedup_factor_is_two_orders() {
        // Paper: "single-key atomics throughput improves by 191x".
        let trace = atomics_trace(1, 20_000, 3);
        let with = simulate_throughput(&PipelineConfig::default(), &trace);
        let without = simulate_throughput(
            &PipelineConfig {
                ooo: false,
                ..PipelineConfig::default()
            },
            &trace,
        );
        let speedup = with.mops / without.mops;
        assert!(speedup > 100.0, "speedup {speedup}");
    }

    #[test]
    fn multi_key_atomics_scale_linearly_without_ooo() {
        // Paper Figure 13a: throughput grows with the number of keys.
        let cfg = PipelineConfig {
            ooo: false,
            ..PipelineConfig::default()
        };
        let r1 = simulate_throughput(&cfg, &atomics_trace(1, 20_000, 4));
        let r10 = simulate_throughput(&cfg, &atomics_trace(10, 20_000, 4));
        let r100 = simulate_throughput(&cfg, &atomics_trace(100, 20_000, 4));
        // Head-of-line blocking caps effective concurrency near √keys, so
        // growth is monotonic but sublinear — still "far from the optimal
        // throughput of KV-Direct" as the paper puts it.
        assert!(
            r10.mops > r1.mops * 2.0,
            "10 keys {} vs 1 key {}",
            r10.mops,
            r1.mops
        );
        assert!(
            r100.mops > r10.mops * 2.0,
            "100 keys {} vs 10 keys {}",
            r100.mops,
            r10.mops
        );
        assert!(r100.mops < 100.0, "still far from the 180 Mops bound");
    }

    #[test]
    fn uniform_gets_reach_clock_bound_both_ways() {
        // Hazards are rare with many keys; both pipelines hit ~180 Mops
        // (reads don't conflict with reads even without OoO).
        let mut rng = DetRng::seed(5);
        let trace: Vec<(u64, SimOp)> = (0..50_000)
            .map(|_| (rng.u64_below(1 << 20), SimOp::Get))
            .collect();
        for ooo in [false, true] {
            let r = simulate_throughput(
                &PipelineConfig {
                    ooo,
                    ..PipelineConfig::default()
                },
                &trace,
            );
            assert!(r.mops > 150.0, "ooo={ooo}: {} Mops", r.mops);
        }
    }

    #[test]
    fn longtail_put_ratio_hurts_stalling_pipeline() {
        // Paper Figure 13b: without OoO, throughput decays as the PUT
        // ratio grows under the long-tail workload; with OoO it holds.
        let zipf = ZipfSampler::new(100_000, 0.99);
        let mut rng = DetRng::seed(6);
        let mk_trace = |put_pct: f64, rng: &mut DetRng| -> Vec<(u64, SimOp)> {
            (0..30_000)
                .map(|_| {
                    let op = if rng.chance(put_pct) {
                        SimOp::Put
                    } else {
                        SimOp::Get
                    };
                    (zipf.sample(rng), op)
                })
                .collect()
        };
        let cfg_stall = PipelineConfig {
            ooo: false,
            ..PipelineConfig::default()
        };
        let t0 = mk_trace(0.0, &mut rng);
        let t100 = mk_trace(1.0, &mut rng);
        let read_only = simulate_throughput(&cfg_stall, &t0);
        let write_only = simulate_throughput(&cfg_stall, &t100);
        assert!(
            write_only.mops < read_only.mops * 0.7,
            "PUT 100% {} vs GET 100% {}",
            write_only.mops,
            read_only.mops
        );
        // With OoO both stay near the clock bound.
        let with = simulate_throughput(&PipelineConfig::default(), &t100);
        assert!(with.mops > 100.0, "with OoO: {}", with.mops);
    }

    #[test]
    fn midrange_uniform_keys_show_collision_backpressure() {
        // Characterization (documented in EXPERIMENTS.md): with ~100
        // uniform keys over 1024 station slots, colliding key pairs
        // ping-pong the per-slot value cache and their queues
        // backpressure admission, denting throughput relative to both
        // very few keys (all cached) and very many (no reuse, pure
        // pipelining). A real consequence of per-slot caching.
        let mk = |keys: u64| {
            let trace = {
                let mut rng = DetRng::seed(keys);
                (0..60_000)
                    .map(|_| (rng.u64_below(keys), SimOp::Atomic))
                    .collect::<Vec<_>>()
            };
            simulate_throughput(&PipelineConfig::default(), &trace).mops
        };
        let few = mk(10);
        let mid = mk(100);
        let many = mk(10_000);
        assert!(mid < few, "dip vanished: {mid} vs few {few}");
        assert!(mid < many, "dip vanished: {mid} vs many {many}");
    }

    #[test]
    fn station_collisions_do_not_deadlock() {
        // Tiny station: lots of false dependencies, still terminates.
        let cfg = PipelineConfig {
            station_slots: 4,
            station_capacity: 8,
            ..PipelineConfig::default()
        };
        let r = simulate_throughput(&cfg, &atomics_trace(64, 10_000, 7));
        assert_eq!(r.ops, 10_000);
        assert!(r.mops > 0.0);
    }

    #[test]
    fn empty_trace() {
        let r = simulate_throughput(&PipelineConfig::default(), &[]);
        assert_eq!(r.ops, 0);
    }
}
