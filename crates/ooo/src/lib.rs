#![warn(missing_docs)]
//! Out-of-order execution engine for KV-Direct (paper §3.3.3, Figure 13).
//!
//! Dependent KV operations (same key, or conservatively same key-hash)
//! must not race through the main processing pipeline: a GET after a PUT
//! must see the new value. A naive pipeline stalls on such hazards, which
//! caps single-key atomics at roughly one operation per memory round trip
//! (~0.94 Mops measured in the paper). KV-Direct instead borrows dynamic
//! scheduling from computer architecture:
//!
//! * A **reservation station** of 1024 hash slots in on-chip BRAM tracks
//!   all in-flight operations. Operations with the same key hash are
//!   chained and examined sequentially — false-positive dependencies are
//!   possible but dependencies are never missed.
//! * The station **caches the latest value** of each tracked key for data
//!   forwarding: when an operation completes, pending operations with a
//!   matching key execute immediately — one per clock cycle — in a
//!   dedicated execution engine, and the result returns to the client
//!   without touching memory again.
//! * If the cached value was updated, a single **write-back PUT** is
//!   issued to the main pipeline after the dependency chain drains.
//!
//! This raises single-key atomics to the 180 Mops clock bound — a 191×
//! improvement — and removes head-of-line blocking for popular keys.
//!
//! [`station`] is the functional engine used by `kvd-core`;
//! [`pipeline`] is the cycle-level timing model behind Figure 13.

pub mod pipeline;
pub mod station;

pub use pipeline::{simulate_throughput, PipelineConfig, PipelineResult, SimOp};
pub use station::{
    Admission, Completion, KvOpKind, OpResult, ReservationStation, StationConfig, StationOp,
    StationStats, UpdateFn, Writeback,
};
