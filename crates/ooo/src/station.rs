//! The functional reservation station.
//!
//! `kvd-core` drives this engine for every operation: the station decides
//! whether an operation can be served from the forwarding cache (fast
//! path), must be issued to the main pipeline (a real hash-table access),
//! or must queue behind a dependent in-flight operation. Completions
//! drain dependency chains with data forwarding.
//!
//! Dependencies are tracked by key *hash* (1024 slots in the paper's
//! BRAM), so false-positive dependencies exist but none are missed —
//! matching §3.3.3 exactly.

use std::collections::VecDeque;
use std::sync::Arc;

use kvd_sim::{CostSource, OpLedger};

/// The transform of an atomic update: old value → new value.
///
/// In the paper these are user-defined λ functions pre-registered and
/// compiled to hardware; here they are Rust closures registered with the
/// store.
pub type UpdateFn = Arc<dyn Fn(Option<&[u8]>) -> Option<Vec<u8>> + Send + Sync>;

/// What a station-managed operation does to its key.
#[derive(Clone)]
pub enum KvOpKind {
    /// Read the value.
    Get,
    /// Insert or replace the value.
    Put(Vec<u8>),
    /// Remove the key.
    Delete,
    /// Atomic read-modify-write; returns the original value.
    Update(UpdateFn),
}

impl std::fmt::Debug for KvOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvOpKind::Get => write!(f, "Get"),
            KvOpKind::Put(v) => write!(f, "Put({} bytes)", v.len()),
            KvOpKind::Delete => write!(f, "Delete"),
            KvOpKind::Update(_) => write!(f, "Update(λ)"),
        }
    }
}

/// An operation tracked by the station.
#[derive(Debug, Clone)]
pub struct StationOp {
    /// Caller-assigned identifier, echoed in results.
    pub id: u64,
    /// The key.
    pub key: Vec<u8>,
    /// The operation kind.
    pub kind: KvOpKind,
}

/// Result of an operation executed (fast path or chain drain) by the
/// station.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpResult {
    /// The operation's id.
    pub id: u64,
    /// GET: the value (`None` = miss). PUT/DELETE: the previous value.
    /// UPDATE: the original value (paper semantics).
    pub value: Option<Vec<u8>>,
}

/// A deferred write the caller must apply to the hash table: the key and
/// its final cached value (`None` = the key was deleted through the
/// cache).
pub type Writeback = (Vec<u8>, Option<Vec<u8>>);

/// Outcome of [`ReservationStation::admit`].
#[derive(Debug)]
pub enum Admission {
    /// Served from the forwarding cache in one cycle; no memory access.
    Fast(OpResult),
    /// The caller must execute this operation against the hash table and
    /// then call [`ReservationStation::complete`]. If `writeback` is
    /// present, apply it first (dirty cache eviction).
    Issue {
        /// The operation to execute.
        op: StationOp,
        /// Dirty eviction to apply before (or with) the issue.
        writeback: Option<Writeback>,
    },
    /// Queued behind a dependent operation; results arrive via
    /// [`ReservationStation::complete`].
    Queued,
    /// The station is at capacity (the paper sizes it at 256 in-flight
    /// operations); the operation is handed back — retry after a
    /// completion.
    Full(StationOp),
}

/// Outcome of [`ReservationStation::complete`].
#[derive(Debug, Default)]
pub struct Completion {
    /// Results of chained operations executed by data forwarding.
    pub results: Vec<OpResult>,
    /// The next dependent (hash-colliding, different-key) operation to
    /// issue to the pipeline, if the chain head needs memory.
    pub issue: Option<StationOp>,
    /// Dirty eviction to apply before the issue.
    pub writeback: Option<Writeback>,
}

/// Configuration of the reservation station.
#[derive(Debug, Clone, Copy)]
pub struct StationConfig {
    /// Hash slots (paper: 1024, for <25% collision probability at 256
    /// in-flight ops).
    pub hash_slots: usize,
    /// Maximum queued + in-flight operations (paper: 256).
    pub capacity: usize,
}

impl Default for StationConfig {
    fn default() -> Self {
        StationConfig {
            hash_slots: 1024,
            capacity: 256,
        }
    }
}

#[derive(Debug, Clone)]
struct Cached {
    key: Vec<u8>,
    /// `None` means the key is (now) absent.
    value: Option<Vec<u8>>,
    dirty: bool,
}

#[derive(Default)]
struct Slot {
    busy: bool,
    pending: VecDeque<StationOp>,
    cache: Option<Cached>,
}

/// Counters exposed for the evaluation (merge rate, write-backs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StationStats {
    /// Operations served by the fast path or chain forwarding (the
    /// paper's "merged" operations — up to 15% under long-tail).
    pub forwarded: u64,
    /// Operations issued to the main pipeline.
    pub issued: u64,
    /// Operations that had to queue.
    pub queued: u64,
    /// Dirty-cache write-backs emitted.
    pub writebacks: u64,
    /// Admissions rejected for capacity.
    pub rejected: u64,
    /// Busy slots reclaimed because the issued operation failed (e.g. a
    /// DMA tag timed out and the retry budget ran out).
    pub reclaimed: u64,
    /// Peak operations tracked at once — how close the run came to the
    /// station's capacity envelope.
    pub high_water: u64,
}

/// The reservation station (paper Figure 4, §3.3.3).
///
/// # Examples
///
/// ```
/// use kvd_ooo::{Admission, KvOpKind, ReservationStation, StationConfig, StationOp};
///
/// let mut rs = ReservationStation::new(StationConfig::default());
/// let op = StationOp { id: 1, key: b"k".to_vec(), kind: KvOpKind::Get };
/// // Nothing cached: the op must go to memory.
/// let issued = match rs.admit(op) {
///     Admission::Issue { op, .. } => op,
///     _ => panic!("expected issue"),
/// };
/// // Memory returned the value; completion installs the forwarding cache.
/// rs.complete(&issued.key, Some(b"v".to_vec()));
/// // A second GET on the same key is served without memory access.
/// let op2 = StationOp { id: 2, key: b"k".to_vec(), kind: KvOpKind::Get };
/// match rs.admit(op2) {
///     Admission::Fast(r) => assert_eq!(r.value.unwrap(), b"v"),
///     _ => panic!("expected fast path"),
/// }
/// ```
pub struct ReservationStation {
    cfg: StationConfig,
    slots: Vec<Slot>,
    total_tracked: usize,
    stats: StationStats,
    /// One bit per hash slot: set iff the slot holds a dirty cache, so
    /// [`flush`] scans words instead of every slot.
    ///
    /// [`flush`]: ReservationStation::flush
    dirty_bits: Vec<u64>,
    /// Retired key/value buffers, recycled instead of reallocated. Keys
    /// of fast-path ops, evicted clean caches, and buffers the caller
    /// hands back via [`give`] all land here; [`recycle`] and the
    /// station's own copies drain it.
    ///
    /// [`give`]: ReservationStation::give
    /// [`recycle`]: ReservationStation::recycle
    spare: Vec<Vec<u8>>,
    spare_cap: usize,
    /// Retired [`Completion::results`] vectors, recycled the same way.
    spare_results: Vec<Vec<OpResult>>,
}

impl ReservationStation {
    /// Creates an empty station.
    pub fn new(cfg: StationConfig) -> Self {
        assert!(cfg.hash_slots > 0 && cfg.capacity > 0);
        let mut slots = Vec::with_capacity(cfg.hash_slots);
        slots.resize_with(cfg.hash_slots, Slot::default);
        ReservationStation {
            cfg,
            slots,
            total_tracked: 0,
            stats: StationStats::default(),
            dirty_bits: vec![0; cfg.hash_slots.div_ceil(64)],
            spare: Vec::new(),
            // Enough for every slot's cache plus the in-flight envelope;
            // beyond that, buffers are dropped rather than hoarded.
            spare_cap: cfg.hash_slots + 4 * cfg.capacity,
            spare_results: Vec::new(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> StationStats {
        self.stats
    }

    /// Hands out a retired buffer for reuse (cleared), if one is pooled.
    /// Callers build op keys/values into these instead of allocating.
    pub fn recycle(&mut self) -> Option<Vec<u8>> {
        self.spare.pop().map(|mut b| {
            b.clear();
            b
        })
    }

    /// Returns a buffer to the pool (e.g. an [`OpResult`] value or an
    /// applied [`Writeback`] the caller is done with).
    pub fn give(&mut self, buf: Vec<u8>) {
        give_to(&mut self.spare, self.spare_cap, buf);
    }

    /// Returns a drained [`Completion::results`] vector to the pool, so
    /// the next chain drain pushes into recycled capacity.
    pub fn give_results(&mut self, mut v: Vec<OpResult>) {
        if v.capacity() > 0 && self.spare_results.len() < 64 {
            v.clear();
            self.spare_results.push(v);
        }
    }

    /// Operations currently tracked (busy + queued).
    pub fn tracked(&self) -> usize {
        self.total_tracked
    }

    /// Occupancy relative to the station's operation capacity: 0 when
    /// idle, 1 when every slot of the paper's 256-op envelope is spoken
    /// for. This is the backpressure signal the admission layer watches.
    pub fn occupancy(&self) -> f64 {
        self.total_tracked as f64 / self.cfg.capacity as f64
    }

    fn note_tracked(&mut self) {
        self.total_tracked += 1;
        self.stats.high_water = self.stats.high_water.max(self.total_tracked as u64);
    }

    fn slot_index(&self, key: &[u8]) -> usize {
        (kvd_station_hash(key) % self.cfg.hash_slots as u64) as usize
    }

    /// Applies an op to a cached value, returning the op's result and the
    /// new cache value + dirtiness. Consumes the op: its key buffer is
    /// pooled, and a PUT's value moves into the cache without a copy.
    fn execute_on_cache(
        op: StationOp,
        cached: &mut Cached,
        spare: &mut Vec<Vec<u8>>,
        spare_cap: usize,
    ) -> OpResultValue {
        let StationOp { id, key, kind } = op;
        give_to(spare, spare_cap, key);
        let (value, dirtied) = match kind {
            KvOpKind::Get => (clone_pooled(spare, cached.value.as_deref()), false),
            KvOpKind::Put(v) => (cached.value.replace(v), true),
            KvOpKind::Delete => (cached.value.take(), true),
            KvOpKind::Update(f) => {
                let old = cached.value.take();
                cached.value = f(old.as_deref());
                (old, true)
            }
        };
        OpResultValue {
            result: OpResult { id, value },
            dirtied,
        }
    }

    fn set_dirty(bits: &mut [u64], idx: usize) {
        bits[idx / 64] |= 1 << (idx % 64);
    }

    fn clear_dirty(bits: &mut [u64], idx: usize) {
        bits[idx / 64] &= !(1 << (idx % 64));
    }

    /// Admits one operation.
    pub fn admit(&mut self, op: StationOp) -> Admission {
        let idx = self.slot_index(&op.key);
        if self.slots[idx].busy || !self.slots[idx].pending.is_empty() {
            if self.total_tracked >= self.cfg.capacity {
                self.stats.rejected += 1;
                return Admission::Full(op);
            }
            self.stats.queued += 1;
            self.note_tracked();
            self.slots[idx].pending.push_back(op);
            return Admission::Queued;
        }
        let slot = &mut self.slots[idx];
        if let Some(cached) = &mut slot.cache {
            if cached.key == op.key {
                let r = Self::execute_on_cache(op, cached, &mut self.spare, self.spare_cap);
                if r.dirtied && !cached.dirty {
                    cached.dirty = true;
                    Self::set_dirty(&mut self.dirty_bits, idx);
                }
                self.stats.forwarded += 1;
                return Admission::Fast(r.result);
            }
        }
        // Different key (or cold slot): evict any dirty cache and issue.
        let writeback = Self::take_writeback(
            slot,
            &mut self.stats,
            &mut self.dirty_bits,
            idx,
            &mut self.spare,
            self.spare_cap,
        );
        slot.busy = true;
        self.note_tracked();
        self.stats.issued += 1;
        Admission::Issue { op, writeback }
    }

    fn take_writeback(
        slot: &mut Slot,
        stats: &mut StationStats,
        dirty_bits: &mut [u64],
        idx: usize,
        spare: &mut Vec<Vec<u8>>,
        spare_cap: usize,
    ) -> Option<Writeback> {
        Self::clear_dirty(dirty_bits, idx);
        match slot.cache.take() {
            Some(c) if c.dirty => {
                stats.writebacks += 1;
                Some((c.key, c.value))
            }
            Some(c) => {
                // Clean eviction: the buffers are dead — pool them.
                give_to(spare, spare_cap, c.key);
                if let Some(v) = c.value {
                    give_to(spare, spare_cap, v);
                }
                None
            }
            None => None,
        }
    }

    /// Reports the completion of an issued operation: `cache_value` is the
    /// key's value after the operation (loaded for GET, written for
    /// PUT/UPDATE, `None` for DELETE or a miss). Drains the dependency
    /// chain with data forwarding.
    pub fn complete(&mut self, key: &[u8], cache_value: Option<Vec<u8>>) -> Completion {
        let idx = self.slot_index(key);
        let mut kbuf = self.spare.pop().unwrap_or_default();
        kbuf.clear();
        kbuf.extend_from_slice(key);
        let slot = &mut self.slots[idx];
        assert!(slot.busy, "completion for a non-busy slot");
        slot.busy = false;
        self.total_tracked -= 1;
        slot.cache = Some(Cached {
            key: kbuf,
            value: cache_value,
            dirty: false,
        });
        let mut out = Completion {
            results: self.spare_results.pop().unwrap_or_default(),
            ..Completion::default()
        };
        // Examine the chain sequentially (paper: "Pending operations in
        // the same hash slot are checked one by one").
        while let Some(front) = slot.pending.front() {
            let cached = slot.cache.as_mut().expect("installed above");
            if front.key == cached.key {
                let op = slot.pending.pop_front().expect("front checked");
                let r = Self::execute_on_cache(op, cached, &mut self.spare, self.spare_cap);
                if r.dirtied && !cached.dirty {
                    cached.dirty = true;
                    Self::set_dirty(&mut self.dirty_bits, idx);
                }
                self.total_tracked -= 1;
                self.stats.forwarded += 1;
                out.results.push(r.result);
            } else {
                // Hash-colliding different key: evict and issue it.
                let op = slot.pending.pop_front().expect("front checked");
                out.writeback = Self::take_writeback(
                    slot,
                    &mut self.stats,
                    &mut self.dirty_bits,
                    idx,
                    &mut self.spare,
                    self.spare_cap,
                );
                slot.busy = true;
                // Tracked count unchanged: it moves from queued to busy.
                self.stats.issued += 1;
                out.issue = Some(op);
                return out;
            }
        }
        out
    }

    /// Reclaims a busy slot whose issued operation *failed* (the memory
    /// access never produced a value — a DMA tag timed out, the retry
    /// budget ran out). Unlike [`complete`], no forwarding cache is
    /// installed: the failed operation observed nothing, so nothing may be
    /// forwarded to dependents. The next pending operation in the slot is
    /// re-issued to the pipeline so the dependency chain keeps draining
    /// instead of wedging behind the dead tag.
    ///
    /// The failed operation must not have modified the hash table (the
    /// processor fails transactions atomically), so any state the caller
    /// has is still consistent.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not busy.
    ///
    /// [`complete`]: ReservationStation::complete
    pub fn reclaim(&mut self, key: &[u8]) -> Completion {
        let idx = self.slot_index(key);
        let slot = &mut self.slots[idx];
        assert!(slot.busy, "reclaim for a non-busy slot");
        slot.busy = false;
        self.total_tracked -= 1;
        self.stats.reclaimed += 1;
        let mut out = Completion::default();
        if let Some(op) = slot.pending.pop_front() {
            // No value to forward: the next dependent must reach memory
            // itself, whatever its key.
            out.writeback = Self::take_writeback(
                slot,
                &mut self.stats,
                &mut self.dirty_bits,
                idx,
                &mut self.spare,
                self.spare_cap,
            );
            slot.busy = true;
            // Tracked count unchanged: it moves from queued to busy.
            self.stats.issued += 1;
            out.issue = Some(op);
        }
        out
    }

    /// Flushes every dirty cached value, returning the write-backs the
    /// caller must apply. Clean caches are kept for future forwarding.
    ///
    /// Scans the dirty bitset — 64 slots per word — instead of every
    /// slot, still emitting write-backs in slot-index order.
    pub fn flush(&mut self) -> Vec<Writeback> {
        let mut out = Vec::new();
        for w in 0..self.dirty_bits.len() {
            let mut bits = self.dirty_bits[w];
            self.dirty_bits[w] = 0;
            while bits != 0 {
                let idx = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let c = self.slots[idx]
                    .cache
                    .as_mut()
                    .expect("dirty bit implies a cached entry");
                debug_assert!(c.dirty, "dirty bit implies a dirty cache");
                c.dirty = false;
                self.stats.writebacks += 1;
                let key = clone_pooled(&mut self.spare, Some(&c.key)).expect("key present");
                let value = clone_pooled(&mut self.spare, c.value.as_deref());
                out.push((key, value));
            }
        }
        out
    }

    /// Drops every **clean** forwarding cache, pooling its buffers.
    ///
    /// The caches hold values, not lifecycle stamps, so a TTL-aware
    /// embedder must invalidate them whenever its expiry clock advances —
    /// otherwise a value could keep being forwarded after its stamp died
    /// in the table. Dirty caches are left alone: they only exist
    /// mid-batch (every batch ends in a flush) and the embedder advances
    /// the clock between batches, so in practice this sees clean entries
    /// only. The debug assertion pins that contract.
    pub fn drop_clean_caches(&mut self) {
        for slot in &mut self.slots {
            let Some(c) = &slot.cache else { continue };
            debug_assert!(
                !c.dirty,
                "clock advanced with a dirty cache outstanding — flush first"
            );
            if c.dirty {
                continue;
            }
            let Cached { key, value, .. } = slot.cache.take().expect("checked above");
            give_to(&mut self.spare, self.spare_cap, key);
            if let Some(v) = value {
                give_to(&mut self.spare, self.spare_cap, v);
            }
        }
    }

    /// True if no operation is busy or queued anywhere.
    pub fn idle(&self) -> bool {
        self.total_tracked == 0
    }
}

struct OpResultValue {
    result: OpResult,
    dirtied: bool,
}

/// Pools `buf` unless the pool is at capacity or the buffer never
/// allocated (zero capacity — pooling it would gain nothing).
fn give_to(spare: &mut Vec<Vec<u8>>, cap: usize, buf: Vec<u8>) {
    if buf.capacity() > 0 && spare.len() < cap {
        spare.push(buf);
    }
}

/// Copies `src` into a pooled buffer (or a fresh one if the pool is dry).
fn clone_pooled(spare: &mut Vec<Vec<u8>>, src: Option<&[u8]>) -> Option<Vec<u8>> {
    src.map(|s| {
        let mut b = spare.pop().unwrap_or_default();
        b.clear();
        b.extend_from_slice(s);
        b
    })
}

/// The station's key hash (a distinct stream from the table's hashes).
fn kvd_station_hash(key: &[u8]) -> u64 {
    // FNV-1a + finisher, seeded differently from the hash index.
    const SEED: u64 = 0x5151_5151_5151_5151;
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ SEED.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl CostSource for ReservationStation {
    fn emit_costs(&self, out: &mut OpLedger) {
        let s = &self.stats;
        out.station.forwarded += s.forwarded;
        out.station.issued += s.issued;
        out.station.queued += s.queued;
        out.station.writebacks += s.writebacks;
        out.station.rejected += s.rejected;
        out.station.reclaimed += s.reclaimed;
        out.station.high_water = out.station.high_water.max(s.high_water);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(id: u64, key: &[u8]) -> StationOp {
        StationOp {
            id,
            key: key.to_vec(),
            kind: KvOpKind::Get,
        }
    }

    fn put(id: u64, key: &[u8], v: &[u8]) -> StationOp {
        StationOp {
            id,
            key: key.to_vec(),
            kind: KvOpKind::Put(v.to_vec()),
        }
    }

    fn incr(id: u64, key: &[u8]) -> StationOp {
        StationOp {
            id,
            key: key.to_vec(),
            kind: KvOpKind::Update(Arc::new(|old| {
                let v = old
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte counter")))
                    .unwrap_or(0);
                Some((v + 1).to_le_bytes().to_vec())
            })),
        }
    }

    #[test]
    fn occupancy_and_high_water_track_capacity() {
        let mut rs = ReservationStation::new(StationConfig {
            hash_slots: 64,
            capacity: 4,
        });
        assert_eq!(rs.occupancy(), 0.0);
        // Same key: one issue + three queued = 4 tracked, full station.
        assert!(matches!(rs.admit(get(1, b"k")), Admission::Issue { .. }));
        for id in 2..5 {
            assert!(matches!(rs.admit(get(id, b"k")), Admission::Queued));
        }
        assert_eq!(rs.occupancy(), 1.0);
        assert!(matches!(rs.admit(get(5, b"k")), Admission::Full(_)));
        // Draining the chain empties the station but the peak sticks.
        let c = rs.complete(b"k", Some(b"v".to_vec()));
        assert_eq!(c.results.len(), 3);
        assert_eq!(rs.occupancy(), 0.0);
        assert_eq!(rs.stats().high_water, 4);
    }

    #[test]
    fn cold_get_issues_then_caches() {
        let mut rs = ReservationStation::new(StationConfig::default());
        let a = rs.admit(get(1, b"k"));
        assert!(matches!(a, Admission::Issue { .. }));
        let c = rs.complete(b"k", Some(b"v1".to_vec()));
        assert!(c.results.is_empty() && c.issue.is_none());
        match rs.admit(get(2, b"k")) {
            Admission::Fast(r) => assert_eq!(r.value.unwrap(), b"v1"),
            a => panic!("expected fast path, got {a:?}"),
        }
        assert_eq!(rs.stats().forwarded, 1);
    }

    #[test]
    fn dependent_ops_queue_and_forward() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(matches!(rs.admit(get(1, b"k")), Admission::Issue { .. }));
        assert!(matches!(rs.admit(put(2, b"k", b"new")), Admission::Queued));
        assert!(matches!(rs.admit(get(3, b"k")), Admission::Queued));
        let c = rs.complete(b"k", Some(b"old".to_vec()));
        assert_eq!(c.results.len(), 2);
        // PUT returns the previous value; the following GET sees the PUT.
        assert_eq!(
            c.results[0],
            OpResult {
                id: 2,
                value: Some(b"old".to_vec())
            }
        );
        assert_eq!(
            c.results[1],
            OpResult {
                id: 3,
                value: Some(b"new".to_vec())
            }
        );
        assert!(c.issue.is_none());
        assert!(rs.idle());
        // The dirtied cache flushes as a write-back PUT.
        let wb = rs.flush();
        assert_eq!(wb, vec![(b"k".to_vec(), Some(b"new".to_vec()))]);
    }

    #[test]
    fn single_key_atomics_forward_one_memory_op() {
        let mut rs = ReservationStation::new(StationConfig::default());
        let n = 100u64;
        let mut issued = 0;
        let mut results = Vec::new();
        for i in 0..n {
            match rs.admit(incr(i, b"ctr")) {
                Admission::Issue { op, .. } => {
                    issued += 1;
                    // Simulate memory: counter was absent; op creates 1.
                    assert_eq!(op.id, 0);
                    let c = rs.complete(b"ctr", Some(1u64.to_le_bytes().to_vec()));
                    results.extend(c.results);
                }
                Admission::Fast(r) => results.push(r),
                a => panic!("unexpected {a:?}"),
            }
        }
        assert_eq!(issued, 1, "only the first atomic touches memory");
        // Original-value semantics: op i observes counter == i.
        // (op 0's own result is produced by the caller, so results are 1..n)
        assert_eq!(results.len() as u64, n - 1);
        for r in &results {
            let v = u64::from_le_bytes(r.value.clone().unwrap().try_into().unwrap());
            assert_eq!(v, r.id, "op {} saw {v}", r.id);
        }
        let wb = rs.flush();
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].1, Some(n.to_le_bytes().to_vec()));
    }

    #[test]
    fn hash_collisions_are_conservative_dependencies() {
        // Find two different keys in the same station slot.
        let cfg = StationConfig {
            hash_slots: 4,
            capacity: 64,
        };
        let mut rs = ReservationStation::new(cfg);
        let base_slot = {
            let mut t = ReservationStation::new(cfg);
            match t.admit(get(0, b"a")) {
                Admission::Issue { .. } => {}
                _ => unreachable!(),
            }
            t.slot_index(b"a")
        };
        let mut collider = None;
        for i in 0u32..1000 {
            let k = format!("x{i}");
            if rs.slot_index(k.as_bytes()) == base_slot && k != "a" {
                collider = Some(k);
                break;
            }
        }
        let collider = collider.expect("4 slots guarantee a collider");
        assert!(matches!(rs.admit(get(1, b"a")), Admission::Issue { .. }));
        // Different key, same slot: must queue (false-positive dep).
        assert!(matches!(
            rs.admit(get(2, collider.as_bytes())),
            Admission::Queued
        ));
        // Completion of "a" must re-issue the collider, not forward it.
        let c = rs.complete(b"a", Some(b"va".to_vec()));
        assert!(c.results.is_empty());
        let issued = c.issue.expect("collider must be issued");
        assert_eq!(issued.key, collider.as_bytes());
        let c2 = rs.complete(collider.as_bytes(), None);
        assert!(c2.results.is_empty() && c2.issue.is_none());
        assert!(rs.idle());
    }

    #[test]
    fn capacity_backpressure() {
        let mut rs = ReservationStation::new(StationConfig {
            hash_slots: 8,
            capacity: 4,
        });
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        for i in 1..4 {
            assert!(matches!(rs.admit(get(i, b"k")), Admission::Queued));
        }
        assert!(matches!(rs.admit(get(4, b"k")), Admission::Full(_)));
        assert_eq!(rs.stats().rejected, 1);
        // Draining frees capacity.
        let c = rs.complete(b"k", None);
        assert_eq!(c.results.len(), 3);
        assert!(matches!(rs.admit(get(5, b"k")), Admission::Fast(_)));
    }

    #[test]
    fn delete_through_cache() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        rs.complete(b"k", Some(b"v".to_vec()));
        match rs.admit(StationOp {
            id: 1,
            key: b"k".to_vec(),
            kind: KvOpKind::Delete,
        }) {
            Admission::Fast(r) => assert_eq!(r.value.unwrap(), b"v"),
            a => panic!("{a:?}"),
        }
        match rs.admit(get(2, b"k")) {
            Admission::Fast(r) => assert_eq!(r.value, None, "deleted via cache"),
            a => panic!("{a:?}"),
        }
        let wb = rs.flush();
        assert_eq!(wb, vec![(b"k".to_vec(), None)]);
    }

    #[test]
    fn eviction_writes_back_dirty_cache() {
        // Two same-slot keys; dirty the first, then admit the second.
        let cfg = StationConfig {
            hash_slots: 1,
            capacity: 16,
        };
        let mut rs = ReservationStation::new(cfg);
        assert!(matches!(
            rs.admit(put(0, b"a", b"1")),
            Admission::Issue { .. }
        ));
        rs.complete(b"a", Some(b"1".to_vec()));
        // Dirty the cache via fast path.
        assert!(matches!(rs.admit(put(1, b"a", b"2")), Admission::Fast(_)));
        // A different key in the (only) slot evicts it.
        match rs.admit(get(2, b"b")) {
            Admission::Issue { writeback, .. } => {
                assert_eq!(writeback, Some((b"a".to_vec(), Some(b"2".to_vec()))));
            }
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn reclaim_installs_no_forwarding_cache() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        let c = rs.reclaim(b"k");
        assert!(c.results.is_empty() && c.issue.is_none());
        assert!(rs.idle());
        assert_eq!(rs.stats().reclaimed, 1);
        // The failed op forwarded nothing: the next same-key op must go to
        // memory itself, not ride a stale fast path.
        assert!(matches!(rs.admit(get(1, b"k")), Admission::Issue { .. }));
    }

    #[test]
    fn reclaim_reissues_next_pending_same_key() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        assert!(matches!(rs.admit(put(1, b"k", b"v")), Admission::Queued));
        assert!(matches!(rs.admit(get(2, b"k")), Admission::Queued));
        let c = rs.reclaim(b"k");
        // The chain must not wedge: the first dependent is re-issued, and
        // nothing is forwarded (there is no value to forward).
        assert!(c.results.is_empty());
        let issued = c.issue.expect("next pending op must re-issue");
        assert_eq!(issued.id, 1);
        assert_eq!(rs.tracked(), 2, "op 1 busy + op 2 still queued");
        // Normal completion of the re-issued op drains the rest.
        let c2 = rs.complete(b"k", Some(b"v".to_vec()));
        assert_eq!(c2.results.len(), 1);
        assert_eq!(c2.results[0].id, 2);
        assert!(rs.idle());
    }

    #[test]
    fn reclaim_reissues_pending_collider() {
        let cfg = StationConfig {
            hash_slots: 1,
            capacity: 16,
        };
        let mut rs = ReservationStation::new(cfg);
        assert!(matches!(rs.admit(get(0, b"a")), Admission::Issue { .. }));
        assert!(matches!(rs.admit(get(1, b"b")), Admission::Queued));
        let c = rs.reclaim(b"a");
        let issued = c.issue.expect("collider must be issued");
        assert_eq!(issued.key, b"b");
        rs.complete(b"b", None);
        assert!(rs.idle());
    }

    #[test]
    #[should_panic(expected = "reclaim for a non-busy slot")]
    fn reclaim_requires_busy_slot() {
        let mut rs = ReservationStation::new(StationConfig::default());
        rs.reclaim(b"nope");
    }

    #[test]
    fn flush_emits_dirty_caches_in_slot_order() {
        // Dirty several slots out of admission order; flush must still
        // walk the bitset in slot-index order, and a second flush (plus a
        // re-dirty) must see a consistent bitset.
        let mut rs = ReservationStation::new(StationConfig::default());
        let keys: Vec<Vec<u8>> = (0u32..32).map(|i| format!("k{i}").into_bytes()).collect();
        for (i, k) in keys.iter().enumerate() {
            match rs.admit(put(i as u64, k, b"v")) {
                Admission::Issue { op, .. } => {
                    rs.complete(&op.key, Some(b"v".to_vec()));
                    // Dirty via the fast path.
                    assert!(matches!(
                        rs.admit(put(100 + i as u64, k, b"w")),
                        Admission::Fast(_)
                    ));
                }
                Admission::Fast(_) => {}
                a => panic!("{a:?}"),
            }
        }
        let wb = rs.flush();
        assert_eq!(wb.len(), keys.len());
        let slots: Vec<usize> = wb.iter().map(|(k, _)| rs.slot_index(k)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted, "write-backs must come out in slot order");
        assert!(rs.flush().is_empty(), "bitset cleared by the first flush");
        // Re-dirtying after a flush sets the bit again.
        assert!(matches!(
            rs.admit(put(999, &keys[0], b"x")),
            Admission::Fast(_)
        ));
        assert_eq!(rs.flush().len(), 1);
    }

    #[test]
    fn recycle_returns_retired_buffers() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(rs.recycle().is_none(), "pool starts empty");
        rs.give(Vec::with_capacity(64));
        let b = rs.recycle().expect("given buffer comes back");
        assert!(b.is_empty() && b.capacity() >= 64, "cleared, capacity kept");
        // Fast-path ops retire their key buffers into the pool; the GET
        // result reuses one, so the cycle is closed by giving it back.
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        rs.complete(b"k", Some(b"v".to_vec()));
        match rs.admit(get(1, b"k")) {
            Admission::Fast(r) => rs.give(r.value.expect("hit")),
            a => panic!("{a:?}"),
        }
        assert!(rs.recycle().is_some(), "retired buffers circulate");
    }

    #[test]
    fn flush_keeps_clean_caches() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        rs.complete(b"k", Some(b"v".to_vec()));
        assert!(rs.flush().is_empty(), "clean cache needs no write-back");
        // Still forwards afterwards.
        assert!(matches!(rs.admit(get(1, b"k")), Admission::Fast(_)));
    }

    #[test]
    fn drop_clean_caches_forces_reissue() {
        let mut rs = ReservationStation::new(StationConfig::default());
        assert!(matches!(rs.admit(get(0, b"k")), Admission::Issue { .. }));
        rs.complete(b"k", Some(b"v".to_vec()));
        assert!(matches!(rs.admit(get(1, b"k")), Admission::Fast(_)));
        rs.drop_clean_caches();
        // The forwarding cache is gone: the next GET must go to memory.
        assert!(matches!(rs.admit(get(2, b"k")), Admission::Issue { .. }));
        // Dropped buffers were pooled, not leaked.
        assert!(rs.recycle().is_some());
    }
}
