//! Property tests for the reservation station.
//!
//! Driving the station the way the KV processor does (issue → execute on
//! a model table → complete; fast paths and chain drains honored), any
//! interleaving over any station geometry must be indistinguishable from
//! a sequential map — the paper's consistency requirement that
//! dependencies are never missed even with false positives.

use std::collections::HashMap;
use std::sync::Arc;

use kvd_ooo::{Admission, KvOpKind, ReservationStation, StationConfig, StationOp};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, Vec<u8>),
    Delete(u8),
    Incr(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(|k| Op::Get(k % 16)),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(k, v)| Op::Put(k % 16, v)),
        any::<u8>().prop_map(|k| Op::Delete(k % 16)),
        any::<u8>().prop_map(|k| Op::Incr(k % 16)),
    ]
}

fn key(k: u8) -> Vec<u8> {
    format!("key{k}").into_bytes()
}

fn to_station(id: u64, op: &Op) -> StationOp {
    let (key, kind) = match op {
        Op::Get(k) => (key(*k), KvOpKind::Get),
        Op::Put(k, v) => (key(*k), KvOpKind::Put(v.clone())),
        Op::Delete(k) => (key(*k), KvOpKind::Delete),
        Op::Incr(k) => (
            key(*k),
            KvOpKind::Update(Arc::new(|old: Option<&[u8]>| {
                let v = old
                    .filter(|b| b.len() >= 8)
                    .map(|b| u64::from_le_bytes(b[..8].try_into().expect("8 bytes")))
                    .unwrap_or(0);
                Some((v + 1).to_le_bytes().to_vec())
            })),
        ),
    };
    StationOp { id, key, kind }
}

/// Drives the station like the processor: a bounded in-flight FIFO,
/// table ops applied at retire time, chains drained with forwarding.
struct Driver {
    rs: ReservationStation,
    table: HashMap<Vec<u8>, Vec<u8>>,
    inflight: std::collections::VecDeque<StationOp>,
    depth: usize,
    results: HashMap<u64, Option<Vec<u8>>>,
}

impl Driver {
    fn new(cfg: StationConfig, depth: usize) -> Self {
        Driver {
            rs: ReservationStation::new(cfg),
            table: HashMap::new(),
            inflight: std::collections::VecDeque::new(),
            depth,
            results: HashMap::new(),
        }
    }

    fn execute(&mut self, op: &StationOp) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
        match &op.kind {
            KvOpKind::Get => {
                let v = self.table.get(&op.key).cloned();
                (v.clone(), v)
            }
            KvOpKind::Put(v) => {
                let old = self.table.insert(op.key.clone(), v.clone());
                (old, Some(v.clone()))
            }
            KvOpKind::Delete => (self.table.remove(&op.key), None),
            KvOpKind::Update(f) => {
                let old = self.table.get(&op.key).cloned();
                let new = f(old.as_deref());
                match &new {
                    Some(v) => {
                        self.table.insert(op.key.clone(), v.clone());
                    }
                    None => {
                        self.table.remove(&op.key);
                    }
                }
                (old, new)
            }
        }
    }

    fn retire_one(&mut self) {
        let Some(op) = self.inflight.pop_front() else {
            return;
        };
        let (result, cache) = self.execute(&op);
        self.results.insert(op.id, result);
        let mut completion = self.rs.complete(&op.key, cache);
        loop {
            for r in completion.results.drain(..) {
                self.results.insert(r.id, r.value);
            }
            if let Some((k, v)) = completion.writeback.take() {
                self.apply_writeback(&k, v);
            }
            match completion.issue.take() {
                Some(next) => {
                    let (result, cache) = self.execute(&next);
                    self.results.insert(next.id, result);
                    completion = self.rs.complete(&next.key, cache);
                }
                None => break,
            }
        }
    }

    fn apply_writeback(&mut self, k: &[u8], v: Option<Vec<u8>>) {
        match v {
            Some(v) => {
                self.table.insert(k.to_vec(), v);
            }
            None => {
                self.table.remove(k);
            }
        }
    }

    fn submit(&mut self, mut op: StationOp) {
        loop {
            match self.rs.admit(op) {
                Admission::Fast(r) => {
                    self.results.insert(r.id, r.value);
                    return;
                }
                Admission::Queued => return,
                Admission::Issue { op, writeback } => {
                    if let Some((k, v)) = writeback {
                        self.apply_writeback(&k, v);
                    }
                    self.inflight.push_back(op);
                    if self.inflight.len() >= self.depth {
                        self.retire_one();
                    }
                    return;
                }
                Admission::Full(back) => {
                    self.retire_one();
                    op = back;
                }
            }
        }
    }

    fn drain(&mut self) {
        while !self.inflight.is_empty() {
            self.retire_one();
        }
        for (k, v) in self.rs.flush() {
            self.apply_writeback(&k, v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The station-driven table equals a sequential map, for tiny slot
    /// counts (maximum collisions), tiny capacities (backpressure), and
    /// shallow pipelines (constant chain churn).
    #[test]
    fn station_is_sequentially_consistent(
        ops in prop::collection::vec(op(), 1..200),
        slots in 1usize..16,
        capacity in 2usize..32,
        depth in 1usize..8,
    ) {
        let mut driver = Driver::new(
            StationConfig { hash_slots: slots, capacity },
            depth,
        );
        // Sequential reference.
        let mut reference: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let mut expected: Vec<Option<Vec<u8>>> = Vec::new();
        for (i, o) in ops.iter().enumerate() {
            let sop = to_station(i as u64, o);
            // Reference semantics mirror the station result values.
            let exp = match o {
                Op::Get(k) => reference.get(&key(*k)).cloned(),
                Op::Put(k, v) => reference.insert(key(*k), v.clone()),
                Op::Delete(k) => reference.remove(&key(*k)),
                Op::Incr(k) => {
                    let old = reference.get(&key(*k)).cloned();
                    let n = old
                        .as_deref()
                        .filter(|b| b.len() >= 8)
                        .map(|b| u64::from_le_bytes(b[..8].try_into().expect("8")))
                        .unwrap_or(0);
                    reference.insert(key(*k), (n + 1).to_le_bytes().to_vec());
                    old
                }
            };
            expected.push(exp);
            driver.submit(sop);
        }
        driver.drain();
        // Every op produced exactly one result with the right value.
        for (i, exp) in expected.iter().enumerate() {
            let got = driver
                .results
                .get(&(i as u64))
                .unwrap_or_else(|| panic!("op {i} produced no result"));
            prop_assert_eq!(got, exp, "result divergence at op {}", i);
        }
        // Final table state matches.
        prop_assert_eq!(&driver.table, &reference);
        prop_assert!(driver.rs.idle());
    }
}
