//! Parallel sharded execution engine — the paper's multi-NIC server
//! (§5.2, Figure 18), simulated rather than composed.
//!
//! Ten programmable NICs in one server give 10 × 180 Mops of NIC-side
//! capacity, but every NIC's DMA engines draw from the same host DRAM
//! controllers, so measured throughput saturates at 1.22 Gops. This
//! module reproduces that experiment structurally: one full timed
//! pipeline ([`SystemSim`]: client ↔ 40 GbE ↔ KV processor ↔ PCIe/DRAM)
//! per shard, key-partitioned request routing via [`kvd_net::shard_of`],
//! and a conservative time-quantum [`HostArbiter`] standing in for the
//! shared host memory.
//!
//! # Synchronization scheme
//!
//! Simulated time advances in *arbiter windows* of one quantum. Window
//! `k` spans `[f_k, f_k + q)`: a shard simulates all request batches that
//! issue inside the window (issue times floored at `f_k`), counting the
//! host cache lines its DMA engines touched. When every shard's window-k
//! traffic is in, the aggregate is charged to the arbiter; an
//! oversubscribed window stretches the next window's floor,
//! `f_{k+1} = f_k + q + stall`, so every shard's subsequent requests are
//! pushed out and aggregate throughput degrades exactly to the host's
//! random-access capacity — the Figure 18 knee emerges from contention,
//! not from a formula.
//!
//! Coordination is *asynchronous*: instead of a global barrier (spawn
//! threads, step every shard, merge every window ledger, repeat each
//! 8 µs quantum), persistent workers draw credit from a
//! [`CreditArbiter`]. A shard publishes its window as three `u64`s
//! through its own atomic cell; whichever publication closes the window
//! settles it and releases the next; shards that cannot touch a window
//! (drained, or next event beyond the horizon) are settled by
//! Chandy–Misra null messages without their threads waking. Per-window
//! `OpLedger` merges are gone from the hot path entirely — each shard's
//! ledger accumulates in place and is folded once per report.
//!
//! # Determinism
//!
//! Within a window each shard's evolution depends only on its own state
//! and the `(horizon, floor)` pair, which is itself a pure function of
//! per-window aggregate traffic — a commutative sum of `u64`s,
//! independent of which OS thread stepped which shard and of how far any
//! worker ran ahead. Worker threads only partition the shard vector;
//! they exchange no other state. A run is therefore bit-identical for
//! any worker count and any lookahead depth, which
//! `tests/parallel_determinism.rs` enforces over a depth × worker ×
//! quantum matrix.

use kvd_net::{shard_of, KvRequest, Status};
use kvd_sim::{
    ArbiterStats, Credit, CreditArbiter, FaultCounters, Histogram, HostArbiterConfig, OpLedger,
    RunSummary, SimTime,
};

use crate::overload::OverloadCounters;
use crate::store::{KvDirectConfig, KvDirectStore, StoreError};
use crate::system::{SystemSim, SystemSimConfig, SystemSimReport};

/// Decorrelates shard fault schedules: shard `i`'s store fault seed is
/// xored with `i * SHARD_FAULT_SALT` so ten NICs never fault in lockstep.
/// Zero-rate planes never consume randomness, so fault-free runs are
/// unaffected by the salt.
const SHARD_FAULT_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// Configuration of the parallel multi-shard engine.
#[derive(Debug, Clone)]
pub struct ParallelSimConfig {
    /// Per-shard pipeline configuration (one NIC's worth).
    pub shard: SystemSimConfig,
    /// Number of shards (NICs).
    pub shards: usize,
    /// OS worker threads stepping the shards; `0` uses the machine's
    /// available parallelism. Results are bit-identical for any value.
    pub workers: usize,
    /// Shared host-memory arbiter.
    pub arbiter: HostArbiterConfig,
    /// Master seed; each shard's rng/jitter forks deterministically from
    /// it, so shard `i` behaves identically regardless of shard count.
    pub seed: u64,
    /// Retain each shard's full individual report in
    /// [`ParallelSimReport::per_shard`]. Off by default: every shard's
    /// report carries its histograms and full op-cost ledger, so a
    /// large-shard-count run would pay O(shards) payload on every
    /// report (and every report clone/compare) for data most callers
    /// never read.
    pub per_shard_reports: bool,
}

impl ParallelSimConfig {
    /// The paper's testbed: `shards` NICs, each running the Figure 17
    /// pipeline, over the shared host-DRAM arbiter.
    pub fn paper(store: KvDirectConfig, batch: usize, shards: usize) -> Self {
        ParallelSimConfig {
            shard: SystemSimConfig::paper(store, batch),
            shards,
            workers: 0,
            arbiter: HostArbiterConfig::paper(),
            seed: 0xF1_618,
            per_shard_reports: false,
        }
    }

    /// Builder flag: retain per-shard reports (see
    /// [`Self::per_shard_reports`]).
    pub fn with_per_shard_reports(mut self) -> Self {
        self.per_shard_reports = true;
        self
    }
}

/// Result of a parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelSimReport {
    /// Shards simulated.
    pub shards: usize,
    /// Aggregate run accounting: op totals, throughput/goodput rates
    /// over the slowest shard's makespan, and shard-merged latency
    /// summaries. Also reachable through `Deref`, so `r.mops` works.
    pub summary: RunSummary,
    /// Overload rollup merged across shards.
    pub overload: OverloadCounters,
    /// Fault rollup merged across shards (stores + network links).
    pub faults: FaultCounters,
    /// The op-cost ledger merged across shards in shard order
    /// (deterministic: bit-identical for any worker count).
    pub ledger: OpLedger,
    /// Each shard's individual report, in shard order. Empty unless
    /// [`ParallelSimConfig::per_shard_reports`] is set.
    pub per_shard: Vec<SystemSimReport>,
    /// Host-memory arbiter activity (windows, oversubscription, stall).
    pub arbiter: ArbiterStats,
}

impl std::ops::Deref for ParallelSimReport {
    type Target = RunSummary;

    fn deref(&self) -> &RunSummary {
        &self.summary
    }
}

/// The parallel sharded simulator.
///
/// # Examples
///
/// ```
/// use kvd_core::parallel::{ParallelSimConfig, ParallelSystemSim};
/// use kvd_core::KvDirectConfig;
/// use kvd_net::KvRequest;
///
/// let mut sim = ParallelSystemSim::new(ParallelSimConfig::paper(
///     KvDirectConfig::with_memory(1 << 20),
///     8,
///     4,
/// ));
/// for id in 0..64u64 {
///     sim.preload_put(&id.to_le_bytes(), b"v").unwrap();
/// }
/// let reqs: Vec<KvRequest> = (0..256u64)
///     .map(|i| KvRequest::get(&(i % 64).to_le_bytes()))
///     .collect();
/// let r = sim.run(&reqs);
/// assert_eq!(r.ops, 256);
/// assert!(r.mops > 0.0);
/// ```
pub struct ParallelSystemSim {
    cfg: ParallelSimConfig,
    sims: Vec<SystemSim>,
    credit: CreditArbiter,
}

impl ParallelSystemSim {
    /// Builds one pipeline per shard, each seeded from the master seed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards == 0`, the arbiter quantum is zero, or the
    /// lookahead depth is zero.
    pub fn new(cfg: ParallelSimConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        let sims = (0..cfg.shards)
            .map(|i| {
                let salt = cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut shard_cfg = cfg.shard.clone();
                shard_cfg.store.fault_seed ^= (i as u64).wrapping_mul(SHARD_FAULT_SALT);
                SystemSim::with_seed(shard_cfg, salt)
            })
            .collect();
        ParallelSystemSim {
            credit: CreditArbiter::new(cfg.arbiter.clone(), cfg.shards),
            sims,
            cfg,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.sims.len()
    }

    /// Preloads a key/value pair into its owning shard (functional path,
    /// outside simulated time).
    pub fn preload_put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let s = shard_of(key, self.sims.len());
        self.sims[s].store_mut().put(key, value)
    }

    /// Direct access to one shard's store (λ registration, preloading).
    pub fn shard_store_mut(&mut self, i: usize) -> &mut KvDirectStore {
        self.sims[i].store_mut()
    }

    fn worker_count(&self) -> usize {
        let w = if self.cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.cfg.workers
        };
        w.clamp(1, self.sims.len())
    }

    /// Records every shard's per-request outcomes for consistency
    /// checking (see [`SystemSim::set_record_outcomes`]).
    pub fn set_record_outcomes(&mut self, on: bool) {
        for sim in &mut self.sims {
            sim.set_record_outcomes(on);
        }
    }

    /// Outcomes shard `i` captured during the last run, aligned with the
    /// requests routed to it (route with [`kvd_net::shard_of`] to
    /// reconstruct the mapping client-side).
    pub fn shard_outcomes(&self, i: usize) -> &[(Status, Vec<u8>)] {
        self.sims[i].outcomes()
    }

    /// Routes the stream to its owning shards, simulates to completion,
    /// and merges the per-shard reports.
    pub fn run(&mut self, reqs: &[KvRequest]) -> ParallelSimReport {
        self.stage(reqs);
        self.drive_staged();
        self.merged_report()
    }

    /// Routes and stages a closed-loop stream without driving it —
    /// [`Self::run`] is `stage` + [`Self::drive_staged`] +
    /// [`Self::merged_report`], split so callers can separate routing
    /// allocations from the allocation-free drive (and time them
    /// independently).
    pub fn stage(&mut self, reqs: &[KvRequest]) {
        // Client-side routing: each key's shard is a pure hash, so the
        // partition is independent of worker count and request order
        // within a shard is preserved. The routed buffers are handed to
        // the shards whole — one clone per request, not two.
        let n = self.sims.len();
        let mut routed: Vec<Vec<KvRequest>> = vec![Vec::new(); n];
        for r in reqs {
            routed[shard_of(&r.key, n)].push(r.clone());
        }
        for (sim, shard_reqs) in self.sims.iter_mut().zip(routed) {
            sim.load_owned(shard_reqs);
        }
    }

    /// Drives the staged streams to completion (see [`Self::stage`]).
    /// Steady-state allocation-free with one worker; multi-worker runs
    /// allocate only the scoped worker threads.
    pub fn drive_staged(&mut self) {
        self.drive();
    }

    /// Open-loop variant of [`Self::run`]: each request carries its
    /// client issue time (non-decreasing). Routing preserves per-shard
    /// arrival order, so every shard sees a sorted sub-schedule.
    pub fn run_open(&mut self, reqs: &[(SimTime, KvRequest)]) -> ParallelSimReport {
        let n = self.sims.len();
        let mut routed: Vec<Vec<KvRequest>> = vec![Vec::new(); n];
        let mut arrivals: Vec<Vec<SimTime>> = vec![Vec::new(); n];
        for (t, r) in reqs {
            let s = shard_of(&r.key, n);
            routed[s].push(r.clone());
            arrivals[s].push(*t);
        }
        for ((sim, shard_reqs), shard_arrivals) in self.sims.iter_mut().zip(routed).zip(arrivals) {
            sim.load_open_owned(shard_reqs, shard_arrivals);
        }
        self.drive();
        self.merged_report()
    }

    /// Drives every shard's staged stream to completion through the
    /// asynchronous credit arbiter: persistent workers draw `(window,
    /// floor, horizon, stall)` credit per shard, publish the three
    /// scalars each window produced, and the arbiter settles windows as
    /// they close (by real publications or by null messages for idle
    /// shards). The settled stall feeds back into each shard as
    /// backpressure (`stall / quantum` host stretch) exactly when the
    /// shard next executes — the only time the gauge is read — so the
    /// per-shard `(absorb, advance)` sequence is bit-identical to the
    /// lockstep barrier's.
    fn drive(&mut self) {
        let quantum = self.credit.quantum();
        let lookahead = u64::from(self.credit.lookahead().max(1));
        self.credit.begin();
        // Shards whose routed stream is empty publish a terminal null up
        // front; the settlement cascade carries them from there.
        for (i, sim) in self.sims.iter().enumerate() {
            if sim.staged_done() {
                self.credit.publish(i, 0, SimTime::MAX, true);
            }
        }
        if !self.credit.all_done() {
            let workers = self.worker_count();
            let credit = &self.credit;
            if workers == 1 {
                Self::work(credit, 0, &mut self.sims, quantum, lookahead);
            } else {
                let chunk = self.sims.len().div_ceil(workers);
                crossbeam::thread::scope(|s| {
                    for (ci, sims) in self.sims.chunks_mut(chunk).enumerate() {
                        s.spawn(move |_| Self::work(credit, ci * chunk, sims, quantum, lookahead));
                    }
                })
                .expect("shard worker panicked");
            }
        }
        // Leave every shard's pressure gauge holding the final window's
        // verdict, as the barrier engine did.
        let stall = self.credit.last_stall();
        for sim in self.sims.iter_mut() {
            sim.absorb_host_stall(stall, quantum);
        }
    }

    /// One worker's loop over its owned shard slice (`base..base +
    /// sims.len()` in global shard indices). Bursts up to `lookahead`
    /// consecutive windows on a shard before servicing the next, and
    /// sleeps on the arbiter only when every owned shard is blocked on
    /// settlement — which, with a single worker, never happens (the
    /// publication closing a window settles it synchronously).
    fn work(
        credit: &CreditArbiter,
        base: usize,
        sims: &mut [SystemSim],
        quantum: SimTime,
        lookahead: u64,
    ) {
        let mut seen = credit.settled();
        loop {
            let mut progressed = false;
            let mut live = false;
            for (off, sim) in sims.iter_mut().enumerate() {
                let shard = base + off;
                let mut burst = 0u64;
                loop {
                    match credit.credit(shard) {
                        Credit::Step {
                            window,
                            floor,
                            horizon,
                            stall,
                        } => {
                            // Fold the settled stall of the previous
                            // window into the shard's backpressure gauge
                            // before stepping (window 0 has no previous
                            // window: its gauge keeps the load-time
                            // zeros, as under the barrier).
                            if window > 0 {
                                sim.absorb_host_stall(stall, quantum);
                            }
                            let w = sim.step_window(horizon, floor);
                            credit.publish(shard, w.host_lines, w.next_event, w.done);
                            progressed = true;
                            if w.done {
                                break;
                            }
                            burst += 1;
                            if burst >= lookahead {
                                live = true;
                                break;
                            }
                        }
                        Credit::Blocked => {
                            live = true;
                            break;
                        }
                        Credit::ShardDone => break,
                    }
                }
            }
            if !live || credit.all_done() {
                return;
            }
            seen = if progressed {
                credit.settled()
            } else {
                credit.wait_progress(seen)
            };
        }
    }

    /// Folds the per-shard state into one report. Shard-order fold:
    /// ledger merge is associative and commutative, but folding in shard
    /// order keeps the invariant trivially auditable (and bit-identical
    /// for any worker count). Per-shard reports are retained only when
    /// [`ParallelSimConfig::per_shard_reports`] is set.
    pub fn merged_report(&self) -> ParallelSimReport {
        let n = self.sims.len();
        let mut ops = 0u64;
        let mut elapsed = SimTime::ZERO;
        let mut goodput_ops = 0u64;
        let mut shed_ops = 0u64;
        let mut expired_ops = 0u64;
        let mut get_hist = Histogram::new();
        let mut put_hist = Histogram::new();
        let mut ledger = OpLedger::default();
        let mut overload = OverloadCounters::default();
        let mut faults = FaultCounters::default();
        let mut per_shard = Vec::new();
        if self.cfg.per_shard_reports {
            per_shard.reserve_exact(n);
        }
        for sim in &self.sims {
            let r = sim.report();
            ops += r.ops;
            elapsed = elapsed.max(r.elapsed);
            goodput_ops += r.goodput_ops;
            shed_ops += r.shed_ops;
            expired_ops += r.expired_ops;
            let (g, p) = sim.histograms();
            get_hist.merge(g);
            put_hist.merge(p);
            ledger.merge(&r.ledger);
            overload.merge(&r.overload);
            faults.merge(&r.faults);
            if self.cfg.per_shard_reports {
                per_shard.push(r);
            }
        }
        ParallelSimReport {
            shards: n,
            summary: RunSummary::new(
                ops,
                elapsed,
                goodput_ops,
                shed_ops,
                expired_ops,
                &get_hist,
                &put_hist,
            ),
            overload,
            faults,
            ledger,
            per_shard,
            arbiter: self.credit.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::DetRng;

    fn workload(n: usize, keys: u64, seed: u64) -> Vec<KvRequest> {
        let mut rng = DetRng::seed(seed);
        (0..n)
            .map(|_| {
                let id = rng.u64_below(keys);
                if rng.chance(0.1) {
                    KvRequest::put(&id.to_le_bytes(), &[9u8; 8])
                } else {
                    KvRequest::get(&id.to_le_bytes())
                }
            })
            .collect()
    }

    fn preloaded(cfg: ParallelSimConfig, keys: u64) -> ParallelSystemSim {
        let mut sim = ParallelSystemSim::new(cfg);
        for id in 0..keys {
            sim.preload_put(&id.to_le_bytes(), &[id as u8; 8])
                .expect("preload fits");
        }
        sim
    }

    #[test]
    fn all_ops_complete_and_land_in_one_histogram() {
        let cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 8, 4)
            .with_per_shard_reports();
        let mut sim = preloaded(cfg, 2_000);
        let r = sim.run(&workload(4_000, 2_000, 11));
        assert_eq!(r.ops, 4_000);
        assert_eq!(r.get_latency.count + r.put_latency.count, 4_000);
        assert_eq!(r.per_shard.iter().map(|s| s.ops).sum::<u64>(), 4_000);
        assert!(r.elapsed > SimTime::ZERO);
        assert!(r.arbiter.windows > 0);
    }

    #[test]
    fn more_shards_give_more_throughput_until_contention() {
        let reqs = workload(20_000, 10_000, 12);
        let mut one = preloaded(
            ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 40, 1),
            10_000,
        );
        let r1 = one.run(&reqs);
        let mut four = preloaded(
            ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 40, 4),
            10_000,
        );
        let r4 = four.run(&reqs);
        assert!(
            r4.mops > r1.mops * 2.5,
            "4 shards {} vs 1 shard {} Mops",
            r4.mops,
            r1.mops
        );
    }

    #[test]
    fn starved_arbiter_never_stalls() {
        // A single lightly-loaded shard cannot oversubscribe host DRAM.
        let cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 1, 1);
        let mut sim = preloaded(cfg, 100);
        let r = sim.run(&workload(200, 100, 13));
        assert_eq!(r.arbiter.oversubscribed, 0);
        assert_eq!(r.arbiter.stall, SimTime::ZERO);
    }

    #[test]
    fn shard_fault_schedules_are_decorrelated() {
        // With faults on, each shard must fault on its own schedule: a
        // lockstep schedule would make every NIC retry the same ops at
        // the same time, which no real deployment does.
        let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 8, 4)
            .with_per_shard_reports();
        cfg.shard.store.fault_rates = kvd_sim::FaultRates::uniform(0.02);
        cfg.shard.store.fault_seed = 9;
        let mut sim = preloaded(cfg, 2_000);
        let r = sim.run(&workload(8_000, 2_000, 15));
        assert!(r.faults.total_faults() > 0, "2% rates over 8k ops fire");
        let per: Vec<u64> = r
            .per_shard
            .iter()
            .map(|s| s.faults.total_faults())
            .collect();
        assert!(
            per.windows(2).any(|w| w[0] != w[1]),
            "identical per-shard fault counts {per:?} suggest lockstep schedules"
        );
        // The merged rollup is exactly the per-shard sum.
        assert_eq!(per.iter().sum::<u64>(), r.faults.total_faults());
    }

    #[test]
    fn open_loop_run_merges_goodput_and_outcomes() {
        let cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 8, 4);
        let mut sim = preloaded(cfg, 1_000);
        sim.set_record_outcomes(true);
        // 4 Mops offered across 4 shards: comfortably under capacity.
        let reqs: Vec<(SimTime, KvRequest)> = workload(2_000, 1_000, 16)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (SimTime::from_ns(250 * i as u64), r))
            .collect();
        let r = sim.run_open(&reqs);
        assert_eq!(r.ops, 2_000);
        assert_eq!(r.goodput_ops, 2_000, "uncongested open loop is all goodput");
        assert_eq!(r.shed_ops + r.expired_ops, 0);
        let recorded: usize = (0..sim.shards()).map(|i| sim.shard_outcomes(i).len()).sum();
        assert_eq!(recorded, 2_000, "every op's outcome captured exactly once");
    }

    #[test]
    fn open_loop_agrees_across_worker_counts() {
        let reqs: Vec<(SimTime, KvRequest)> = workload(4_000, 2_000, 17)
            .into_iter()
            .enumerate()
            .map(|(i, r)| (SimTime::from_ns(50 * i as u64), r))
            .collect();
        let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 16, 6);
        cfg.shard.store.fault_rates = kvd_sim::FaultRates::uniform(0.01);
        cfg.shard.store.overload = crate::overload::OverloadConfig::enabled();
        let mut a = preloaded(
            {
                let mut c = cfg.clone();
                c.workers = 1;
                c
            },
            2_000,
        );
        let mut b = preloaded(
            {
                let mut c = cfg;
                c.workers = 3;
                c
            },
            2_000,
        );
        assert_eq!(a.run_open(&reqs), b.run_open(&reqs));
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let reqs = workload(6_000, 3_000, 14);
        let mut a = preloaded(
            {
                let mut c = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 16, 6);
                c.workers = 1;
                c
            },
            3_000,
        );
        let mut b = preloaded(
            {
                let mut c = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 16, 6);
                c.workers = 3;
                c
            },
            3_000,
        );
        assert_eq!(a.run(&reqs), b.run(&reqs));
    }
}
