//! Pre-registered λ functions (paper Table 1, §3.2).
//!
//! KV-Direct generalizes atomics to user-defined update functions and
//! vector operations. The paper's toolchain duplicates each λ and
//! compiles it to pipelined hardware ahead of time; accordingly, a λ must
//! be registered (by a 16-bit id) before any operation names it. Values
//! touched by vector operations are arrays of fixed-width (8-byte)
//! elements.

use std::collections::HashMap;
use std::sync::Arc;

/// Element width for vector values (bytes).
pub const ELEM_BYTES: usize = 8;

/// A registered function.
#[derive(Clone)]
pub enum Lambda {
    /// `update_scalar2scalar`: λ(old, Δ) → new, on a scalar value.
    Scalar(Arc<dyn Fn(u64, u64) -> u64 + Send + Sync>),
    /// `update_scalar2vector`: λ(element, Δ) → element, over the vector.
    ScalarToVector(Arc<dyn Fn(u64, u64) -> u64 + Send + Sync>),
    /// `update_vector2vector`: λ(element, Δᵢ) → element, elementwise.
    VectorToVector(Arc<dyn Fn(u64, u64) -> u64 + Send + Sync>),
    /// `reduce`: λ(acc, element) → acc.
    Reduce(Arc<dyn Fn(u64, u64) -> u64 + Send + Sync>),
    /// `filter`: λ(element) → keep?
    Filter(Arc<dyn Fn(u64) -> bool + Send + Sync>),
}

impl std::fmt::Debug for Lambda {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Lambda::Scalar(_) => "Scalar",
            Lambda::ScalarToVector(_) => "ScalarToVector",
            Lambda::VectorToVector(_) => "VectorToVector",
            Lambda::Reduce(_) => "Reduce",
            Lambda::Filter(_) => "Filter",
        };
        write!(f, "Lambda::{name}(λ)")
    }
}

/// Well-known builtin λ ids.
pub mod builtin {
    /// Scalar fetch-and-add.
    pub const ADD: u16 = 1;
    /// Scalar fetch-and-max.
    pub const MAX: u16 = 2;
    /// Scalar fetch-and-min.
    pub const MIN: u16 = 3;
    /// Scalar exchange (returns old, stores Δ).
    pub const XCHG: u16 = 4;
    /// Vector: add Δ to every element (`update_scalar2vector`).
    pub const VADD: u16 = 16;
    /// Vector: multiply every element by Δ.
    pub const VSCALE: u16 = 17;
    /// Vector-to-vector elementwise add (`update_vector2vector`).
    pub const VVADD: u16 = 18;
    /// Reduce: sum of elements.
    pub const SUM: u16 = 32;
    /// Reduce: max of elements.
    pub const RMAX: u16 = 33;
    /// Filter: non-zero elements (sparse-vector fetch, paper §3.2).
    pub const NONZERO: u16 = 48;
}

/// The λ registry: id → compiled function.
///
/// # Examples
///
/// ```
/// use kvd_core::{builtin, LambdaRegistry};
///
/// let reg = LambdaRegistry::with_builtins();
/// assert!(reg.get(builtin::ADD).is_some());
/// assert!(reg.get(999).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LambdaRegistry {
    map: HashMap<u16, Lambda>,
}

impl LambdaRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LambdaRegistry::default()
    }

    /// A registry pre-loaded with the builtin functions.
    pub fn with_builtins() -> Self {
        let mut r = LambdaRegistry::new();
        r.register(
            builtin::ADD,
            Lambda::Scalar(Arc::new(|old, d| old.wrapping_add(d))),
        );
        r.register(builtin::MAX, Lambda::Scalar(Arc::new(|old, d| old.max(d))));
        r.register(builtin::MIN, Lambda::Scalar(Arc::new(|old, d| old.min(d))));
        r.register(builtin::XCHG, Lambda::Scalar(Arc::new(|_, d| d)));
        r.register(
            builtin::VADD,
            Lambda::ScalarToVector(Arc::new(|e, d| e.wrapping_add(d))),
        );
        r.register(
            builtin::VSCALE,
            Lambda::ScalarToVector(Arc::new(|e, d| e.wrapping_mul(d))),
        );
        r.register(
            builtin::VVADD,
            Lambda::VectorToVector(Arc::new(|e, d| e.wrapping_add(d))),
        );
        r.register(
            builtin::SUM,
            Lambda::Reduce(Arc::new(|a, e| a.wrapping_add(e))),
        );
        r.register(builtin::RMAX, Lambda::Reduce(Arc::new(|a, e| a.max(e))));
        r.register(builtin::NONZERO, Lambda::Filter(Arc::new(|e| e != 0)));
        r
    }

    /// Registers (or replaces) a λ under `id` — the "compile before use"
    /// step.
    pub fn register(&mut self, id: u16, lambda: Lambda) {
        self.map.insert(id, lambda);
    }

    /// Looks up a λ.
    pub fn get(&self, id: u16) -> Option<&Lambda> {
        self.map.get(&id)
    }
}

/// Decodes a value as a vector of fixed-width elements. Trailing bytes
/// that do not fill an element are ignored (hardware would reject them at
/// registration; we tolerate them for robustness).
pub fn decode_vector(value: &[u8]) -> Vec<u64> {
    value
        .chunks_exact(ELEM_BYTES)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
        .collect()
}

/// Encodes a vector of elements back to bytes.
pub fn encode_vector(elems: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(elems.len() * ELEM_BYTES);
    for e in elems {
        out.extend_from_slice(&e.to_le_bytes());
    }
    out
}

/// Decodes a scalar (8-byte little-endian) value; absent or short values
/// read as zero, so counters spring into existence on first update (the
/// usual sequencer/counter semantics).
pub fn decode_scalar(value: Option<&[u8]>) -> u64 {
    match value {
        Some(v) if v.len() >= ELEM_BYTES => {
            u64::from_le_bytes(v[..ELEM_BYTES].try_into().expect("checked length"))
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_present_and_typed() {
        let r = LambdaRegistry::with_builtins();
        assert!(matches!(r.get(builtin::ADD), Some(Lambda::Scalar(_))));
        assert!(matches!(
            r.get(builtin::VADD),
            Some(Lambda::ScalarToVector(_))
        ));
        assert!(matches!(r.get(builtin::SUM), Some(Lambda::Reduce(_))));
        assert!(matches!(r.get(builtin::NONZERO), Some(Lambda::Filter(_))));
    }

    #[test]
    fn custom_registration_overrides() {
        let mut r = LambdaRegistry::with_builtins();
        r.register(builtin::ADD, Lambda::Scalar(Arc::new(|o, _| o)));
        if let Some(Lambda::Scalar(f)) = r.get(builtin::ADD) {
            assert_eq!(f(7, 100), 7, "override in effect");
        } else {
            panic!("missing after override");
        }
    }

    #[test]
    fn vector_codec_roundtrip() {
        let v = vec![1u64, u64::MAX, 0, 42];
        assert_eq!(decode_vector(&encode_vector(&v)), v);
        // Trailing partial element ignored.
        let mut bytes = encode_vector(&v);
        bytes.push(0xFF);
        assert_eq!(decode_vector(&bytes), v);
    }

    #[test]
    fn scalar_decode_defaults_to_zero() {
        assert_eq!(decode_scalar(None), 0);
        assert_eq!(decode_scalar(Some(b"abc")), 0);
        assert_eq!(decode_scalar(Some(&7u64.to_le_bytes())), 7);
    }
}
