#![warn(missing_docs)]
//! KV-Direct: the key-value processor and public store API.
//!
//! This crate assembles the paper's system (Figure 4): requests decoded
//! from the network enter the **reservation station** (out-of-order
//! engine); independent operations issue into the main pipeline, which
//! walks the **hash index**, allocates from the **slab allocator**, and
//! reaches host memory through the **load-dispatched memory engine**
//! (PCIe + NIC DRAM). Completions return through the station, which
//! forwards data to dependent operations.
//!
//! * [`lambda`] — the pre-registered λ functions behind `update`,
//!   `reduce` and `filter` (Table 1). In the paper these are compiled to
//!   hardware by an HLS toolchain before use; here they are Rust closures
//!   registered before use — the same contract.
//! * [`processor`] — the KV processor: executes request batches with the
//!   station in the loop.
//! * [`store`] — [`KvDirectStore`], the embedder-facing API, plus
//!   [`MultiNicStore`] for the paper's multi-NIC scaling (10 NICs →
//!   1.22 Gops).
//! * [`overload`] — the overload-control plane: watermark admission with
//!   hysteresis, deadline expiry, read-only degradation, and the
//!   [`OverloadCounters`] rollup.
//! * [`parallel`] — the multi-NIC server *simulated*: one timed pipeline
//!   per shard on OS worker threads, synchronized through a host-memory
//!   arbiter so the Figure 18 saturation knee emerges from contention.
//! * [`cluster`] — the multi-node plane: M member hosts in window
//!   lockstep, chain replication over consistent hashing, heartbeat
//!   failure detection and deterministic failover.
//! * [`timing`] — the system-level throughput/latency composition used by
//!   the benchmark harnesses (Figures 16/17/18, Tables 3/4).

pub mod cluster;
pub mod lambda;
pub mod overload;
pub mod parallel;
pub mod processor;
pub mod store;
pub mod system;
pub mod timing;

pub use cluster::{ClusterReport, ClusterSim, ClusterSimConfig, NodeKill, OpRecord};
pub use kvd_hash::{tick_of_us, EXPIRY_TICK_US};
pub use lambda::{builtin, Lambda, LambdaRegistry};
pub use overload::{
    AdmissionController, HotKeyConfig, OverloadConfig, OverloadCounters, Watermarks,
};
pub use parallel::{ParallelSimConfig, ParallelSimReport, ParallelSystemSim};
pub use processor::{KvProcessor, ProcessorStats};
pub use store::{KvDirectConfig, KvDirectStore, MultiNicStore, StoreError};
pub use system::{
    Percentile, RunSummary, StepOutcome, SystemSim, SystemSimConfig, SystemSimReport, WindowStep,
};
pub use timing::{SystemModel, ThroughputBreakdown, WorkloadSpec};
