//! The KV processor (paper Figure 4).
//!
//! Requests flow: decoder → reservation station → operation decoder →
//! hash table / slab allocator → memory engine → completion → back
//! through the station for data forwarding. This module drives those
//! stages functionally with a configurable pipeline depth: issued
//! operations sit in an in-flight FIFO (memory latency) so dependent
//! requests really do queue and forward, exactly as on the FPGA.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use kvd_hash::{HashError, HashTable, HashTableConfig};
use kvd_mem::MemoryEngine;
use kvd_net::{KvRequest, KvRequestRef, KvResponse, OpCode, Status};
use kvd_ooo::{Admission, KvOpKind, ReservationStation, StationConfig, StationOp};
use kvd_sim::{CostSource, FaultPlane, OpLedger, SimTime};

use crate::lambda::{decode_scalar, decode_vector, encode_vector, Lambda, LambdaRegistry};
use crate::overload::{AdmissionController, HotKeyConfig, OverloadConfig, OverloadCounters};

/// Retries the processor grants a memory transaction before surfacing
/// [`Status::DeviceError`] (matches the DMA engine's read retry budget).
pub const DEFAULT_FAULT_RETRY_LIMIT: u32 = 4;

/// Counters for the processor — a *view* over the processor's op-cost
/// ledger (`ledger().core`), not an accumulator of its own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessorStats {
    /// Requests executed.
    pub requests: u64,
    /// GET/REDUCE/FILTER (read-only) requests.
    pub reads: u64,
    /// PUT requests.
    pub puts: u64,
    /// DELETE requests.
    pub deletes: u64,
    /// Atomic update requests (scalar or vector).
    pub updates: u64,
    /// Requests rejected as invalid (unknown λ, wrong type).
    pub invalid: u64,
    /// Requests that hit out-of-memory.
    pub oom: u64,
    /// Station write-backs that failed (should stay zero; see docs).
    pub writeback_failures: u64,
    /// Memory transactions re-run because the fault plane injected a
    /// recoverable fault.
    pub fault_retries: u64,
    /// Requests failed with [`Status::DeviceError`] after the retry
    /// budget ran out; the table was left untouched.
    pub device_errors: u64,
}

/// The hot-key shed policy's live state: a space-saving rollup over
/// hashed request keys, aged by periodic halving so the tracked hot set
/// follows the recent mix. Hashing (the table's primary hash) keeps the
/// rollup allocation-free per request — no key bytes are retained.
#[derive(Debug, Clone)]
struct HotKeyRollup {
    cfg: HotKeyConfig,
    rollup: kvd_mem::SpaceSaving,
    since_halve: u64,
}

impl HotKeyRollup {
    fn new(cfg: HotKeyConfig) -> Self {
        HotKeyRollup {
            rollup: kvd_mem::SpaceSaving::new(cfg.top_k),
            since_halve: 0,
            cfg,
        }
    }

    fn observe(&mut self, key: &[u8]) {
        self.rollup.observe(kvd_hash::hashing::primary_hash(key));
        self.since_halve += 1;
        if self.since_halve >= self.cfg.halve_every {
            self.rollup.halve();
            self.since_halve = 0;
        }
    }

    /// Hot means *provably* hot: the space-saving lower bound
    /// (`count - err`) must reach `min_share` of observed traffic, so a
    /// spread key that merely inherited a displaced slot's inflated count
    /// is never shed by mistake.
    fn is_hot(&self, key: &[u8]) -> bool {
        let total = self.rollup.total();
        if total == 0 {
            return false;
        }
        self.rollup
            .estimate(kvd_hash::hashing::primary_hash(key))
            .is_some_and(|e| {
                e.count.saturating_sub(e.err) as f64 >= self.cfg.min_share * total as f64
            })
    }
}

/// Per-request context needed to build its response from the station's
/// result value. `param` is only retained for ops whose response needs it
/// after completion (REDUCE's initial accumulator) — cloning it for every
/// request would put an allocation back on the hot path.
#[derive(Debug, Clone)]
struct RespCtx {
    op: OpCode,
    lambda: u16,
    param: Vec<u8>,
    /// Absolute lifecycle stamp the request carried (0 = never expires);
    /// read back when the op's PUT retires against the table.
    expiry_tick: u32,
}

/// The KV processor: hash table + slab allocator + reservation station.
///
/// # Examples
///
/// ```
/// use kvd_core::KvProcessor;
/// use kvd_hash::HashTableConfig;
/// use kvd_mem::FlatMemory;
/// use kvd_net::{KvRequest, Status};
///
/// let mut p = KvProcessor::with_flat_memory(1 << 20, 0.5, 24);
/// let rs = p.execute_batch(&[
///     KvRequest::put(b"k", b"v"),
///     KvRequest::get(b"k"),
/// ]);
/// assert_eq!(rs[0].status, Status::Ok);
/// assert_eq!(rs[1].value, b"v");
/// ```
pub struct KvProcessor<M: MemoryEngine> {
    table: HashTable<M>,
    station: ReservationStation,
    registry: LambdaRegistry,
    inflight: VecDeque<StationOp>,
    pipeline_depth: usize,
    responses: Vec<Option<KvResponse>>,
    ctxs: Vec<RespCtx>,
    faults: FaultPlane,
    fault_retry_limit: u32,
    overload_cfg: OverloadConfig,
    admission: Option<AdmissionController>,
    hot_keys: Option<HotKeyRollup>,
    /// When set, `finish` also attributes retire outcomes
    /// (`retired_ok`/`retired_not_found`/`retired_failed`) to the ledger.
    /// Off by default so the hot path stays exactly as wide as before the
    /// ledger existed.
    ledger_detail: bool,
    /// Pressure reported by layers the functional processor cannot see
    /// (decode backlog, PCIe tag pools, host-arbiter stretch); maxed with
    /// the live station occupancy at each admission decision.
    external_pressure: f64,
    /// The simulation clock the deadline gate compares against.
    now: SimTime,
    read_only: bool,
    /// Lifecycle stamps of this batch's TTL'd PUTs, keyed by request key,
    /// so a station write-back re-installs the stamp the merged PUT
    /// carried. Cleared at every batch boundary; empty (and untouched)
    /// for workloads that never stamp anything.
    pending_ttl: HashMap<Vec<u8>, u32>,
    /// Set once any request carries a lifecycle stamp (PUT with TTL, or
    /// touch). Gates the clock-advance cache invalidation so stampless
    /// workloads keep bit-identical forwarding behaviour.
    ttl_seen: bool,
    /// The processor's own slice of the op-cost ledger: request mix,
    /// retire outcomes and overload-plane decisions. Station, slab,
    /// memory and fault costs stay in their components and are folded in
    /// on demand by [`CostSource::emit_costs`].
    ledger: OpLedger,
}

impl KvProcessor<kvd_mem::FlatMemory> {
    /// Convenience constructor over counting-only flat memory.
    pub fn with_flat_memory(total_memory: u64, ratio: f64, inline_threshold: usize) -> Self {
        let table = HashTable::new(
            kvd_mem::FlatMemory::new(total_memory),
            HashTableConfig::new(total_memory, ratio, inline_threshold),
        );
        KvProcessor::new(
            table,
            StationConfig::default(),
            LambdaRegistry::with_builtins(),
        )
    }
}

impl<M: MemoryEngine> KvProcessor<M> {
    /// Creates a processor over an existing table.
    pub fn new(table: HashTable<M>, station: StationConfig, registry: LambdaRegistry) -> Self {
        KvProcessor {
            table,
            station: ReservationStation::new(station),
            registry,
            inflight: VecDeque::new(),
            // The paper saturates PCIe with up to 256 in-flight KV
            // operations; 64 models one DMA-tag window.
            pipeline_depth: 64,
            responses: Vec::new(),
            ctxs: Vec::new(),
            faults: FaultPlane::disabled(),
            fault_retry_limit: DEFAULT_FAULT_RETRY_LIMIT,
            overload_cfg: OverloadConfig::default(),
            admission: None,
            hot_keys: None,
            ledger_detail: false,
            external_pressure: 0.0,
            now: SimTime::ZERO,
            read_only: false,
            pending_ttl: HashMap::new(),
            ttl_seen: false,
            ledger: OpLedger::default(),
        }
    }

    /// Configures the overload plane (admission watermarks, read-only
    /// degradation). The default [`OverloadConfig`] disables everything.
    pub fn set_overload_config(&mut self, cfg: OverloadConfig) {
        self.admission = cfg.admission.map(AdmissionController::new);
        self.hot_keys = cfg.hot_key.map(HotKeyRollup::new);
        self.overload_cfg = cfg;
    }

    /// The tracked hot-key shares (hashed key, estimated count, share of
    /// observed traffic), hottest first; empty when the hot-key policy is
    /// off or nothing has been observed yet.
    pub fn hot_key_shares(&self) -> Vec<(u64, u64, f64)> {
        let Some(hk) = &self.hot_keys else {
            return Vec::new();
        };
        let mut out: Vec<(u64, u64, f64)> = hk
            .rollup
            .entries()
            .iter()
            .map(|e| (e.item, e.count, hk.rollup.share(e.item)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Advances the clock the deadline gate compares request deadlines
    /// against (µs since the client epoch).
    ///
    /// Also drives the table's expiry clock: when the coarse lifecycle
    /// tick advances, previously-live stamps may die, so the station's
    /// clean forwarding caches (which hold values, not stamps) are
    /// dropped — but only once a lifecycle stamp has actually been seen,
    /// so stampless workloads keep bit-identical forwarding behaviour.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
        let tick = kvd_hash::tick_of_us(now.as_ps() / 1_000_000);
        if tick > self.table.now_tick() {
            self.table.set_now_tick(tick);
            if self.ttl_seen {
                self.station.drop_clean_caches();
            }
        }
    }

    /// Reports pressure from layers outside the functional processor
    /// (decode backlog in station-capacities, tag-pool fill, host-arbiter
    /// stretch); the admission decision takes the worst of this and the
    /// live station occupancy.
    pub fn set_external_pressure(&mut self, pressure: f64) {
        self.external_pressure = pressure;
    }

    /// Overload/shed rollup (admissions, sheds by reason, degraded-mode
    /// transitions) — a view over the processor's ledger.
    pub fn overload_counters(&self) -> OverloadCounters {
        let c = &self.ledger.core;
        OverloadCounters {
            admitted: c.admitted,
            shed_overload: c.shed_overload,
            shed_expired: c.shed_expired,
            shed_read_only: c.shed_read_only,
            read_only_entries: c.read_only_entries,
            read_only_exits: c.read_only_exits,
            shed_transitions: c.shed_transitions,
        }
    }

    /// Enables per-retire outcome attribution in the ledger
    /// (`retired_ok`/`retired_not_found`/`retired_failed`). Costs one
    /// branch + increment per response; off by default.
    pub fn set_ledger_detail(&mut self, on: bool) {
        self.ledger_detail = on;
    }

    /// The processor's own ledger slice (request mix, retire outcomes,
    /// overload decisions). For the full rollup including station, slab,
    /// memory and fault costs, use [`CostSource::emit_costs`].
    pub fn ledger(&self) -> &OpLedger {
        &self.ledger
    }

    /// Whether the processor is in read-only degraded mode.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Whether the admission controller is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.admission.as_ref().is_some_and(|a| a.is_shedding())
    }

    /// Live reservation-station occupancy (0..=1 of the 256-op envelope).
    pub fn station_occupancy(&self) -> f64 {
        self.station.occupancy()
    }

    /// Attaches a fault plane: every issued memory transaction draws from
    /// it, retrying recoverable faults up to the retry budget and failing
    /// with [`Status::DeviceError`] (table untouched) past it.
    pub fn set_fault_plane(&mut self, faults: FaultPlane) {
        self.faults = faults;
    }

    /// Overrides the transaction retry budget
    /// ([`DEFAULT_FAULT_RETRY_LIMIT`]).
    pub fn set_fault_retry_limit(&mut self, limit: u32) {
        self.fault_retry_limit = limit;
    }

    /// The processor's fault plane (injection counters live here).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Mutable fault-plane access (rate changes, counter resets).
    pub fn faults_mut(&mut self) -> &mut FaultPlane {
        &mut self.faults
    }

    /// The hash table.
    pub fn table(&self) -> &HashTable<M> {
        &self.table
    }

    /// Mutable access to the table (for preloading in benchmarks).
    pub fn table_mut(&mut self) -> &mut HashTable<M> {
        &mut self.table
    }

    /// The λ registry.
    pub fn registry_mut(&mut self) -> &mut LambdaRegistry {
        &mut self.registry
    }

    /// Counters — a view over the processor's ledger.
    pub fn stats(&self) -> ProcessorStats {
        let c = &self.ledger.core;
        ProcessorStats {
            requests: c.requests,
            reads: c.reads,
            puts: c.puts,
            deletes: c.deletes,
            updates: c.updates,
            invalid: c.invalid,
            oom: c.oom,
            writeback_failures: c.writeback_failures,
            fault_retries: c.fault_retries,
            device_errors: c.device_errors,
        }
    }

    /// Reservation-station counters (forwarding rate etc.).
    pub fn station_stats(&self) -> kvd_ooo::StationStats {
        self.station.stats()
    }

    /// Executes a batch of requests, returning responses in order.
    ///
    /// All effects are applied to the table by return time (dirty
    /// forwarding caches are flushed). Callers whose requests already
    /// live in their own buffers should prefer
    /// [`execute_batch_refs`](Self::execute_batch_refs), which skips the
    /// owned-request construction entirely.
    pub fn execute_batch(&mut self, reqs: &[KvRequest]) -> Vec<KvResponse> {
        self.begin_batch(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            self.admit_request(i, req.as_ref());
        }
        self.finish_batch()
    }

    /// Executes a batch of borrowed requests — the hot path.
    ///
    /// Identical semantics to [`execute_batch`](Self::execute_batch); the
    /// only per-operation allocations left are the ones the reservation
    /// station needs to own its key and (for PUT) its value.
    pub fn execute_batch_refs(&mut self, reqs: &[KvRequestRef<'_>]) -> Vec<KvResponse> {
        self.begin_batch(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            self.admit_request(i, *req);
        }
        self.finish_batch()
    }

    /// Executes a batch of borrowed requests into a caller-owned response
    /// vector. `out` is cleared first; its old response value buffers are
    /// retired into the station's pool, so a caller that loops with one
    /// `Vec` reuses every buffer instead of reallocating.
    pub fn execute_batch_refs_into(
        &mut self,
        reqs: &[KvRequestRef<'_>],
        out: &mut Vec<KvResponse>,
    ) {
        self.begin_batch(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            self.admit_request(i, *req);
        }
        self.drain_and_flush();
        for r in out.drain(..) {
            self.station.give(r.value);
        }
        out.extend(
            self.responses
                .drain(..)
                .map(|r| r.expect("every request produces a response")),
        );
    }

    /// Executes one borrowed request (the embedder API's point ops).
    pub fn execute_one(&mut self, req: KvRequestRef<'_>) -> KvResponse {
        let mut resp = KvResponse {
            status: Status::Ok,
            value: Vec::new(),
        };
        self.execute_one_into(req, &mut resp);
        resp
    }

    /// Executes one borrowed request into a caller-owned response. The
    /// response's previous value buffer is retired into the station's
    /// pool, so a caller that loops with one `KvResponse` runs the
    /// steady-state GET path without a single heap allocation.
    pub fn execute_one_into(&mut self, req: KvRequestRef<'_>, resp: &mut KvResponse) {
        self.begin_batch(1);
        self.admit_request(0, req);
        self.drain_and_flush();
        let r = self.responses[0]
            .take()
            .expect("one request yields one response");
        let old = std::mem::replace(resp, r);
        self.station.give(old.value);
    }

    fn begin_batch(&mut self, n: usize) {
        self.responses.clear();
        self.responses.resize(n, None);
        self.ctxs.clear();
        self.ctxs.reserve(n);
        if !self.pending_ttl.is_empty() {
            self.pending_ttl.clear();
        }
    }

    fn admit_request(&mut self, i: usize, req: KvRequestRef<'_>) {
        self.ctxs.push(RespCtx {
            op: req.op,
            lambda: req.lambda,
            // Only REDUCE reads the parameter after completion.
            param: if req.op == OpCode::Reduce {
                req.value.to_vec()
            } else {
                Vec::new()
            },
            expiry_tick: req.expiry_tick,
        });
        self.ledger.core.requests += 1;
        if let Some(status) = self.overload_gate(req) {
            self.responses[i] = Some(KvResponse {
                status,
                value: Vec::new(),
            });
            return;
        }
        match self.build_station_op(i as u64, req) {
            Ok(op) => self.submit(op),
            Err(status) => {
                self.ledger.core.invalid += 1;
                self.responses[i] = Some(KvResponse {
                    status,
                    value: Vec::new(),
                });
            }
        }
    }

    /// The overload plane's per-request gate, run before any station or
    /// DMA resources are spent. Order matters: an expired request is
    /// dropped no matter what (spending capacity on it helps nobody),
    /// degraded read-only mode sheds allocating writes next, and the
    /// watermark admission controller sees only requests that could
    /// actually execute.
    fn overload_gate(&mut self, req: KvRequestRef<'_>) -> Option<Status> {
        if req.deadline_us != 0 && self.now > SimTime::from_us(req.deadline_us as u64) {
            self.ledger.core.shed_expired += 1;
            return Some(Status::Expired);
        }
        // PUT and the atomic updates allocate; GET reads and DELETE frees,
        // so both stay admissible — deletes are what drain the store back
        // under the exit watermark.
        let allocates = matches!(
            req.op,
            OpCode::Put
                | OpCode::UpdateScalar
                | OpCode::UpdateScalarToVector
                | OpCode::UpdateVector
        );
        if self.read_only && allocates {
            if self.table.memory_utilization() < self.overload_cfg.read_only_exit_utilization {
                self.read_only = false;
                self.ledger.core.read_only_exits += 1;
            } else {
                self.ledger.core.shed_read_only += 1;
                return Some(Status::Overloaded);
            }
        }
        if let Some(ac) = &mut self.admission {
            if let Some(hk) = &mut self.hot_keys {
                hk.observe(req.key);
            }
            let pressure = self.station.occupancy().max(self.external_pressure);
            let was_shedding = ac.is_shedding();
            let shed = ac.observe(pressure);
            if shed != was_shedding {
                self.ledger.core.shed_transitions += 1;
            }
            if shed {
                // Hot-key defense: while pressure stays below the severe
                // mark, shed only the heavy hitters that caused the
                // overload; the spread traffic keeps flowing. At or above
                // severe the carve-out vanishes and everything sheds.
                match self.hot_keys.as_ref().filter(|hk| pressure < hk.cfg.severe) {
                    Some(hk) if hk.is_hot(req.key) => {
                        self.ledger.cache.hot_key_sheds += 1;
                        self.ledger.core.shed_overload += 1;
                        return Some(Status::Overloaded);
                    }
                    Some(_) => {} // spread traffic rides through
                    None => {
                        self.ledger.core.shed_overload += 1;
                        return Some(Status::Overloaded);
                    }
                }
            }
        }
        self.ledger.core.admitted += 1;
        None
    }

    fn finish_batch(&mut self) -> Vec<KvResponse> {
        self.drain_and_flush();
        self.responses
            .drain(..)
            .map(|r| r.expect("every request produces a response"))
            .collect()
    }

    /// Drains the pipeline and flushes dirty caches; applied write-back
    /// buffers are retired into the station's pool.
    fn drain_and_flush(&mut self) {
        while !self.inflight.is_empty() {
            self.retire_one();
        }
        for (key, value) in self.station.flush() {
            self.apply_writeback(&key, value);
            self.station.give(key);
        }
    }

    /// Builds the station operation (with its forwarding-compatible
    /// update closure) for a request.
    fn build_station_op(&mut self, id: u64, req: KvRequestRef<'_>) -> Result<StationOp, Status> {
        let kind = match req.op {
            OpCode::Get | OpCode::Reduce | OpCode::Filter => {
                self.ledger.core.reads += 1;
                // Reduce/filter need a registered λ of the right type.
                match req.op {
                    OpCode::Reduce => match self.registry.get(req.lambda) {
                        Some(Lambda::Reduce(_)) => {}
                        _ => return Err(Status::Invalid),
                    },
                    OpCode::Filter => match self.registry.get(req.lambda) {
                        Some(Lambda::Filter(_)) => {}
                        _ => return Err(Status::Invalid),
                    },
                    _ => {}
                }
                KvOpKind::Get
            }
            OpCode::Put => {
                self.ledger.core.puts += 1;
                if self.table.stamp_dead(req.expiry_tick) {
                    // Dead on arrival (memcache `set` with a past
                    // exptime): the store is acknowledged but the value
                    // must be observably absent. Run it as a delete so
                    // the outcome holds even through the forwarding
                    // cache; the response is still built from the PUT
                    // context.
                    self.ttl_seen = true;
                    if !self.pending_ttl.is_empty() {
                        self.pending_ttl.remove(req.key);
                    }
                    KvOpKind::Delete
                } else {
                    if req.expiry_tick != 0 {
                        self.ttl_seen = true;
                        self.pending_ttl.insert(req.key.to_vec(), req.expiry_tick);
                    } else if !self.pending_ttl.is_empty() {
                        self.pending_ttl.remove(req.key);
                    }
                    let mut v = self.station.recycle().unwrap_or_default();
                    v.extend_from_slice(req.value);
                    KvOpKind::Put(v)
                }
            }
            OpCode::Delete => {
                self.ledger.core.deletes += 1;
                if !self.pending_ttl.is_empty() {
                    self.pending_ttl.remove(req.key);
                }
                KvOpKind::Delete
            }
            OpCode::UpdateScalar => {
                self.ledger.core.updates += 1;
                // λ-updates write back unstamped: an update resets the
                // entry's lifecycle to immortal on every path.
                if !self.pending_ttl.is_empty() {
                    self.pending_ttl.remove(req.key);
                }
                let f = match self.registry.get(req.lambda) {
                    Some(Lambda::Scalar(f)) => Arc::clone(f),
                    _ => return Err(Status::Invalid),
                };
                let param = decode_scalar(Some(req.value));
                KvOpKind::Update(Arc::new(move |old| {
                    let new = f(decode_scalar(old), param);
                    Some(new.to_le_bytes().to_vec())
                }))
            }
            OpCode::UpdateScalarToVector => {
                self.ledger.core.updates += 1;
                // λ-updates write back unstamped: an update resets the
                // entry's lifecycle to immortal on every path.
                if !self.pending_ttl.is_empty() {
                    self.pending_ttl.remove(req.key);
                }
                let f = match self.registry.get(req.lambda) {
                    Some(Lambda::ScalarToVector(f)) => Arc::clone(f),
                    _ => return Err(Status::Invalid),
                };
                let param = decode_scalar(Some(req.value));
                KvOpKind::Update(Arc::new(move |old| {
                    old.map(|bytes| {
                        let elems: Vec<u64> = decode_vector(bytes)
                            .into_iter()
                            .map(|e| f(e, param))
                            .collect();
                        encode_vector(&elems)
                    })
                }))
            }
            OpCode::UpdateVector => {
                self.ledger.core.updates += 1;
                // λ-updates write back unstamped: an update resets the
                // entry's lifecycle to immortal on every path.
                if !self.pending_ttl.is_empty() {
                    self.pending_ttl.remove(req.key);
                }
                let f = match self.registry.get(req.lambda) {
                    Some(Lambda::VectorToVector(f)) => Arc::clone(f),
                    _ => return Err(Status::Invalid),
                };
                let params = decode_vector(req.value);
                KvOpKind::Update(Arc::new(move |old| {
                    old.map(|bytes| {
                        let mut elems = decode_vector(bytes);
                        for (e, p) in elems.iter_mut().zip(&params) {
                            *e = f(*e, *p);
                        }
                        encode_vector(&elems)
                    })
                }))
            }
        };
        let mut key = self.station.recycle().unwrap_or_default();
        key.extend_from_slice(req.key);
        Ok(StationOp { id, key, kind })
    }

    /// Submits one operation to the station, handling backpressure.
    fn submit(&mut self, op: StationOp) {
        let mut op = op;
        loop {
            match self.station.admit(op) {
                Admission::Fast(r) => {
                    self.finish(r.id, r.value, None);
                    return;
                }
                Admission::Queued => return,
                Admission::Issue { op, writeback } => {
                    if let Some((k, v)) = writeback {
                        self.apply_writeback(&k, v);
                        self.station.give(k);
                    }
                    self.inflight.push_back(op);
                    if self.inflight.len() >= self.pipeline_depth {
                        self.retire_one();
                    }
                    return;
                }
                Admission::Full(returned) => {
                    // Backpressure: retire the oldest in-flight op (which
                    // drains its dependency chain) and retry.
                    self.retire_one();
                    op = returned;
                }
            }
        }
    }

    /// Executes the oldest in-flight operation against the table and
    /// reports its completion to the station.
    fn retire_one(&mut self) {
        let Some(op) = self.inflight.pop_front() else {
            return;
        };
        // Each issued op (including colliding-chain re-issues) is one
        // memory transaction with its own fault draw.
        let mut next = Some(op);
        while let Some(mut op) = next.take() {
            let txn = self.faults.transaction(self.fault_retry_limit);
            self.ledger.core.fault_retries += txn.retries as u64;
            let mut completion = if txn.failed {
                // The transaction died in the device after exhausting its
                // retries: the table was never touched, so the station
                // must reclaim the slot without installing a forwarding
                // value — dependents re-reach memory themselves.
                self.ledger.core.device_errors += 1;
                self.finish(op.id, None, Some(Status::DeviceError));
                self.station.reclaim(&op.key)
            } else {
                let (result_value, cache_value, status_override) = self.execute_on_table(&mut op);
                self.finish(op.id, result_value, status_override);
                self.station.complete(&op.key, cache_value)
            };
            // The retired op's buffers feed the next one.
            let StationOp { key, kind, .. } = op;
            self.station.give(key);
            if let KvOpKind::Put(v) = kind {
                self.station.give(v);
            }
            for r in completion.results.drain(..) {
                self.finish(r.id, r.value, None);
            }
            if let Some((k, v)) = completion.writeback.take() {
                self.apply_writeback(&k, v);
                self.station.give(k);
            }
            next = completion.issue.take();
            self.station.give_results(completion.results);
        }
    }

    /// Runs one operation against the hash table.
    ///
    /// Returns `(result value, cache value, status override)`.
    #[allow(clippy::type_complexity)]
    fn execute_on_table(
        &mut self,
        op: &mut StationOp,
    ) -> (Option<Vec<u8>>, Option<Vec<u8>>, Option<Status>) {
        match &mut op.kind {
            KvOpKind::Get => {
                let mut buf = self.station.recycle().unwrap_or_default();
                match self.table.get_into(&op.key, &mut buf) {
                    Some(_) => {
                        let mut result = self.station.recycle().unwrap_or_default();
                        result.extend_from_slice(&buf);
                        (Some(result), Some(buf), None)
                    }
                    None => {
                        self.station.give(buf);
                        (None, None, None)
                    }
                }
            }
            KvOpKind::Put(v) => {
                let exp = self.ctxs[op.id as usize].expiry_tick;
                match self.table.put_ttl(&op.key, v, exp) {
                    // The op's value buffer moves straight into the
                    // forwarding cache; no copy.
                    Ok(_replaced) => (None, Some(std::mem::take(v)), None),
                    Err(e) => {
                        let status = self.map_error(e);
                        // Leave the cache coherent with the table's (old)
                        // contents.
                        let old = self.table.get(&op.key);
                        (None, old, Some(status))
                    }
                }
            }
            KvOpKind::Delete => {
                let existed = self.table.delete(&op.key);
                // A dead-on-arrival PUT runs as a delete; its response is
                // the PUT's Ok, not the delete's found/not-found.
                let status = if existed || self.ctxs[op.id as usize].op == OpCode::Put {
                    Status::Ok
                } else {
                    Status::NotFound
                };
                (None, None, Some(status))
            }
            KvOpKind::Update(f) => {
                let old = self.table.get(&op.key);
                let new = f(old.as_deref());
                match &new {
                    Some(nv) => {
                        if let Err(e) = self.table.put(&op.key, nv) {
                            let status = self.map_error(e);
                            return (old.clone(), old, Some(status));
                        }
                    }
                    None => {
                        if old.is_some() {
                            self.table.delete(&op.key);
                        }
                    }
                }
                (old, new, None)
            }
        }
    }

    fn map_error(&mut self, e: HashError) -> Status {
        match e {
            HashError::OutOfMemory => {
                self.ledger.core.oom += 1;
                if self.overload_cfg.read_only_on_oom && !self.read_only {
                    self.read_only = true;
                    self.ledger.core.read_only_entries += 1;
                }
                Status::OutOfMemory
            }
            HashError::KeyTooLarge | HashError::ValueTooLarge => {
                self.ledger.core.invalid += 1;
                Status::Invalid
            }
        }
    }

    fn apply_writeback(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        let r = match value {
            Some(v) => {
                // A write-back lands with the stamp of the batch's last
                // TTL'd PUT of this key (0 — immortal — otherwise:
                // unstamped PUTs and λ-updates both reset the lifecycle).
                let exp = if self.pending_ttl.is_empty() {
                    0
                } else {
                    self.pending_ttl.get(key).copied().unwrap_or(0)
                };
                let r = self.table.put_ttl(key, &v, exp).map(|_| ());
                self.station.give(v);
                r
            }
            None => {
                self.table.delete(key);
                Ok(())
            }
        };
        if r.is_err() {
            // A write-back can only fail if the cached value grew past
            // available memory; the value is then dropped. Surfaced via
            // stats so benchmarks can assert it never happens.
            self.ledger.core.writeback_failures += 1;
        }
    }

    /// Rewrites `key`'s lifecycle stamp in place (memcache `touch`).
    ///
    /// Returns whether the key was found live. Bypasses the station —
    /// dirty state is flushed first, and since the forwarding caches hold
    /// values (never stamps) a surviving clean cache stays coherent. A
    /// touch into the past kills the entry *now*, so the caches are
    /// dropped in that case before any read can forward the corpse.
    pub fn touch(&mut self, key: &[u8], expiry_tick: u32) -> bool {
        self.drain_and_flush();
        self.ttl_seen = true;
        let found = self.table.touch(key, expiry_tick);
        if found && self.table.stamp_dead(expiry_tick) {
            self.station.drop_clean_caches();
        }
        found
    }

    /// Runs one bounded reaper pass over up to `max_buckets` bucket
    /// chains, reclaiming dead entries through the normal free path.
    /// Returns the sweep's cost/yield so embedders can meter it.
    pub fn sweep_expired(&mut self, max_buckets: u64) -> kvd_hash::SweepCost {
        self.table.sweep_expired(max_buckets)
    }

    /// The table's lifecycle counters (also folded into
    /// [`CostSource::emit_costs`] as the ledger's expiry section).
    pub fn expiry_stats(&self) -> kvd_hash::ExpiryStats {
        self.table.expiry_stats()
    }

    /// Builds and stores the response for request `id`.
    fn finish(&mut self, id: u64, value: Option<Vec<u8>>, status_override: Option<Status>) {
        let ctx = &self.ctxs[id as usize];
        let resp = match status_override {
            Some(status) => KvResponse {
                status,
                value: Vec::new(),
            },
            None => build_response(ctx, value, &self.registry),
        };
        debug_assert!(
            self.responses[id as usize].is_none(),
            "response {id} produced twice"
        );
        if self.ledger_detail {
            // Station-retired outcome attribution (fast-path, issued and
            // chain-forwarded completions all land here; shed/invalid
            // responses are written directly and are already counted by
            // their own ledger channels).
            match resp.status {
                Status::Ok => self.ledger.core.retired_ok += 1,
                Status::NotFound => self.ledger.core.retired_not_found += 1,
                _ => self.ledger.core.retired_failed += 1,
            }
        }
        self.responses[id as usize] = Some(resp);
    }
}

impl<M: MemoryEngine + CostSource> CostSource for KvProcessor<M> {
    fn emit_costs(&self, out: &mut OpLedger) {
        out.merge(&self.ledger);
        self.station.emit_costs(out);
        self.table.allocator().emit_costs(out);
        self.faults.emit_costs(out);
        self.table.mem().emit_costs(out);
        let e = self.table.expiry_stats();
        out.expiry.ttl_puts += e.ttl_puts;
        out.expiry.touches += e.touches;
        out.expiry.lazy_expired += e.lazy_expired;
        out.expiry.expired_overwrites += e.expired_overwrites;
        out.expiry.reaped_entries += e.reaped_entries;
        out.expiry.reaped_bytes += e.reaped_bytes;
        out.expiry.sweep_passes += e.sweep_passes;
        out.expiry.sweep_buckets += e.sweep_buckets;
    }
}

/// Builds the client-visible response from the station's result value.
fn build_response(ctx: &RespCtx, value: Option<Vec<u8>>, registry: &LambdaRegistry) -> KvResponse {
    match ctx.op {
        OpCode::Get => match value {
            Some(v) => KvResponse {
                status: Status::Ok,
                value: v,
            },
            None => KvResponse {
                status: Status::NotFound,
                value: Vec::new(),
            },
        },
        OpCode::Put => KvResponse {
            status: Status::Ok,
            value: Vec::new(),
        },
        OpCode::Delete => KvResponse {
            status: if value.is_some() {
                Status::Ok
            } else {
                Status::NotFound
            },
            value: Vec::new(),
        },
        OpCode::UpdateScalar => KvResponse {
            status: Status::Ok,
            value: decode_scalar(value.as_deref()).to_le_bytes().to_vec(),
        },
        OpCode::UpdateScalarToVector | OpCode::UpdateVector => match value {
            Some(v) => KvResponse {
                status: Status::Ok,
                value: v,
            },
            None => KvResponse {
                status: Status::NotFound,
                value: Vec::new(),
            },
        },
        OpCode::Reduce => match value {
            Some(v) => {
                let f = match registry.get(ctx.lambda) {
                    Some(Lambda::Reduce(f)) => f,
                    _ => unreachable!("validated at submission"),
                };
                let init = decode_scalar(Some(&ctx.param));
                let acc = decode_vector(&v).into_iter().fold(init, |a, e| f(a, e));
                KvResponse {
                    status: Status::Ok,
                    value: acc.to_le_bytes().to_vec(),
                }
            }
            None => KvResponse {
                status: Status::NotFound,
                value: Vec::new(),
            },
        },
        OpCode::Filter => match value {
            Some(v) => {
                let f = match registry.get(ctx.lambda) {
                    Some(Lambda::Filter(f)) => f,
                    _ => unreachable!("validated at submission"),
                };
                let kept: Vec<u64> = decode_vector(&v).into_iter().filter(|e| f(*e)).collect();
                KvResponse {
                    status: Status::Ok,
                    value: encode_vector(&kept),
                }
            }
            None => KvResponse {
                status: Status::NotFound,
                value: Vec::new(),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::{DetRng, ZipfSampler};
    use std::collections::BTreeMap;

    fn proc() -> KvProcessor<kvd_mem::FlatMemory> {
        KvProcessor::with_flat_memory(1 << 20, 0.5, 24)
    }

    #[test]
    fn batch_roundtrip() {
        let mut p = proc();
        let rs = p.execute_batch(&[
            KvRequest::put(b"a", b"1"),
            KvRequest::put(b"b", b"2"),
            KvRequest::get(b"a"),
            KvRequest::get(b"b"),
            KvRequest::get(b"c"),
        ]);
        assert_eq!(rs[2].value, b"1");
        assert_eq!(rs[3].value, b"2");
        assert_eq!(rs[4].status, Status::NotFound);
        let s = p.stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.puts, 2);
        assert_eq!(s.reads, 3);
    }

    #[test]
    fn forwarding_saves_memory_accesses() {
        // A hot key read repeatedly: after the first access, reads come
        // from the station cache without touching memory.
        let mut p = proc();
        p.execute_batch(&[KvRequest::put(b"hot", b"v")]);
        p.table_mut().mem_mut().reset_stats();
        let reqs: Vec<KvRequest> = (0..100).map(|_| KvRequest::get(b"hot")).collect();
        let rs = p.execute_batch(&reqs);
        assert!(rs.iter().all(|r| r.value == b"v"));
        let accesses = p.table().mem().stats().accesses();
        assert!(
            accesses <= 2,
            "hot reads must be forwarded, saw {accesses} accesses"
        );
        assert!(p.station_stats().forwarded >= 99);
    }

    #[test]
    fn single_key_atomics_one_memory_op_per_flush() {
        let mut p = proc();
        let reqs: Vec<KvRequest> = (0..1000)
            .map(|_| KvRequest {
                op: OpCode::UpdateScalar,
                key: b"ctr".to_vec(),
                value: 1u64.to_le_bytes().to_vec(),
                lambda: crate::lambda::builtin::ADD,
                deadline_us: 0,
                expiry_tick: 0,
            })
            .collect();
        let rs = p.execute_batch(&reqs);
        // Original-value semantics: op i observes i.
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(decode_scalar(Some(&r.value)), i as u64);
        }
        // Memory sees the initial miss plus the final write-back, not
        // 1000 RMWs.
        let accesses = p.table().mem().stats().accesses();
        assert!(accesses <= 6, "saw {accesses} accesses for 1000 atomics");
    }

    #[test]
    fn differential_vs_btreemap_reference() {
        // The processor (station + table + caches + write-backs) must be
        // indistinguishable from a plain map under any GET/PUT/DELETE/
        // fetch-add interleaving, per batch and across batches.
        let mut p = proc();
        let mut reference: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = DetRng::seed(2024);
        let zipf = ZipfSampler::new(50, 0.99); // hot keys stress forwarding
        for _batch in 0..60 {
            let mut reqs = Vec::new();
            let mut expected: Vec<Option<Vec<u8>>> = Vec::new();
            for _ in 0..40 {
                let key = format!("k{}", zipf.sample(&mut rng)).into_bytes();
                match rng.u64_below(4) {
                    0 => {
                        let mut v = vec![0u8; 1 + rng.usize_below(40)];
                        rng.fill_bytes(&mut v);
                        reference.insert(key.clone(), v.clone());
                        reqs.push(KvRequest::put(&key, &v));
                        expected.push(None);
                    }
                    1 => {
                        reference.remove(&key);
                        reqs.push(KvRequest::delete(&key));
                        expected.push(None);
                    }
                    2 => {
                        let old =
                            crate::lambda::decode_scalar(reference.get(&key).map(|v| v.as_slice()));
                        reference.insert(key.clone(), (old + 7).to_le_bytes().to_vec());
                        reqs.push(KvRequest {
                            op: OpCode::UpdateScalar,
                            key: key.clone(),
                            value: 7u64.to_le_bytes().to_vec(),
                            lambda: crate::lambda::builtin::ADD,
                            deadline_us: 0,
                            expiry_tick: 0,
                        });
                        expected.push(Some(old.to_le_bytes().to_vec()));
                    }
                    _ => {
                        expected.push(Some(reference.get(&key).cloned().unwrap_or_default()));
                        reqs.push(KvRequest::get(&key));
                    }
                }
            }
            let rs = p.execute_batch(&reqs);
            for (i, (r, e)) in rs.iter().zip(&expected).enumerate() {
                match &reqs[i].op {
                    OpCode::Get => {
                        let want = e.as_ref().expect("get expectation");
                        if want.is_empty() && r.status == Status::NotFound {
                            continue;
                        }
                        assert_eq!(&r.value, want, "GET divergence at op {i}");
                    }
                    OpCode::UpdateScalar => {
                        assert_eq!(&r.value, e.as_ref().unwrap(), "update original at {i}");
                    }
                    _ => {}
                }
            }
        }
        // After the final flush, the table matches the reference exactly.
        for (k, v) in &reference {
            assert_eq!(
                p.table_mut().get(k).as_ref(),
                Some(v),
                "table divergence at {k:?}"
            );
        }
        assert_eq!(p.stats().writeback_failures, 0);
    }

    #[test]
    fn oom_reported_per_request() {
        let mut p = KvProcessor::with_flat_memory(8 << 10, 0.25, 24);
        let reqs: Vec<KvRequest> = (0..500u32)
            .map(|i| KvRequest::put(&i.to_le_bytes(), &[9u8; 100]))
            .collect();
        let rs = p.execute_batch(&reqs);
        let ok = rs.iter().filter(|r| r.status == Status::Ok).count();
        let oom = rs
            .iter()
            .filter(|r| r.status == Status::OutOfMemory)
            .count();
        assert!(ok > 0, "some inserts fit");
        assert!(oom > 0, "overflow reported");
        assert_eq!(ok + oom, 500);
        // Keys that reported Ok are present.
        let mut verified = 0;
        for (i, r) in rs.iter().enumerate() {
            if r.status == Status::Ok {
                assert!(
                    p.table_mut().get(&(i as u32).to_le_bytes()).is_some(),
                    "acknowledged key {i} lost"
                );
                verified += 1;
            }
        }
        assert_eq!(verified, ok);
    }

    #[test]
    fn mixed_vector_and_scalar_batch() {
        let mut p = proc();
        let vec_bytes = crate::lambda::encode_vector(&[1, 2, 3]);
        let rs = p.execute_batch(&[
            KvRequest::put(b"v", &vec_bytes),
            KvRequest {
                op: OpCode::Reduce,
                key: b"v".to_vec(),
                value: 0u64.to_le_bytes().to_vec(),
                lambda: crate::lambda::builtin::SUM,
                deadline_us: 0,
                expiry_tick: 0,
            },
            KvRequest {
                op: OpCode::UpdateScalarToVector,
                key: b"v".to_vec(),
                value: 10u64.to_le_bytes().to_vec(),
                lambda: crate::lambda::builtin::VADD,
                deadline_us: 0,
                expiry_tick: 0,
            },
            KvRequest {
                op: OpCode::Filter,
                key: b"v".to_vec(),
                value: Vec::new(),
                lambda: crate::lambda::builtin::NONZERO,
                deadline_us: 0,
                expiry_tick: 0,
            },
        ]);
        assert_eq!(decode_scalar(Some(&rs[1].value)), 6);
        assert_eq!(crate::lambda::decode_vector(&rs[2].value), vec![1, 2, 3]);
        assert_eq!(crate::lambda::decode_vector(&rs[3].value), vec![11, 12, 13]);
    }

    #[test]
    fn ttl_put_expires_lazily_and_reclaims() {
        let mut p = proc();
        let rs = p.execute_batch(&[
            KvRequest::put(b"mortal", b"v").with_ttl(5),
            KvRequest::put(b"immortal", b"w"),
        ]);
        assert!(rs.iter().all(|r| r.status == Status::Ok));
        // Live before the stamp's tick.
        p.set_now(SimTime::from_us(4_000));
        let rs = p.execute_batch(&[KvRequest::get(b"mortal")]);
        assert_eq!(rs[0].value, b"v");
        // Dead at the stamp's tick: the GET is a miss and the slot frees.
        p.set_now(SimTime::from_us(5_000));
        let rs = p.execute_batch(&[KvRequest::get(b"mortal"), KvRequest::get(b"immortal")]);
        assert_eq!(rs[0].status, Status::NotFound);
        assert_eq!(rs[1].value, b"w");
        assert_eq!(p.table().len(), 1, "dead entry reclaimed on the miss");
        let e = p.expiry_stats();
        assert_eq!(e.ttl_puts, 1);
        assert_eq!(e.lazy_expired, 1);
    }

    #[test]
    fn dead_on_arrival_put_is_acknowledged_but_absent() {
        let mut p = proc();
        p.set_now(SimTime::from_us(10_000));
        // Stamp already in the past: memcache `set` with a past exptime.
        let rs = p.execute_batch(&[KvRequest::put(b"k", b"v").with_ttl(3), KvRequest::get(b"k")]);
        assert_eq!(rs[0].status, Status::Ok, "the store is acknowledged");
        assert_eq!(rs[1].status, Status::NotFound, "but observably absent");
        assert_eq!(p.table().len(), 0);
        // Same when the put lands on an existing live entry.
        p.execute_batch(&[KvRequest::put(b"k", b"live")]);
        let rs = p.execute_batch(&[
            KvRequest::put(b"k", b"dead").with_ttl(3),
            KvRequest::get(b"k"),
        ]);
        assert_eq!(rs[0].status, Status::Ok);
        assert_eq!(rs[1].status, Status::NotFound, "old value not resurrected");
    }

    #[test]
    fn clock_advance_drops_forwarding_caches_only_for_ttl_workloads() {
        // Stampless run: caches survive clock advances bit-identically.
        let mut p = proc();
        p.execute_batch(&[KvRequest::put(b"hot", b"v")]);
        p.set_now(SimTime::from_us(50_000));
        p.table_mut().mem_mut().reset_stats();
        let rs = p.execute_batch(&[KvRequest::get(b"hot")]);
        assert_eq!(rs[0].value, b"v");
        assert!(
            p.table().mem().stats().accesses() == 0,
            "stampless workload keeps its forwarding caches across ticks"
        );

        // TTL'd run: the same advance invalidates the cache, and the
        // re-issued GET observes the table's (expired) truth.
        let mut p = proc();
        p.execute_batch(&[KvRequest::put(b"hot", b"v").with_ttl(5)]);
        p.set_now(SimTime::from_us(5_000));
        let rs = p.execute_batch(&[KvRequest::get(b"hot")]);
        assert_eq!(
            rs[0].status,
            Status::NotFound,
            "cache must not forward a value past its stamp"
        );
    }

    #[test]
    fn writeback_preserves_the_batchs_last_stamp() {
        // Two PUTs of one key in one batch: the second queues behind the
        // first and merges in the station; the flush write-back must
        // carry the *second* put's stamp.
        let mut p = proc();
        let rs = p.execute_batch(&[
            KvRequest::put(b"k", b"v1").with_ttl(100),
            KvRequest::put(b"k", b"v2").with_ttl(5),
        ]);
        assert!(rs.iter().all(|r| r.status == Status::Ok));
        p.set_now(SimTime::from_us(5_000));
        let rs = p.execute_batch(&[KvRequest::get(b"k")]);
        assert_eq!(rs[0].status, Status::NotFound, "merged put's TTL honored");

        // And a stampless overwrite resets the lifecycle to immortal.
        let mut p = proc();
        p.execute_batch(&[
            KvRequest::put(b"k", b"v1").with_ttl(5),
            KvRequest::put(b"k", b"v2"),
        ]);
        p.set_now(SimTime::from_us(60_000));
        let rs = p.execute_batch(&[KvRequest::get(b"k")]);
        assert_eq!(rs[0].value, b"v2", "unstamped overwrite is immortal");
    }

    #[test]
    fn updates_reset_the_lifecycle() {
        let mut p = proc();
        p.execute_batch(&[KvRequest::put(b"ctr", &0u64.to_le_bytes()).with_ttl(5)]);
        let rs = p.execute_batch(&[KvRequest {
            op: OpCode::UpdateScalar,
            key: b"ctr".to_vec(),
            value: 7u64.to_le_bytes().to_vec(),
            lambda: crate::lambda::builtin::ADD,
            deadline_us: 0,
            expiry_tick: 0,
        }]);
        assert_eq!(rs[0].status, Status::Ok);
        // The update rewrote the entry unstamped: it outlives tick 5.
        p.set_now(SimTime::from_us(9_000));
        let rs = p.execute_batch(&[KvRequest::get(b"ctr")]);
        assert_eq!(decode_scalar(Some(&rs[0].value)), 7);
    }

    #[test]
    fn touch_extends_and_kills() {
        let mut p = proc();
        p.execute_batch(&[KvRequest::put(b"k", b"v").with_ttl(5)]);
        assert!(p.touch(b"k", 100), "live key touched");
        p.set_now(SimTime::from_us(50_000));
        let rs = p.execute_batch(&[KvRequest::get(b"k")]);
        assert_eq!(rs[0].value, b"v", "touch extended the lifetime");
        // Touch into the past: dead immediately, cache dropped.
        p.set_now(SimTime::from_us(60_000));
        assert!(p.touch(b"k", 55));
        let rs = p.execute_batch(&[KvRequest::get(b"k")]);
        assert_eq!(rs[0].status, Status::NotFound);
        // Touching a missing key reports absence.
        assert!(!p.touch(b"nope", 10));
        assert_eq!(p.expiry_stats().touches, 2);
    }

    #[test]
    fn sweep_reclaims_dead_entries_in_bulk() {
        let mut p = proc();
        let reqs: Vec<KvRequest> = (0..200u32)
            .map(|i| KvRequest::put(&i.to_le_bytes(), b"payload").with_ttl(1 + (i % 3)))
            .collect();
        p.execute_batch(&reqs);
        assert_eq!(p.table().len(), 200);
        p.set_now(SimTime::from_us(10_000)); // everything is dead now
        let buckets = p.table().n_buckets();
        let mut reclaimed = 0;
        // Bounded passes: each sweeps a slice of the bucket space.
        for _ in 0..buckets.div_ceil(8) {
            reclaimed += p.sweep_expired(8).reclaimed;
        }
        assert_eq!(reclaimed, 200, "reaper reclaimed every dead entry");
        assert_eq!(p.table().len(), 0);
        let e = p.expiry_stats();
        assert_eq!(e.reaped_entries, 200);
        assert!(e.sweep_passes > 0 && e.sweep_buckets > 0);
    }

    #[test]
    fn chained_same_key_ops_fail_independently_under_total_faults() {
        use kvd_sim::{FaultPlane, FaultRates};
        // Three ops on one key queue behind each other in the station.
        // With every DMA transaction failing, each must be retired with
        // DeviceError via the reclaim path (no forwarding cache installed,
        // no table mutation, chain still drains).
        let mut p = proc();
        p.set_fault_plane(FaultPlane::new(
            FaultRates {
                pcie_corrupt: 1.0,
                ..FaultRates::ZERO
            },
            5,
        ));
        let rs = p.execute_batch(&[
            KvRequest::put(b"k", b"v1"),
            KvRequest::put(b"k", b"v2"),
            KvRequest::get(b"k"),
        ]);
        assert!(rs.iter().all(|r| r.status == Status::DeviceError));
        assert_eq!(p.table().len(), 0, "no failed op reached the table");
        assert_eq!(p.stats().device_errors, 3);
        assert_eq!(p.station_stats().reclaimed, 3, "every op reclaimed");
    }

    #[test]
    fn faulty_processor_never_loses_acknowledged_writes() {
        use kvd_sim::{FaultPlane, FaultRates};
        // Under moderate fault rates, an op's acknowledgement must be
        // truthful: Ok puts are durable, DeviceError puts left no trace.
        let mut p = proc();
        p.set_fault_plane(FaultPlane::new(FaultRates::uniform(0.3), 77));
        let reqs: Vec<KvRequest> = (0..500u32)
            .map(|i| KvRequest::put(&i.to_le_bytes(), &i.to_le_bytes()))
            .collect();
        let rs = p.execute_batch(&reqs);
        let mut oks = 0;
        let mut errs = 0;
        for (i, r) in rs.iter().enumerate() {
            let key = (i as u32).to_le_bytes();
            match r.status {
                Status::Ok => {
                    assert!(
                        p.table_mut().get(&key).is_some(),
                        "acknowledged key {i} lost"
                    );
                    oks += 1;
                }
                Status::DeviceError => {
                    assert!(p.table_mut().get(&key).is_none(), "failed key {i} applied");
                    errs += 1;
                }
                s => panic!("unexpected status {s:?}"),
            }
        }
        assert!(oks > 400, "retry budget absorbs most faults: {oks}");
        assert!(
            errs > 0,
            "~0.55^5 per-op exhaustion should fire over 500 ops"
        );
        assert_eq!(p.stats().device_errors, errs);
        assert_eq!(p.faults().counters().exhausted, errs);
    }
}
