//! Admission control and overload accounting.
//!
//! KV-Direct's pipeline keeps its 180 Mops only while the reservation
//! station, the DMA tag pools and the host arbiter stay inside their
//! capacity envelopes; past them, every queued operation adds latency
//! without adding throughput, and a system without shedding slides into
//! congestion collapse (all capacity spent serving requests whose clients
//! have already timed out). The [`AdmissionController`] is the standard
//! antidote: a watermark pair with hysteresis. Shedding starts when the
//! dominant pressure signal crosses the *high* watermark and stops only
//! after it falls back below the *low* one, so a pressure trace that
//! oscillates between the watermarks cannot flap the admission decision
//! on every request.
//!
//! [`OverloadCounters`] is the rollup the store and the simulations
//! expose, mirroring `FaultCounters` for the fault plane: every shed
//! (and the reason), every degraded-mode transition.

/// Hysteresis watermark pair for the admission controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watermarks {
    /// Shedding stops when pressure falls to or below this.
    pub low: f64,
    /// Shedding starts when pressure reaches or exceeds this.
    pub high: f64,
}

impl Watermarks {
    /// Defaults tuned for the station envelope: shed at 85% occupancy,
    /// re-admit below 50%.
    pub fn paper() -> Self {
        Watermarks {
            low: 0.5,
            high: 0.85,
        }
    }
}

/// Hot-key-aware shedding policy layered on the admission controller.
///
/// Under a skewed adversarial mix (Zipf 1.2 and beyond) indiscriminate
/// watermark shedding throws away the long tail along with the hot keys
/// that caused the overload. With this policy enabled the processor keeps
/// a space-saving rollup of hashed request keys; while the controller is
/// shedding but pressure is still below [`HotKeyConfig::severe`], only
/// requests for tracked heavy hitters whose traffic share is at or above
/// [`HotKeyConfig::min_share`] are shed — the spread traffic keeps
/// flowing. At or above `severe` the carve-out disappears and everything
/// sheds, exactly as without the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotKeyConfig {
    /// Heavy-hitter slots tracked in the space-saving rollup.
    pub top_k: usize,
    /// Minimum tracked traffic share for a key to count as hot.
    pub min_share: f64,
    /// Pressure at or above which shedding is unconditional again.
    pub severe: f64,
    /// Observations between halvings of the rollup, so the hot set
    /// tracks the recent mix instead of all history.
    pub halve_every: u64,
}

impl HotKeyConfig {
    /// Defaults sized for the paper's station envelope: 16 tracked keys,
    /// a key is hot at 5% of traffic, unconditional shedding resumes at
    /// 95% pressure, and the rollup ages every 64 Ki observations.
    pub fn paper() -> Self {
        HotKeyConfig {
            top_k: 16,
            min_share: 0.05,
            severe: 0.95,
            halve_every: 1 << 16,
        }
    }
}

/// Configuration of the overload plane, carried in `KvDirectConfig`.
///
/// Everything defaults to *off* so existing closed-loop workloads (which
/// legitimately keep the pipeline saturated) are untouched; open-loop
/// drivers and overload-aware embedders opt in.
#[derive(Debug, Clone, Default)]
pub struct OverloadConfig {
    /// Watermark-based admission control; `None` disables shedding.
    pub admission: Option<Watermarks>,
    /// Hot-key-aware shedding; `None` sheds indiscriminately whenever the
    /// admission controller says shed. Only meaningful when `admission`
    /// is set.
    pub hot_key: Option<HotKeyConfig>,
    /// Enter read-only mode when a write fails for memory exhaustion
    /// (writes shed with `Overloaded`, reads still served) instead of
    /// failing every subsequent write with `OutOfMemory`.
    pub read_only_on_oom: bool,
    /// Leave read-only mode once memory utilization falls below this
    /// fraction (deletes drain the store); hysteresis against re-entering
    /// on the next insert.
    pub read_only_exit_utilization: f64,
}

impl OverloadConfig {
    /// The enabled profile: paper watermarks, read-only degradation with
    /// exit at 70% memory utilization. Hot-key awareness stays off; use
    /// [`OverloadConfig::hot_key_aware`] for the full defense.
    pub fn enabled() -> Self {
        OverloadConfig {
            admission: Some(Watermarks::paper()),
            hot_key: None,
            read_only_on_oom: true,
            read_only_exit_utilization: 0.7,
        }
    }

    /// The enabled profile plus per-hot-key shedding.
    pub fn hot_key_aware() -> Self {
        OverloadConfig {
            hot_key: Some(HotKeyConfig::paper()),
            ..OverloadConfig::enabled()
        }
    }
}

/// The watermark admission controller.
///
/// # Examples
///
/// ```
/// use kvd_core::{AdmissionController, Watermarks};
///
/// let mut ac = AdmissionController::new(Watermarks { low: 0.5, high: 0.85 });
/// assert!(!ac.observe(0.84)); // below high: admit
/// assert!(ac.observe(0.85)); // crossed high: shed
/// assert!(ac.observe(0.6)); // still above low: keep shedding (hysteresis)
/// assert!(!ac.observe(0.5)); // back at low: admit again
/// assert_eq!(ac.transitions(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionController {
    marks: Watermarks,
    shedding: bool,
    transitions: u64,
}

impl AdmissionController {
    /// Creates a controller in the admitting state.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= low <= high`.
    pub fn new(marks: Watermarks) -> Self {
        assert!(
            marks.low >= 0.0 && marks.low <= marks.high,
            "watermarks must satisfy 0 <= low <= high"
        );
        AdmissionController {
            marks,
            shedding: false,
            transitions: 0,
        }
    }

    /// Feeds one pressure sample; returns whether to shed the request
    /// that produced it.
    pub fn observe(&mut self, pressure: f64) -> bool {
        if self.shedding {
            if pressure <= self.marks.low {
                self.shedding = false;
                self.transitions += 1;
            }
        } else if pressure >= self.marks.high {
            self.shedding = true;
            self.transitions += 1;
        }
        self.shedding
    }

    /// Whether the controller is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }

    /// State flips (admit→shed and shed→admit) so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The configured watermarks.
    pub fn watermarks(&self) -> Watermarks {
        self.marks
    }
}

/// Rollup of shedding and degraded-mode activity, mirroring
/// `FaultCounters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadCounters {
    /// Requests that passed every overload gate.
    pub admitted: u64,
    /// Requests shed with `Status::Overloaded` by the admission
    /// controller.
    pub shed_overload: u64,
    /// Requests dropped with `Status::Expired` — their deadline had
    /// passed before execution.
    pub shed_expired: u64,
    /// Writes shed with `Status::Overloaded` while in read-only mode.
    pub shed_read_only: u64,
    /// Entries into read-only mode (slab exhaustion).
    pub read_only_entries: u64,
    /// Exits from read-only mode (memory drained below the exit
    /// watermark).
    pub read_only_exits: u64,
    /// Admission-controller state flips (both directions).
    pub shed_transitions: u64,
}

impl OverloadCounters {
    /// Accumulates another rollup into this one (multi-shard merges).
    pub fn merge(&mut self, other: &OverloadCounters) {
        self.admitted += other.admitted;
        self.shed_overload += other.shed_overload;
        self.shed_expired += other.shed_expired;
        self.shed_read_only += other.shed_read_only;
        self.read_only_entries += other.read_only_entries;
        self.read_only_exits += other.read_only_exits;
        self.shed_transitions += other.shed_transitions;
    }

    /// Requests shed for any reason.
    pub fn total_shed(&self) -> u64 {
        self.shed_overload + self.shed_expired + self.shed_read_only
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_sheds_below_low_watermark() {
        let mut ac = AdmissionController::new(Watermarks::paper());
        for p in [0.0, 0.1, 0.3, 0.49, 0.2, 0.0] {
            assert!(!ac.observe(p), "shed at pressure {p}");
        }
        assert_eq!(ac.transitions(), 0);
    }

    #[test]
    fn always_sheds_at_or_above_high_watermark() {
        let mut ac = AdmissionController::new(Watermarks::paper());
        for p in [0.85, 0.9, 1.0, 2.5] {
            assert!(ac.observe(p), "admitted at pressure {p}");
        }
    }

    #[test]
    fn hysteresis_holds_between_watermarks() {
        let mut ac = AdmissionController::new(Watermarks::paper());
        // Rising through the band: still admitting.
        assert!(!ac.observe(0.7));
        // Cross high: shed.
        assert!(ac.observe(0.9));
        // Fall back into the band: STILL shedding — no flap.
        assert!(ac.observe(0.7));
        assert!(ac.observe(0.6));
        // Only crossing low clears it.
        assert!(!ac.observe(0.4));
        assert!(!ac.observe(0.7));
        assert_eq!(ac.transitions(), 2);
    }

    #[test]
    fn counters_merge_componentwise() {
        let a = OverloadCounters {
            admitted: 10,
            shed_overload: 2,
            shed_expired: 1,
            shed_read_only: 3,
            read_only_entries: 1,
            read_only_exits: 1,
            shed_transitions: 4,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.admitted, 20);
        assert_eq!(b.total_shed(), 12);
        assert_eq!(b.shed_transitions, 8);
    }
}
