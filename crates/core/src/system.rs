//! Timed end-to-end system simulation (client ↔ NIC ↔ host memory).
//!
//! The composition model in [`crate::timing`] predicts throughput and
//! latency analytically; this module *simulates* them: a closed-loop
//! client sends batched request packets over the 40 GbE model, the KV
//! processor executes each operation functionally (so access counts are
//! real, per operation), and every memory access is charged to the PCIe
//! DMA ports or the NIC DRAM channel in simulated time, respecting
//! dependency order (a GET's data read waits for its bucket read; posted
//! writes do not extend the critical path). Client-observed latencies
//! land in a histogram, yielding the paper's 5th/95th-percentile error
//! bars (Figure 17) from first principles.
//!
//! The simulator is *steppable*: [`SystemSim::load`] stages a request
//! stream and [`SystemSim::step`] advances it only up to a time horizon,
//! reporting how many host-memory cache lines the window consumed. The
//! parallel multi-NIC engine ([`crate::parallel`]) drives one `SystemSim`
//! per shard in lockstep windows and charges their aggregate host traffic
//! to a shared DRAM arbiter; [`SystemSim::run`] is the single-shard
//! convenience that steps to completion in one unbounded window.
//!
//! # Open-loop mode and the overload plane
//!
//! [`SystemSim::load_open`] stages an *arrival schedule* instead of a
//! closed loop: each request carries the instant its client issues it,
//! independent of responses. Offered load can then exceed capacity,
//! which is where the overload plane earns its keep: a per-batch
//! [`PressureGauge`] folds the simulated-time backlogs (decode queue,
//! PCIe tag pressure, host-arbiter stretch) into the store's admission
//! controller, the decode clock drives server-side deadline expiry, and
//! requests already past their deadline at batch-cut are dropped at the
//! client before burning wire bandwidth. [`SystemSimReport`] separates
//! *goodput* (useful, on-time responses) from raw completions, and the
//! request/response links inherit the store's fault plane so packet
//! drops and reorders ride the same deterministic schedule.

use kvd_mem::MemoryEngine;
use kvd_net::{KvRequest, KvResponse, NetConfig, NetLink, OpCode, Status};
use kvd_pcie::PcieConfig;
use kvd_sim::{
    Bandwidth, CostSource, DetRng, FaultCounters, FaultPlane, Freq, Histogram, OpClass, OpLedger,
    PressureGauge, SimTime,
};
pub use kvd_sim::{Percentile, RunSummary};

use crate::overload::OverloadCounters;
use crate::store::{KvDirectConfig, KvDirectStore};

/// Salt separating the network links' fault stream from the store's
/// (memory + processor) streams derived from the same `fault_seed`.
const NET_FAULT_SALT: u64 = 0x6E65_745F_6C6E_6B73; // "net_lnks"

/// Configuration of the end-to-end simulation.
#[derive(Debug, Clone)]
pub struct SystemSimConfig {
    /// Store configuration (memory sizes, ratios).
    pub store: KvDirectConfig,
    /// Network model.
    pub net: NetConfig,
    /// Per-endpoint PCIe model.
    pub pcie: PcieConfig,
    /// PCIe endpoints (paper: 2).
    pub pcie_ports: usize,
    /// NIC DRAM random access time per 64 B line.
    pub dram_access: SimTime,
    /// Processor clock (one op decodes per cycle).
    pub clock: Freq,
    /// Operations per request packet (1 = no batching).
    pub batch: usize,
    /// Client windows kept in flight (closed loop).
    pub windows: usize,
}

impl SystemSimConfig {
    /// The paper's testbed at the given store scale.
    pub fn paper(store: KvDirectConfig, batch: usize) -> Self {
        SystemSimConfig {
            store,
            net: NetConfig::forty_gbe(),
            pcie: PcieConfig::gen3_x8(),
            pcie_ports: 2,
            dram_access: SimTime::from_ns(120),
            clock: Freq::from_mhz(180),
            batch,
            windows: 8,
        }
    }
}

/// Result of a simulation run: the shared [`RunSummary`] accounting
/// (throughput, goodput, latency percentiles — the report derefs to it),
/// plus the store-side counter views and the full op-cost ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSimReport {
    /// Core run accounting (ops, rates, latency summaries).
    pub summary: RunSummary,
    /// Store-side overload rollup (admissions, sheds by reason,
    /// degraded-mode transitions) — a view over `ledger.core`.
    pub overload: OverloadCounters,
    /// Fault rollup across the store *and* both network links — a view
    /// over the ledger's fault channels.
    pub faults: FaultCounters,
    /// The full op-cost ledger: per-plane traffic, retire outcomes,
    /// per-component latency attribution and backpressure terms.
    pub ledger: OpLedger,
}

impl std::ops::Deref for SystemSimReport {
    type Target = RunSummary;

    fn deref(&self) -> &RunSummary {
        &self.summary
    }
}

/// The end-to-end simulator.
///
/// # Examples
///
/// ```
/// use kvd_core::system::{SystemSim, SystemSimConfig, Percentile};
/// use kvd_core::KvDirectConfig;
/// use kvd_net::KvRequest;
///
/// let mut sim = SystemSim::new(SystemSimConfig::paper(
///     KvDirectConfig::with_memory(1 << 20),
///     8,
/// ));
/// // Preload, then measure a GET-only stream.
/// sim.store_mut().put(b"k", b"v").unwrap();
/// let reqs: Vec<KvRequest> = (0..256).map(|_| KvRequest::get(b"k")).collect();
/// let report = sim.run(&reqs);
/// assert!(report.get_us(Percentile::P50) > 1.0); // at least the network RTT
/// ```
pub struct SystemSim {
    cfg: SystemSimConfig,
    store: KvDirectStore,
    req_link: NetLink,
    resp_link: NetLink,
    rng: DetRng,
    /// Service time per 64 B host line across all PCIe endpoints: the
    /// tag-limited random-read rate (tags / mean RTT) or the wire
    /// bandwidth, whichever is slower.
    pcie_line_service: SimTime,
    /// Service time per 64 B line of NIC DRAM channel bandwidth.
    dram_line_service: SimTime,
    /// Fluid backlog clocks: how far each resource's committed work
    /// extends into the future.
    pcie_free: SimTime,
    dram_free: SimTime,
    // ---- staged run state (load/step/report) ----
    pending: Vec<KvRequest>,
    loads: Vec<OpLoad>,
    statuses: Vec<Status>,
    cursor: usize,
    window_free: Vec<SimTime>,
    server_free: SimTime,
    get_hist: Histogram,
    put_hist: Histogram,
    ops_done: u64,
    makespan: SimTime,
    // ---- open-loop + overload state ----
    /// Per-request client issue times; empty in closed-loop mode.
    arrivals: Vec<SimTime>,
    open_loop: bool,
    record_outcomes: bool,
    outcomes: Vec<(Status, Vec<u8>)>,
    /// The one response buffer the functional pass decodes into,
    /// persisted across batches (and runs) so its value buffer keeps
    /// circulating through the processor's pool instead of leaking one
    /// pooled buffer per batch.
    resp: KvResponse,
    goodput_ops: u64,
    shed_ops: u64,
    expired_ops: u64,
    /// The sim-side slice of the op-cost ledger: wire batch accounting,
    /// per-component latency attribution, and the raw backpressure terms
    /// the [`PressureGauge`] is computed from. Component costs (store,
    /// links) stay in their components; [`Self::ledger`] folds everything
    /// together.
    ledger: OpLedger,
}

/// One operation's captured memory-access load, charged against the
/// timed service models (scratch state between the functional and timed
/// passes of a batch).
#[derive(Debug, Clone, Copy)]
struct OpLoad {
    /// Absolute index of the request in the staged stream.
    idx: usize,
    t: SimTime,
    dma_reads: u64,
    dram_reads: u64,
    dma_writes: u64,
    dram_writes: u64,
    /// Picoseconds attributed to the processor (decode backlog + own
    /// decode cycles).
    proc_ps: u64,
    /// Picoseconds attributed to PCIe (queueing on the tag-limited path
    /// + DMA round trips).
    pcie_ps: u64,
    /// Picoseconds attributed to NIC DRAM (queueing + line accesses).
    dram_ps: u64,
}

/// What one [`SystemSim::step`] window consumed and whether the stream is
/// drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// The window's op-cost delta: everything the ledger accrued between
    /// step entry and exit (operations that *started* inside the window;
    /// see [`OpLedger::since`]).
    pub window: OpLedger,
    /// True once every staged request has completed.
    pub done: bool,
}

impl StepOutcome {
    /// Host-memory cache lines (PCIe DMA reads + writes) issued inside
    /// the window. The arbiter charges these against shared host DRAM
    /// bandwidth.
    pub fn host_lines(&self) -> u64 {
        self.window.host_lines()
    }
}

/// The lean window summary returned by [`SystemSim::step_window`]: just
/// the three scalars the credit arbiter settles on, no ledger
/// materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStep {
    /// Host-memory cache lines (PCIe DMA reads + writes) issued inside
    /// the window — identical to [`StepOutcome::host_lines`] for the
    /// same window (the simulator's PCIe DMA ledger entries are sourced
    /// solely from the memory engine's access counters).
    pub host_lines: u64,
    /// The shard's next natural event time (see [`SystemSim::next_event`]):
    /// the earliest instant at which its next batch could cut, before any
    /// floor is applied. [`SimTime::MAX`] once the stream is drained.
    pub next_event: SimTime,
    /// True once every staged request has completed.
    pub done: bool,
}

impl SystemSim {
    /// Builds the simulator with the default seed.
    pub fn new(cfg: SystemSimConfig) -> Self {
        Self::with_seed(cfg, 0xE2E0)
    }

    /// Builds the simulator with an explicit seed; every source of
    /// simulated nondeterminism (read-latency jitter, tie-breaking
    /// noise) derives from it, so two sims with equal config + seed
    /// evolve bit-identically.
    pub fn with_seed(cfg: SystemSimConfig, seed: u64) -> Self {
        let windows = cfg.windows.max(1);
        let ports = cfg.pcie_ports.max(1) as u64;
        // Per-line service time of one endpoint: a 64 B random read is
        // either tag-limited (paper: 64 tags over a ~1050 ns RTT, 61 Mops)
        // or wire-limited (90 B at 7.87 GB/s, 87 Mops); the endpoints
        // drain lines in parallel.
        let tag_limited = cfg.pcie.mean_random_read_latency() / u64::from(cfg.pcie.read_tags);
        let wire_limited = cfg.pcie.bandwidth.transfer_time(cfg.pcie.wire_bytes(64));
        // The links share the store's fault schedule: one root plane per
        // sim, forked into independent request/response streams. Zero
        // rates (the default) never consume randomness, so a fault-free
        // sim is bit-identical to one built before links had faults.
        let mut net_faults =
            FaultPlane::new(cfg.store.fault_rates, cfg.store.fault_seed ^ NET_FAULT_SALT);
        SystemSim {
            store: KvDirectStore::new(cfg.store.clone()),
            req_link: NetLink::with_faults(cfg.net.clone(), net_faults.fork(1)),
            resp_link: NetLink::with_faults(cfg.net.clone(), net_faults.fork(2)),
            rng: DetRng::seed(seed),
            pcie_line_service: tag_limited.max(wire_limited) / ports,
            dram_line_service: Bandwidth::from_gbytes_per_sec(12.8).transfer_time(64),
            pcie_free: SimTime::ZERO,
            dram_free: SimTime::ZERO,
            pending: Vec::new(),
            loads: Vec::new(),
            statuses: Vec::new(),
            cursor: 0,
            window_free: vec![SimTime::ZERO; windows],
            server_free: SimTime::ZERO,
            get_hist: Histogram::new(),
            put_hist: Histogram::new(),
            ops_done: 0,
            makespan: SimTime::ZERO,
            arrivals: Vec::new(),
            open_loop: false,
            record_outcomes: false,
            outcomes: Vec::new(),
            resp: KvResponse {
                status: Status::Ok,
                value: Vec::new(),
            },
            goodput_ops: 0,
            shed_ops: 0,
            expired_ops: 0,
            ledger: OpLedger::default(),
            cfg,
        }
    }

    /// The functional store (for preloading).
    pub fn store_mut(&mut self) -> &mut KvDirectStore {
        &mut self.store
    }

    /// Stages a request stream and resets per-run accounting (histograms,
    /// op counts, client windows). Component clocks (links, service
    /// backlogs) persist, as they would across runs on real hardware.
    pub fn load(&mut self, reqs: &[KvRequest]) {
        self.pending.clear();
        self.pending.extend_from_slice(reqs);
        self.arrivals.clear();
        self.open_loop = false;
        self.cursor = 0;
        self.window_free = vec![SimTime::ZERO; self.cfg.windows.max(1)];
        self.server_free = SimTime::ZERO;
        self.get_hist = Histogram::new();
        self.put_hist = Histogram::new();
        self.ops_done = 0;
        self.makespan = SimTime::ZERO;
        self.outcomes.clear();
        self.goodput_ops = 0;
        self.shed_ops = 0;
        self.expired_ops = 0;
        self.ledger = OpLedger::default();
    }

    /// Stages an *open-loop* request stream: each request is issued at
    /// its scheduled arrival time regardless of outstanding responses,
    /// so offered load is a free variable (and may exceed capacity —
    /// that is the point). Batches cut every `cfg.batch` consecutive
    /// arrivals; a request whose deadline has already passed when its
    /// batch reaches the wire is dropped at the client, costing no
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if arrival times are not non-decreasing.
    pub fn load_open(&mut self, reqs: &[(SimTime, KvRequest)]) {
        assert!(
            reqs.windows(2).all(|w| w[0].0 <= w[1].0),
            "open-loop arrivals must be sorted by time"
        );
        self.load(&[]);
        self.pending.extend(reqs.iter().map(|(_, r)| r.clone()));
        self.arrivals.extend(reqs.iter().map(|(t, _)| *t));
        self.open_loop = true;
    }

    /// [`Self::load`] taking ownership of the stream: the staged buffer
    /// is moved in rather than deep-copied (each [`KvRequest`] owns its
    /// key and value bytes, so `extend_from_slice` clones every one).
    /// The parallel router stages its per-shard streams this way.
    pub fn load_owned(&mut self, reqs: Vec<KvRequest>) {
        self.load(&[]);
        self.pending = reqs;
    }

    /// [`Self::load_open`] taking ownership of the split schedule.
    /// `arrivals[i]` is request `i`'s issue instant; the two vectors must
    /// be equal length and the arrivals non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or arrivals are not sorted.
    pub fn load_open_owned(&mut self, reqs: Vec<KvRequest>, arrivals: Vec<SimTime>) {
        assert_eq!(
            reqs.len(),
            arrivals.len(),
            "one arrival instant per request"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "open-loop arrivals must be sorted by time"
        );
        self.load(&[]);
        self.pending = reqs;
        self.arrivals = arrivals;
        self.open_loop = true;
    }

    /// Extends an open-loop stream *without* resetting accounting: the
    /// fed requests are appended behind whatever is already staged, and
    /// histograms, op counts, recorded outcomes and the ledger keep
    /// accumulating. This is the cluster plane's issue path — the window
    /// coordinator feeds each member host exactly the client and
    /// replication traffic that lands in the upcoming window, then steps
    /// it, so a host never sees an arrival the window discipline has not
    /// yet made visible. Start from `load_open_owned(vec![], vec![])`
    /// for an initially idle host.
    ///
    /// # Panics
    ///
    /// Panics if the host is not in open-loop mode, the vectors differ
    /// in length, the fed arrivals are unsorted, or the first fed
    /// arrival precedes the last already-staged one (the combined
    /// schedule must stay non-decreasing).
    pub fn feed_open(&mut self, reqs: Vec<KvRequest>, arrivals: Vec<SimTime>) {
        assert!(self.open_loop, "feed_open extends an open-loop stream");
        assert_eq!(
            reqs.len(),
            arrivals.len(),
            "one arrival instant per request"
        );
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "fed arrivals must be sorted by time"
        );
        if let (Some(&first), Some(&last)) = (arrivals.first(), self.arrivals.last()) {
            assert!(
                first >= last,
                "fed arrivals must not precede already-staged ones"
            );
        }
        self.pending.extend(reqs);
        self.arrivals.extend(arrivals);
    }

    /// Records every staged request's `(status, value)` outcome, aligned
    /// with the request stream, for consistency checking. Off by default
    /// (response values are large).
    pub fn set_record_outcomes(&mut self, on: bool) {
        self.record_outcomes = on;
    }

    /// Outcomes captured since the last load (empty unless
    /// [`Self::set_record_outcomes`] is on).
    pub fn outcomes(&self) -> &[(Status, Vec<u8>)] {
        &self.outcomes
    }

    /// The backpressure gauge computed for the most recent batch,
    /// derived from the ledger's raw backpressure terms.
    pub fn pressure(&self) -> PressureGauge {
        PressureGauge::from_terms(&self.ledger.pressure)
    }

    /// Folds the shared host arbiter's verdict for the previous lockstep
    /// window into this shard's pressure signal: `stall / quantum` is how
    /// far host DRAM oversubscription stretched simulated time. Called by
    /// the parallel engine at its barrier; purely a pressure input, it
    /// does not move any component clock (the engine's issue-floor
    /// already models the stall).
    pub fn absorb_host_stall(&mut self, stall: SimTime, quantum: SimTime) {
        self.ledger.pressure.stall_ps = stall.as_ps();
        self.ledger.pressure.quantum_ps = quantum.as_ps();
    }

    /// Fault rollup across the store and both network links — a view
    /// over the simulation's full ledger.
    pub fn fault_counters(&self) -> FaultCounters {
        self.ledger().fault_view()
    }

    /// The simulation's full op-cost ledger: the sim-side run slice
    /// (batch fill, latency attribution, backpressure terms) folded with
    /// the store's costs and both network links'. Store and link
    /// counters span the component's lifetime (preload included),
    /// consistent with [`Self::fault_counters`].
    pub fn ledger(&self) -> OpLedger {
        let mut out = self.ledger.clone();
        self.store.emit_costs(&mut out);
        self.req_link.emit_costs(&mut out);
        self.resp_link.emit_costs(&mut out);
        out
    }

    /// Advances the staged stream through one lookahead window.
    ///
    /// Processes every batch whose client issue time — the earliest free
    /// window, floored at `floor` — falls strictly before `horizon`, and
    /// returns the host cache-line traffic those batches generated.
    /// `floor` is how the multi-NIC arbiter stretches an oversubscribed
    /// window: requests in the next window cannot issue before the
    /// stretched start, so aggregate throughput degrades without any
    /// component clock rewinding. Traffic is charged to the window where
    /// the batch *issues* (a conservative approximation: completion may
    /// spill past the horizon by at most one batch's service time).
    pub fn step(&mut self, horizon: SimTime, floor: SimTime) -> StepOutcome {
        let base = self.ledger();
        self.advance(horizon, floor);
        StepOutcome {
            window: self.ledger().since(&base),
            done: self.staged_done(),
        }
    }

    /// [`Self::step`] without the ledger materialization: advances the
    /// window and returns only the scalars the parallel engine's credit
    /// arbiter settles on. Two full-ledger clones per window per shard
    /// (entry baseline + exit delta) become three `u64` loads, which is
    /// what lets the asynchronous engine's publication path stay off the
    /// allocator entirely.
    pub fn step_window(&mut self, horizon: SimTime, floor: SimTime) -> WindowStep {
        let before = self.store.processor().table().mem().stats();
        self.advance(horizon, floor);
        let after = self.store.processor().table().mem().stats();
        WindowStep {
            host_lines: after.since(&before).dma_ops(),
            next_event: self.next_event(),
            done: self.staged_done(),
        }
    }

    /// True once every staged request has completed.
    pub fn staged_done(&self) -> bool {
        self.cursor >= self.pending.len()
    }

    /// The earliest instant the next staged batch could cut, before any
    /// issue floor: the next batch's last arrival in open-loop mode, the
    /// earliest free client window in closed-loop mode, [`SimTime::MAX`]
    /// when drained. A window `[floor, horizon)` with `next_event() >=
    /// horizon` processes nothing (batch issue times are floored at
    /// `floor < horizon` but start no earlier than this), which is what
    /// lets the credit arbiter settle idle windows with null messages
    /// instead of waking the shard.
    pub fn next_event(&self) -> SimTime {
        if self.staged_done() {
            return SimTime::MAX;
        }
        if self.open_loop {
            let end = (self.cursor + self.cfg.batch.max(1)).min(self.pending.len());
            self.arrivals[end - 1]
        } else {
            self.window_free
                .iter()
                .copied()
                .min()
                .expect("at least one window")
        }
    }

    /// The staged batch loop shared by [`Self::step`] and
    /// [`Self::step_window`].
    fn advance(&mut self, horizon: SimTime, floor: SimTime) {
        let batch = self.cfg.batch.max(1);
        let cycle = self.cfg.clock.cycle();

        while self.cursor < self.pending.len() {
            let end = (self.cursor + batch).min(self.pending.len());
            let (start, w) = if self.open_loop {
                // Open loop: the batch cuts when its last request
                // arrives, regardless of outstanding responses.
                (self.arrivals[end - 1].max(floor), usize::MAX)
            } else {
                // Closed loop: the client issues when its earliest
                // window frees up.
                let w = self
                    .window_free
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .map(|(i, _)| i)
                    .expect("at least one window");
                (self.window_free[w].max(floor), w)
            };
            if start >= horizon {
                break;
            }

            // Client-side expiry at batch-cut: a request whose deadline
            // has already passed when the packet would reach the wire is
            // dropped before transmission. Under sustained overload this
            // is what bounds the wire backlog — without it the link
            // queue grows without limit and *every* response is late
            // (congestion collapse).
            let wire_start = start.max(self.req_link.free_at());
            let dead_at_client = |r: &KvRequest| {
                r.deadline_us != 0 && wire_start > SimTime::from_us(u64::from(r.deadline_us))
            };

            // Request packet: header-amortized batch on the wire, live
            // (unexpired) requests only.
            let req_bytes: u64 = self.pending[self.cursor..end]
                .iter()
                .filter(|r| !dead_at_client(r))
                .map(|r| 4 + r.key.len() as u64 + r.value.len() as u64)
                .sum();
            self.statuses.clear();
            self.loads.clear();
            let mut resp_bytes = 0u64;

            let resp_arrive = if req_bytes == 0 {
                // Every request in the batch died at the client: nothing
                // reaches the wire, the server, or the response path.
                for _ in self.cursor..end {
                    self.ledger.net.client_expired += 1;
                    self.statuses.push(Status::Expired);
                    if self.record_outcomes {
                        self.outcomes.push((Status::Expired, Vec::new()));
                    }
                }
                self.makespan = self.makespan.max(start);
                start
            } else {
                let arrive = self.req_link.send(start, req_bytes);

                // Server: the decoder is a single 180 MHz pipeline shared
                // by all in-flight windows — a batch cannot start
                // decoding before the previous batch has drained it.
                let decode_start = arrive.max(self.server_free);

                // Backpressure gauge for this batch: simulated-time
                // backlogs the functional processor cannot see, each
                // normalized to its resource's capacity envelope. Fed to
                // the store's admission controller (inert unless the
                // overload plane is enabled).
                let station_cap = cycle * self.cfg.store.station.capacity as u64;
                let tag_cap = self.pcie_line_service
                    * (u64::from(self.cfg.pcie.read_tags) * self.cfg.pcie_ports.max(1) as u64);
                let terms = &mut self.ledger.pressure;
                terms.station_backlog_ps = self.server_free.saturating_sub(arrive).as_ps();
                terms.station_cap_ps = station_cap.as_ps();
                terms.tag_backlog_ps = self.pcie_free.saturating_sub(arrive).as_ps();
                terms.tag_cap_ps = tag_cap.as_ps();
                let gauge = PressureGauge::from_terms(terms);
                self.store
                    .processor_mut()
                    .set_external_pressure(gauge.overall());

                // Pass 1: execute functionally, capturing each op's real
                // access counts. Client-expired requests never reach the
                // server; the decode clock advances only for live ops,
                // and feeds the processor so server-side deadline expiry
                // sees simulated time.
                let mut decoded = 0u64;
                // One response reused across every batch of every run:
                // its value buffer circulates through the processor's
                // pool, so the steady-state GET path allocates nothing
                // per op — and nothing per batch either (dropping a
                // batch-local response here would leak one pooled buffer
                // per batch, which the parallel engine's zero-alloc
                // guard would catch).
                let mut resp = KvResponse {
                    status: Status::Ok,
                    value: Vec::new(),
                };
                std::mem::swap(&mut resp, &mut self.resp);
                for i in self.cursor..end {
                    let req = &self.pending[i];
                    if dead_at_client(req) {
                        self.ledger.net.client_expired += 1;
                        self.statuses.push(Status::Expired);
                        if self.record_outcomes {
                            self.outcomes.push((Status::Expired, Vec::new()));
                        }
                        continue;
                    }
                    decoded += 1;
                    let decode_done = decode_start + cycle * decoded;
                    self.store.processor_mut().set_now(decode_done);
                    let before = self.store.processor().table().mem().stats();
                    self.store.execute_one_into(req.as_ref(), &mut resp);
                    resp_bytes += 3 + resp.value.len() as u64;
                    let d = self.store.processor().table().mem().stats().since(&before);
                    self.statuses.push(resp.status);
                    if self.record_outcomes {
                        self.outcomes.push((resp.status, resp.value.clone()));
                    }
                    self.loads.push(OpLoad {
                        idx: i,
                        t: decode_done,
                        dma_reads: d.dma_reads,
                        dram_reads: d.dram_reads,
                        dma_writes: d.dma_writes,
                        dram_writes: d.dram_writes,
                        proc_ps: decode_done.saturating_sub(arrive).as_ps(),
                        pcie_ps: 0,
                        dram_ps: 0,
                    });
                }
                std::mem::swap(&mut resp, &mut self.resp);
                self.server_free = decode_start + cycle * decoded;
                self.ledger.net.batches += 1;
                self.ledger.net.batch_ops += decoded;
                // Background reaper: one bounded sweep per batch, after
                // the functional pass so per-op load deltas stay clean.
                // Its memory traffic flows through the table's engine and
                // is therefore captured by both the ledger's DMA counters
                // and the window host lines; it is deliberately *not*
                // charged to op latencies or the PCIe/DRAM backlog clocks
                // — the reaper rides idle gaps as background traffic.
                if self.cfg.store.reap_buckets_per_batch > 0 {
                    self.store
                        .processor_mut()
                        .sweep_expired(self.cfg.store.reap_buckets_per_batch);
                }
                // Pass 2: charge the accesses against fluid service
                // models of the PCIe DMA engines and the NIC DRAM
                // channel. Independent operations overlap freely up to
                // each resource's service rate (tag-limited random reads
                // for PCIe, line bandwidth for DRAM); a saturated
                // resource shows up as a backlog clock running ahead of
                // arrivals, which delays every operation that touches it.
                // Within an op, dependent reads still chain (bucket →
                // data); posted writes consume service capacity but do
                // not extend the critical path.
                let pcie_backlog = self.pcie_free.saturating_sub(arrive);
                let dram_backlog = self.dram_free.saturating_sub(arrive);
                let mut batch_done = arrive;
                let (mut pcie_lines, mut dram_lines) = (0u64, 0u64);
                for li in 0..self.loads.len() {
                    let op = self.loads[li];
                    // Queueing delay lands on whichever resource owns the
                    // dominant backlog; it is attributed to that component
                    // in the per-op latency breakdown.
                    let (queued, queued_is_pcie) = match (op.dma_reads > 0, op.dram_reads > 0) {
                        (true, true) => {
                            (pcie_backlog.max(dram_backlog), pcie_backlog >= dram_backlog)
                        }
                        (true, false) => (pcie_backlog, true),
                        (false, true) => (dram_backlog, false),
                        (false, false) => (SimTime::ZERO, true),
                    };
                    let mut t = op.t + queued;
                    let mut pcie_ps = if queued_is_pcie { queued.as_ps() } else { 0 };
                    let mut dram_ps = if queued_is_pcie { 0 } else { queued.as_ps() };
                    for _ in 0..op.dma_reads {
                        let mut rtt = self.cfg.pcie.cached_read_latency.sample(&mut self.rng);
                        rtt += SimTime::from_ps(
                            self.rng
                                .u64_below(self.cfg.pcie.noncached_extra.as_ps() + 1),
                        );
                        pcie_ps += rtt.as_ps();
                        t += rtt;
                    }
                    for _ in 0..op.dram_reads {
                        dram_ps += self.cfg.dram_access.as_ps();
                        t += self.cfg.dram_access;
                    }
                    self.loads[li].pcie_ps = pcie_ps;
                    self.loads[li].dram_ps = dram_ps;
                    pcie_lines += op.dma_reads + op.dma_writes;
                    dram_lines += op.dram_reads + op.dram_writes;
                    batch_done = batch_done.max(t);
                }
                self.pcie_free = self.pcie_free.max(arrive) + self.pcie_line_service * pcie_lines;
                self.dram_free = self.dram_free.max(arrive) + self.dram_line_service * dram_lines;

                // Response packet for the batch.
                let resp_arrive = self.resp_link.send(batch_done, resp_bytes);
                if !self.open_loop {
                    self.window_free[w] = resp_arrive;
                }
                self.makespan = self.makespan.max(resp_arrive);
                resp_arrive
            };

            // Pass 3: resolve every op in the batch. Shed and expired
            // ops count toward `ops` but not goodput and land in no
            // latency histogram (they carry no service latency); a
            // useful response must also beat its deadline to count as
            // goodput.
            let mut load_at = 0usize;
            for (off, i) in (self.cursor..end).enumerate() {
                self.ops_done += 1;
                let status = self.statuses[off];
                let load = if load_at < self.loads.len() && self.loads[load_at].idx == i {
                    load_at += 1;
                    Some(self.loads[load_at - 1])
                } else {
                    None
                };
                match status {
                    Status::Overloaded => self.shed_ops += 1,
                    Status::Expired => self.expired_ops += 1,
                    _ => {
                        let issued = if self.open_loop {
                            self.arrivals[i]
                        } else {
                            start
                        };
                        let lat = resp_arrive.saturating_sub(issued);
                        // Per-component attribution: the processor, PCIe
                        // and DRAM shares are the op's measured service
                        // terms; the remainder (wire serialization,
                        // propagation, batch skew) is the network's.
                        if let Some(load) = load {
                            let proc = load.proc_ps;
                            let pcie = load.pcie_ps;
                            let dram = load.dram_ps;
                            let net = lat.as_ps().saturating_sub(proc + pcie + dram);
                            let class = match self.pending[i].op {
                                OpCode::Put => OpClass::Put,
                                OpCode::Get => OpClass::Get,
                                _ => OpClass::Other,
                            };
                            self.ledger.latency.record(class, [net, pcie, dram, proc]);
                        }
                        // Tiny deterministic jitter spreads ties for
                        // percentile resolution (scheduling noise
                        // stand-in).
                        let jitter = SimTime::from_ps(self.rng.u64_below(50_000));
                        if self.pending[i].op == OpCode::Put {
                            self.put_hist.record_time(lat + jitter);
                        } else {
                            self.get_hist.record_time(lat + jitter);
                        }
                        let deadline = self.pending[i].deadline_us;
                        let on_time =
                            deadline == 0 || resp_arrive <= SimTime::from_us(u64::from(deadline));
                        if on_time && matches!(status, Status::Ok | Status::NotFound) {
                            self.goodput_ops += 1;
                        }
                    }
                }
            }
            self.cursor = end;
        }
    }

    /// Report over everything completed since the last [`Self::load`].
    pub fn report(&self) -> SystemSimReport {
        SystemSimReport {
            summary: RunSummary::new(
                self.ops_done,
                self.makespan,
                self.goodput_ops,
                self.shed_ops,
                self.expired_ops,
                &self.get_hist,
                &self.put_hist,
            ),
            overload: self.store.overload_counters(),
            faults: self.fault_counters(),
            ledger: self.ledger(),
        }
    }

    /// Raw latency histograms (GET, PUT) for cross-shard merging.
    pub fn histograms(&self) -> (&Histogram, &Histogram) {
        (&self.get_hist, &self.put_hist)
    }

    /// Runs the request stream to completion, returning the report.
    ///
    /// The client keeps `windows` batches outstanding; each batch's
    /// operations execute functionally (capturing their real memory
    /// accesses) and are charged in simulated time. Equivalent to one
    /// unbounded [`Self::step`] window.
    pub fn run(&mut self, reqs: &[KvRequest]) -> SystemSimReport {
        self.load(reqs);
        while !self.step(SimTime::MAX, SimTime::ZERO).done {}
        self.report()
    }

    /// Runs an open-loop arrival schedule to completion (see
    /// [`Self::load_open`]), returning the report. With the overload
    /// plane enabled, offered load beyond the saturation point sheds
    /// instead of collapsing: `goodput_mops` holds near the knee while
    /// `shed_ops`/`expired_ops` absorb the excess.
    pub fn run_open(&mut self, reqs: &[(SimTime, KvRequest)]) -> SystemSimReport {
        self.load_open(reqs);
        while !self.step(SimTime::MAX, SimTime::ZERO).done {}
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::ZipfSampler;

    fn preloaded(n_keys: u64, val_len: usize, batch: usize) -> SystemSim {
        let mut sim = SystemSim::new(SystemSimConfig::paper(
            KvDirectConfig::with_memory(4 << 20),
            batch,
        ));
        for id in 0..n_keys {
            sim.store_mut()
                .put(&id.to_le_bytes(), &vec![id as u8; val_len])
                .expect("preload fits");
        }
        sim
    }

    fn mixed_reqs(n: usize, n_keys: u64, put_ratio: f64, zipf: bool, seed: u64) -> Vec<KvRequest> {
        let mut rng = DetRng::seed(seed);
        let sampler = ZipfSampler::new(n_keys, 0.99);
        (0..n)
            .map(|_| {
                let id = if zipf {
                    sampler.sample(&mut rng)
                } else {
                    rng.u64_below(n_keys)
                };
                if rng.chance(put_ratio) {
                    KvRequest::put(&id.to_le_bytes(), &[7u8; 8])
                } else {
                    KvRequest::get(&id.to_le_bytes())
                }
            })
            .collect()
    }

    #[test]
    fn clocked_reaper_reclaims_dead_entries_in_the_background() {
        let mut cfg = SystemSimConfig::paper(KvDirectConfig::with_memory(4 << 20), 8);
        cfg.store.reap_buckets_per_batch = 256;
        let mut sim = SystemSim::new(cfg);
        // A corpus of mortal entries on a keyspace disjoint from the
        // workload below, so only the reaper (never a lazy probe) can
        // reclaim them.
        for id in 0..500u64 {
            sim.store_mut()
                .put_ttl(&(1_000_000 + id).to_le_bytes(), &[9u8; 8], 1)
                .expect("preload fits");
        }
        assert_eq!(sim.store_mut().processor().table().len(), 500);
        // Kill the corpus, then run a read-only workload: every batch
        // donates one bounded background sweep.
        sim.store_mut()
            .processor_mut()
            .set_now(SimTime::from_us(2_000));
        sim.run(&mixed_reqs(3000, 1000, 0.0, false, 9));
        let e = sim.ledger().expiry;
        assert_eq!(e.reaped_entries, 500, "reaper reclaimed the corpus");
        assert_eq!(e.lazy_expired, 0, "no foreground probe paid for it");
        assert!(e.sweep_passes > 0);
        assert_eq!(sim.store_mut().processor().table().len(), 0);
    }

    #[test]
    fn latency_floor_is_network_rtt_plus_memory() {
        // A corpus far larger than the 1024-slot station, so reads truly
        // touch memory (a tiny corpus would live in the forwarding cache
        // forever — correct, but not what this test probes).
        let mut sim = preloaded(20_000, 8, 1);
        let r = sim.run(&mixed_reqs(500, 20_000, 0.0, false, 1));
        // ≥ 2us network RTT + ~1us memory; ≤ the paper's ~10us band.
        let p50 = r.get_us(Percentile::P50);
        assert!(p50 > 2.5, "p50 {p50}us below physical floor");
        assert!(p50 < 10.0, "p50 {p50}us above the paper's band");
        assert!(r.get_latency.p95 >= r.get_latency.p50);
    }

    #[test]
    fn puts_slower_than_gets() {
        let mut sim = preloaded(1000, 8, 1);
        let r = sim.run(&mixed_reqs(2000, 1000, 0.5, false, 2));
        assert!(
            r.put_us(Percentile::P50) > r.get_us(Percentile::P50) * 0.95,
            "PUT {} vs GET {}",
            r.put_us(Percentile::P50),
            r.get_us(Percentile::P50)
        );
    }

    #[test]
    fn skew_reduces_latency() {
        let mut uni = preloaded(20_000, 8, 1);
        let ru = uni.run(&mixed_reqs(3000, 20_000, 0.0, false, 3));
        let mut zipf = preloaded(20_000, 8, 1);
        let rz = zipf.run(&mixed_reqs(3000, 20_000, 0.0, true, 3));
        // Station forwarding + DRAM hits shorten the skewed path.
        assert!(
            rz.get_us(Percentile::P50) <= ru.get_us(Percentile::P50) + 0.01,
            "zipf {} vs uniform {}",
            rz.get_us(Percentile::P50),
            ru.get_us(Percentile::P50)
        );
    }

    #[test]
    fn batching_improves_throughput() {
        let reqs = mixed_reqs(4000, 1000, 0.0, false, 4);
        let mut nb = preloaded(1000, 8, 1);
        let rn = nb.run(&reqs);
        let mut b = preloaded(1000, 8, 40);
        let rb = b.run(&reqs);
        assert!(
            rb.mops > rn.mops * 1.5,
            "batched {} vs non-batched {} Mops",
            rb.mops,
            rn.mops
        );
        // And costs only a bounded latency increase.
        let added = rb.get_us(Percentile::P50) - rn.get_us(Percentile::P50);
        assert!(added < 2.0, "batching added {added}us");
    }

    /// Uniform open-loop arrival schedule at `rate_mops`.
    fn open_schedule(
        n: usize,
        n_keys: u64,
        put_ratio: f64,
        rate_mops: f64,
        deadline_us: u32,
        seed: u64,
    ) -> Vec<(SimTime, KvRequest)> {
        let gap_ps = (1e6 / rate_mops) as u64;
        mixed_reqs(n, n_keys, put_ratio, false, seed)
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                let t = SimTime::from_ps(gap_ps * i as u64);
                if deadline_us != 0 {
                    r = r.with_deadline(t.as_us() as u32 + deadline_us);
                }
                (t, r)
            })
            .collect()
    }

    #[test]
    fn feed_open_matches_upfront_staging() {
        let sched = open_schedule(1_000, 2_000, 0.2, 2.0, 0, 7);
        let mut a = preloaded(2_000, 8, 1);
        a.set_record_outcomes(true);
        let ra = a.run_open(&sched);

        // Same stream fed incrementally: first half, a bounded step, then
        // the rest — accounting must accumulate identically.
        let mut b = preloaded(2_000, 8, 1);
        b.set_record_outcomes(true);
        b.load_open_owned(Vec::new(), Vec::new());
        let cut = 500;
        b.feed_open(
            sched[..cut].iter().map(|(_, r)| r.clone()).collect(),
            sched[..cut].iter().map(|(t, _)| *t).collect(),
        );
        b.step(sched[cut].0, SimTime::ZERO);
        b.feed_open(
            sched[cut..].iter().map(|(_, r)| r.clone()).collect(),
            sched[cut..].iter().map(|(t, _)| *t).collect(),
        );
        while !b.step(SimTime::MAX, SimTime::ZERO).done {}
        let rb = b.report();

        assert_eq!(ra.ops, rb.ops);
        assert_eq!(ra.goodput_ops, rb.goodput_ops);
        assert_eq!(ra.elapsed, rb.elapsed);
        assert_eq!(a.outcomes(), b.outcomes(), "per-op outcomes identical");
    }

    #[test]
    fn open_loop_below_saturation_is_all_goodput() {
        let mut sim = preloaded(5_000, 8, 8);
        // 1 Mops offered against a pipeline good for tens of Mops.
        let r = sim.run_open(&open_schedule(2_000, 5_000, 0.1, 1.0, 100, 41));
        assert_eq!(r.ops, 2_000);
        assert_eq!(r.goodput_ops, 2_000, "uncongested: every op useful");
        assert_eq!(r.shed_ops + r.expired_ops, 0);
        // Makespan tracks the arrival schedule (2000 ops at 1 Mops = 2ms),
        // not the pipeline's idle capacity.
        let ms = r.elapsed.as_secs_f64() * 1e3;
        assert!((1.9..2.5).contains(&ms), "makespan {ms}ms off schedule");
        assert_eq!(r.overload.total_shed(), 0);
        assert_eq!(r.faults.total_faults(), 0);
    }

    #[test]
    fn overloaded_open_loop_sheds_instead_of_collapsing() {
        let mut cfg = SystemSimConfig::paper(KvDirectConfig::with_memory(4 << 20), 8);
        cfg.store.overload = crate::overload::OverloadConfig::enabled();
        let mut sim = SystemSim::new(cfg);
        for id in 0..3_000u64 {
            sim.store_mut()
                .put(&id.to_le_bytes(), &[id as u8; 8])
                .expect("preload fits");
        }
        // 400 Mops offered against the 180 MHz decode ceiling: the decode
        // backlog grows without bound, the station pressure term crosses
        // the high watermark, and the controller flips to shedding.
        // Generous deadlines keep expiry out of the picture.
        let r = sim.run_open(&open_schedule(12_000, 3_000, 0.1, 400.0, 10_000, 42));
        assert_eq!(r.ops, 12_000, "every op resolves, one way or another");
        let dropped = r.shed_ops + r.expired_ops;
        assert!(dropped > 0, "2x+ offered load must shed or expire");
        assert!(
            r.goodput_ops > 0 && r.goodput_ops + dropped <= r.ops,
            "goodput {} + dropped {} vs ops {}",
            r.goodput_ops,
            dropped,
            r.ops
        );
        // The latency histograms hold exactly the answered ops.
        assert_eq!(r.get_latency.count + r.put_latency.count, r.ops - dropped);
        // Shed/expired ops surface in the store rollup or the client-side
        // expiry count; the controller actually flipped.
        assert_eq!(r.overload.shed_overload, r.shed_ops);
        assert!(r.expired_ops >= r.overload.shed_expired);
        assert!(r.goodput_mops <= r.mops);
    }

    #[test]
    fn sub_floor_deadlines_expire_instead_of_wasting_work() {
        let mut sim = preloaded(1_000, 8, 8);
        // 1us deadlines against a ~2.5us physical floor: requests expire
        // (at the client before transmission once the wire backs up, or
        // at the server's decode clock) rather than occupying the
        // pipeline for answers nobody can use.
        let r = sim.run_open(&open_schedule(4_000, 1_000, 0.0, 40.0, 1, 43));
        assert!(r.expired_ops > 0, "tight deadlines must expire");
        assert_eq!(r.ops, 4_000);
        // Answered ops (in a histogram) plus dropped ops partition the
        // stream exactly.
        assert_eq!(
            r.get_latency.count + r.put_latency.count + r.expired_ops + r.shed_ops,
            r.ops
        );
        // A 1us deadline is below the ~2.5us physical floor: nothing
        // answered can be on time.
        assert_eq!(r.goodput_ops, 0);
    }

    #[test]
    fn recorded_outcomes_align_with_request_stream() {
        let mut sim = preloaded(500, 8, 8);
        sim.set_record_outcomes(true);
        let sched = open_schedule(600, 500, 0.3, 2.0, 0, 44);
        let r = sim.run_open(&sched);
        let outcomes = sim.outcomes();
        assert_eq!(outcomes.len(), 600);
        assert_eq!(
            outcomes
                .iter()
                .filter(|(s, _)| matches!(s, Status::Ok | Status::NotFound))
                .count() as u64,
            r.goodput_ops
        );
        // Replay against a model: GET outcomes must match exactly.
        let mut model = std::collections::HashMap::new();
        for id in 0..500u64 {
            model.insert(id.to_le_bytes().to_vec(), vec![id as u8; 8]);
        }
        for ((_, req), (status, value)) in sched.iter().zip(outcomes) {
            match req.op {
                OpCode::Put => {
                    assert_eq!(*status, Status::Ok);
                    model.insert(req.key.clone(), req.value.clone());
                }
                OpCode::Get => {
                    assert_eq!(*status, Status::Ok);
                    assert_eq!(value, model.get(&req.key).expect("preloaded"));
                }
                _ => unreachable!("schedule holds only GET/PUT"),
            }
        }
    }

    #[test]
    fn link_faults_ride_the_store_fault_schedule() {
        let mut cfg = SystemSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 8);
        cfg.store.fault_rates = kvd_sim::FaultRates {
            net_drop: 0.05,
            net_reorder: 0.05,
            ..kvd_sim::FaultRates::ZERO
        };
        cfg.store.fault_seed = 77;
        let run = |cfg: SystemSimConfig| {
            let mut sim = SystemSim::new(cfg);
            for id in 0..200u64 {
                sim.store_mut().put(&id.to_le_bytes(), b"v").unwrap();
            }
            sim.run(&mixed_reqs(1_000, 200, 0.2, false, 6))
        };
        let r1 = run(cfg.clone());
        let r2 = run(cfg);
        assert!(
            r1.faults.net_drops + r1.faults.net_reorders > 0,
            "5% packet faults over 1000 ops must fire"
        );
        assert_eq!(r1, r2, "fault schedule is seed-deterministic");
    }

    #[test]
    fn report_accounting_consistent() {
        let mut sim = preloaded(100, 8, 8);
        let reqs = mixed_reqs(512, 100, 0.3, false, 5);
        let r = sim.run(&reqs);
        assert_eq!(r.ops, 512);
        assert_eq!(
            r.get_latency.count + r.put_latency.count,
            512,
            "every op lands in exactly one histogram"
        );
        assert!(r.elapsed > SimTime::ZERO);
    }
}
