//! Timed end-to-end system simulation (client ↔ NIC ↔ host memory).
//!
//! The composition model in [`crate::timing`] predicts throughput and
//! latency analytically; this module *simulates* them: a closed-loop
//! client sends batched request packets over the 40 GbE model, the KV
//! processor executes each operation functionally (so access counts are
//! real, per operation), and every memory access is charged to the PCIe
//! DMA ports or the NIC DRAM channel in simulated time, respecting
//! dependency order (a GET's data read waits for its bucket read; posted
//! writes do not extend the critical path). Client-observed latencies
//! land in a histogram, yielding the paper's 5th/95th-percentile error
//! bars (Figure 17) from first principles.

use kvd_mem::MemoryEngine;
use kvd_net::{KvRequest, NetConfig, NetLink, OpCode};
use kvd_pcie::{DmaPort, PcieConfig};
use kvd_sim::{Bandwidth, BandwidthLink, DetRng, Freq, Histogram, SimTime, Summary};

use crate::store::{KvDirectConfig, KvDirectStore};

/// Configuration of the end-to-end simulation.
#[derive(Debug, Clone)]
pub struct SystemSimConfig {
    /// Store configuration (memory sizes, ratios).
    pub store: KvDirectConfig,
    /// Network model.
    pub net: NetConfig,
    /// Per-endpoint PCIe model.
    pub pcie: PcieConfig,
    /// PCIe endpoints (paper: 2).
    pub pcie_ports: usize,
    /// NIC DRAM random access time per 64 B line.
    pub dram_access: SimTime,
    /// Processor clock (one op decodes per cycle).
    pub clock: Freq,
    /// Operations per request packet (1 = no batching).
    pub batch: usize,
    /// Client windows kept in flight (closed loop).
    pub windows: usize,
}

impl SystemSimConfig {
    /// The paper's testbed at the given store scale.
    pub fn paper(store: KvDirectConfig, batch: usize) -> Self {
        SystemSimConfig {
            store,
            net: NetConfig::forty_gbe(),
            pcie: PcieConfig::gen3_x8(),
            pcie_ports: 2,
            dram_access: SimTime::from_ns(120),
            clock: Freq::from_mhz(180),
            batch,
            windows: 8,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SystemSimReport {
    /// Operations completed.
    pub ops: u64,
    /// Simulated makespan.
    pub elapsed: SimTime,
    /// Sustained throughput (Mops).
    pub mops: f64,
    /// GET latency summary (picoseconds).
    pub get_latency: Summary,
    /// PUT latency summary (picoseconds).
    pub put_latency: Summary,
}

impl SystemSimReport {
    /// GET latency percentile in microseconds.
    pub fn get_us(&self, p: Percentile) -> f64 {
        pick(&self.get_latency, p) as f64 / 1e6
    }

    /// PUT latency percentile in microseconds.
    pub fn put_us(&self, p: Percentile) -> f64 {
        pick(&self.put_latency, p) as f64 / 1e6
    }
}

/// Percentile selector for report accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Percentile {
    /// 5th percentile (the paper's lower error bar).
    P5,
    /// Median.
    P50,
    /// 95th percentile (the paper's upper error bar).
    P95,
}

fn pick(s: &Summary, p: Percentile) -> u64 {
    match p {
        Percentile::P5 => s.p5,
        Percentile::P50 => s.p50,
        Percentile::P95 => s.p95,
    }
}

/// The end-to-end simulator.
///
/// # Examples
///
/// ```
/// use kvd_core::system::{SystemSim, SystemSimConfig, Percentile};
/// use kvd_core::KvDirectConfig;
/// use kvd_net::KvRequest;
///
/// let mut sim = SystemSim::new(SystemSimConfig::paper(
///     KvDirectConfig::with_memory(1 << 20),
///     8,
/// ));
/// // Preload, then measure a GET-only stream.
/// sim.store_mut().put(b"k", b"v").unwrap();
/// let reqs: Vec<KvRequest> = (0..256).map(|_| KvRequest::get(b"k")).collect();
/// let report = sim.run(&reqs);
/// assert!(report.get_us(Percentile::P50) > 1.0); // at least the network RTT
/// ```
pub struct SystemSim {
    cfg: SystemSimConfig,
    store: KvDirectStore,
    req_link: NetLink,
    resp_link: NetLink,
    ports: Vec<DmaPort>,
    dram: BandwidthLink,
    rng: DetRng,
    next_port: usize,
}

impl SystemSim {
    /// Builds the simulator.
    pub fn new(cfg: SystemSimConfig) -> Self {
        SystemSim {
            store: KvDirectStore::new(cfg.store.clone()),
            req_link: NetLink::new(cfg.net.clone()),
            resp_link: NetLink::new(cfg.net.clone()),
            ports: (0..cfg.pcie_ports)
                .map(|i| DmaPort::new(cfg.pcie.clone(), 0xE2E + i as u64))
                .collect(),
            dram: BandwidthLink::new(Bandwidth::from_gbytes_per_sec(12.8)),
            rng: DetRng::seed(0xE2E0),
            next_port: 0,
            cfg,
        }
    }

    /// The functional store (for preloading).
    pub fn store_mut(&mut self) -> &mut KvDirectStore {
        &mut self.store
    }

    /// Runs the request stream to completion, returning the report.
    ///
    /// The client keeps `windows` batches outstanding; each batch's
    /// operations execute functionally (capturing their real memory
    /// accesses) and are charged in simulated time.
    pub fn run(&mut self, reqs: &[KvRequest]) -> SystemSimReport {
        let batch = self.cfg.batch.max(1);
        let mut get_hist = Histogram::new();
        let mut put_hist = Histogram::new();
        let mut ops_done = 0u64;
        let mut makespan = SimTime::ZERO;
        // Window completion times (closed loop).
        let mut window_free: Vec<SimTime> = vec![SimTime::ZERO; self.cfg.windows.max(1)];
        let cycle = self.cfg.clock.cycle();

        for chunk in reqs.chunks(batch) {
            // The client issues when its earliest window frees up.
            let w = window_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("at least one window");
            let start = window_free[w];
            // Request packet: header-amortized batch on the wire.
            let req_bytes: u64 = chunk
                .iter()
                .map(|r| 4 + r.key.len() as u64 + r.value.len() as u64)
                .sum();
            let arrive = self.req_link.send(start, req_bytes);

            // Server: decode one op per cycle; execute with real access
            // accounting; ops overlap through the DMA ports' internal
            // concurrency.
            let mut batch_done = arrive;
            let mut resp_bytes = 0u64;
            for (i, req) in chunk.iter().enumerate() {
                let decode_done = arrive + cycle * (i as u64 + 1);
                let before = self.store.processor().table().mem().stats();
                let resp = self
                    .store
                    .execute_batch(std::slice::from_ref(req))
                    .pop()
                    .expect("one response");
                resp_bytes += 3 + resp.value.len() as u64;
                let d = self.store.processor().table().mem().stats().since(&before);
                // Critical path: dependent reads serialize (bucket →
                // data); posted writes are issued but do not extend it.
                let n_ports = self.ports.len();
                let mut t = decode_done;
                for _ in 0..d.dma_reads {
                    let idx = self.next_port;
                    self.next_port = (self.next_port + 1) % n_ports;
                    t = self.ports[idx].read(t, 64, false);
                }
                for _ in 0..d.dram_reads {
                    let served = self.dram.transfer(t, 64);
                    t = served.max(t + self.cfg.dram_access);
                }
                for _ in 0..d.dma_writes {
                    let idx = self.next_port;
                    self.next_port = (self.next_port + 1) % n_ports;
                    self.ports[idx].write(t, 64);
                }
                for _ in 0..d.dram_writes {
                    self.dram.transfer(t, 64);
                }
                // A forwarded (station fast-path) op costs one cycle;
                // per-op latency is recorded below once the batch's
                // response lands.
                t = t.max(decode_done);
                batch_done = batch_done.max(t);
            }

            // Response packet for the batch.
            let resp_arrive = self.resp_link.send(batch_done, resp_bytes);
            window_free[w] = resp_arrive;
            makespan = makespan.max(resp_arrive);
            for req in chunk {
                ops_done += 1;
                let lat = resp_arrive - start;
                // Tiny deterministic jitter spreads ties for percentile
                // resolution (scheduling noise stand-in).
                let jitter = SimTime::from_ps(self.rng.u64_below(50_000));
                if req.op == OpCode::Put {
                    put_hist.record_time(lat + jitter);
                } else {
                    get_hist.record_time(lat + jitter);
                }
            }
        }

        let secs = makespan.as_secs_f64();
        SystemSimReport {
            ops: ops_done,
            elapsed: makespan,
            mops: if secs > 0.0 {
                ops_done as f64 / secs / 1e6
            } else {
                0.0
            },
            get_latency: get_hist.summary(),
            put_latency: put_hist.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::ZipfSampler;

    fn preloaded(n_keys: u64, val_len: usize, batch: usize) -> SystemSim {
        let mut sim = SystemSim::new(SystemSimConfig::paper(
            KvDirectConfig::with_memory(4 << 20),
            batch,
        ));
        for id in 0..n_keys {
            sim.store_mut()
                .put(&id.to_le_bytes(), &vec![id as u8; val_len])
                .expect("preload fits");
        }
        sim
    }

    fn mixed_reqs(n: usize, n_keys: u64, put_ratio: f64, zipf: bool, seed: u64) -> Vec<KvRequest> {
        let mut rng = DetRng::seed(seed);
        let sampler = ZipfSampler::new(n_keys, 0.99);
        (0..n)
            .map(|_| {
                let id = if zipf {
                    sampler.sample(&mut rng)
                } else {
                    rng.u64_below(n_keys)
                };
                if rng.chance(put_ratio) {
                    KvRequest::put(&id.to_le_bytes(), &[7u8; 8])
                } else {
                    KvRequest::get(&id.to_le_bytes())
                }
            })
            .collect()
    }

    #[test]
    fn latency_floor_is_network_rtt_plus_memory() {
        // A corpus far larger than the 1024-slot station, so reads truly
        // touch memory (a tiny corpus would live in the forwarding cache
        // forever — correct, but not what this test probes).
        let mut sim = preloaded(20_000, 8, 1);
        let r = sim.run(&mixed_reqs(500, 20_000, 0.0, false, 1));
        // ≥ 2us network RTT + ~1us memory; ≤ the paper's ~10us band.
        let p50 = r.get_us(Percentile::P50);
        assert!(p50 > 2.5, "p50 {p50}us below physical floor");
        assert!(p50 < 10.0, "p50 {p50}us above the paper's band");
        assert!(r.get_latency.p95 >= r.get_latency.p50);
    }

    #[test]
    fn puts_slower_than_gets() {
        let mut sim = preloaded(1000, 8, 1);
        let r = sim.run(&mixed_reqs(2000, 1000, 0.5, false, 2));
        assert!(
            r.put_us(Percentile::P50) > r.get_us(Percentile::P50) * 0.95,
            "PUT {} vs GET {}",
            r.put_us(Percentile::P50),
            r.get_us(Percentile::P50)
        );
    }

    #[test]
    fn skew_reduces_latency() {
        let mut uni = preloaded(20_000, 8, 1);
        let ru = uni.run(&mixed_reqs(3000, 20_000, 0.0, false, 3));
        let mut zipf = preloaded(20_000, 8, 1);
        let rz = zipf.run(&mixed_reqs(3000, 20_000, 0.0, true, 3));
        // Station forwarding + DRAM hits shorten the skewed path.
        assert!(
            rz.get_us(Percentile::P50) <= ru.get_us(Percentile::P50) + 0.01,
            "zipf {} vs uniform {}",
            rz.get_us(Percentile::P50),
            ru.get_us(Percentile::P50)
        );
    }

    #[test]
    fn batching_improves_throughput() {
        let reqs = mixed_reqs(4000, 1000, 0.0, false, 4);
        let mut nb = preloaded(1000, 8, 1);
        let rn = nb.run(&reqs);
        let mut b = preloaded(1000, 8, 40);
        let rb = b.run(&reqs);
        assert!(
            rb.mops > rn.mops * 1.5,
            "batched {} vs non-batched {} Mops",
            rb.mops,
            rn.mops
        );
        // And costs only a bounded latency increase.
        let added = rb.get_us(Percentile::P50) - rn.get_us(Percentile::P50);
        assert!(added < 2.0, "batching added {added}us");
    }

    #[test]
    fn report_accounting_consistent() {
        let mut sim = preloaded(100, 8, 8);
        let reqs = mixed_reqs(512, 100, 0.3, false, 5);
        let r = sim.run(&reqs);
        assert_eq!(r.ops, 512);
        assert_eq!(
            r.get_latency.count + r.put_latency.count,
            512,
            "every op lands in exactly one histogram"
        );
        assert!(r.elapsed > SimTime::ZERO);
    }
}
