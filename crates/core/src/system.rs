//! Timed end-to-end system simulation (client ↔ NIC ↔ host memory).
//!
//! The composition model in [`crate::timing`] predicts throughput and
//! latency analytically; this module *simulates* them: a closed-loop
//! client sends batched request packets over the 40 GbE model, the KV
//! processor executes each operation functionally (so access counts are
//! real, per operation), and every memory access is charged to the PCIe
//! DMA ports or the NIC DRAM channel in simulated time, respecting
//! dependency order (a GET's data read waits for its bucket read; posted
//! writes do not extend the critical path). Client-observed latencies
//! land in a histogram, yielding the paper's 5th/95th-percentile error
//! bars (Figure 17) from first principles.
//!
//! The simulator is *steppable*: [`SystemSim::load`] stages a request
//! stream and [`SystemSim::step`] advances it only up to a time horizon,
//! reporting how many host-memory cache lines the window consumed. The
//! parallel multi-NIC engine ([`crate::parallel`]) drives one `SystemSim`
//! per shard in lockstep windows and charges their aggregate host traffic
//! to a shared DRAM arbiter; [`SystemSim::run`] is the single-shard
//! convenience that steps to completion in one unbounded window.

use kvd_mem::MemoryEngine;
use kvd_net::{KvRequest, NetConfig, NetLink, OpCode};
use kvd_pcie::PcieConfig;
use kvd_sim::{Bandwidth, DetRng, Freq, Histogram, SimTime, Summary};

use crate::store::{KvDirectConfig, KvDirectStore};

/// Configuration of the end-to-end simulation.
#[derive(Debug, Clone)]
pub struct SystemSimConfig {
    /// Store configuration (memory sizes, ratios).
    pub store: KvDirectConfig,
    /// Network model.
    pub net: NetConfig,
    /// Per-endpoint PCIe model.
    pub pcie: PcieConfig,
    /// PCIe endpoints (paper: 2).
    pub pcie_ports: usize,
    /// NIC DRAM random access time per 64 B line.
    pub dram_access: SimTime,
    /// Processor clock (one op decodes per cycle).
    pub clock: Freq,
    /// Operations per request packet (1 = no batching).
    pub batch: usize,
    /// Client windows kept in flight (closed loop).
    pub windows: usize,
}

impl SystemSimConfig {
    /// The paper's testbed at the given store scale.
    pub fn paper(store: KvDirectConfig, batch: usize) -> Self {
        SystemSimConfig {
            store,
            net: NetConfig::forty_gbe(),
            pcie: PcieConfig::gen3_x8(),
            pcie_ports: 2,
            dram_access: SimTime::from_ns(120),
            clock: Freq::from_mhz(180),
            batch,
            windows: 8,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSimReport {
    /// Operations completed.
    pub ops: u64,
    /// Simulated makespan.
    pub elapsed: SimTime,
    /// Sustained throughput (Mops).
    pub mops: f64,
    /// GET latency summary (picoseconds).
    pub get_latency: Summary,
    /// PUT latency summary (picoseconds).
    pub put_latency: Summary,
}

impl SystemSimReport {
    /// GET latency percentile in microseconds.
    pub fn get_us(&self, p: Percentile) -> f64 {
        pick(&self.get_latency, p) as f64 / 1e6
    }

    /// PUT latency percentile in microseconds.
    pub fn put_us(&self, p: Percentile) -> f64 {
        pick(&self.put_latency, p) as f64 / 1e6
    }
}

/// Percentile selector for report accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Percentile {
    /// 5th percentile (the paper's lower error bar).
    P5,
    /// Median.
    P50,
    /// 95th percentile (the paper's upper error bar).
    P95,
}

fn pick(s: &Summary, p: Percentile) -> u64 {
    match p {
        Percentile::P5 => s.p5,
        Percentile::P50 => s.p50,
        Percentile::P95 => s.p95,
    }
}

/// The end-to-end simulator.
///
/// # Examples
///
/// ```
/// use kvd_core::system::{SystemSim, SystemSimConfig, Percentile};
/// use kvd_core::KvDirectConfig;
/// use kvd_net::KvRequest;
///
/// let mut sim = SystemSim::new(SystemSimConfig::paper(
///     KvDirectConfig::with_memory(1 << 20),
///     8,
/// ));
/// // Preload, then measure a GET-only stream.
/// sim.store_mut().put(b"k", b"v").unwrap();
/// let reqs: Vec<KvRequest> = (0..256).map(|_| KvRequest::get(b"k")).collect();
/// let report = sim.run(&reqs);
/// assert!(report.get_us(Percentile::P50) > 1.0); // at least the network RTT
/// ```
pub struct SystemSim {
    cfg: SystemSimConfig,
    store: KvDirectStore,
    req_link: NetLink,
    resp_link: NetLink,
    rng: DetRng,
    /// Service time per 64 B host line across all PCIe endpoints: the
    /// tag-limited random-read rate (tags / mean RTT) or the wire
    /// bandwidth, whichever is slower.
    pcie_line_service: SimTime,
    /// Service time per 64 B line of NIC DRAM channel bandwidth.
    dram_line_service: SimTime,
    /// Fluid backlog clocks: how far each resource's committed work
    /// extends into the future.
    pcie_free: SimTime,
    dram_free: SimTime,
    // ---- staged run state (load/step/report) ----
    pending: Vec<KvRequest>,
    loads: Vec<OpLoad>,
    cursor: usize,
    window_free: Vec<SimTime>,
    server_free: SimTime,
    get_hist: Histogram,
    put_hist: Histogram,
    ops_done: u64,
    makespan: SimTime,
}

/// One operation's captured memory-access load, charged against the
/// timed service models (scratch state between the functional and timed
/// passes of a batch).
#[derive(Debug, Clone, Copy)]
struct OpLoad {
    t: SimTime,
    dma_reads: u64,
    dram_reads: u64,
    dma_writes: u64,
    dram_writes: u64,
}

/// What one [`SystemSim::step`] window consumed and whether the stream is
/// drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Host-memory cache lines (PCIe DMA reads + writes) issued by
    /// operations that *started* inside the window. The arbiter charges
    /// these against shared host DRAM bandwidth.
    pub host_lines: u64,
    /// True once every staged request has completed.
    pub done: bool,
}

impl SystemSim {
    /// Builds the simulator with the default seed.
    pub fn new(cfg: SystemSimConfig) -> Self {
        Self::with_seed(cfg, 0xE2E0)
    }

    /// Builds the simulator with an explicit seed; every source of
    /// simulated nondeterminism (read-latency jitter, tie-breaking
    /// noise) derives from it, so two sims with equal config + seed
    /// evolve bit-identically.
    pub fn with_seed(cfg: SystemSimConfig, seed: u64) -> Self {
        let windows = cfg.windows.max(1);
        let ports = cfg.pcie_ports.max(1) as u64;
        // Per-line service time of one endpoint: a 64 B random read is
        // either tag-limited (paper: 64 tags over a ~1050 ns RTT, 61 Mops)
        // or wire-limited (90 B at 7.87 GB/s, 87 Mops); the endpoints
        // drain lines in parallel.
        let tag_limited = cfg.pcie.mean_random_read_latency() / u64::from(cfg.pcie.read_tags);
        let wire_limited = cfg.pcie.bandwidth.transfer_time(cfg.pcie.wire_bytes(64));
        SystemSim {
            store: KvDirectStore::new(cfg.store.clone()),
            req_link: NetLink::new(cfg.net.clone()),
            resp_link: NetLink::new(cfg.net.clone()),
            rng: DetRng::seed(seed),
            pcie_line_service: tag_limited.max(wire_limited) / ports,
            dram_line_service: Bandwidth::from_gbytes_per_sec(12.8).transfer_time(64),
            pcie_free: SimTime::ZERO,
            dram_free: SimTime::ZERO,
            pending: Vec::new(),
            loads: Vec::new(),
            cursor: 0,
            window_free: vec![SimTime::ZERO; windows],
            server_free: SimTime::ZERO,
            get_hist: Histogram::new(),
            put_hist: Histogram::new(),
            ops_done: 0,
            makespan: SimTime::ZERO,
            cfg,
        }
    }

    /// The functional store (for preloading).
    pub fn store_mut(&mut self) -> &mut KvDirectStore {
        &mut self.store
    }

    /// Stages a request stream and resets per-run accounting (histograms,
    /// op counts, client windows). Component clocks (links, service
    /// backlogs) persist, as they would across runs on real hardware.
    pub fn load(&mut self, reqs: &[KvRequest]) {
        self.pending.clear();
        self.pending.extend_from_slice(reqs);
        self.cursor = 0;
        self.window_free = vec![SimTime::ZERO; self.cfg.windows.max(1)];
        self.server_free = SimTime::ZERO;
        self.get_hist = Histogram::new();
        self.put_hist = Histogram::new();
        self.ops_done = 0;
        self.makespan = SimTime::ZERO;
    }

    /// Advances the staged stream through one lookahead window.
    ///
    /// Processes every batch whose client issue time — the earliest free
    /// window, floored at `floor` — falls strictly before `horizon`, and
    /// returns the host cache-line traffic those batches generated.
    /// `floor` is how the multi-NIC arbiter stretches an oversubscribed
    /// window: requests in the next window cannot issue before the
    /// stretched start, so aggregate throughput degrades without any
    /// component clock rewinding. Traffic is charged to the window where
    /// the batch *issues* (a conservative approximation: completion may
    /// spill past the horizon by at most one batch's service time).
    pub fn step(&mut self, horizon: SimTime, floor: SimTime) -> StepOutcome {
        let batch = self.cfg.batch.max(1);
        let cycle = self.cfg.clock.cycle();
        let mut host_lines = 0u64;

        while self.cursor < self.pending.len() {
            // The client issues when its earliest window frees up.
            let w = self
                .window_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .map(|(i, _)| i)
                .expect("at least one window");
            let start = self.window_free[w].max(floor);
            if start >= horizon {
                break;
            }
            let end = (self.cursor + batch).min(self.pending.len());

            // Request packet: header-amortized batch on the wire.
            let req_bytes: u64 = self.pending[self.cursor..end]
                .iter()
                .map(|r| 4 + r.key.len() as u64 + r.value.len() as u64)
                .sum();
            let arrive = self.req_link.send(start, req_bytes);

            // Server: the decoder is a single 180 MHz pipeline shared by
            // all in-flight windows — a batch cannot start decoding
            // before the previous batch has drained it.
            let decode_start = arrive.max(self.server_free);
            self.server_free = decode_start + cycle * ((end - self.cursor) as u64);
            let mut resp_bytes = 0u64;
            // Pass 1: execute functionally, capturing each op's real
            // access counts.
            self.loads.clear();
            for i in self.cursor..end {
                let decode_done = decode_start + cycle * ((i - self.cursor) as u64 + 1);
                let before = self.store.processor().table().mem().stats();
                let req = &self.pending[i];
                let resp = self.store.execute_one(req.as_ref());
                resp_bytes += 3 + resp.value.len() as u64;
                let d = self.store.processor().table().mem().stats().since(&before);
                host_lines += d.dma_reads + d.dma_writes;
                self.loads.push(OpLoad {
                    t: decode_done,
                    dma_reads: d.dma_reads,
                    dram_reads: d.dram_reads,
                    dma_writes: d.dma_writes,
                    dram_writes: d.dram_writes,
                });
            }
            // Pass 2: charge the accesses against fluid service models of
            // the PCIe DMA engines and the NIC DRAM channel. Independent
            // operations overlap freely up to each resource's service
            // rate (tag-limited random reads for PCIe, line bandwidth for
            // DRAM); a saturated resource shows up as a backlog clock
            // running ahead of arrivals, which delays every operation
            // that touches it. Within an op, dependent reads still chain
            // (bucket → data); posted writes consume service capacity but
            // do not extend the critical path.
            let pcie_backlog = self.pcie_free.saturating_sub(arrive);
            let dram_backlog = self.dram_free.saturating_sub(arrive);
            let mut batch_done = arrive;
            let (mut pcie_lines, mut dram_lines) = (0u64, 0u64);
            for op in self.loads.iter() {
                let queued = match (op.dma_reads > 0, op.dram_reads > 0) {
                    (true, true) => pcie_backlog.max(dram_backlog),
                    (true, false) => pcie_backlog,
                    (false, true) => dram_backlog,
                    (false, false) => SimTime::ZERO,
                };
                let mut t = op.t + queued;
                for _ in 0..op.dma_reads {
                    let mut rtt = self.cfg.pcie.cached_read_latency.sample(&mut self.rng);
                    rtt += SimTime::from_ps(
                        self.rng
                            .u64_below(self.cfg.pcie.noncached_extra.as_ps() + 1),
                    );
                    t += rtt;
                }
                for _ in 0..op.dram_reads {
                    t += self.cfg.dram_access;
                }
                pcie_lines += op.dma_reads + op.dma_writes;
                dram_lines += op.dram_reads + op.dram_writes;
                batch_done = batch_done.max(t);
            }
            self.pcie_free = self.pcie_free.max(arrive) + self.pcie_line_service * pcie_lines;
            self.dram_free = self.dram_free.max(arrive) + self.dram_line_service * dram_lines;

            // Response packet for the batch.
            let resp_arrive = self.resp_link.send(batch_done, resp_bytes);
            self.window_free[w] = resp_arrive;
            self.makespan = self.makespan.max(resp_arrive);
            for i in self.cursor..end {
                self.ops_done += 1;
                let lat = resp_arrive - start;
                // Tiny deterministic jitter spreads ties for percentile
                // resolution (scheduling noise stand-in).
                let jitter = SimTime::from_ps(self.rng.u64_below(50_000));
                if self.pending[i].op == OpCode::Put {
                    self.put_hist.record_time(lat + jitter);
                } else {
                    self.get_hist.record_time(lat + jitter);
                }
            }
            self.cursor = end;
        }

        StepOutcome {
            host_lines,
            done: self.cursor >= self.pending.len(),
        }
    }

    /// Report over everything completed since the last [`Self::load`].
    pub fn report(&self) -> SystemSimReport {
        let secs = self.makespan.as_secs_f64();
        SystemSimReport {
            ops: self.ops_done,
            elapsed: self.makespan,
            mops: if secs > 0.0 {
                self.ops_done as f64 / secs / 1e6
            } else {
                0.0
            },
            get_latency: self.get_hist.summary(),
            put_latency: self.put_hist.summary(),
        }
    }

    /// Raw latency histograms (GET, PUT) for cross-shard merging.
    pub fn histograms(&self) -> (&Histogram, &Histogram) {
        (&self.get_hist, &self.put_hist)
    }

    /// Runs the request stream to completion, returning the report.
    ///
    /// The client keeps `windows` batches outstanding; each batch's
    /// operations execute functionally (capturing their real memory
    /// accesses) and are charged in simulated time. Equivalent to one
    /// unbounded [`Self::step`] window.
    pub fn run(&mut self, reqs: &[KvRequest]) -> SystemSimReport {
        self.load(reqs);
        while !self.step(SimTime::MAX, SimTime::ZERO).done {}
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::ZipfSampler;

    fn preloaded(n_keys: u64, val_len: usize, batch: usize) -> SystemSim {
        let mut sim = SystemSim::new(SystemSimConfig::paper(
            KvDirectConfig::with_memory(4 << 20),
            batch,
        ));
        for id in 0..n_keys {
            sim.store_mut()
                .put(&id.to_le_bytes(), &vec![id as u8; val_len])
                .expect("preload fits");
        }
        sim
    }

    fn mixed_reqs(n: usize, n_keys: u64, put_ratio: f64, zipf: bool, seed: u64) -> Vec<KvRequest> {
        let mut rng = DetRng::seed(seed);
        let sampler = ZipfSampler::new(n_keys, 0.99);
        (0..n)
            .map(|_| {
                let id = if zipf {
                    sampler.sample(&mut rng)
                } else {
                    rng.u64_below(n_keys)
                };
                if rng.chance(put_ratio) {
                    KvRequest::put(&id.to_le_bytes(), &[7u8; 8])
                } else {
                    KvRequest::get(&id.to_le_bytes())
                }
            })
            .collect()
    }

    #[test]
    fn latency_floor_is_network_rtt_plus_memory() {
        // A corpus far larger than the 1024-slot station, so reads truly
        // touch memory (a tiny corpus would live in the forwarding cache
        // forever — correct, but not what this test probes).
        let mut sim = preloaded(20_000, 8, 1);
        let r = sim.run(&mixed_reqs(500, 20_000, 0.0, false, 1));
        // ≥ 2us network RTT + ~1us memory; ≤ the paper's ~10us band.
        let p50 = r.get_us(Percentile::P50);
        assert!(p50 > 2.5, "p50 {p50}us below physical floor");
        assert!(p50 < 10.0, "p50 {p50}us above the paper's band");
        assert!(r.get_latency.p95 >= r.get_latency.p50);
    }

    #[test]
    fn puts_slower_than_gets() {
        let mut sim = preloaded(1000, 8, 1);
        let r = sim.run(&mixed_reqs(2000, 1000, 0.5, false, 2));
        assert!(
            r.put_us(Percentile::P50) > r.get_us(Percentile::P50) * 0.95,
            "PUT {} vs GET {}",
            r.put_us(Percentile::P50),
            r.get_us(Percentile::P50)
        );
    }

    #[test]
    fn skew_reduces_latency() {
        let mut uni = preloaded(20_000, 8, 1);
        let ru = uni.run(&mixed_reqs(3000, 20_000, 0.0, false, 3));
        let mut zipf = preloaded(20_000, 8, 1);
        let rz = zipf.run(&mixed_reqs(3000, 20_000, 0.0, true, 3));
        // Station forwarding + DRAM hits shorten the skewed path.
        assert!(
            rz.get_us(Percentile::P50) <= ru.get_us(Percentile::P50) + 0.01,
            "zipf {} vs uniform {}",
            rz.get_us(Percentile::P50),
            ru.get_us(Percentile::P50)
        );
    }

    #[test]
    fn batching_improves_throughput() {
        let reqs = mixed_reqs(4000, 1000, 0.0, false, 4);
        let mut nb = preloaded(1000, 8, 1);
        let rn = nb.run(&reqs);
        let mut b = preloaded(1000, 8, 40);
        let rb = b.run(&reqs);
        assert!(
            rb.mops > rn.mops * 1.5,
            "batched {} vs non-batched {} Mops",
            rb.mops,
            rn.mops
        );
        // And costs only a bounded latency increase.
        let added = rb.get_us(Percentile::P50) - rn.get_us(Percentile::P50);
        assert!(added < 2.0, "batching added {added}us");
    }

    #[test]
    fn report_accounting_consistent() {
        let mut sim = preloaded(100, 8, 8);
        let reqs = mixed_reqs(512, 100, 0.3, false, 5);
        let r = sim.run(&reqs);
        assert_eq!(r.ops, 512);
        assert_eq!(
            r.get_latency.count + r.put_latency.count,
            512,
            "every op lands in exactly one histogram"
        );
        assert!(r.elapsed > SimTime::ZERO);
    }
}
