//! Multi-node cluster plane: M member hosts, chain replication, and
//! deterministic failover.
//!
//! Each member is a full [`SystemSim`] (NIC pipeline, hash table, slab,
//! PCIe/DRAM, overload plane); this module adds what the paper's
//! single-box scope leaves out — what happens when the *box* dies.
//! Members are joined by [`NodeLink`]s (latency + serialization
//! bandwidth) and driven in **window lockstep** under a
//! [`ClusterClock`]: the credit arbiter's conservative-lookahead rule,
//! applied between hosts. A frame sent during window `k` is never
//! visible before window `k + 1`, so within a window every member
//! depends only on state settled at the boundary. Members therefore
//! step on any number of OS workers and the merged ledgers stay
//! bit-identical — the cluster-level restatement of the per-shard
//! null-message protocol.
//!
//! # Replication and reads
//!
//! Keys map to replica sets through the consistent-hash ring
//! ([`HashRing`], RF ∈ {1, 2, 3}). Writes use **chain replication**:
//! the client sends to the chain head (first replica); each member
//! applies locally, then forwards one [`RepFrame::Replicate`] hop down
//! the chain; the tail's apply releases a [`RepFrame::Ack`] that climbs
//! back to the head, and only that ack completes the client's write.
//! Reads go to the **tail** — the tail's state is exactly the committed
//! prefix, so a read can never observe a write that a failover could
//! later revoke. A client keeps at most one write in flight per key
//! (later writes to the same key queue behind it), which is what makes
//! the per-key version history checkable under retries.
//!
//! # Failure and promotion
//!
//! A whole node can be killed mid-run ([`NodeKill`] — the fault plane
//! raised one level). Live members broadcast [`RepFrame::Heartbeat`]s
//! every `hb_every` windows; when a member has not been heard from for
//! `hb_timeout` windows, the survivors declare it dead in the same
//! window (links are symmetric, so detection is cluster-wide and
//! deterministic). Placement stays pinned to the full ring; every key's
//! *effective* chain is its placement replicas with detected-dead
//! members filtered out. Because ring removal preserves survivor order
//! (the clockwise walk only appends a backfill member at the end), this
//! filtered chain is exactly the remapped chain minus a member that
//! holds no data — chains run degraded at reduced RF rather than
//! serving empty reads from a backfill, and the next member in order is
//! promoted when the head dies. In-flight writes recover by
//! role: a write the dead head never applied is **retried by the
//! client** against the new head; a write stranded mid-chain is
//! **re-driven** by its last live applier to the next survivor; a write
//! the tail applied but whose ack was lost gets its ack **re-emitted**
//! by the new tail. Reads outstanding against the dead member are
//! **hedged** to the new tail. Acked writes are never lost: an ack
//! exists only once the tail applied, and the tail (or its chain
//! predecessors, which applied strictly earlier) survives every
//! single-node failure.
//!
//! All replication, heartbeat and retry traffic is charged through the
//! ledger's cluster section, so the throughput cost of RF=2/3 and the
//! depth of a failover window land as measured numbers, not prose.

use std::collections::{BTreeMap, HashMap, VecDeque};

use kvd_net::{HashRing, KvRequest, OpCode, RepFrame, Status};
use kvd_sim::{ClusterClock, CostSource, Histogram, NodeLink, NodeLinkConfig, OpLedger, SimTime};

use crate::store::KvDirectConfig;
use crate::system::{SystemSim, SystemSimConfig};

/// Kill order for one member: the node stops stepping, sending and
/// receiving at the start of `window` — a power failure, not a drain.
#[derive(Debug, Clone, Copy)]
pub struct NodeKill {
    /// Member to kill.
    pub node: u32,
    /// Cluster window at whose start the member dies.
    pub window: u64,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    /// Per-member host configuration (every member is identical).
    pub node: SystemSimConfig,
    /// Member count M.
    pub nodes: usize,
    /// Replication factor (1 = no replication, chain of one).
    pub rf: usize,
    /// Inter-node link shape (shared by every member pair).
    pub link: NodeLinkConfig,
    /// Window quantum of the cluster clock.
    pub quantum: SimTime,
    /// Virtual points per member on the consistent-hash ring.
    pub vnodes: usize,
    /// Heartbeat broadcast period, in windows.
    pub hb_every: u64,
    /// Windows without a delivered heartbeat before a member is
    /// declared dead. Must exceed `hb_every + 1` (beacon period plus
    /// delivery lookahead), or live members would be declared dead.
    pub hb_timeout: u64,
    /// OS worker threads stepping members within a window.
    pub workers: usize,
    /// Optional mid-run node kill.
    pub kill: Option<NodeKill>,
}

impl ClusterSimConfig {
    /// A small cluster for tests: M members, RF as given, rack links,
    /// 2 µs windows, one worker.
    pub fn smoke(nodes: usize, rf: usize) -> Self {
        ClusterSimConfig {
            node: SystemSimConfig::paper(KvDirectConfig::with_memory(4 << 20), 8),
            nodes,
            rf,
            link: NodeLinkConfig::rack(),
            quantum: SimTime::from_us(2),
            vnodes: 64,
            hb_every: 4,
            hb_timeout: 12,
            workers: 1,
            kill: None,
        }
    }

    fn validate(&self) {
        assert!(self.nodes >= 1, "cluster needs at least one member");
        assert!(
            (1..=self.nodes).contains(&self.rf),
            "RF {} outside 1..={} members",
            self.rf,
            self.nodes
        );
        assert!(self.hb_every >= 1, "heartbeat period must be positive");
        assert!(
            self.hb_timeout > self.hb_every + 1,
            "hb_timeout {} must exceed hb_every {} + delivery lookahead",
            self.hb_timeout,
            self.hb_every
        );
        assert!(self.workers >= 1, "need at least one worker");
        if let Some(kill) = self.kill {
            assert!(
                (kill.node as usize) < self.nodes,
                "kill target {} outside cluster",
                kill.node
            );
            assert!(self.nodes >= 2, "cannot kill the only member");
        }
    }
}

/// What one staged request on a member's host means to the cluster.
#[derive(Debug, Clone, Copy)]
enum FedKind {
    /// Client write applying at the chain head (op index).
    Write(usize),
    /// Client read serving at the chain tail (op index).
    Read(usize),
    /// Replicated write applying at a downstream chain member.
    Apply(usize),
}

/// One member host plus its cluster-facing state.
struct NodeState {
    sim: SystemSim,
    link: NodeLink,
    alive: bool,
    /// Outcomes already consumed by the coordinator.
    consumed: usize,
    /// Cluster meaning of each staged request, aligned with the stream.
    fed: Vec<FedKind>,
    /// Requests accumulated for the upcoming feed, with push order for
    /// stable tie-breaking.
    feed_buf: Vec<(SimTime, KvRequest, FedKind)>,
    /// Next write sequence number originated at this member.
    seq: u64,
    /// Last window in which any live member received this member's
    /// heartbeat (window 0 counts as a fresh beacon — joining is alive).
    last_hb: u64,
    /// Window the member died in, once killed.
    killed_at: u64,
    detected: bool,
}

/// An unresolved client write moving down its chain.
struct WriteState {
    req: KvRequest,
    /// Surviving replica chain, head first. Shrinks on failover; never
    /// reordered.
    chain: Vec<u32>,
    /// Apply flag per chain slot, aligned with `chain`.
    applied: Vec<bool>,
    /// `(origin, seq)` naming this write on the wire.
    origin: u32,
    seq: u64,
    issue: SimTime,
}

/// An unresolved client read.
struct ReadState {
    key: Vec<u8>,
    target: u32,
    issue: SimTime,
}

/// Per-op record of what the cluster client observed — the raw material
/// for linearizability checking.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The operation.
    pub op: OpCode,
    /// Scheduled issue instant.
    pub issue: SimTime,
    /// Final status (writes: `Ok` only on a tail-acked commit).
    pub status: Status,
    /// Observed value (reads).
    pub value: Vec<u8>,
    /// Cluster window the op resolved in.
    pub done_window: u64,
    /// Write committed by a tail ack.
    pub acked: bool,
    /// Write was re-issued by the client after a failover.
    pub retried: bool,
    /// Read was hedged to a survivor after a failover.
    pub hedged: bool,
}

/// Cluster run report.
pub struct ClusterReport {
    /// Ops in the schedule.
    pub ops: usize,
    /// Simulated makespan (horizon of the final window).
    pub elapsed: SimTime,
    /// Windows driven.
    pub windows: u64,
    /// Merged ledger: every member's host ledger, every link, and the
    /// coordinator's cluster counters, folded in member order.
    pub ledger: OpLedger,
    /// Client-observed write latency (issue → tail ack), µs.
    pub write_hist: Histogram,
    /// Client-observed read latency, µs.
    pub read_hist: Histogram,
    /// Per-op observations, aligned with the schedule.
    pub records: Vec<OpRecord>,
    /// Window the kill fired in, if configured.
    pub kill_window: Option<u64>,
    /// Window the survivors declared the member dead in.
    pub detect_window: Option<u64>,
}

impl ClusterReport {
    /// Committed client operations per second of simulated time.
    pub fn goodput_ops_per_sec(&self) -> f64 {
        let done = self
            .records
            .iter()
            .filter(|r| r.status == Status::Ok || r.status == Status::NotFound)
            .count();
        done as f64 / self.elapsed.as_secs_f64()
    }
}

/// The cluster simulation: coordinator plus M member hosts.
pub struct ClusterSim {
    cfg: ClusterSimConfig,
    clock: ClusterClock,
    ring: HashRing,
    nodes: Vec<NodeState>,
    /// Frames in flight: delivery window → (dest, arrival, frame), in
    /// emission order.
    inbox: BTreeMap<u64, Vec<(u32, SimTime, RepFrame)>>,
    /// Unresolved writes by op index.
    writes: BTreeMap<usize, WriteState>,
    /// Unresolved reads by op index.
    reads: BTreeMap<usize, ReadState>,
    /// `(origin, seq)` → op index, for ack and replicate routing.
    by_seq: BTreeMap<(u32, u64), usize>,
    /// Key → op index of the write currently in flight for it.
    inflight: HashMap<Vec<u8>, usize>,
    /// Key → writes queued behind the in-flight one, FIFO.
    deferred: HashMap<Vec<u8>, VecDeque<usize>>,
    /// Coordinator-side ledger (cluster counters; links fold in at
    /// report time).
    led: OpLedger,
    records: Vec<OpRecord>,
    write_hist: Histogram,
    read_hist: Histogram,
    kill_window: Option<u64>,
    detect_window: Option<u64>,
}

impl ClusterSim {
    /// Builds an idle cluster.
    pub fn new(cfg: ClusterSimConfig) -> Self {
        cfg.validate();
        let nodes = (0..cfg.nodes)
            .map(|_| {
                let mut sim = SystemSim::new(cfg.node.clone());
                sim.load_open_owned(Vec::new(), Vec::new());
                sim.set_record_outcomes(true);
                NodeState {
                    sim,
                    link: NodeLink::new(cfg.link.clone()),
                    alive: true,
                    consumed: 0,
                    fed: Vec::new(),
                    feed_buf: Vec::new(),
                    seq: 0,
                    last_hb: 0,
                    killed_at: 0,
                    detected: false,
                }
            })
            .collect();
        ClusterSim {
            clock: ClusterClock::new(cfg.quantum),
            ring: HashRing::with_nodes(cfg.nodes, cfg.vnodes),
            nodes,
            inbox: BTreeMap::new(),
            writes: BTreeMap::new(),
            reads: BTreeMap::new(),
            by_seq: BTreeMap::new(),
            inflight: HashMap::new(),
            deferred: HashMap::new(),
            led: OpLedger::default(),
            records: Vec::new(),
            write_hist: Histogram::new(),
            read_hist: Histogram::new(),
            kill_window: None,
            detect_window: None,
            cfg,
        }
    }

    /// Direct access to one member's store (preloading).
    pub fn store_mut(&mut self, node: u32) -> &mut crate::store::KvDirectStore {
        self.nodes[node as usize].sim.store_mut()
    }

    /// The placement ring (pinned to full membership; effective chains
    /// filter out detected-dead members).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Runs a client schedule to full drain — every op resolves, by
    /// commit, observed read, or failover recovery — and reports.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is unsorted, contains ops other than
    /// GET/PUT/DELETE, or the cluster fails to drain (a bug).
    pub fn run(&mut self, schedule: &[(SimTime, KvRequest)]) -> ClusterReport {
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule must be sorted by issue time"
        );
        assert!(
            schedule
                .iter()
                .all(|(_, r)| matches!(r.op, OpCode::Get | OpCode::Put | OpCode::Delete)),
            "cluster v1 routes GET/PUT/DELETE only"
        );
        self.records = schedule
            .iter()
            .map(|(t, r)| OpRecord {
                op: r.op,
                issue: *t,
                status: Status::DeviceError,
                value: Vec::new(),
                done_window: 0,
                acked: false,
                retried: false,
                hedged: false,
            })
            .collect();

        let last_sched_window = schedule
            .last()
            .map(|(t, _)| self.clock.window_of(*t))
            .unwrap_or(0);
        let mut cursor = 0usize;
        let mut k = 0u64;
        loop {
            let floor = self.clock.floor(k);
            let horizon = self.clock.horizon(k);

            // 1. Kill fires at the window boundary: the member is gone
            // before anything in this window happens.
            if let Some(kill) = self.cfg.kill {
                let node = &mut self.nodes[kill.node as usize];
                if k == kill.window && node.alive {
                    node.alive = false;
                    node.killed_at = k;
                    self.kill_window = Some(k);
                    self.led.cluster.node_kills += 1;
                }
            }

            // 2. Deliver this window's frames (sent in earlier windows —
            // the one-window lookahead makes this race-free).
            for (dest, arrival, frame) in self.inbox.remove(&k).unwrap_or_default() {
                self.deliver(dest, arrival.max(floor), frame, k);
            }

            // 3. Heartbeat broadcast from every live member — while any
            // work remains. Once the schedule is exhausted and every op
            // resolved, members fall silent so the run can drain (the
            // already-in-flight beacons deliver and the inbox empties).
            let work_left = cursor < schedule.len()
                || !self.writes.is_empty()
                || !self.reads.is_empty()
                || !self.inbox.is_empty();
            if work_left && k.is_multiple_of(self.cfg.hb_every) {
                self.broadcast_heartbeats(k, floor);
            }

            // 4. Route this window's client arrivals.
            while cursor < schedule.len() && self.clock.window_of(schedule[cursor].0) == k {
                let (t, req) = &schedule[cursor];
                self.route_client_op(cursor, *t, req.clone());
                cursor += 1;
            }

            // 5. Failure detection: a silent member is declared dead by
            // all survivors in the same window.
            self.detect_failures(k, floor);

            // 6. Feed each live member its window batch and step them —
            // the only parallel phase; members touch only their own
            // state.
            self.feed_and_step(horizon, floor);

            // 7. Consume newly recorded outcomes in member order and
            // emit the resulting replication frames (sent at the
            // horizon, delivered next window at the earliest).
            self.consume_outcomes(k, horizon);

            let drained = cursor >= schedule.len()
                && self.writes.is_empty()
                && self.reads.is_empty()
                && self.inbox.is_empty()
                && self.nodes.iter().all(|n| n.feed_buf.is_empty());
            if drained && k >= last_sched_window {
                break;
            }
            k += 1;
            assert!(
                k < last_sched_window + 1_000_000,
                "cluster failed to drain: {} writes, {} reads outstanding",
                self.writes.len(),
                self.reads.len()
            );
        }

        let mut ledger = self.led.clone();
        for node in &self.nodes {
            ledger.merge(&node.sim.ledger());
            node.link.emit_costs(&mut ledger);
        }
        ClusterReport {
            ops: schedule.len(),
            elapsed: self.clock.horizon(k),
            windows: k + 1,
            ledger,
            write_hist: self.write_hist.clone(),
            read_hist: self.read_hist.clone(),
            records: std::mem::take(&mut self.records),
            kill_window: self.kill_window,
            detect_window: self.detect_window,
        }
    }

    fn deliver(&mut self, dest: u32, arrival: SimTime, frame: RepFrame, k: u64) {
        if !self.nodes[dest as usize].alive {
            return; // frame lost with the member
        }
        match frame {
            RepFrame::Heartbeat { from, .. } => {
                let sender = &mut self.nodes[from as usize];
                sender.last_hb = sender.last_hb.max(k);
            }
            RepFrame::Replicate { write, origin, .. } => {
                let Some(&op) = self.by_seq.get(&(origin, write)) else {
                    return; // resolved while in flight (stale redrive)
                };
                let w = self.writes.get(&op).expect("indexed write exists");
                if !w.chain.contains(&dest) {
                    return; // chain shrank past this member
                }
                let req = w.req.clone();
                self.nodes[dest as usize]
                    .feed_buf
                    .push((arrival, req, FedKind::Apply(op)));
            }
            RepFrame::Ack { write, from: _ } => {
                let Some(&op) = self.by_seq.get(&(dest, write)) else {
                    return; // already committed via a re-emitted ack
                };
                self.commit_write(op, k, arrival);
            }
        }
    }

    fn broadcast_heartbeats(&mut self, k: u64, floor: SimTime) {
        for i in 0..self.nodes.len() {
            if !self.nodes[i].alive {
                continue;
            }
            for j in 0..self.nodes.len() {
                if i == j || !self.nodes[j].alive {
                    continue;
                }
                let frame = RepFrame::Heartbeat {
                    from: i as u32,
                    window: k,
                };
                self.led.cluster.heartbeats += 1;
                self.led.cluster.hb_bytes += frame.wire_len() as u64;
                self.send(i as u32, j as u32, frame, k, floor);
            }
        }
    }

    /// Charges a frame to the sender's link and schedules its delivery.
    fn send(&mut self, from: u32, to: u32, frame: RepFrame, sent_in: u64, now: SimTime) {
        let arrival = self.nodes[from as usize]
            .link
            .send(now, frame.wire_len() as u64);
        let window = self.clock.delivery_window(sent_in, arrival);
        self.inbox
            .entry(window)
            .or_default()
            .push((to, arrival, frame));
    }

    /// The key's effective replica chain: its placement replicas with
    /// detected-dead members filtered out, order preserved.
    ///
    /// Placement is pinned to the full ring; a failover *remaps* by
    /// filtering rather than re-walking, because the ring's removal
    /// property (survivor order is preserved, the walk only appends a
    /// new member at the end — see `ring_props`) means the re-walked
    /// list equals this one plus a backfill member that holds no data
    /// yet. Until a repair plane copies data over, routing to that
    /// member would serve empty reads, so chains run **degraded** at
    /// reduced RF instead.
    fn live_chain(&self, key: &[u8]) -> Vec<u32> {
        let mut chain = self.ring.replicas(key, self.cfg.rf);
        chain.retain(|&n| !self.nodes[n as usize].detected);
        chain
    }

    fn route_client_op(&mut self, op: usize, t: SimTime, req: KvRequest) {
        match req.op {
            OpCode::Get => {
                let replicas = self.live_chain(&req.key);
                let target = *replicas.last().expect("a live replica remains");
                self.reads.insert(
                    op,
                    ReadState {
                        key: req.key.clone(),
                        target,
                        issue: t,
                    },
                );
                if self.nodes[target as usize].alive {
                    self.nodes[target as usize]
                        .feed_buf
                        .push((t, req, FedKind::Read(op)));
                }
                // A dead target resolves via the hedge at detection.
            }
            OpCode::Put | OpCode::Delete => {
                if self.inflight.contains_key(&req.key) {
                    self.deferred
                        .entry(req.key.clone())
                        .or_default()
                        .push_back(op);
                    // Issue time is re-stamped at release; keep the
                    // request in the record's issue for latency.
                    self.writes.insert(
                        op,
                        WriteState {
                            req,
                            chain: Vec::new(),
                            applied: Vec::new(),
                            origin: u32::MAX,
                            seq: u64::MAX,
                            issue: t,
                        },
                    );
                } else {
                    self.issue_write(op, t, req);
                }
            }
            _ => unreachable!("validated in run()"),
        }
    }

    /// Puts a write on the wire: snapshot the chain, take a sequence
    /// number from the head, gate the key, feed the head.
    fn issue_write(&mut self, op: usize, t: SimTime, req: KvRequest) {
        let chain = self.live_chain(&req.key);
        let head = chain[0];
        let seq = self.nodes[head as usize].seq;
        self.nodes[head as usize].seq += 1;
        self.by_seq.insert((head, seq), op);
        self.inflight.insert(req.key.clone(), op);
        if self.nodes[head as usize].alive {
            self.nodes[head as usize]
                .feed_buf
                .push((t, req.clone(), FedKind::Write(op)));
        }
        // A dead head resolves via client retry at detection.
        let applied = vec![false; chain.len()];
        self.writes.insert(
            op,
            WriteState {
                req,
                chain,
                applied,
                origin: head,
                seq,
                issue: t,
            },
        );
    }

    /// Tail ack reached the head: the write is committed to the client.
    fn commit_write(&mut self, op: usize, k: u64, at: SimTime) {
        let w = self.writes.remove(&op).expect("committing a live write");
        self.by_seq.remove(&(w.origin, w.seq));
        self.led.cluster.writes_acked += 1;
        let rec = &mut self.records[op];
        rec.status = Status::Ok;
        rec.done_window = k;
        rec.acked = true;
        self.write_hist.record_time(at.max(w.issue) - w.issue);
        self.release_key(&w.req.key, op, at);
    }

    /// A write resolved without commit (head apply failed, or every
    /// replica died).
    fn fail_write(&mut self, op: usize, k: u64, status: Status, at: SimTime) {
        let w = self.writes.remove(&op).expect("failing a live write");
        self.by_seq.remove(&(w.origin, w.seq));
        self.led.cluster.writes_failed += 1;
        let rec = &mut self.records[op];
        rec.status = status;
        rec.done_window = k;
        self.release_key(&w.req.key, op, at);
    }

    /// Opens the key's write gate and issues the next deferred write,
    /// preserving client order.
    fn release_key(&mut self, key: &[u8], op: usize, at: SimTime) {
        if self.inflight.get(key) == Some(&op) {
            self.inflight.remove(key);
        }
        let next = self.deferred.get_mut(key).and_then(|q| q.pop_front());
        if let Some(next_op) = next {
            let w = self.writes.remove(&next_op).expect("deferred write staged");
            self.issue_write(next_op, at.max(w.issue), w.req);
        } else {
            self.deferred.remove(key);
        }
    }

    fn detect_failures(&mut self, k: u64, floor: SimTime) {
        for d in 0..self.nodes.len() {
            let node = &self.nodes[d];
            if node.alive || node.detected {
                continue;
            }
            if k.saturating_sub(node.last_hb) <= self.cfg.hb_timeout {
                continue;
            }
            self.nodes[d].detected = true;
            self.detect_window = Some(k);
            self.led.cluster.failovers += 1;
            self.led.cluster.promotions += 1;
            let depth = k - self.nodes[d].killed_at;
            self.led.cluster.failover_depth_windows =
                self.led.cluster.failover_depth_windows.max(depth);
            // The placement ring is left intact: the effective chain for
            // every key is `live_chain` (placement minus detected-dead
            // members), so chains run degraded at reduced RF rather than
            // backfilling a data-less member mid-run.
            self.recover_writes(d as u32, k, floor);
            self.recover_reads(d as u32, floor);
        }
    }

    /// Walks every unresolved write through the failover rules.
    fn recover_writes(&mut self, dead: u32, k: u64, floor: SimTime) {
        let ops: Vec<usize> = self.writes.keys().copied().collect();
        for op in ops {
            let Some(w) = self.writes.get_mut(&op) else {
                continue; // resolved by an earlier op's recovery cascade
            };
            if w.origin == u32::MAX {
                continue; // deferred behind a gate; not on the wire yet
            }
            if let Some(pos) = w.chain.iter().position(|&n| n == dead) {
                w.chain.remove(pos);
                w.applied.remove(pos);
            } else {
                continue; // chain untouched by this failure
            }
            if w.chain.is_empty() {
                // Every replica died (only possible at RF == kill count).
                self.fail_write(op, k, Status::DeviceError, floor);
                continue;
            }
            if w.origin == dead {
                // The origin died with survivors still holding the
                // write: re-key it to the new head, or the tail's ack
                // (addressed to the head) would never match `by_seq`.
                self.by_seq.remove(&(w.origin, w.seq));
                let new_head = w.chain[0];
                let seq = self.nodes[new_head as usize].seq;
                self.nodes[new_head as usize].seq += 1;
                w.origin = new_head;
                w.seq = seq;
                self.by_seq.insert((new_head, seq), op);
            }
            let last_applied = w.applied.iter().rposition(|&a| a);
            match last_applied {
                None => {
                    // The dead head had the only copy: the client times
                    // out and retries against the new head.
                    let (req, issue) = (w.req.clone(), w.issue);
                    let (origin, seq) = (w.origin, w.seq);
                    self.writes.remove(&op);
                    self.by_seq.remove(&(origin, seq));
                    if self.inflight.get(&req.key) == Some(&op) {
                        self.inflight.remove(&req.key);
                    }
                    self.led.cluster.client_retries += 1;
                    self.records[op].retried = true;
                    self.issue_write(op, issue.max(floor), req);
                }
                Some(last) if last + 1 == w.chain.len() => {
                    // Tail apply exists; the ack was lost with the dead
                    // member (dead tail, or ack in flight). The new tail
                    // re-emits it — unless it is also the head, in which
                    // case the write commits on the spot.
                    if w.chain.len() == 1 {
                        self.led.cluster.rep_retries += 1;
                        self.commit_write(op, k, floor);
                    } else {
                        let (from, to) = (w.chain[last], w.chain[0]);
                        let frame = RepFrame::Ack { write: w.seq, from };
                        self.led.cluster.rep_acks += 1;
                        self.led.cluster.rep_retries += 1;
                        self.send(from, to, frame, k, floor);
                    }
                }
                Some(last) => {
                    // Stranded mid-chain: the last live applier re-drives
                    // the write to the next survivor.
                    let (from, to) = (w.chain[last], w.chain[last + 1]);
                    let frame = RepFrame::Replicate {
                        write: w.seq,
                        origin: w.origin,
                        req: w.req.clone(),
                    };
                    self.led.cluster.orphan_redrives += 1;
                    self.led.cluster.rep_retries += 1;
                    self.send(from, to, frame, k, floor);
                }
            }
        }
    }

    /// Hedges every read outstanding against the dead member to the new
    /// tail of its key.
    fn recover_reads(&mut self, dead: u32, floor: SimTime) {
        let ops: Vec<usize> = self
            .reads
            .iter()
            .filter(|(_, r)| r.target == dead)
            .map(|(&op, _)| op)
            .collect();
        for op in ops {
            let key = self.reads[&op].key.clone();
            let replicas = self.live_chain(&key);
            let target = *replicas.last().expect("a live replica remains");
            self.reads
                .get_mut(&op)
                .expect("iterating live reads")
                .target = target;
            self.led.cluster.hedged_reads += 1;
            self.records[op].hedged = true;
            let req = KvRequest::get(&key);
            if self.nodes[target as usize].alive {
                self.nodes[target as usize]
                    .feed_buf
                    .push((floor, req, FedKind::Read(op)));
            }
        }
    }

    /// Feeds each live member its accumulated window batch (sorted by
    /// arrival, stable in emission order) and steps all members — in
    /// parallel when configured. Members touch only their own state, and
    /// every input was settled at the window boundary, so the worker
    /// count cannot change any outcome.
    fn feed_and_step(&mut self, horizon: SimTime, floor: SimTime) {
        for node in self.nodes.iter_mut() {
            if !node.alive {
                node.feed_buf.clear();
                continue;
            }
            if node.feed_buf.is_empty() {
                continue;
            }
            let mut batch = std::mem::take(&mut node.feed_buf);
            batch.sort_by_key(|(t, _, _)| t.max(&floor).as_ps());
            let mut reqs = Vec::with_capacity(batch.len());
            let mut arrivals = Vec::with_capacity(batch.len());
            for (t, req, kind) in batch {
                // Clamp up to the floor: an arrival can be scheduled
                // before the window opened, but the lookahead rule
                // guarantees none lands at or past the horizon.
                let at = t.max(floor);
                debug_assert!(at < horizon, "arrival escaped its window");
                reqs.push(req);
                arrivals.push(at);
                node.fed.push(kind);
            }
            node.sim.feed_open(reqs, arrivals);
        }
        let workers = self.cfg.workers.min(self.nodes.len()).max(1);
        if workers == 1 {
            for node in self.nodes.iter_mut() {
                if node.alive {
                    node.sim.step_window(horizon, floor);
                }
            }
        } else {
            let chunk = self.nodes.len().div_ceil(workers);
            crossbeam::thread::scope(|s| {
                for nodes in self.nodes.chunks_mut(chunk) {
                    s.spawn(move |_| {
                        for node in nodes.iter_mut() {
                            if node.alive {
                                node.sim.step_window(horizon, floor);
                            }
                        }
                    });
                }
            })
            .expect("member worker panicked");
        }
    }

    /// Consumes outcomes the members just produced, in member order, and
    /// emits the next replication hops at the window horizon.
    fn consume_outcomes(&mut self, k: u64, horizon: SimTime) {
        for n in 0..self.nodes.len() {
            if !self.nodes[n].alive {
                continue;
            }
            let total = self.nodes[n].sim.outcomes().len();
            for i in self.nodes[n].consumed..total {
                let kind = self.nodes[n].fed[i];
                let (status, value) = {
                    let (s, v) = &self.nodes[n].sim.outcomes()[i];
                    (*s, v.clone())
                };
                self.on_outcome(n as u32, kind, status, value, k, horizon);
            }
            self.nodes[n].consumed = total;
        }
    }

    fn on_outcome(
        &mut self,
        node: u32,
        kind: FedKind,
        status: Status,
        value: Vec<u8>,
        k: u64,
        horizon: SimTime,
    ) {
        match kind {
            FedKind::Read(op) => {
                let Some(r) = self.reads.remove(&op) else {
                    return; // hedge raced a late original (dead member)
                };
                let rec = &mut self.records[op];
                rec.status = status;
                rec.value = value;
                rec.done_window = k;
                self.read_hist.record_time(horizon.max(r.issue) - r.issue);
            }
            FedKind::Write(op) | FedKind::Apply(op) => {
                let Some(w) = self.writes.get_mut(&op) else {
                    return; // stale apply after resolution
                };
                let Some(pos) = w.chain.iter().position(|&c| c == node) else {
                    return; // chain shrank past this member
                };
                // DELETE of an absent key reports NotFound — a fine
                // apply. Anything else non-Ok is a device-level failure.
                if status != Status::Ok && status != Status::NotFound {
                    self.fail_write(op, k, status, horizon);
                    return;
                }
                w.applied[pos] = true;
                if pos + 1 == w.chain.len() {
                    // Tail applied: release the ack up to the head. A
                    // chain of one commits immediately — the head is the
                    // tail.
                    if w.chain.len() == 1 {
                        self.commit_write(op, k, horizon);
                    } else {
                        let frame = RepFrame::Ack {
                            write: w.seq,
                            from: node,
                        };
                        let to = w.chain[0];
                        self.led.cluster.rep_acks += 1;
                        self.send(node, to, frame, k, horizon);
                    }
                } else {
                    let frame = RepFrame::Replicate {
                        write: w.seq,
                        origin: w.origin,
                        req: w.req.clone(),
                    };
                    let to = w.chain[pos + 1];
                    self.send(node, to, frame, k, horizon);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Value encoding the soak and these tests share: 16 LE bytes of
    /// (key id, version).
    fn val(id: u64, version: u64) -> Vec<u8> {
        let mut v = id.to_le_bytes().to_vec();
        v.extend_from_slice(&version.to_le_bytes());
        v
    }

    fn version_of(v: &[u8]) -> u64 {
        u64::from_le_bytes(v[8..16].try_into().expect("16-byte value"))
    }

    /// A put/get schedule over `keys` keys: one put then one get per
    /// key, spaced `gap`.
    fn put_get_schedule(keys: u64, gap: SimTime) -> Vec<(SimTime, KvRequest)> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        for id in 0..keys {
            out.push((t, KvRequest::put(&id.to_le_bytes(), &val(id, 1))));
            t += gap;
        }
        // Reads trail all writes by a comfortable margin.
        t += SimTime::from_us(200);
        for id in 0..keys {
            out.push((t, KvRequest::get(&id.to_le_bytes())));
            t += gap;
        }
        out
    }

    #[test]
    fn rf1_cluster_serves_reads_after_writes() {
        let mut cluster = ClusterSim::new(ClusterSimConfig::smoke(3, 1));
        let report = cluster.run(&put_get_schedule(64, SimTime::from_ns(500)));
        assert_eq!(report.ops, 128);
        assert_eq!(report.ledger.cluster.writes_acked, 64);
        assert_eq!(report.ledger.cluster.writes_failed, 0);
        for (i, rec) in report.records.iter().enumerate() {
            if rec.op == OpCode::Get {
                assert_eq!(rec.status, Status::Ok, "read {i} missed");
                assert_eq!(version_of(&rec.value), 1);
            } else {
                assert!(rec.acked, "write {i} not acked");
            }
        }
        // RF=1: no replication frames, but heartbeats flow.
        assert_eq!(report.ledger.cluster.rep_acks, 0);
        assert!(report.ledger.cluster.heartbeats > 0);
    }

    #[test]
    fn rf2_acks_gate_on_tail_and_charge_the_wire() {
        let mut cluster = ClusterSim::new(ClusterSimConfig::smoke(3, 2));
        let report = cluster.run(&put_get_schedule(64, SimTime::from_ns(500)));
        assert_eq!(report.ledger.cluster.writes_acked, 64);
        // Every write crossed one replication hop and one ack.
        assert_eq!(report.ledger.cluster.rep_acks, 64);
        assert!(report.ledger.cluster.rep_frames >= 128);
        assert!(report.ledger.cluster.rep_bytes > 0);
        for rec in report.records.iter().filter(|r| r.op == OpCode::Get) {
            assert_eq!(rec.status, Status::Ok);
            assert_eq!(version_of(&rec.value), 1);
        }
    }

    #[test]
    fn rf2_write_latency_exceeds_rf1() {
        let sched = put_get_schedule(64, SimTime::from_ns(500));
        let mut rf1 = ClusterSim::new(ClusterSimConfig::smoke(3, 1));
        let r1 = rf1.run(&sched);
        let mut rf2 = ClusterSim::new(ClusterSimConfig::smoke(3, 2));
        let r2 = rf2.run(&sched);
        let p50_1 = r1.write_hist.percentile(50.0);
        let p50_2 = r2.write_hist.percentile(50.0);
        assert!(
            p50_2 > p50_1,
            "chain ack must cost latency: RF1 {p50_1}us vs RF2 {p50_2}us"
        );
    }

    #[test]
    fn node_kill_detects_promotes_and_keeps_acked_writes() {
        let mut cfg = ClusterSimConfig::smoke(3, 2);
        cfg.kill = Some(NodeKill {
            node: 1,
            window: 40,
        });
        let mut cluster = ClusterSim::new(cfg);
        // Writes early (committed before the kill), reads late (after
        // detection) — every acked write must still be readable.
        let mut sched = Vec::new();
        let mut t = SimTime::ZERO;
        for id in 0..48u64 {
            sched.push((t, KvRequest::put(&id.to_le_bytes(), &val(id, 1))));
            t += SimTime::from_ns(800);
        }
        let late = SimTime::from_us(200); // far past kill + timeout
        for id in 0..48u64 {
            sched.push((
                late + SimTime::from_ns(800) * id,
                KvRequest::get(&id.to_le_bytes()),
            ));
        }
        let report = cluster.run(&sched);
        assert_eq!(report.kill_window, Some(40));
        let detect = report.detect_window.expect("kill must be detected");
        assert!(detect > 40, "detection after the kill");
        assert_eq!(report.ledger.cluster.failovers, 1);
        assert_eq!(report.ledger.cluster.promotions, 1);
        assert!(report.ledger.cluster.failover_depth_windows >= detect - 40);
        // All writes committed before the kill; every read observes v1.
        for rec in &report.records {
            match rec.op {
                OpCode::Put => assert!(rec.acked || rec.retried),
                OpCode::Get => {
                    assert_eq!(rec.status, Status::Ok, "acked write lost");
                    assert_eq!(version_of(&rec.value), 1);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn per_key_write_gate_preserves_client_order() {
        let mut cluster = ClusterSim::new(ClusterSimConfig::smoke(3, 2));
        // Three rapid-fire writes to one key, then a read.
        let key = 7u64.to_le_bytes();
        let sched = vec![
            (SimTime::ZERO, KvRequest::put(&key, &val(7, 1))),
            (SimTime::from_ns(100), KvRequest::put(&key, &val(7, 2))),
            (SimTime::from_ns(200), KvRequest::put(&key, &val(7, 3))),
            (SimTime::from_us(100), KvRequest::get(&key)),
        ];
        let report = cluster.run(&sched);
        assert_eq!(report.ledger.cluster.writes_acked, 3);
        let read = report.records.last().expect("read scheduled");
        assert_eq!(version_of(&read.value), 3, "last client write wins");
        // Commits happen in client order.
        let w: Vec<u64> = report.records[..3].iter().map(|r| r.done_window).collect();
        assert!(w[0] <= w[1] && w[1] <= w[2], "commit order {w:?}");
    }

    #[test]
    fn worker_count_does_not_change_the_merged_ledger() {
        let sched = put_get_schedule(96, SimTime::from_ns(400));
        let mut reports = Vec::new();
        for workers in [1usize, 2, 4] {
            let mut cfg = ClusterSimConfig::smoke(4, 2);
            cfg.workers = workers;
            cfg.kill = Some(NodeKill {
                node: 2,
                window: 30,
            });
            let mut cluster = ClusterSim::new(cfg);
            reports.push(cluster.run(&sched));
        }
        let base = &reports[0];
        for r in &reports[1..] {
            assert_eq!(
                format!("{:?}", base.ledger),
                format!("{:?}", r.ledger),
                "merged ledger must be bit-identical across worker counts"
            );
            assert_eq!(base.windows, r.windows);
            for (a, b) in base.records.iter().zip(&r.records) {
                assert_eq!(a.status, b.status);
                assert_eq!(a.value, b.value);
                assert_eq!(a.done_window, b.done_window);
            }
        }
    }
}
