//! System-level throughput/latency composition (paper §5.2, Figures 16,
//! 17, the multi-NIC scaling claim, Tables 3 and 4).
//!
//! §5.2 explains single-NIC throughput as the minimum of three bounds —
//! the 180 MHz clock, the network, and PCIe/DRAM — with the out-of-order
//! engine's merge rate and the NIC DRAM cache hit rate lifting the memory
//! bound under skewed workloads. This module measures those inputs on the
//! *functional* store (real hash table, real cache, real station) and
//! composes the bounds exactly as the paper reasons.

use kvd_mem::MemoryEngine;
use kvd_net::{KvRequest, NetConfig};
use kvd_pcie::PcieConfig;
use kvd_sim::{Bandwidth, DetRng, SimTime, ZipfSampler};

use crate::lambda::decode_scalar;
use crate::store::{KvDirectConfig, KvDirectStore};

/// Key popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform over the corpus.
    Uniform,
    /// The paper's long-tail workload: Zipf with skewness 0.99.
    Zipf,
}

/// A YCSB-style workload point.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// KV size (key + value) in bytes.
    pub kv_size: u64,
    /// Fraction of PUT operations (0.0 … 1.0).
    pub put_ratio: f64,
    /// Popularity distribution.
    pub dist: KeyDist,
    /// Client-side batch factor (ops per packet; 1 = no batching).
    pub batch: u64,
}

impl WorkloadSpec {
    /// The paper's default benchmark point: small KVs, 50 % PUT, batched.
    pub fn ycsb(kv_size: u64, put_ratio: f64, dist: KeyDist) -> Self {
        WorkloadSpec {
            kv_size,
            put_ratio,
            dist,
            batch: 40,
        }
    }
}

/// Quantities measured on the functional store for one workload.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredWorkload {
    /// PCIe DMA requests per executed operation.
    pub dma_reads_per_op: f64,
    /// PCIe DMA writes per executed operation.
    pub dma_writes_per_op: f64,
    /// NIC DRAM accesses per executed operation.
    pub dram_per_op: f64,
    /// Fraction of operations merged by the reservation station.
    pub forward_rate: f64,
    /// NIC DRAM cache hit rate.
    pub cache_hit_rate: f64,
}

impl MeasuredWorkload {
    /// Total random memory accesses per operation.
    pub fn accesses_per_op(&self) -> f64 {
        self.dma_reads_per_op + self.dma_writes_per_op + self.dram_per_op
    }
}

/// Runs `ops` workload operations against a scaled functional store and
/// extracts the per-op memory behaviour.
pub fn measure_workload(
    cfg: &KvDirectConfig,
    spec: &WorkloadSpec,
    target_utilization: f64,
    ops: usize,
    seed: u64,
) -> MeasuredWorkload {
    let mut store = KvDirectStore::new(cfg.clone());
    let mut rng = DetRng::seed(seed);
    // Preload to the target utilization (the paper preloads to 50%).
    let key_len = 8usize;
    assert!(spec.kv_size as usize > key_len, "kv must exceed key size");
    let val_len = spec.kv_size as usize - key_len;
    let mut n_keys = 0u64;
    while store.processor().table().memory_utilization() < target_utilization {
        let key = n_keys.to_le_bytes();
        let mut value = vec![0u8; val_len];
        rng.fill_bytes(&mut value);
        if store.put(&key, &value).is_err() {
            break;
        }
        n_keys += 1;
    }
    assert!(n_keys > 0, "no keys fit the configured memory");
    // Measure steady-state behaviour.
    store.processor_mut().table_mut().mem_mut().reset_stats();
    let stats_before = store.processor().station_stats();
    let zipf = ZipfSampler::new(n_keys, 0.99);
    let mut batch = Vec::with_capacity(spec.batch as usize);
    let mut executed = 0usize;
    while executed < ops {
        batch.clear();
        for _ in 0..spec.batch.min((ops - executed) as u64) {
            let rank = match spec.dist {
                KeyDist::Uniform => rng.u64_below(n_keys),
                KeyDist::Zipf => zipf.sample(&mut rng),
            };
            let key = rank.to_le_bytes();
            if rng.chance(spec.put_ratio) {
                let mut value = vec![0u8; val_len];
                rng.fill_bytes(&mut value);
                batch.push(KvRequest::put(&key, &value));
            } else {
                batch.push(KvRequest::get(&key));
            }
            executed += 1;
        }
        store.execute_batch(&batch);
    }
    let mem = store.processor().table().mem().stats();
    let st = store.processor().station_stats();
    let forwarded = st.forwarded - stats_before.forwarded;
    let n = executed as f64;
    MeasuredWorkload {
        dma_reads_per_op: mem.dma_reads as f64 / n,
        dma_writes_per_op: mem.dma_writes as f64 / n,
        dram_per_op: (mem.dram_reads + mem.dram_writes) as f64 / n,
        forward_rate: forwarded as f64 / n,
        cache_hit_rate: {
            let lookups = mem.cache_hits + mem.cache_misses;
            if lookups == 0 {
                0.0
            } else {
                mem.cache_hits as f64 / lookups as f64
            }
        },
    }
}

/// The hardware constants the composition uses.
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// Clock bound (paper: 180 Mops at 180 MHz, one op per cycle).
    pub clock_mops: f64,
    /// The network.
    pub net: NetConfig,
    /// One PCIe endpoint.
    pub pcie: PcieConfig,
    /// PCIe endpoints on the NIC (paper: 2 × Gen3 x8).
    pub pcie_ports: usize,
    /// NIC DRAM bandwidth (paper: 12.8 GB/s).
    pub nic_dram_bandwidth: Bandwidth,
    /// Aggregate host-DRAM random 64 B access capacity across the server
    /// (calibrated so 10 NICs land at the paper's 1.22 Gops).
    pub host_random_bandwidth: Bandwidth,
    /// Idle server power (paper: 87.0 W measured on the wall).
    pub idle_power_w: f64,
    /// Power added per KV-Direct NIC at peak (paper: 34 W including PCIe,
    /// host memory and the host daemon).
    pub nic_power_w: f64,
}

impl SystemModel {
    /// The paper's testbed.
    pub fn paper() -> Self {
        SystemModel {
            clock_mops: 180.0,
            net: NetConfig::forty_gbe(),
            pcie: PcieConfig::gen3_x8(),
            pcie_ports: 2,
            nic_dram_bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            host_random_bandwidth: Bandwidth::from_gbytes_per_sec(80.0),
            idle_power_w: 87.0,
            nic_power_w: 34.0,
        }
    }

    /// Per-port random 64 B DMA read capacity (tag-limited; Figure 3a's
    /// ~60 Mops).
    pub fn port_read_mops(&self) -> f64 {
        let rtt = self.pcie.mean_random_read_latency().as_secs_f64();
        (self.pcie.read_tags as f64 / rtt / 1e6).min(self.pcie.bandwidth_bound_mops(64))
    }

    /// Per-port 64 B DMA write capacity (bandwidth-bound; ~87 Mops).
    pub fn port_write_mops(&self) -> f64 {
        self.pcie.bandwidth_bound_mops(64)
    }

    /// NIC DRAM random 64 B access capacity (12.8 GB/s / 64 B = 200 Mops).
    pub fn dram_mops(&self) -> f64 {
        self.nic_dram_bandwidth.transfers_per_sec(64) / 1e6
    }

    /// The network bound for a workload (paper §2.4: 78 Mops for 64 B KVs
    /// with client-side batching).
    pub fn network_bound_mops(&self, spec: &WorkloadSpec) -> f64 {
        // Per-op wire bytes: key+value (+3B sizes +1B header) dominate
        // the heavier direction (requests for PUT, responses for GET).
        let op_bytes = spec.kv_size + 4;
        self.net.ops_ceiling(op_bytes, spec.batch.max(1)) / 1e6
    }

    /// The PCIe/DRAM bound given measured per-op access counts.
    pub fn memory_bound_mops(&self, m: &MeasuredWorkload) -> f64 {
        // Seconds of device time per operation, devices in parallel.
        let ports = self.pcie_ports as f64;
        let pcie_secs = m.dma_reads_per_op / (ports * self.port_read_mops() * 1e6)
            + m.dma_writes_per_op / (ports * self.port_write_mops() * 1e6);
        let dram_secs = m.dram_per_op / (self.dram_mops() * 1e6);
        let bottleneck = pcie_secs.max(dram_secs);
        if bottleneck <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / bottleneck / 1e6
        }
    }

    /// Composes the three bounds for a workload.
    pub fn throughput(&self, spec: &WorkloadSpec, m: &MeasuredWorkload) -> ThroughputBreakdown {
        let clock = self.clock_mops;
        let network = self.network_bound_mops(spec);
        let memory = self.memory_bound_mops(m);
        ThroughputBreakdown {
            clock_bound_mops: clock,
            network_bound_mops: network,
            memory_bound_mops: memory,
            mops: clock.min(network).min(memory),
        }
    }

    /// Multi-NIC scaling: per-NIC throughput capped by the server's
    /// aggregate random host-memory capacity (the paper's 10-NIC point
    /// lands at 1.22 Gops, slightly below 10 × 180).
    pub fn multi_nic_mops(&self, per_nic_mops: f64, accesses_per_op: f64, nics: u32) -> f64 {
        let linear = per_nic_mops * nics as f64;
        let host_cap_mops =
            self.host_random_bandwidth.transfers_per_sec(64) / 1e6 / accesses_per_op.max(1e-9);
        linear.min(host_cap_mops)
    }

    /// Client-observed latency for one operation type (Figure 17).
    ///
    /// Composition: network round trip (+ batching assembly when batched)
    /// + pipeline processing + the critical path of memory accesses.
    pub fn latency(
        &self,
        spec: &WorkloadSpec,
        m: &MeasuredWorkload,
        is_put: bool,
        percentile_95: bool,
    ) -> SimTime {
        let batch = if spec.batch > 1 { spec.batch } else { 1 };
        let net = kvd_net::batching_latency(&self.net, spec.kv_size.max(9), batch);
        // Critical-path memory accesses: a GET walks ~1 serial access,
        // a PUT ~2 (read then write); cache hits replace the PCIe RTT
        // with the DRAM access time; forwarded ops skip memory entirely.
        let base_accesses = if is_put {
            m.dma_writes_per_op + m.dma_reads_per_op
        } else {
            m.dma_reads_per_op
        }
        .max(0.0);
        let pcie_rtt = if percentile_95 {
            self.pcie.cached_read_latency.base() + self.pcie.noncached_extra
        } else {
            self.pcie.mean_random_read_latency()
        };
        let dram_t = SimTime::from_ns(120); // DDR3 random access
        let mem_time =
            SimTime::from_ns_f64(base_accesses * pcie_rtt.as_ns() + m.dram_per_op * dram_t.as_ns());
        let processing = SimTime::from_ns(300); // decode + pipeline
        let jitter = if percentile_95 {
            SimTime::from_ns(800)
        } else {
            SimTime::ZERO
        };
        net + mem_time + processing + jitter
    }

    /// Wall power at peak with `nics` NICs (paper: 121.6 W for one).
    pub fn power_w(&self, nics: u32) -> f64 {
        self.idle_power_w + self.nic_power_w * nics as f64
    }
}

/// The composed bounds for one workload point.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputBreakdown {
    /// The 180 Mops clock ceiling.
    pub clock_bound_mops: f64,
    /// The network ceiling.
    pub network_bound_mops: f64,
    /// The PCIe/DRAM ceiling.
    pub memory_bound_mops: f64,
    /// min of the three — the predicted sustained throughput.
    pub mops: f64,
}

/// One row of the systems comparison (paper Table 3).
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// System name.
    pub name: &'static str,
    /// Reported throughput in Mops.
    pub tput_mops: f64,
    /// Reported/estimated wall power in watts.
    pub power_w: f64,
    /// Reported average latency in microseconds (0 = not reported).
    pub latency_us: f64,
    /// Provenance note.
    pub source: &'static str,
}

impl SystemRow {
    /// Power efficiency in Kops per watt.
    pub fn kops_per_watt(&self) -> f64 {
        self.tput_mops * 1000.0 / self.power_w
    }
}

/// Published comparison systems, as reported in the paper's Table 3
/// (values approximate where the paper scan is unreadable; provenance in
/// EXPERIMENTS.md).
pub fn published_systems() -> Vec<SystemRow> {
    vec![
        SystemRow {
            name: "Memcached",
            tput_mops: 1.5,
            power_w: 399.0,
            latency_us: 50.0,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "MemC3",
            tput_mops: 4.3,
            power_w: 399.0,
            latency_us: 50.0,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "RAMCloud",
            tput_mops: 6.0,
            power_w: 280.0,
            latency_us: 5.0,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "MICA (CPU, 36 cores)",
            tput_mops: 137.0,
            power_w: 399.0,
            latency_us: 81.0,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "FaRM (one-sided RDMA)",
            tput_mops: 6.0,
            power_w: 345.0,
            latency_us: 4.5,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "DrTM-KV",
            tput_mops: 115.7,
            power_w: 742.0,
            latency_us: 3.4,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "HERD (two-sided RDMA)",
            tput_mops: 98.3,
            power_w: 683.0,
            latency_us: 5.0,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "Xilinx FPGA KVS",
            tput_mops: 13.2,
            power_w: 55.3,
            latency_us: 3.5,
            source: "paper Table 3 (approx.)",
        },
        SystemRow {
            name: "Mega-KV (GPU)",
            tput_mops: 166.0,
            power_w: 950.0,
            latency_us: 280.0,
            source: "paper Table 3 (approx.)",
        },
    ]
}

/// Host CPU impact at KV-Direct peak load (paper Table 4): a simple
/// bandwidth-contention model over one NUMA node.
#[derive(Debug, Clone, Copy)]
pub struct HostImpact {
    /// CPU-visible sequential memory bandwidth, GB/s.
    pub seq_bandwidth_gbs: f64,
    /// CPU random 64 B access throughput, Mops.
    pub random_mops: f64,
    /// CPU-visible memory latency, ns.
    pub latency_ns: f64,
}

/// Models host memory performance with KV-Direct idle vs at peak.
///
/// KV-Direct consumes at most the two PCIe links' worth of host DRAM
/// bandwidth (~13 GB/s of ~60 GB/s per socket), so the impact on the CPU
/// stays small — the paper "finds a minimal impact on other workloads".
pub fn host_impact(model: &SystemModel, kvd_peak: bool) -> HostImpact {
    let socket_bw = 59.6; // GB/s, E5-2650 v2 with 8 DDR3-1600 channels
    let cpu_random_mops = 29.3 * 8.0; // paper's per-core × 8 cores
    let cpu_latency = 110.0; // paper §2.2: 64-byte random read, ns
    if !kvd_peak {
        return HostImpact {
            seq_bandwidth_gbs: socket_bw,
            random_mops: cpu_random_mops,
            latency_ns: cpu_latency,
        };
    }
    let kvd_bw = model.pcie.bandwidth.gbytes_per_sec() * model.pcie_ports as f64;
    let share = kvd_bw / socket_bw;
    HostImpact {
        seq_bandwidth_gbs: socket_bw - kvd_bw,
        random_mops: cpu_random_mops * (1.0 - share * 0.5),
        latency_ns: cpu_latency * (1.0 + share * 0.3),
    }
}

/// Convenience: measured corpus value read (used by examples/benches).
pub fn scalar_of(store: &mut KvDirectStore, key: &[u8]) -> u64 {
    decode_scalar(store.get(key).as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> KvDirectConfig {
        KvDirectConfig::with_memory(1 << 20)
    }

    #[test]
    fn port_capacities_match_figure3() {
        let m = SystemModel::paper();
        assert!(
            (m.port_read_mops() - 61.0).abs() < 3.0,
            "{}",
            m.port_read_mops()
        );
        assert!((m.port_write_mops() - 87.4).abs() < 1.0);
        assert!((m.dram_mops() - 200.0).abs() < 1.0);
    }

    #[test]
    fn network_bound_matches_paper_78mops() {
        let m = SystemModel::paper();
        let spec = WorkloadSpec::ycsb(60, 0.0, KeyDist::Uniform);
        let b = m.network_bound_mops(&spec);
        assert!((b - 75.0).abs() < 8.0, "got {b}");
    }

    #[test]
    fn tiny_kv_longtail_reaches_clock_bound() {
        // Paper Figure 16b: 10B KVs, long-tail, read-intensive → 180 Mops.
        let cfg = small_cfg();
        let spec = WorkloadSpec::ycsb(10, 0.0, KeyDist::Zipf);
        let mw = measure_workload(&cfg, &spec, 0.4, 20_000, 1);
        let model = SystemModel::paper();
        let t = model.throughput(&spec, &mw);
        // Inline GETs: ~1 access/op split across three devices; forwarding
        // and caching push the memory bound above the clock.
        assert!(
            t.memory_bound_mops > 120.0,
            "memory bound {} (accesses/op {})",
            t.memory_bound_mops,
            mw.accesses_per_op()
        );
        assert!(t.mops > 100.0, "composed {}", t.mops);
    }

    #[test]
    fn longtail_beats_uniform() {
        // Paper: long-tail has up to 2x uniform throughput (merging +
        // caching).
        let cfg = small_cfg();
        let spec_u = WorkloadSpec::ycsb(10, 0.5, KeyDist::Uniform);
        let spec_z = WorkloadSpec::ycsb(10, 0.5, KeyDist::Zipf);
        let mu = measure_workload(&cfg, &spec_u, 0.4, 20_000, 2);
        let mz = measure_workload(&cfg, &spec_z, 0.4, 20_000, 2);
        assert!(mz.forward_rate > mu.forward_rate);
        assert!(mz.cache_hit_rate > mu.cache_hit_rate);
        let model = SystemModel::paper();
        let tu = model.throughput(&spec_u, &mu);
        let tz = model.throughput(&spec_z, &mz);
        assert!(
            tz.memory_bound_mops > tu.memory_bound_mops,
            "zipf {} vs uniform {}",
            tz.memory_bound_mops,
            tu.memory_bound_mops
        );
        let _ = (tu.mops, tz.mops);
    }

    #[test]
    fn large_kvs_are_network_bound() {
        // Paper Figure 16: ≥62B KVs hit the network bound.
        let model = SystemModel::paper();
        let spec = WorkloadSpec::ycsb(254, 0.0, KeyDist::Uniform);
        let cfg = small_cfg();
        let mw = measure_workload(&cfg, &spec, 0.3, 5_000, 3);
        let t = model.throughput(&spec, &mw);
        assert!(
            (t.mops - t.network_bound_mops).abs() < 1e-9,
            "network should bind: {t:?}"
        );
        assert!(t.network_bound_mops < 25.0);
    }

    #[test]
    fn multi_nic_matches_1_22_gops() {
        // Paper: 10 NICs → 1.22 Gops, near-linear below that.
        let model = SystemModel::paper();
        let ten = model.multi_nic_mops(180.0, 1.0, 10);
        assert!((ten - 1250.0).abs() < 100.0, "got {ten}");
        let two = model.multi_nic_mops(180.0, 1.0, 2);
        assert_eq!(two, 360.0, "linear when under the host cap");
    }

    #[test]
    fn put_latency_exceeds_get() {
        // Paper Figure 17: PUT has higher latency due to the extra
        // memory access; everything lands in the 3–10us band.
        let model = SystemModel::paper();
        let spec = WorkloadSpec {
            batch: 1,
            ..WorkloadSpec::ycsb(62, 0.5, KeyDist::Uniform)
        };
        let cfg = small_cfg();
        let mw = measure_workload(&cfg, &spec, 0.3, 5_000, 4);
        let get50 = model.latency(&spec, &mw, false, false);
        let put50 = model.latency(&spec, &mw, true, false);
        let put95 = model.latency(&spec, &mw, true, true);
        assert!(put50 > get50);
        assert!(put95 > put50);
        assert!(get50 > SimTime::from_us(1) && put95 < SimTime::from_us(12));
    }

    #[test]
    fn power_matches_paper() {
        let m = SystemModel::paper();
        assert_eq!(m.power_w(0), 87.0);
        assert!((m.power_w(1) - 121.0).abs() < 1.0);
        // 1 Mops/W milestone: 180 Mops / 121 W > 1.0.
        assert!(180.0 / m.power_w(1) / 1.0 > 1.0);
    }

    #[test]
    fn kv_direct_3x_power_efficiency() {
        // Paper: 3x more power efficient than the best CPU KVS.
        let m = SystemModel::paper();
        let best_other = published_systems()
            .iter()
            .map(|s| s.kops_per_watt())
            .fold(0.0, f64::max);
        let ours = 180.0 * 1000.0 / m.power_w(1);
        assert!(ours / best_other > 3.0, "{ours} vs {best_other}");
    }

    #[test]
    fn host_impact_is_minimal() {
        let m = SystemModel::paper();
        let idle = host_impact(&m, false);
        let peak = host_impact(&m, true);
        assert!(peak.seq_bandwidth_gbs > idle.seq_bandwidth_gbs * 0.6);
        assert!(peak.random_mops > idle.random_mops * 0.8);
        assert!(peak.latency_ns < idle.latency_ns * 1.2);
    }
}
