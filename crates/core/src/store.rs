//! The embedder-facing KV-Direct store.
//!
//! [`KvDirectStore`] wraps one simulated NIC (KV processor + dispatched
//! memory stack) behind the operations of Table 1. [`MultiNicStore`]
//! shards keys across several NICs, reproducing the paper's multi-NIC
//! deployment where "10 programmable NIC cards in a commodity server"
//! reach 1.22 billion KV operations per second.

use kvd_hash::{HashTable, HashTableConfig};
use kvd_mem::{AdaptiveCacheConfig, DispatchConfig, DispatchedMemory, NicDramConfig};
use kvd_net::{shard_of, KvRequest, KvRequestRef, KvResponse, OpCode, Status};
use kvd_ooo::StationConfig;
use kvd_sim::{Bandwidth, CostSource, FaultCounters, FaultPlane, FaultRates, OpLedger};

use crate::lambda::{decode_scalar, decode_vector, encode_vector, Lambda, LambdaRegistry};
use crate::overload::{OverloadConfig, OverloadCounters};
use crate::processor::{KvProcessor, ProcessorStats};

/// Errors surfaced by the store API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The store is out of memory.
    OutOfMemory,
    /// Key absent where one was required.
    NotFound,
    /// Malformed request, oversized key/value, or unregistered λ.
    Invalid,
    /// A device-level fault exhausted its retry budget; the operation was
    /// not applied and may be retried.
    DeviceError,
    /// Shed by admission control (or a degraded mode such as read-only);
    /// the operation was not applied. Back off and retry.
    Overloaded,
    /// The request's deadline had already passed; it was dropped without
    /// executing.
    Expired,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfMemory => write!(f, "out of memory"),
            StoreError::NotFound => write!(f, "key not found"),
            StoreError::Invalid => write!(f, "invalid request"),
            StoreError::DeviceError => write!(f, "device error (retriable)"),
            StoreError::Overloaded => write!(f, "shed by admission control"),
            StoreError::Expired => write!(f, "deadline expired"),
        }
    }
}

impl std::error::Error for StoreError {}

fn status_to_err(s: Status) -> StoreError {
    match s {
        Status::Ok => unreachable!("Ok is not an error"),
        Status::NotFound => StoreError::NotFound,
        Status::OutOfMemory => StoreError::OutOfMemory,
        Status::Invalid => StoreError::Invalid,
        Status::DeviceError => StoreError::DeviceError,
        Status::Overloaded => StoreError::Overloaded,
        Status::Expired => StoreError::Expired,
    }
}

/// Configuration of one simulated KV-Direct NIC.
///
/// Defaults preserve the paper's ratios at laptop scale: 64 MiB host KVS
/// standing in for 64 GiB, NIC DRAM at 1/16th of it, hash index ratio and
/// inline threshold tuned for small-KV workloads, load dispatch ratio
/// 0.5.
#[derive(Debug, Clone)]
pub struct KvDirectConfig {
    /// Total KVS memory (hash index + dynamic region).
    pub total_memory: u64,
    /// Hash index ratio (paper §3.3.1).
    pub hash_index_ratio: f64,
    /// Inline threshold in bytes (paper §3.3.1).
    pub inline_threshold: usize,
    /// Load dispatch ratio `l` (paper §3.3.4).
    pub load_dispatch_ratio: f64,
    /// NIC DRAM capacity (paper: host/16).
    pub nic_dram_capacity: u64,
    /// Reservation station geometry (paper: 1024 slots, 256 ops).
    pub station: StationConfig,
    /// Allow values up to 64 KiB (extended slab ladder) instead of the
    /// paper's 512 B.
    pub extended_slabs: bool,
    /// Fault-injection rates for the simulated hardware. `FaultRates::ZERO`
    /// (the default) keeps every model on its fault-free fast path.
    pub fault_rates: FaultRates,
    /// Seed of the deterministic fault schedule; only meaningful when
    /// `fault_rates` is non-zero.
    pub fault_seed: u64,
    /// Overload plane (admission watermarks, deadline expiry, read-only
    /// degradation). Defaults to fully disabled so closed-loop workloads
    /// that legitimately saturate the pipeline are untouched.
    pub overload: OverloadConfig,
    /// Adaptive cache plane: sampled frequency sketch, TinyLFU-style
    /// NIC-DRAM fill admission and online retuning of the load dispatch
    /// ratio from the measured hit rate. `None` (the default) keeps the
    /// paper's static-`l` behaviour bit-identical.
    pub adaptive_cache: Option<AdaptiveCacheConfig>,
    /// Bucket chains the background reaper sweeps after each batch of a
    /// clocked run ([`SystemSim`](crate::SystemSim)). 0 (the default)
    /// disables the reaper: dead entries are then reclaimed lazily by
    /// the probes that trip over them.
    pub reap_buckets_per_batch: u64,
}

impl KvDirectConfig {
    /// A config with the given total memory and paper-default parameters.
    pub fn with_memory(total_memory: u64) -> Self {
        KvDirectConfig {
            total_memory,
            hash_index_ratio: 0.5,
            inline_threshold: 24,
            load_dispatch_ratio: 0.5,
            nic_dram_capacity: total_memory / 16,
            station: StationConfig::default(),
            extended_slabs: false,
            fault_rates: FaultRates::ZERO,
            fault_seed: 0,
            overload: OverloadConfig::default(),
            adaptive_cache: None,
            reap_buckets_per_batch: 0,
        }
    }
}

impl KvDirectConfig {
    /// The paper's offline tuning procedure (§5.2.1: "Before each
    /// benchmark, we tune hash index ratio, inline threshold and load
    /// dispatch ratio according to the KV size, access pattern and
    /// target memory utilization").
    ///
    /// Runs scaled fill experiments (like Figure 10's dashed line) to
    /// pick the inline threshold and the largest hash index ratio that
    /// still reaches `target_utilization`, and solves the §3.3.4 balance
    /// equation for the load dispatch ratio. This is *offline* tuning —
    /// expect it to take a moment proportional to `total_memory`.
    pub fn auto_tuned(
        total_memory: u64,
        kv_size: usize,
        target_utilization: f64,
        long_tail: bool,
    ) -> Self {
        assert!(kv_size > 8, "kv size must exceed the 8-byte tuning key");
        // Inline threshold: prefer inlining this KV size when the target
        // utilization is still achievable; otherwise fall back to
        // smaller thresholds (more slab, more index headroom).
        let candidates = [kv_size.min(kvd_hash::MAX_INLINE_KV), 24, 10];
        let mut chosen = None;
        for &threshold in &candidates {
            if let Some((ratio, _)) = kvd_hash::tuning::optimal_config(
                total_memory,
                threshold,
                kv_size,
                target_utilization,
                0xA070,
            ) {
                chosen = Some((ratio, threshold));
                break;
            }
        }
        let (hash_index_ratio, inline_threshold) = chosen.unwrap_or((0.5, 24)); // unreachable target: paper defaults
        let k = 1.0 / 16.0;
        let lines = (total_memory / 64) as f64;
        let load_dispatch_ratio = if long_tail {
            kvd_mem::dispatch::optimal_ratio_zipf(k, lines, 12.8, 13.2)
        } else {
            kvd_mem::dispatch::optimal_ratio_uniform(k, 12.8, 13.2)
        };
        KvDirectConfig {
            hash_index_ratio,
            inline_threshold,
            load_dispatch_ratio,
            ..KvDirectConfig::with_memory(total_memory)
        }
    }
}

impl Default for KvDirectConfig {
    fn default() -> Self {
        KvDirectConfig::with_memory(64 << 20)
    }
}

/// A single-NIC KV-Direct store.
///
/// # Examples
///
/// ```
/// use kvd_core::{builtin, KvDirectConfig, KvDirectStore};
///
/// let mut store = KvDirectStore::new(KvDirectConfig::with_memory(1 << 20));
/// store.put(b"user:1", b"alice").unwrap();
/// assert_eq!(store.get(b"user:1").unwrap(), b"alice");
/// // Single-key atomics: fetch-and-add on a sequencer.
/// assert_eq!(store.fetch_add(b"seq", 1).unwrap(), 0);
/// assert_eq!(store.fetch_add(b"seq", 1).unwrap(), 1);
/// ```
pub struct KvDirectStore {
    proc: KvProcessor<DispatchedMemory>,
    /// Reused response for the point-op convenience API (`get_into`,
    /// `execute_one`-style wrappers); its value buffer circulates through
    /// the processor's pool instead of being reallocated per call.
    scratch: KvResponse,
}

impl KvDirectStore {
    /// Builds a store over the full simulated memory stack.
    ///
    /// When `cfg.fault_rates` is non-zero, a root fault plane seeded with
    /// `cfg.fault_seed` is forked into independent per-component streams:
    /// the memory engine (DRAM ECC events, host stalls) and the processor's
    /// DMA transaction path. A zero-rate config wires inert planes, leaving
    /// the store bit-identical to a fault-free build.
    pub fn new(cfg: KvDirectConfig) -> Self {
        let mut root = FaultPlane::new(cfg.fault_rates, cfg.fault_seed);
        let mut mem = DispatchedMemory::with_faults(
            cfg.total_memory,
            NicDramConfig {
                capacity: cfg.nic_dram_capacity,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            DispatchConfig::new(cfg.load_dispatch_ratio),
            root.fork(1),
        );
        if let Some(ac) = cfg.adaptive_cache.clone() {
            mem.set_adaptive(ac);
        }
        let table = HashTable::new(
            mem,
            HashTableConfig {
                total_memory: cfg.total_memory,
                hash_index_ratio: cfg.hash_index_ratio,
                inline_threshold: cfg.inline_threshold,
                extended_slabs: cfg.extended_slabs,
            },
        );
        let mut proc = KvProcessor::new(table, cfg.station, LambdaRegistry::with_builtins());
        proc.set_fault_plane(root.fork(2));
        proc.set_overload_config(cfg.overload.clone());
        KvDirectStore {
            proc,
            scratch: KvResponse {
                status: Status::Ok,
                value: Vec::new(),
            },
        }
    }

    /// The underlying processor (stats, preloading).
    pub fn processor(&self) -> &KvProcessor<DispatchedMemory> {
        &self.proc
    }

    /// Mutable processor access.
    pub fn processor_mut(&mut self) -> &mut KvProcessor<DispatchedMemory> {
        &mut self.proc
    }

    /// Processor counters.
    pub fn stats(&self) -> ProcessorStats {
        self.proc.stats()
    }

    /// Store-wide rollup of injected faults across every component plane
    /// (processor DMA transactions + memory-engine ECC/stall events) — a
    /// view over the store's op-cost ledger.
    pub fn fault_counters(&self) -> FaultCounters {
        self.ledger().fault_view()
    }

    /// The store's full op-cost ledger: processor request mix and
    /// overload decisions, station occupancy, slab activity, memory
    /// traffic and every fault plane's injections, folded together.
    pub fn ledger(&self) -> OpLedger {
        let mut out = OpLedger::default();
        self.emit_costs(&mut out);
        out
    }

    /// The memory engine's ECC recovery state (corrected/uncorrectable
    /// counts and whether the DRAM-cache bypass breaker has tripped).
    pub fn ecc_stats(&self) -> kvd_mem::EccStats {
        *self.proc.table().mem().ecc()
    }

    /// Store-wide overload rollup (admissions, sheds by reason,
    /// degraded-mode transitions), mirroring
    /// [`fault_counters`](Self::fault_counters).
    pub fn overload_counters(&self) -> OverloadCounters {
        self.proc.overload_counters()
    }

    /// Whether the store is in read-only degraded mode (writes shed with
    /// [`StoreError::Overloaded`] after slab exhaustion).
    pub fn is_read_only(&self) -> bool {
        self.proc.is_read_only()
    }

    fn one(&mut self, req: KvRequestRef<'_>) -> KvResponse {
        self.proc.execute_one(req)
    }

    /// `get(k) → v`.
    ///
    /// Conflates "not found" and device faults into `None`; use
    /// [`try_get`](Self::try_get) to distinguish them under fault
    /// injection, or [`get_into`](Self::get_into) to reuse a caller-owned
    /// scratch buffer on hot read paths.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let r = self.one(KvRequestRef::get(key));
        match r.status {
            Status::Ok => Some(r.value),
            _ => None,
        }
    }

    /// `get(k)` into a caller-owned scratch buffer; returns the value
    /// length on a hit. `out` is cleared and filled in place, so a read
    /// loop reuses one allocation instead of producing one `Vec` per op.
    pub fn get_into(&mut self, key: &[u8], out: &mut Vec<u8>) -> Option<usize> {
        self.proc
            .execute_one_into(KvRequestRef::get(key), &mut self.scratch);
        match self.scratch.status {
            Status::Ok => {
                out.clear();
                out.extend_from_slice(&self.scratch.value);
                Some(out.len())
            }
            _ => None,
        }
    }

    /// `get(k)` that separates absence (`Ok(None)`) from device faults
    /// (`Err(DeviceError)`).
    pub fn try_get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let r = self.one(KvRequestRef::get(key));
        match r.status {
            Status::Ok => Ok(Some(r.value)),
            Status::NotFound => Ok(None),
            s => Err(status_to_err(s)),
        }
    }

    /// `put(k, v) → bool` (inserts or replaces).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let r = self.one(KvRequestRef::put(key, value));
        match r.status {
            Status::Ok => Ok(()),
            s => Err(status_to_err(s)),
        }
    }

    /// `put(k, v)` with an absolute lifecycle stamp (expiry tick;
    /// 0 = never expires). An already-dead stamp still acknowledges the
    /// store but leaves the key observably absent.
    pub fn put_ttl(
        &mut self,
        key: &[u8],
        value: &[u8],
        expiry_tick: u32,
    ) -> Result<(), StoreError> {
        let r = self.one(KvRequestRef::put_ttl(key, value, expiry_tick));
        match r.status {
            Status::Ok => Ok(()),
            s => Err(status_to_err(s)),
        }
    }

    /// Rewrites `key`'s lifecycle stamp (memcache `touch`); returns
    /// whether the key was found live.
    pub fn touch(&mut self, key: &[u8], expiry_tick: u32) -> bool {
        self.proc.touch(key, expiry_tick)
    }

    /// `delete(k) → bool`.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.one(KvRequestRef::delete(key)).status == Status::Ok
    }

    /// Atomic fetch-and-add (builtin λ), returning the original value.
    pub fn fetch_add(&mut self, key: &[u8], delta: u64) -> Result<u64, StoreError> {
        self.update_scalar(key, crate::lambda::builtin::ADD, delta)
    }

    /// `update_scalar2scalar(k, Δ, λ) → v`.
    pub fn update_scalar(
        &mut self,
        key: &[u8],
        lambda: u16,
        param: u64,
    ) -> Result<u64, StoreError> {
        let param = param.to_le_bytes();
        let r = self.one(KvRequestRef {
            op: OpCode::UpdateScalar,
            key,
            value: &param,
            lambda,
            deadline_us: 0,
            expiry_tick: 0,
        });
        match r.status {
            Status::Ok => Ok(decode_scalar(Some(&r.value))),
            s => Err(status_to_err(s)),
        }
    }

    /// `update_scalar2vector(k, Δ, λ) → [v]`: applies λ to every element,
    /// returning the original vector.
    pub fn vector_update(
        &mut self,
        key: &[u8],
        lambda: u16,
        param: u64,
    ) -> Result<Vec<u64>, StoreError> {
        let param = param.to_le_bytes();
        let r = self.one(KvRequestRef {
            op: OpCode::UpdateScalarToVector,
            key,
            value: &param,
            lambda,
            deadline_us: 0,
            expiry_tick: 0,
        });
        match r.status {
            Status::Ok => Ok(decode_vector(&r.value)),
            s => Err(status_to_err(s)),
        }
    }

    /// `update_vector2vector(k, [Δ], λ) → [v]`.
    pub fn vector_update_elementwise(
        &mut self,
        key: &[u8],
        lambda: u16,
        params: &[u64],
    ) -> Result<Vec<u64>, StoreError> {
        let value = encode_vector(params);
        let r = self.one(KvRequestRef {
            op: OpCode::UpdateVector,
            key,
            value: &value,
            lambda,
            deadline_us: 0,
            expiry_tick: 0,
        });
        match r.status {
            Status::Ok => Ok(decode_vector(&r.value)),
            s => Err(status_to_err(s)),
        }
    }

    /// `reduce(k, Σ, λ) → Σ`.
    pub fn vector_reduce(&mut self, key: &[u8], lambda: u16, init: u64) -> Result<u64, StoreError> {
        let init = init.to_le_bytes();
        let r = self.one(KvRequestRef {
            op: OpCode::Reduce,
            key,
            value: &init,
            lambda,
            deadline_us: 0,
            expiry_tick: 0,
        });
        match r.status {
            Status::Ok => Ok(decode_scalar(Some(&r.value))),
            s => Err(status_to_err(s)),
        }
    }

    /// `filter(k, λ) → [v]`.
    pub fn vector_filter(&mut self, key: &[u8], lambda: u16) -> Result<Vec<u64>, StoreError> {
        let r = self.one(KvRequestRef {
            op: OpCode::Filter,
            key,
            value: &[],
            lambda,
            deadline_us: 0,
            expiry_tick: 0,
        });
        match r.status {
            Status::Ok => Ok(decode_vector(&r.value)),
            s => Err(status_to_err(s)),
        }
    }

    /// Registers a λ ("compile before use").
    pub fn register_lambda(&mut self, id: u16, lambda: Lambda) {
        self.proc.registry_mut().register(id, lambda);
    }

    /// Executes a client-batched request packet — the network fast path.
    pub fn execute_batch(&mut self, reqs: &[KvRequest]) -> Vec<KvResponse> {
        self.proc.execute_batch(reqs)
    }

    /// Executes a batch of borrowed requests straight off a decoded wire
    /// packet (see [`KvProcessor::execute_batch_refs`]).
    pub fn execute_batch_refs(&mut self, reqs: &[KvRequestRef<'_>]) -> Vec<KvResponse> {
        self.proc.execute_batch_refs(reqs)
    }

    /// Batch execution into a caller-owned response vector; retired
    /// response buffers are recycled (see
    /// [`KvProcessor::execute_batch_refs_into`]).
    pub fn execute_batch_refs_into(
        &mut self,
        reqs: &[KvRequestRef<'_>],
        out: &mut Vec<KvResponse>,
    ) {
        self.proc.execute_batch_refs_into(reqs, out)
    }

    /// Executes one borrowed request without staging allocations — the
    /// simulator's per-op hot path.
    pub fn execute_one(&mut self, req: KvRequestRef<'_>) -> KvResponse {
        self.proc.execute_one(req)
    }

    /// Executes one borrowed request into a caller-owned response; the
    /// response's old value buffer is recycled (see
    /// [`KvProcessor::execute_one_into`]).
    pub fn execute_one_into(&mut self, req: KvRequestRef<'_>, resp: &mut KvResponse) {
        self.proc.execute_one_into(req, resp)
    }
}

impl CostSource for KvDirectStore {
    fn emit_costs(&self, out: &mut OpLedger) {
        self.proc.emit_costs(out);
    }
}

/// A multi-NIC deployment: keys shard across NICs by hash, each NIC
/// owning a disjoint slice of host memory (the paper's 10-NIC setup).
///
/// # Examples
///
/// ```
/// use kvd_core::{KvDirectConfig, MultiNicStore};
///
/// let mut s = MultiNicStore::new(KvDirectConfig::with_memory(1 << 20), 4);
/// s.put(b"a", b"1").unwrap();
/// assert_eq!(s.get(b"a").unwrap(), b"1");
/// assert_eq!(s.nics(), 4);
/// ```
pub struct MultiNicStore {
    nics: Vec<KvDirectStore>,
}

impl MultiNicStore {
    /// Creates `n` NICs, each with its own `cfg`-sized memory slice.
    pub fn new(cfg: KvDirectConfig, n: usize) -> Self {
        assert!(n >= 1);
        MultiNicStore {
            nics: (0..n).map(|_| KvDirectStore::new(cfg.clone())).collect(),
        }
    }

    /// Number of NICs.
    pub fn nics(&self) -> usize {
        self.nics.len()
    }

    fn shard(&self, key: &[u8]) -> usize {
        // Client-side sharding: shared with the parallel engine so both
        // layers agree on key ownership.
        shard_of(key, self.nics.len())
    }

    /// Routes a GET to the owning NIC.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let s = self.shard(key);
        self.nics[s].get(key)
    }

    /// Routes a PUT to the owning NIC.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let s = self.shard(key);
        self.nics[s].put(key, value)
    }

    /// Routes a DELETE to the owning NIC.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let s = self.shard(key);
        self.nics[s].delete(key)
    }

    /// Routes a fetch-and-add to the owning NIC.
    pub fn fetch_add(&mut self, key: &[u8], delta: u64) -> Result<u64, StoreError> {
        let s = self.shard(key);
        self.nics[s].fetch_add(key, delta)
    }

    /// Scatters a batch to the owning NICs and gathers responses in order.
    pub fn execute_batch(&mut self, reqs: &[KvRequest]) -> Vec<KvResponse> {
        let mut per_nic: Vec<Vec<(usize, KvRequest)>> = vec![Vec::new(); self.nics.len()];
        for (i, r) in reqs.iter().enumerate() {
            per_nic[self.shard(&r.key)].push((i, r.clone()));
        }
        let mut out: Vec<Option<KvResponse>> = vec![None; reqs.len()];
        for (nic, batch) in per_nic.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let reqs_only: Vec<KvRequest> = batch.iter().map(|(_, r)| r.clone()).collect();
            let responses = self.nics[nic].execute_batch(&reqs_only);
            for ((i, _), resp) in batch.into_iter().zip(responses) {
                out[i] = Some(resp);
            }
        }
        out.into_iter()
            .map(|r| r.expect("all requests routed"))
            .collect()
    }

    /// Per-NIC access to the shards.
    pub fn nic(&self, i: usize) -> &KvDirectStore {
        &self.nics[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda::builtin;
    use kvd_mem::MemoryEngine;

    fn store() -> KvDirectStore {
        KvDirectStore::new(KvDirectConfig::with_memory(1 << 20))
    }

    #[test]
    fn auto_tuning_matches_paper_procedure() {
        // Small inline KVs at a modest utilization: the tuner should
        // inline them and pick a usable index ratio.
        let cfg = KvDirectConfig::auto_tuned(1 << 19, 16, 0.3, true);
        assert!(cfg.inline_threshold >= 16, "16B KVs should inline");
        assert!((0.1..=0.9).contains(&cfg.hash_index_ratio));
        assert!((0.0..=1.0).contains(&cfg.load_dispatch_ratio));
        // The tuned store actually reaches the target.
        let mut s = KvDirectStore::new(cfg);
        let mut id = 0u64;
        while s.processor().table().memory_utilization() < 0.3 {
            s.put(&id.to_le_bytes(), &[1u8; 8])
                .expect("tuned store fits");
            id += 1;
        }
        // Large KVs force a smaller index ratio than small ones.
        let small = KvDirectConfig::auto_tuned(1 << 19, 16, 0.3, false);
        let large = KvDirectConfig::auto_tuned(1 << 19, 64, 0.3, false);
        assert!(large.hash_index_ratio <= small.hash_index_ratio);
    }

    #[test]
    fn basic_crud() {
        let mut s = store();
        assert_eq!(s.get(b"missing"), None);
        s.put(b"k", b"v1").unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v1");
        s.put(b"k", b"v2").unwrap();
        assert_eq!(s.get(b"k").unwrap(), b"v2");
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert_eq!(s.get(b"k"), None);
    }

    #[test]
    fn sequencer_semantics() {
        // The paper's distributed-sequencer use case: atomics on one key.
        let mut s = store();
        for expect in 0..100u64 {
            assert_eq!(s.fetch_add(b"seq", 1).unwrap(), expect);
        }
        assert_eq!(
            decode_scalar(s.get(b"seq").as_deref()),
            100,
            "final value visible to plain GET"
        );
    }

    #[test]
    fn scalar_update_builtins() {
        let mut s = store();
        s.put(b"x", &10u64.to_le_bytes()).unwrap();
        assert_eq!(s.update_scalar(b"x", builtin::MAX, 99).unwrap(), 10);
        assert_eq!(s.update_scalar(b"x", builtin::MAX, 5).unwrap(), 99);
        assert_eq!(s.update_scalar(b"x", builtin::MIN, 50).unwrap(), 99);
        assert_eq!(s.update_scalar(b"x", builtin::XCHG, 7).unwrap(), 50);
        assert_eq!(decode_scalar(s.get(b"x").as_deref()), 7);
    }

    #[test]
    fn vector_operations_table1() {
        let mut s = store();
        let v: Vec<u64> = (1..=8).collect();
        s.put(b"vec", &encode_vector(&v)).unwrap();
        // update_scalar2vector returns the original vector.
        let orig = s.vector_update(b"vec", builtin::VADD, 10).unwrap();
        assert_eq!(orig, v);
        let now = decode_vector(&s.get(b"vec").unwrap());
        assert_eq!(now, (11..=18).collect::<Vec<u64>>());
        // reduce: sum with initial value.
        let sum = s.vector_reduce(b"vec", builtin::SUM, 100).unwrap();
        assert_eq!(sum, 100 + (11..=18).sum::<u64>());
        // elementwise vector2vector.
        let params: Vec<u64> = (0..8).collect();
        let orig = s
            .vector_update_elementwise(b"vec", builtin::VVADD, &params)
            .unwrap();
        assert_eq!(orig, (11..=18).collect::<Vec<u64>>());
        let now = decode_vector(&s.get(b"vec").unwrap());
        assert_eq!(now, vec![11, 13, 15, 17, 19, 21, 23, 25]);
        // filter non-zero.
        s.put(b"sparse", &encode_vector(&[0, 5, 0, 7, 0])).unwrap();
        assert_eq!(
            s.vector_filter(b"sparse", builtin::NONZERO).unwrap(),
            vec![5, 7]
        );
    }

    #[test]
    fn vector_update_on_missing_key_is_not_found() {
        let mut s = store();
        assert_eq!(
            s.vector_update(b"nope", builtin::VADD, 1),
            Err(StoreError::NotFound)
        );
        assert_eq!(
            s.vector_reduce(b"nope", builtin::SUM, 0),
            Err(StoreError::NotFound)
        );
    }

    #[test]
    fn unregistered_lambda_rejected() {
        let mut s = store();
        s.put(b"x", &1u64.to_le_bytes()).unwrap();
        assert_eq!(s.update_scalar(b"x", 999, 1), Err(StoreError::Invalid));
        // Wrong λ type for the opcode is also invalid.
        assert_eq!(
            s.vector_update(b"x", builtin::ADD, 1),
            Err(StoreError::Invalid)
        );
    }

    #[test]
    fn custom_lambda_registration() {
        let mut s = store();
        s.register_lambda(
            200,
            Lambda::Scalar(std::sync::Arc::new(|old, p| old.rotate_left(p as u32))),
        );
        s.put(b"bits", &0x1u64.to_le_bytes()).unwrap();
        assert_eq!(s.update_scalar(b"bits", 200, 4).unwrap(), 1);
        assert_eq!(decode_scalar(s.get(b"bits").as_deref()), 16);
    }

    #[test]
    fn batch_execution_order_preserved() {
        let mut s = store();
        let reqs = vec![
            KvRequest::put(b"a", b"1"),
            KvRequest::get(b"a"),
            KvRequest::put(b"a", b"2"),
            KvRequest::get(b"a"),
            KvRequest::delete(b"a"),
            KvRequest::get(b"a"),
        ];
        let rs = s.execute_batch(&reqs);
        assert_eq!(rs[1].value, b"1", "GET sees preceding PUT in batch");
        assert_eq!(rs[3].value, b"2");
        assert_eq!(rs[4].status, Status::Ok);
        assert_eq!(rs[5].status, Status::NotFound);
    }

    #[test]
    fn multinic_sharding_roundtrip() {
        let mut s = MultiNicStore::new(KvDirectConfig::with_memory(1 << 20), 4);
        for i in 0..200u32 {
            s.put(format!("key-{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        for i in 0..200u32 {
            assert_eq!(
                s.get(format!("key-{i}").as_bytes()).unwrap(),
                i.to_le_bytes()
            );
        }
        // Keys actually spread across NICs.
        let loads: Vec<u64> = (0..4).map(|i| s.nic(i).processor().table().len()).collect();
        assert!(
            loads.iter().all(|&l| l > 10),
            "unbalanced shards: {loads:?}"
        );
        assert_eq!(loads.iter().sum::<u64>(), 200);
    }

    #[test]
    fn zero_rate_faults_leave_store_bit_identical() {
        // A store built with an explicit zero-rate plane (and a non-zero
        // seed that must never be consumed) matches a plain store on every
        // observable: responses, processor stats, memory traffic.
        let mut plain = store();
        let mut zeroed = KvDirectStore::new(KvDirectConfig {
            fault_rates: FaultRates::ZERO,
            fault_seed: 0xDEAD_BEEF,
            ..KvDirectConfig::with_memory(1 << 20)
        });
        for i in 0..300u64 {
            let k = i.to_le_bytes();
            let v = (i * 3).to_le_bytes();
            assert_eq!(plain.put(&k, &v), zeroed.put(&k, &v));
            assert_eq!(
                plain.get(&(i / 2).to_le_bytes()),
                zeroed.get(&(i / 2).to_le_bytes())
            );
        }
        assert_eq!(plain.stats(), zeroed.stats());
        assert_eq!(
            plain.processor().table().mem().stats(),
            zeroed.processor().table().mem().stats()
        );
        assert_eq!(zeroed.fault_counters().total_faults(), 0);
        assert!(!zeroed.ecc_stats().bypassed);
    }

    #[test]
    fn total_fault_exhaustion_surfaces_device_error_without_state_change() {
        // Every DMA transaction fails: operations must report DeviceError
        // and leave the table untouched (no partial writes).
        let mut s = KvDirectStore::new(KvDirectConfig {
            fault_rates: FaultRates {
                pcie_corrupt: 1.0,
                ..FaultRates::ZERO
            },
            fault_seed: 7,
            ..KvDirectConfig::with_memory(1 << 20)
        });
        assert_eq!(s.put(b"k", b"v"), Err(StoreError::DeviceError));
        assert_eq!(s.processor().table().len(), 0, "failed PUT not applied");
        let st = s.stats();
        assert_eq!(st.device_errors, 1);
        assert!(st.fault_retries > 0, "retries precede exhaustion");
        assert!(s.fault_counters().exhausted > 0);
    }

    #[test]
    fn faulty_store_agrees_with_model_on_ok_responses() {
        // Moderate fault rates: some ops may fail with DeviceError, but
        // every op that reports Ok must match a fault-free HashMap model,
        // and the store must never panic.
        let mut s = KvDirectStore::new(KvDirectConfig {
            fault_rates: FaultRates::uniform(0.05),
            fault_seed: 42,
            ..KvDirectConfig::with_memory(1 << 20)
        });
        let mut model = std::collections::HashMap::new();
        let mut oks = 0u64;
        let mut errs = 0u64;
        for i in 0..500u64 {
            let k = (i % 64).to_le_bytes();
            if i % 3 == 0 {
                match s.put(&k, &i.to_le_bytes()) {
                    Ok(()) => {
                        model.insert(k, i.to_le_bytes().to_vec());
                        oks += 1;
                    }
                    Err(StoreError::DeviceError) => errs += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            } else {
                match s.try_get(&k) {
                    Ok(got) => {
                        assert_eq!(
                            got.as_deref(),
                            model.get(&k).map(Vec::as_slice),
                            "GET diverged from model"
                        );
                        oks += 1;
                    }
                    Err(StoreError::DeviceError) => errs += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        assert!(oks > 400, "most ops should survive 5% rates: {oks}");
        assert!(s.fault_counters().total_faults() > 0, "faults did fire");
        let _ = errs;
    }

    #[test]
    fn store_fault_schedule_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut s = KvDirectStore::new(KvDirectConfig {
                fault_rates: FaultRates::uniform(0.05),
                fault_seed: seed,
                ..KvDirectConfig::with_memory(1 << 20)
            });
            for i in 0..400u64 {
                let k = (i % 32).to_le_bytes();
                let _ = s.put(&k, &i.to_le_bytes());
                let _ = s.get(&k);
            }
            (s.stats(), s.fault_counters(), s.ecc_stats())
        };
        assert_eq!(run(11), run(11), "same seed, same everything");
        let (_, c11, _) = run(11);
        let (_, c12, _) = run(12);
        assert!(c11.total_faults() > 0);
        assert_ne!(c11, c12, "different seeds, different schedules");
    }

    #[test]
    fn external_pressure_sheds_and_recovers_with_hysteresis() {
        let mut s = KvDirectStore::new(KvDirectConfig {
            overload: crate::overload::OverloadConfig::enabled(),
            ..KvDirectConfig::with_memory(1 << 20)
        });
        s.put(b"k", b"v").expect("idle store admits");
        // Pressure above the high watermark: everything sheds.
        s.processor_mut().set_external_pressure(0.9);
        assert_eq!(s.put(b"k", b"v2"), Err(StoreError::Overloaded));
        assert_eq!(s.try_get(b"k"), Err(StoreError::Overloaded));
        // Between the watermarks: hysteresis keeps shedding.
        s.processor_mut().set_external_pressure(0.7);
        assert_eq!(s.put(b"k", b"v2"), Err(StoreError::Overloaded));
        // Below the low watermark: admitted again, value unchanged by the
        // shed attempts.
        s.processor_mut().set_external_pressure(0.3);
        assert_eq!(s.get(b"k").unwrap(), b"v");
        let c = s.overload_counters();
        assert_eq!(c.shed_overload, 3);
        assert_eq!(c.shed_transitions, 2, "one flip in, one out");
        assert!(c.admitted >= 2);
    }

    #[test]
    fn hot_key_shedding_spares_the_spread_traffic() {
        let mut s = KvDirectStore::new(KvDirectConfig {
            overload: crate::overload::OverloadConfig::hot_key_aware(),
            ..KvDirectConfig::with_memory(1 << 20)
        });
        // Warm the rollup with an adversarial mix: one celebrity key is
        // half the traffic, the rest spreads over 64 keys.
        for i in 0..512u64 {
            let spread = (i % 64).to_le_bytes();
            s.put(b"celebrity", b"v").unwrap();
            s.put(&spread, b"v").unwrap();
        }
        // Overloaded but below severe: only the celebrity sheds.
        s.processor_mut().set_external_pressure(0.9);
        assert_eq!(s.try_get(b"celebrity"), Err(StoreError::Overloaded));
        for i in 0..64u64 {
            let spread = i.to_le_bytes();
            assert!(s.try_get(&spread).is_ok(), "spread key {i} was shed");
        }
        let sheds = s.processor().ledger().cache.hot_key_sheds;
        assert!(sheds >= 1, "celebrity shed must be attributed");
        assert_eq!(s.overload_counters().shed_overload, sheds);
        // At severe pressure the carve-out vanishes: everything sheds,
        // and those sheds are NOT attributed to the hot-key defense.
        s.processor_mut().set_external_pressure(0.97);
        assert_eq!(s.try_get(&0u64.to_le_bytes()), Err(StoreError::Overloaded));
        assert_eq!(s.processor().ledger().cache.hot_key_sheds, sheds);
        // Below the low watermark everything — celebrity included — is
        // admitted again.
        s.processor_mut().set_external_pressure(0.3);
        assert!(s.try_get(b"celebrity").is_ok());
    }

    #[test]
    fn expired_requests_dropped_without_effect() {
        // Deadline expiry is always on — it needs no admission config.
        let mut s = store();
        s.processor_mut().set_now(kvd_sim::SimTime::from_us(100));
        let rs = s.execute_batch(&[
            KvRequest::put(b"stale", b"v").with_deadline(50),
            KvRequest::put(b"fresh", b"v").with_deadline(200),
            KvRequest::put(b"untimed", b"v"),
        ]);
        assert_eq!(rs[0].status, Status::Expired);
        assert_eq!(rs[1].status, Status::Ok);
        assert_eq!(rs[2].status, Status::Ok);
        assert_eq!(s.get(b"stale"), None, "expired PUT left no trace");
        assert_eq!(s.overload_counters().shed_expired, 1);
    }

    #[test]
    fn read_only_mode_enters_on_oom_and_exits_after_drain() {
        let mut s = KvDirectStore::new(KvDirectConfig {
            overload: crate::overload::OverloadConfig {
                admission: None,
                read_only_on_oom: true,
                read_only_exit_utilization: 0.15,
                ..Default::default()
            },
            ..KvDirectConfig::with_memory(1 << 20)
        });
        // Fill until the slabs run dry. The filling write itself reports
        // OutOfMemory; the mode flips for everything after it.
        let mut inserted: Vec<u64> = Vec::new();
        let mut i = 0u64;
        loop {
            match s.put(&i.to_le_bytes(), &[0xAB; 200]) {
                Ok(()) => inserted.push(i),
                Err(StoreError::OutOfMemory) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            i += 1;
        }
        assert!(s.is_read_only());
        // Writes shed, reads flow: degraded, not dead.
        assert_eq!(
            s.put(b"more", &[0xCD; 200]),
            Err(StoreError::Overloaded),
            "read-only mode sheds allocating writes"
        );
        assert_eq!(s.get(&inserted[0].to_le_bytes()).unwrap(), [0xAB; 200]);
        // Deletes are admitted — they are the way out. Drain below the
        // exit watermark and the next write is admitted again.
        for k in &inserted {
            if s.processor().table().memory_utilization() < 0.12 {
                break;
            }
            assert!(s.delete(&k.to_le_bytes()));
        }
        s.put(b"after", b"v")
            .expect("recovered store admits writes");
        assert!(!s.is_read_only());
        let c = s.overload_counters();
        assert_eq!(c.read_only_entries, 1);
        assert_eq!(c.read_only_exits, 1);
        assert!(c.shed_read_only >= 1);
    }

    #[test]
    fn disabled_overload_plane_is_inert() {
        // An enabled-but-idle plane (zero pressure, no deadlines, no OOM)
        // must not disturb any response; the default plane keeps OOM
        // semantics exactly as the seed: every failing write reports
        // OutOfMemory, never Overloaded.
        let mut plain = store();
        let mut enabled = KvDirectStore::new(KvDirectConfig {
            overload: crate::overload::OverloadConfig::enabled(),
            ..KvDirectConfig::with_memory(1 << 20)
        });
        for i in 0..300u64 {
            let k = i.to_le_bytes();
            assert_eq!(plain.put(&k, &k), enabled.put(&k, &k));
            assert_eq!(plain.get(&k), enabled.get(&k));
        }
        assert_eq!(plain.stats(), enabled.stats());
        let c = enabled.overload_counters();
        assert_eq!(c.total_shed(), 0);
        assert_eq!(c.admitted, 600);
        assert_eq!(plain.overload_counters().total_shed(), 0);
    }

    #[test]
    fn multinic_batch_scatter_gather() {
        let mut s = MultiNicStore::new(KvDirectConfig::with_memory(1 << 20), 3);
        let reqs: Vec<KvRequest> = (0..50u64)
            .flat_map(|i| {
                vec![
                    KvRequest::put(&i.to_le_bytes(), &(i * 2).to_le_bytes()),
                    KvRequest::get(&i.to_le_bytes()),
                ]
            })
            .collect();
        let rs = s.execute_batch(&reqs);
        for i in 0..50usize {
            assert_eq!(rs[2 * i + 1].value, ((i as u64) * 2).to_le_bytes());
        }
    }
}
