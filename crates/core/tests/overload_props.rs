//! Property tests for the watermark admission controller.
//!
//! Three laws, each over arbitrary pressure traces: (1) pressure that
//! never reaches the low watermark never sheds; (2) pressure at or above
//! the high watermark always sheds; (3) hysteresis — on a sawtooth that
//! oscillates strictly inside the (low, high) band the controller never
//! changes state, no matter how many teeth the saw has.

use kvd_core::{AdmissionController, Watermarks};
use proptest::prelude::*;

fn watermarks() -> impl Strategy<Value = Watermarks> {
    // low in [0.1, 0.6], gap of at least 0.1 up to high ≤ 0.95.
    (0.1f64..0.6, 0.1f64..0.35).prop_map(|(low, gap)| Watermarks {
        low,
        high: low + gap,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Below the low watermark the controller never sheds — regardless of
    /// history, because the low watermark is also the recovery point.
    #[test]
    fn never_sheds_below_low(
        marks in watermarks(),
        trace in prop::collection::vec(0.0f64..1.5, 1..200),
    ) {
        let mut ac = AdmissionController::new(marks);
        for p in trace {
            let below = p < marks.low;
            let shed = ac.observe(p);
            if below {
                prop_assert!(!shed, "shed at pressure {p} < low {}", marks.low);
            }
        }
    }

    /// At or above the high watermark the controller always sheds, no
    /// matter what came before.
    #[test]
    fn always_sheds_at_high(
        marks in watermarks(),
        trace in prop::collection::vec(0.0f64..1.5, 1..200),
    ) {
        let mut ac = AdmissionController::new(marks);
        for p in trace {
            let shed = ac.observe(p);
            if p >= marks.high {
                prop_assert!(shed, "admitted at pressure {p} >= high {}", marks.high);
            }
        }
    }

    /// A sawtooth confined strictly inside the (low, high) band cannot
    /// flap the controller: zero transitions from the admitting state,
    /// and from the shedding state it stays shedding.
    #[test]
    fn sawtooth_inside_band_never_flaps(
        marks in watermarks(),
        teeth in 1usize..50,
        phase in 0.0f64..1.0,
    ) {
        let lo = marks.low + 1e-6;
        let hi = marks.high - 1e-6;
        let saw: Vec<f64> = (0..teeth * 2)
            .map(|i| {
                let t = (i as f64 / 2.0 + phase).fract();
                lo + (hi - lo) * t
            })
            .collect();

        // From the admitting state: stays admitting through the band.
        let mut ac = AdmissionController::new(marks);
        for &p in &saw {
            prop_assert!(!ac.observe(p), "flapped to shedding inside the band");
        }
        prop_assert_eq!(ac.transitions(), 0);

        // From the shedding state: stays shedding through the band.
        let mut ac = AdmissionController::new(marks);
        prop_assert!(ac.observe(marks.high + 0.1));
        let t0 = ac.transitions();
        for &p in &saw {
            prop_assert!(ac.observe(p), "flapped to admitting inside the band");
        }
        prop_assert_eq!(ac.transitions(), t0);
    }

    /// Transition count is bounded by the number of band crossings: each
    /// flip needs pressure to actually cross a watermark.
    #[test]
    fn transitions_require_crossings(
        marks in watermarks(),
        trace in prop::collection::vec(0.0f64..1.5, 1..300),
    ) {
        let mut ac = AdmissionController::new(marks);
        let mut crossings = 0u64;
        for &p in &trace {
            let was = ac.is_shedding();
            ac.observe(p);
            if ac.is_shedding() != was {
                crossings += 1;
                // The sample that flipped the state did cross a watermark.
                if ac.is_shedding() {
                    prop_assert!(p >= marks.high);
                } else {
                    prop_assert!(p <= marks.low);
                }
            }
        }
        prop_assert_eq!(ac.transitions(), crossings);
    }
}
