//! Differential oracle for the lean window path.
//!
//! The asynchronous parallel engine settles windows on
//! [`SystemSim::step_window`]'s three scalars instead of
//! [`SystemSim::step`]'s full ledger delta. That is only sound if, for
//! the same window sequence, (a) the scalar `host_lines` equals the
//! ledger delta's (the simulator's PCIe DMA ledger entries are sourced
//! solely from the memory engine's access counters), (b) the simulator
//! state evolves identically (the two paths share `advance`), and (c)
//! `next_event` really is the idle-skip oracle: a window whose horizon
//! it clears processes nothing. This file pins all three against twin
//! simulators driven window-by-window.

use kvd_core::system::{SystemSim, SystemSimConfig};
use kvd_core::KvDirectConfig;
use kvd_net::KvRequest;
use kvd_sim::SimTime;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn preloaded(pop: u64, batch: usize) -> SystemSim {
    let mut sim = SystemSim::new(SystemSimConfig::paper(
        KvDirectConfig::with_memory(1 << 20),
        batch,
    ));
    for id in 0..pop {
        sim.store_mut()
            .put(&id.to_le_bytes(), &[id as u8; 8])
            .expect("preload fits");
    }
    sim
}

fn stream(pop: u64, n: usize, seed: u64) -> Vec<KvRequest> {
    (0..n as u64)
        .map(|i| {
            let id = splitmix(seed ^ i) % pop;
            if splitmix(i).is_multiple_of(10) {
                KvRequest::put(&id.to_le_bytes(), &[7u8; 8])
            } else {
                KvRequest::get(&id.to_le_bytes())
            }
        })
        .collect()
}

#[test]
fn step_window_matches_step_per_window_and_at_the_end() {
    const POP: u64 = 2_000;
    let reqs = stream(POP, 6_000, 0x5EED);
    let mut heavy = preloaded(POP, 24);
    let mut lean = preloaded(POP, 24);
    heavy.load(&reqs);
    lean.load(&reqs);

    let quantum = SimTime::from_us(8);
    let mut floor = SimTime::ZERO;
    let mut windows = 0u32;
    loop {
        let horizon = floor + quantum;
        let skip = lean.next_event() >= horizon;
        let h = heavy.step(horizon, floor);
        let l = lean.step_window(horizon, floor);
        assert_eq!(
            h.host_lines(),
            l.host_lines,
            "window {windows}: ledger-delta vs memory-stats host lines"
        );
        assert_eq!(h.done, l.done, "window {windows}: done flags");
        if skip {
            assert_eq!(
                l.host_lines, 0,
                "window {windows}: next_event cleared the horizon, yet the window issued traffic"
            );
        }
        // Inject a stall every third window so the floored path is
        // exercised, not just back-to-back quanta.
        let stall = if windows % 3 == 2 {
            SimTime::from_us(5)
        } else {
            SimTime::ZERO
        };
        heavy.absorb_host_stall(stall, quantum);
        lean.absorb_host_stall(stall, quantum);
        floor = horizon + stall;
        windows += 1;
        if l.done {
            break;
        }
        assert!(windows < 1_000_000, "stream failed to drain");
    }
    assert!(windows > 3, "stream should span several windows");
    assert_eq!(
        heavy.report(),
        lean.report(),
        "the two stepping paths must leave identical simulators"
    );
}

#[test]
fn next_event_is_max_once_drained_and_skipped_windows_are_free() {
    const POP: u64 = 500;
    let mut sim = preloaded(POP, 8);
    sim.load(&stream(POP, 400, 0xA11));
    let mut floor = SimTime::ZERO;
    let quantum = SimTime::from_us(8);
    loop {
        let out = sim.step_window(floor + quantum, floor);
        floor += quantum;
        if out.done {
            assert_eq!(
                out.next_event,
                SimTime::MAX,
                "drained shard must report MAX"
            );
            break;
        }
    }
    assert_eq!(sim.next_event(), SimTime::MAX);
    // Stepping a drained simulator is a no-op window.
    let extra = sim.step_window(floor + quantum, floor);
    assert_eq!(extra.host_lines, 0);
    assert!(extra.done);
}
