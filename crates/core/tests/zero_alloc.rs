//! Steady-state allocation guard for the zero-copy hot path.
//!
//! A counting allocator wraps the system allocator. After warmup passes
//! that fill every buffer pool (the station's spare-buffer pool, the
//! table's kv scratch, the processor's response arena), replaying the
//! exact same GET sequence through the batched path must perform **zero**
//! heap allocations — this is the ISSUE's hot-path acceptance criterion,
//! and it guards against any future change quietly putting a `to_vec` or
//! `clone` back on the per-op path.
//!
//! This file intentionally holds a single `#[test]`: the harness runs
//! tests in one binary concurrently, and a second test's allocations
//! would race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kvd_core::KvProcessor;
use kvd_net::{KvRequest, KvRequestRef, KvResponse, Status};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn steady_state_get_allocates_nothing() {
    const POP: u64 = 4096;
    const OPS: usize = 10_000;
    const BATCH: usize = 32;

    let mut p = KvProcessor::with_flat_memory(1 << 22, 0.5, 24);
    for id in 0..POP {
        let key = splitmix(id).to_le_bytes();
        let r = p.execute_one(KvRequestRef::put(&key, &[id as u8; 8]));
        assert_eq!(r.status, Status::Ok, "preload must fit");
    }

    // A zipf-free but hot-skewed GET stream over the preloaded keys; the
    // trace (and its borrowed view) is built once, outside the counter.
    let trace: Vec<KvRequest> = (0..OPS as u64)
        .map(|i| KvRequest::get(&splitmix(splitmix(i) % POP).to_le_bytes()))
        .collect();
    let refs: Vec<KvRequestRef<'_>> = trace.iter().map(|r| r.as_ref()).collect();

    // --- Batched path ---------------------------------------------------
    let mut out: Vec<KvResponse> = Vec::new();
    // Two warmup replays: the first grows the buffer pools to their
    // equilibrium float, the second proves the float is a fixpoint.
    for _ in 0..2 {
        for chunk in refs.chunks(BATCH) {
            p.execute_batch_refs_into(chunk, &mut out);
        }
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut hits = 0usize;
    for chunk in refs.chunks(BATCH) {
        p.execute_batch_refs_into(chunk, &mut out);
        hits += out.iter().filter(|r| r.status == Status::Ok).count();
    }
    let batched = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(hits, OPS, "every GET must hit a preloaded key");
    assert_eq!(
        batched, 0,
        "steady-state batched GETs must not allocate ({batched} allocations over {OPS} ops)"
    );

    // --- Per-op path (the timed simulator's inner loop) ------------------
    let mut resp = KvResponse {
        status: Status::Ok,
        value: Vec::new(),
    };
    for _ in 0..2 {
        for r in &refs {
            p.execute_one_into(*r, &mut resp);
        }
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for r in &refs {
        p.execute_one_into(*r, &mut resp);
        assert_eq!(resp.status, Status::Ok);
    }
    let per_op = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        per_op, 0,
        "steady-state per-op GETs must not allocate ({per_op} allocations over {OPS} ops)"
    );
}
