//! Differential test: the zero-copy batched hot path is bit-identical to
//! the owned per-request path.
//!
//! One YCSB-A trace (update-heavy, zipf-skewed — the mix that exercises
//! puts, gets, forwarding and write-backs together) is driven through two
//! identically configured stores:
//!
//! * **owned**: `encode_packet` → `decode_packet` (owned requests) →
//!   `execute_batch` — the path every caller used before the zero-copy
//!   rework;
//! * **zero-copy**: the same packet bytes → `decode_packet_ref` (borrowed
//!   requests) → `execute_batch_refs_into` with a reused response arena.
//!
//! Every response must match, and the merged op-cost ledgers must be
//! *equal as values* — the ledger is the equivalence oracle proving the
//! SWAR probe, scratch reads and buffer pools changed no memory access,
//! no station decision, and no retire outcome.

use kvd_core::{KvDirectConfig, KvDirectStore};
use kvd_net::{decode_packet, decode_packet_ref, encode_packet, KvResponse};
use kvd_sim::{CostSource, OpLedger};
use kvd_workloads::presets::{PresetWorkload, YcsbPreset};

fn store() -> KvDirectStore {
    let mut s = KvDirectStore::new(KvDirectConfig::with_memory(1 << 20));
    s.processor_mut().set_ledger_detail(true);
    s
}

fn merged_ledger(s: &KvDirectStore) -> OpLedger {
    let mut out = OpLedger::default();
    s.emit_costs(&mut out);
    out
}

#[test]
fn zero_copy_batches_match_owned_path() {
    const POP: u64 = 2_000;
    const BATCH: usize = 40;
    const BATCHES: usize = 250;

    let mut owned = store();
    let mut zero_copy = store();

    // Identical preloads through each store's own path under test.
    let mut w = PresetWorkload::new(YcsbPreset::A, POP, 32, 0xD1FF);
    let preload = w.preload();
    for chunk in preload.chunks(BATCH) {
        let bytes = encode_packet(chunk);
        let owned_reqs = decode_packet(&bytes).expect("round-trip");
        owned.execute_batch(&owned_reqs);
        let refs = decode_packet_ref(&bytes).expect("round-trip");
        let mut scratch = Vec::new();
        zero_copy.execute_batch_refs_into(&refs, &mut scratch);
    }

    let mut arena: Vec<KvResponse> = Vec::new();
    for _ in 0..BATCHES {
        let batch = w.batch(BATCH);
        let bytes = encode_packet(&batch);

        let owned_reqs = decode_packet(&bytes).expect("round-trip");
        let owned_resps = owned.execute_batch(&owned_reqs);

        let refs = decode_packet_ref(&bytes).expect("round-trip");
        zero_copy.execute_batch_refs_into(&refs, &mut arena);

        assert_eq!(owned_resps, arena, "responses diverged");
    }

    assert_eq!(
        merged_ledger(&owned),
        merged_ledger(&zero_copy),
        "op-cost ledgers diverged: the zero-copy path changed a memory \
         access, station decision, or retire outcome"
    );
}

#[test]
fn execute_one_into_matches_execute_one() {
    const POP: u64 = 500;

    let mut a = store();
    let mut b = store();
    let mut w = PresetWorkload::new(YcsbPreset::A, POP, 24, 0xBEE);
    for req in w.preload() {
        a.execute_one(req.as_ref());
        b.execute_one_into(
            req.as_ref(),
            &mut KvResponse {
                status: kvd_net::Status::Ok,
                value: Vec::new(),
            },
        );
    }

    let mut resp = KvResponse {
        status: kvd_net::Status::Ok,
        value: Vec::new(),
    };
    for _ in 0..5_000 {
        let req = w.next_request();
        let ra = a.execute_one(req.as_ref());
        b.execute_one_into(req.as_ref(), &mut resp);
        assert_eq!(ra, resp, "per-op paths diverged");
    }
    assert_eq!(merged_ledger(&a), merged_ledger(&b), "ledgers diverged");
}
