//! Property tests for client-side shard routing.
//!
//! Two guarantees the multi-NIC deployment rests on: (1) routing is a
//! pure function of the key — the same key always reaches the same
//! shard, and `MultiNicStore` physically places it on the shard
//! [`shard_of`] names, so the functional store and the parallel engine
//! agree on ownership; (2) the partition stays usable under the paper's
//! skewed workloads — even Zipf-0.99 traffic (YCSB presets) does not
//! collapse onto one shard, because routing hashes keys rather than
//! ranks.

use kvd_core::{KvDirectConfig, MultiNicStore};
use kvd_net::{shard_of, OpCode};
use kvd_workloads::presets::{PresetWorkload, YcsbPreset};
use proptest::prelude::*;
use std::collections::HashSet;

fn keys() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 1..24), 1..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same key → same shard, for any shard count, no matter how often
    /// or from which buffer it is asked.
    #[test]
    fn routing_is_stable(keys in keys(), shards in 1usize..16) {
        for k in &keys {
            let s = shard_of(k, shards);
            prop_assert!(s < shards);
            prop_assert_eq!(s, shard_of(&k.clone(), shards));
            prop_assert_eq!(s, shard_of(k, shards));
        }
    }

    /// `MultiNicStore` places every key on exactly the shard `shard_of`
    /// computes: per-NIC table occupancy matches the predicted partition,
    /// and every key is readable back through routed GETs.
    #[test]
    fn store_partition_matches_shard_of(keys in keys(), shards in 1usize..6) {
        let unique: Vec<Vec<u8>> = {
            let mut seen = HashSet::new();
            keys.into_iter().filter(|k| seen.insert(k.clone())).collect()
        };
        let mut store = MultiNicStore::new(KvDirectConfig::with_memory(1 << 20), shards);
        let mut expected = vec![0u64; shards];
        for (i, k) in unique.iter().enumerate() {
            store.put(k, &(i as u64).to_le_bytes()).expect("put fits");
            expected[shard_of(k, shards)] += 1;
        }
        for (i, k) in unique.iter().enumerate() {
            prop_assert_eq!(store.get(k).expect("routed key present"), (i as u64).to_le_bytes());
        }
        let actual: Vec<u64> = (0..shards)
            .map(|i| store.nic(i).processor().table().len())
            .collect();
        prop_assert_eq!(actual, expected);
    }

    /// Zipf-0.99 request streams (the YCSB presets) stay spread across a
    /// 10-shard deployment: hashing keys decorrelates popularity rank
    /// from shard id, so even the hottest key only skews its own shard.
    #[test]
    fn zipf_preset_load_stays_balanced(seed in 0u64..1_000_000) {
        let shards = 10usize;
        let total = 20_000usize;
        let mut w = PresetWorkload::new(YcsbPreset::B, 10_000, 8, seed);
        let mut counts = vec![0u64; shards];
        for r in w.batch(total) {
            prop_assert!(matches!(r.op, OpCode::Get | OpCode::Put));
            counts[shard_of(&r.key, shards)] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<u64>(), total as u64);
        for (s, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            // Fair share is 10%; the hottest key alone carries ~10% of a
            // Zipf-0.99 stream, so its shard may near double, but no
            // shard may dominate or starve.
            prop_assert!(
                share > 0.03 && share < 0.30,
                "shard {} carries {:.1}% of zipf traffic: {:?}",
                s, share * 100.0, counts
            );
        }
    }
}
