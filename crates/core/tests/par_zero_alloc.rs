//! Steady-state allocation guard for the parallel engine's drive loop.
//!
//! Mirror of `zero_alloc.rs` for the asynchronous credit engine: after a
//! warmup run has grown every pool (buffer pools, staged vectors, the
//! arbiter's per-shard cells), re-staging and re-driving the same
//! streams must perform **zero** heap allocations inside
//! [`ParallelSystemSim::drive_staged`] with one worker. This is what the
//! credit rework bought on the reporting path: window publication is
//! three `u64` atomics, not a per-window `OpLedger` clone + merge, and
//! ledgers accumulate in per-shard arenas folded once per report.
//!
//! Staging (request routing) allocates by design and is excluded;
//! multi-worker drives allocate only the scoped worker threads, which
//! the single-worker loop never spawns. Like `zero_alloc.rs`, the
//! counted stream is GET-only: PUT writebacks drain through the
//! station flush and the memory engine's bucket rewrite, both of which
//! build fresh buffers by design.
//!
//! This file intentionally holds a single `#[test]`: the harness runs
//! tests in one binary concurrently, and a second test's allocations
//! would race the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kvd_core::parallel::{ParallelSimConfig, ParallelSystemSim};
use kvd_core::KvDirectConfig;
use kvd_net::KvRequest;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn steady_state_parallel_drive_allocates_nothing() {
    const POP: u64 = 4_096;
    const OPS: usize = 12_000;

    let mut cfg = ParallelSimConfig::paper(KvDirectConfig::with_memory(1 << 20), 24, 4);
    cfg.workers = 1;
    let mut sim = ParallelSystemSim::new(cfg);
    for id in 0..POP {
        let key = splitmix(id).to_le_bytes();
        sim.preload_put(&key, &[id as u8; 8]).expect("preload fits");
    }

    // Hot-skewed GET stream over preloaded keys, built outside the
    // counted region.
    let trace: Vec<KvRequest> = (0..OPS as u64)
        .map(|i| {
            let key = splitmix(splitmix(i) % POP).to_le_bytes();
            KvRequest::get(&key)
        })
        .collect();

    // Two warmup replays: the first grows every pool to its equilibrium
    // float, the second proves the float is a fixpoint.
    for _ in 0..2 {
        sim.stage(&trace);
        sim.drive_staged();
    }

    // Stage once more (routing allocates; not under test), then count
    // the drive alone.
    sim.stage(&trace);
    let before = ALLOCS.load(Ordering::Relaxed);
    sim.drive_staged();
    let drive = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        drive, 0,
        "steady-state single-worker drive must not allocate ({drive} allocations over {OPS} ops)"
    );

    let r = sim.merged_report();
    assert_eq!(r.ops, OPS as u64, "the counted drive completed every op");
}
