//! The hash table: bucket chains over a [`MemoryEngine`] plus the slab
//! allocator for chained buckets and non-inline KV data.
//!
//! Memory-access behaviour matches the paper:
//!
//! * inline GET — 1 access (the bucket read);
//! * inline PUT — 2 accesses (bucket read + write);
//! * non-inline GET/PUT — one additional access for the KV data;
//! * secondary-hash false positives and chain walks add accesses, which
//!   is exactly what Figures 6/9/11 plot as utilization grows.

use kvd_mem::MemoryEngine;
use kvd_slab::{SlabAddr, SlabAllocator, SlabClass, SlabConfig, GRANULE};

use crate::hashing::{primary_hash, secondary_hash};
use crate::layout::{Bucket, BUCKET_BYTES, MAX_INLINE_KV};
use crate::swar::{self, RawEntries, RawEntry};

/// Errors a table operation can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashError {
    /// The dynamic region cannot satisfy an allocation (table is full at
    /// this utilization).
    OutOfMemory,
    /// Key exceeds the supported maximum (255 bytes).
    KeyTooLarge,
    /// Value exceeds the largest slab class.
    ValueTooLarge,
}

impl std::fmt::Display for HashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HashError::OutOfMemory => write!(f, "out of dynamic memory"),
            HashError::KeyTooLarge => write!(f, "key larger than 255 bytes"),
            HashError::ValueTooLarge => write!(f, "value exceeds largest slab class"),
        }
    }
}

impl std::error::Error for HashError {}

/// Configuration of a [`HashTable`].
#[derive(Debug, Clone)]
pub struct HashTableConfig {
    /// Total memory (hash index + dynamic region) in bytes.
    pub total_memory: u64,
    /// Fraction of memory used for the hash index (paper: "hash index
    /// ratio", configured at initialization).
    pub hash_index_ratio: f64,
    /// KVs of `key+value` size at or below this are stored inline
    /// (paper: "inline threshold", ≤ 48 B given 10 × 5 B slots).
    pub inline_threshold: usize,
    /// Use the extended slab ladder (up to 64 KiB values) instead of the
    /// paper's 32–512 B.
    pub extended_slabs: bool,
}

impl HashTableConfig {
    /// A config with the given memory, ratio and threshold.
    pub fn new(total_memory: u64, hash_index_ratio: f64, inline_threshold: usize) -> Self {
        HashTableConfig {
            total_memory,
            hash_index_ratio,
            inline_threshold,
            extended_slabs: false,
        }
    }
}

/// Per-operation cost, in the paper's currency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Random memory accesses the operation performed.
    pub accesses: u64,
    /// Whether the key was found (GET/DELETE) or replaced (PUT).
    pub hit: bool,
}

/// Cumulative expiry-plane counters; the embedder folds these into the
/// ledger's `expiry` section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpiryStats {
    /// PUTs that carried a nonzero lifecycle stamp.
    pub ttl_puts: u64,
    /// Successful stamp rewrites (`touch`).
    pub touches: u64,
    /// Dead entries discovered lazily by GET/DELETE/touch probes.
    pub lazy_expired: u64,
    /// Dead entries overwritten in place by a PUT of the same key.
    pub expired_overwrites: u64,
    /// Entries reclaimed (lazily or by the reaper) through the free path.
    pub reaped_entries: u64,
    /// Logical KV bytes those reclaimed entries held.
    pub reaped_bytes: u64,
    /// Bounded reaper passes run.
    pub sweep_passes: u64,
    /// Bucket frames (primary + chained) the reaper scanned.
    pub sweep_buckets: u64,
}

/// What one bounded reaper pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCost {
    /// Random memory accesses the pass performed.
    pub accesses: u64,
    /// Bucket frames scanned.
    pub scanned: u64,
    /// Dead entries reclaimed.
    pub reclaimed: u64,
}

/// The KV-Direct hash table.
///
/// # Examples
///
/// ```
/// use kvd_hash::{HashTable, HashTableConfig};
/// use kvd_mem::FlatMemory;
///
/// let cfg = HashTableConfig::new(1 << 20, 0.5, 24);
/// let mut t = HashTable::new(FlatMemory::new(1 << 20), cfg);
/// t.put(b"answer", b"42").unwrap();
/// assert_eq!(t.get(b"answer").unwrap(), b"42");
/// assert!(t.delete(b"answer"));
/// assert_eq!(t.get(b"answer"), None);
/// ```
pub struct HashTable<M: MemoryEngine> {
    mem: M,
    alloc: SlabAllocator,
    n_buckets: u64,
    dyn_base: u64,
    inline_threshold: usize,
    total_memory: u64,
    count: u64,
    stored_kv_bytes: u64,
    /// Table-owned scratch for slab KV records: sized to the largest
    /// class touched so far, so steady-state reads and writes of KV data
    /// never allocate.
    kv_scratch: Vec<u8>,
    /// Current expiry tick; entries with `0 < stamp <= now_tick` are
    /// dead. Driven by the embedder's deterministic clock.
    now_tick: u32,
    /// Reaper cursor: next primary bucket index to sweep.
    sweep_cursor: u64,
    expiry: ExpiryStats,
}

impl<M: MemoryEngine> HashTable<M> {
    /// Creates a table over `mem` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no buckets, no dynamic
    /// region, threshold beyond [`MAX_INLINE_KV`], or memory smaller than
    /// the configured `total_memory`).
    pub fn new(mem: M, cfg: HashTableConfig) -> Self {
        assert!(
            cfg.total_memory <= mem.capacity(),
            "memory engine too small"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.hash_index_ratio),
            "hash index ratio must be in [0,1]"
        );
        assert!(
            cfg.inline_threshold <= MAX_INLINE_KV,
            "inline threshold beyond bucket capacity"
        );
        let index_bytes = ((cfg.total_memory as f64 * cfg.hash_index_ratio) as u64)
            / BUCKET_BYTES as u64
            * BUCKET_BYTES as u64;
        let n_buckets = index_bytes / BUCKET_BYTES as u64;
        assert!(n_buckets > 0, "hash index ratio leaves no buckets");
        // The dynamic region starts right after the index, granule-aligned.
        let dyn_base = index_bytes.next_multiple_of(GRANULE);
        let dyn_len = (cfg.total_memory - dyn_base) / GRANULE * GRANULE;
        assert!(dyn_len >= GRANULE, "no dynamic region left");
        // 31-bit granule pointers bound the dynamic region (64 GiB).
        assert!(
            dyn_len / GRANULE < (1 << 31),
            "dynamic region exceeds 31-bit pointers"
        );
        let slab_cfg = if cfg.extended_slabs {
            SlabConfig::extended(dyn_base, dyn_len)
        } else {
            SlabConfig::paper(dyn_base, dyn_len)
        };
        HashTable {
            mem,
            alloc: SlabAllocator::new(slab_cfg),
            n_buckets,
            dyn_base,
            inline_threshold: cfg.inline_threshold,
            total_memory: cfg.total_memory,
            count: 0,
            stored_kv_bytes: 0,
            kv_scratch: Vec::new(),
            now_tick: 0,
            sweep_cursor: 0,
            expiry: ExpiryStats::default(),
        }
    }

    /// Advances the expiry clock (monotonic; driven from simulated time
    /// so expiry is deterministic under every engine).
    pub fn set_now_tick(&mut self, tick: u32) {
        debug_assert!(tick >= self.now_tick, "expiry clock must not go back");
        self.now_tick = tick;
    }

    /// The current expiry tick.
    pub fn now_tick(&self) -> u32 {
        self.now_tick
    }

    /// Cumulative expiry-plane counters.
    pub fn expiry_stats(&self) -> ExpiryStats {
        self.expiry
    }

    #[inline]
    fn is_dead(&self, expiry: u32) -> bool {
        expiry != 0 && expiry <= self.now_tick
    }

    /// Whether `expiry` is already dead at the table's current tick
    /// (0 = immortal). Lets embedders pre-screen stamps — e.g. normalize
    /// an already-expired PUT to a delete before it touches any cache.
    #[inline]
    pub fn stamp_dead(&self, expiry: u32) -> bool {
        self.is_dead(expiry)
    }

    /// The underlying memory engine (for access statistics).
    pub fn mem(&self) -> &M {
        &self.mem
    }

    /// Mutable access to the memory engine.
    pub fn mem_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// The slab allocator (for its statistics).
    pub fn allocator(&self) -> &SlabAllocator {
        &self.alloc
    }

    /// Number of KV pairs stored.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns `true` if the table stores nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of hash-index buckets.
    pub fn n_buckets(&self) -> u64 {
        self.n_buckets
    }

    /// Logical KV bytes stored.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_kv_bytes
    }

    /// Memory utilization: stored KV bytes over total memory (the paper's
    /// metric, preferred over load factor).
    pub fn memory_utilization(&self) -> f64 {
        self.stored_kv_bytes as f64 / self.total_memory as f64
    }

    fn bucket_addr(&self, index: u64) -> u64 {
        index * BUCKET_BYTES as u64
    }

    fn chain_to_addr(&self, ptr: u32) -> u64 {
        self.dyn_base + ptr as u64 * GRANULE
    }

    fn addr_to_ptr(&self, addr: u64) -> u32 {
        debug_assert!(addr >= self.dyn_base);
        debug_assert_eq!((addr - self.dyn_base) % GRANULE, 0);
        ((addr - self.dyn_base) / GRANULE) as u32
    }

    /// Reads a bucket into a caller-provided fixed 64-byte buffer — the
    /// probing paths walk it raw (no `Bucket` decode, no allocation).
    fn read_bucket_raw(&mut self, addr: u64, bytes: &mut [u8; BUCKET_BYTES], cost: &mut u64) {
        self.mem.read(addr, bytes);
        *cost += 1;
    }

    fn write_bucket(&mut self, addr: u64, bucket: &Bucket, cost: &mut u64) {
        self.mem.write(addr, &bucket.encode());
        *cost += 1;
    }

    /// Reads a slab KV record into the table-owned scratch buffer,
    /// returning its key and value lengths.
    fn read_kv_scratch(&mut self, ptr: u32, class: SlabClass, cost: &mut u64) -> (usize, usize) {
        let addr = self.chain_to_addr(ptr);
        self.kv_scratch.clear();
        self.kv_scratch.resize(class.size() as usize, 0);
        self.mem.read(addr, &mut self.kv_scratch);
        *cost += 1;
        let klen = self.kv_scratch[0] as usize;
        let vlen = u16::from_le_bytes([self.kv_scratch[1], self.kv_scratch[2]]) as usize;
        (klen, vlen)
    }

    fn scratch_key(&self, klen: usize) -> &[u8] {
        &self.kv_scratch[KV_HEADER..KV_HEADER + klen]
    }

    fn scratch_value(&self, klen: usize, vlen: usize) -> &[u8] {
        &self.kv_scratch[KV_HEADER + klen..KV_HEADER + klen + vlen]
    }

    fn scratch_expiry(&self) -> u32 {
        u32::from_le_bytes([
            self.kv_scratch[3],
            self.kv_scratch[4],
            self.kv_scratch[5],
            self.kv_scratch[6],
        ])
    }

    fn write_kv_data(
        &mut self,
        addr: u64,
        class: SlabClass,
        key: &[u8],
        value: &[u8],
        expiry: u32,
        cost: &mut u64,
    ) {
        // Zero-filled up to the class size so slab padding bytes stay
        // deterministic (the ledger oracle sees identical memory images).
        self.kv_scratch.clear();
        self.kv_scratch.resize(class.size() as usize, 0);
        encode_kv(&mut self.kv_scratch, key, value, expiry);
        self.mem.write(addr, &self.kv_scratch);
        *cost += 1;
    }

    /// Reclaims the dead entry starting at `slot` of the bucket at
    /// `addr` (raw image `bytes`) through the normal free path. Charges
    /// the reaped counters; the caller charges `lazy_expired` when the
    /// discovery was a foreground probe.
    fn reclaim_slot(
        &mut self,
        addr: u64,
        bytes: &[u8; BUCKET_BYTES],
        slot: usize,
        kv_len: usize,
        slab: Option<(u32, SlabClass)>,
        cost: &mut u64,
    ) {
        let mut bucket = Bucket::decode(bytes);
        bucket.remove(slot);
        self.write_bucket(addr, &bucket, cost);
        if let Some((ptr, class)) = slab {
            self.alloc.free(SlabAddr {
                addr: self.chain_to_addr(ptr),
                class,
            });
        }
        self.count -= 1;
        self.stored_kv_bytes -= kv_len as u64;
        self.expiry.reaped_entries += 1;
        self.expiry.reaped_bytes += kv_len as u64;
    }

    /// Looks up `key` into a caller-owned buffer, with the operation
    /// cost. On a hit, `out` is cleared and filled with the value; on a
    /// miss it is left untouched. Steady state performs zero heap
    /// allocations: the bucket walk is raw ([`RawEntries`]) and slab
    /// records land in the table's scratch buffer. An expired hit is a
    /// miss that reclaims the entry in place (bucket write-back + slab
    /// free) — the lazy half of the expiry plane.
    pub fn get_into_with_cost(&mut self, key: &[u8], out: &mut Vec<u8>) -> (bool, OpCost) {
        let mut cost = 0u64;
        let sec = secondary_hash(key);
        let mut addr = self.bucket_addr(primary_hash(key) % self.n_buckets);
        let mut bytes = [0u8; BUCKET_BYTES];
        loop {
            self.read_bucket_raw(addr, &mut bytes, &mut cost);
            // All ten tag compares at once; entries below test their bit.
            let secmask = swar::sec_match_mask(&bytes, sec);
            for e in RawEntries::new(&bytes) {
                match e {
                    RawEntry::Inline {
                        slot,
                        key: k,
                        value: v,
                        expiry,
                        ..
                    } => {
                        if k == key {
                            if self.is_dead(expiry) {
                                let kv_len = k.len() + v.len();
                                self.expiry.lazy_expired += 1;
                                self.reclaim_slot(addr, &bytes, slot, kv_len, None, &mut cost);
                                return (
                                    false,
                                    OpCost {
                                        accesses: cost,
                                        hit: false,
                                    },
                                );
                            }
                            out.clear();
                            out.extend_from_slice(v);
                            return (
                                true,
                                OpCost {
                                    accesses: cost,
                                    hit: true,
                                },
                            );
                        }
                    }
                    RawEntry::Pointer { slot, raw, class } => {
                        if secmask & (1 << slot) != 0 {
                            // The key is always checked for correctness
                            // (secondary hash can false-positive).
                            let ptr = swar::slot_ptr(raw);
                            let (klen, vlen) = self.read_kv_scratch(ptr, class, &mut cost);
                            if self.scratch_key(klen) == key {
                                if self.is_dead(self.scratch_expiry()) {
                                    self.expiry.lazy_expired += 1;
                                    self.reclaim_slot(
                                        addr,
                                        &bytes,
                                        slot,
                                        klen + vlen,
                                        Some((ptr, class)),
                                        &mut cost,
                                    );
                                    return (
                                        false,
                                        OpCost {
                                            accesses: cost,
                                            hit: false,
                                        },
                                    );
                                }
                                out.clear();
                                out.extend_from_slice(self.scratch_value(klen, vlen));
                                return (
                                    true,
                                    OpCost {
                                        accesses: cost,
                                        hit: true,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            match swar::chain_of(&bytes) {
                Some(p) => addr = self.chain_to_addr(p),
                None => {
                    return (
                        false,
                        OpCost {
                            accesses: cost,
                            hit: false,
                        },
                    )
                }
            }
        }
    }

    /// Looks up `key`, returning its value, with the operation cost.
    pub fn get_with_cost(&mut self, key: &[u8]) -> (Option<Vec<u8>>, OpCost) {
        let mut out = Vec::new();
        let (hit, cost) = self.get_into_with_cost(key, &mut out);
        (hit.then_some(out), cost)
    }

    /// Looks up `key` into a caller-owned buffer; returns the value
    /// length on a hit.
    pub fn get_into(&mut self, key: &[u8], out: &mut Vec<u8>) -> Option<usize> {
        let (hit, _) = self.get_into_with_cost(key, out);
        hit.then_some(out.len())
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.get_with_cost(key).0
    }

    /// Inserts or replaces `key → value`, with the operation cost.
    ///
    /// Returns `hit = true` when an existing key was replaced.
    pub fn put_with_cost(&mut self, key: &[u8], value: &[u8]) -> Result<OpCost, HashError> {
        self.put_with_cost_ttl(key, value, 0)
    }

    /// Inserts or replaces `key → value` with a lifecycle stamp
    /// (`expiry_tick` of 0 = immortal), with the operation cost.
    ///
    /// Returns `hit = true` when a *live* existing key was replaced;
    /// overwriting a dead entry is physically a replacement but logically
    /// an insert, so it reports `hit = false` (and charges
    /// `expired_overwrites`).
    pub fn put_with_cost_ttl(
        &mut self,
        key: &[u8],
        value: &[u8],
        expiry_tick: u32,
    ) -> Result<OpCost, HashError> {
        if key.is_empty() || key.len() > u8::MAX as usize {
            return Err(HashError::KeyTooLarge);
        }
        if expiry_tick != 0 {
            self.expiry.ttl_puts += 1;
        }
        let mut cost = 0u64;
        let kv_len = key.len() + value.len();
        let inline_ok = kv_len <= self.inline_threshold && value.len() <= u8::MAX as usize;
        let sec = secondary_hash(key);
        let first_addr = self.bucket_addr(primary_hash(key) % self.n_buckets);

        // Phase 1: walk the chain raw, looking for the key and
        // remembering where a new entry could go. Buckets stay in their
        // 64-byte wire form; a `Bucket` is decoded only for the one
        // bucket that gets mutated.
        enum Found {
            Inline {
                slot: usize,
                old_len: usize,
                was_dead: bool,
            },
            Pointer {
                slot: usize,
                ptr: u32,
                class: SlabClass,
                old_len: usize,
                was_dead: bool,
            },
        }
        let mut addr = first_addr;
        let mut candidate: Option<(u64, [u8; BUCKET_BYTES])> = None;
        let mut bytes = [0u8; BUCKET_BYTES];
        let (last_addr, last_raw) = loop {
            self.read_bucket_raw(addr, &mut bytes, &mut cost);
            let secmask = swar::sec_match_mask(&bytes, sec);
            let mut found = None;
            for e in RawEntries::new(&bytes) {
                match e {
                    RawEntry::Inline {
                        slot,
                        key: k,
                        value: old,
                        expiry,
                        ..
                    } => {
                        if k == key {
                            found = Some(Found::Inline {
                                slot,
                                old_len: k.len() + old.len(),
                                was_dead: self.is_dead(expiry),
                            });
                            break;
                        }
                    }
                    RawEntry::Pointer { slot, raw, class } => {
                        if secmask & (1 << slot) != 0 {
                            let ptr = swar::slot_ptr(raw);
                            let (klen, vlen) = self.read_kv_scratch(ptr, class, &mut cost);
                            if self.scratch_key(klen) == key {
                                found = Some(Found::Pointer {
                                    slot,
                                    ptr,
                                    class,
                                    old_len: klen + vlen,
                                    was_dead: self.is_dead(self.scratch_expiry()),
                                });
                                break;
                            }
                        }
                    }
                }
            }
            match found {
                Some(Found::Inline {
                    slot,
                    old_len,
                    was_dead,
                }) => {
                    let bucket = Bucket::decode(&bytes);
                    return self.replace_inline(
                        addr,
                        bucket,
                        slot,
                        key,
                        value,
                        inline_ok,
                        old_len,
                        expiry_tick,
                        was_dead,
                        cost,
                    );
                }
                Some(Found::Pointer {
                    slot,
                    ptr,
                    class,
                    old_len,
                    was_dead,
                }) => {
                    let bucket = Bucket::decode(&bytes);
                    return self.replace_pointer(
                        addr,
                        bucket,
                        slot,
                        ptr,
                        class,
                        key,
                        value,
                        old_len,
                        expiry_tick,
                        was_dead,
                        cost,
                    );
                }
                None => {}
            }
            let free = swar::free_slots_of(&bytes);
            let fits = if inline_ok {
                free >= Bucket::inline_slots_needed(kv_len)
            } else {
                free >= 1
            };
            if fits && candidate.is_none() {
                candidate = Some((addr, bytes));
            }
            match swar::chain_of(&bytes) {
                Some(p) => addr = self.chain_to_addr(p),
                None => break (addr, bytes),
            }
        };

        // Phase 2: insert a new entry.
        let (target_addr, mut target) = match candidate {
            Some((addr, raw)) => (addr, Bucket::decode(&raw)),
            None => {
                // Extend the chain with a fresh 64B bucket from the slab
                // allocator.
                let slab = self
                    .alloc
                    .alloc(BUCKET_BYTES as u64)
                    .ok_or(HashError::OutOfMemory)?;
                debug_assert_eq!(slab.class.size(), BUCKET_BYTES as u64);
                let mut last_bucket = Bucket::decode(&last_raw);
                last_bucket.set_chain(Some(self.addr_to_ptr(slab.addr)));
                self.write_bucket(last_addr, &last_bucket, &mut cost);
                (slab.addr, Bucket::empty())
            }
        };
        if inline_ok {
            target
                .insert_inline_expiring(key, value, expiry_tick)
                .expect("candidate bucket had room");
            self.write_bucket(target_addr, &target, &mut cost);
        } else {
            let slab = self.alloc_kv(key, value)?;
            self.write_kv_data(slab.addr, slab.class, key, value, expiry_tick, &mut cost);
            target
                .insert_pointer(self.addr_to_ptr(slab.addr), sec, slab.class)
                .expect("candidate bucket had a free slot");
            self.write_bucket(target_addr, &target, &mut cost);
        }
        self.count += 1;
        self.stored_kv_bytes += kv_len as u64;
        Ok(OpCost {
            accesses: cost,
            hit: false,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn replace_inline(
        &mut self,
        addr: u64,
        mut bucket: Bucket,
        slot: usize,
        key: &[u8],
        value: &[u8],
        inline_ok: bool,
        old_len: usize,
        expiry_tick: u32,
        was_dead: bool,
        mut cost: u64,
    ) -> Result<OpCost, HashError> {
        bucket.remove(slot);
        if inline_ok
            && bucket
                .insert_inline_expiring(key, value, expiry_tick)
                .is_some()
        {
            self.write_bucket(addr, &bucket, &mut cost);
        } else {
            // Grown beyond inline: move to the slab area. If the bucket
            // has no free slot after removing the inline run (it always
            // does: the run freed ≥1 slot), insert the pointer here.
            let slab = self.alloc_kv(key, value)?;
            self.write_kv_data(slab.addr, slab.class, key, value, expiry_tick, &mut cost);
            bucket
                .insert_pointer(self.addr_to_ptr(slab.addr), secondary_hash(key), slab.class)
                .expect("removing an inline run frees at least one slot");
            self.write_bucket(addr, &bucket, &mut cost);
        }
        self.stored_kv_bytes =
            self.stored_kv_bytes - old_len as u64 + (key.len() + value.len()) as u64;
        Ok(self.finish_overwrite(was_dead, cost))
    }

    #[allow(clippy::too_many_arguments)]
    fn replace_pointer(
        &mut self,
        addr: u64,
        mut bucket: Bucket,
        slot: usize,
        ptr: u32,
        class: SlabClass,
        key: &[u8],
        value: &[u8],
        old_len: usize,
        expiry_tick: u32,
        was_dead: bool,
        mut cost: u64,
    ) -> Result<OpCost, HashError> {
        let kv_len = key.len() + value.len();
        let inline_ok = kv_len <= self.inline_threshold && value.len() <= u8::MAX as usize;
        let mut slot = slot;
        if inline_ok {
            // Shrunk into inline range: prefer the bucket.
            bucket.remove(slot);
            if bucket
                .insert_inline_expiring(key, value, expiry_tick)
                .is_some()
            {
                self.write_bucket(addr, &bucket, &mut cost);
                self.alloc.free(SlabAddr {
                    addr: self.chain_to_addr(ptr),
                    class,
                });
                self.finish_replace(old_len, kv_len);
                return Ok(self.finish_overwrite(was_dead, cost));
            }
            // No room inline; fall through to the slab path. The pointer
            // may land in a different slot after reinsertion.
            slot = bucket
                .insert_pointer(ptr, secondary_hash(key), class)
                .expect("slot was just freed");
        }
        if fits_class(class, key, value) {
            // Same slab class: overwrite the data in place; the bucket is
            // untouched (1 read + 1 write total for inline-size KVs).
            let data_addr = self.chain_to_addr(ptr);
            self.write_kv_data(data_addr, class, key, value, expiry_tick, &mut cost);
        } else {
            let slab = self.alloc_kv(key, value)?;
            self.write_kv_data(slab.addr, slab.class, key, value, expiry_tick, &mut cost);
            bucket.remove(slot);
            bucket
                .insert_pointer(self.addr_to_ptr(slab.addr), secondary_hash(key), slab.class)
                .expect("slot was just freed");
            self.write_bucket(addr, &bucket, &mut cost);
            self.alloc.free(SlabAddr {
                addr: self.chain_to_addr(ptr),
                class,
            });
        }
        self.finish_replace(old_len, kv_len);
        Ok(self.finish_overwrite(was_dead, cost))
    }

    /// A physical overwrite of a dead entry reports `hit = false`: the
    /// caller observed an insert, not a replacement.
    fn finish_overwrite(&mut self, was_dead: bool, cost: u64) -> OpCost {
        if was_dead {
            self.expiry.expired_overwrites += 1;
        }
        OpCost {
            accesses: cost,
            hit: !was_dead,
        }
    }

    fn finish_replace(&mut self, old_len: usize, new_len: usize) {
        self.stored_kv_bytes = self.stored_kv_bytes - old_len as u64 + new_len as u64;
    }

    fn alloc_kv(&mut self, key: &[u8], value: &[u8]) -> Result<SlabAddr, HashError> {
        let need = kv_data_len(key, value);
        match self.alloc.alloc(need) {
            Some(s) => Ok(s),
            None => {
                // Distinguish "value can never fit" from "out of memory".
                let fits_ladder = kvd_slab::SlabClass::for_size(need)
                    .is_some_and(|c| c <= self.alloc.config().max_class);
                if fits_ladder {
                    Err(HashError::OutOfMemory)
                } else {
                    Err(HashError::ValueTooLarge)
                }
            }
        }
    }

    /// Inserts or replaces `key → value`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<bool, HashError> {
        self.put_with_cost(key, value).map(|c| c.hit)
    }

    /// Deletes `key`, returning whether it existed, with the cost. A dead
    /// entry is reclaimed but reported as "did not exist".
    pub fn delete_with_cost(&mut self, key: &[u8]) -> (bool, OpCost) {
        let mut cost = 0u64;
        let sec = secondary_hash(key);
        let mut addr = self.bucket_addr(primary_hash(key) % self.n_buckets);
        let mut bytes = [0u8; BUCKET_BYTES];
        loop {
            self.read_bucket_raw(addr, &mut bytes, &mut cost);
            let secmask = swar::sec_match_mask(&bytes, sec);
            // slot, slab backing to free (if any), logical KV bytes, dead.
            type Found = (usize, Option<(u32, SlabClass)>, usize, bool);
            let mut found: Option<Found> = None;
            for e in RawEntries::new(&bytes) {
                match e {
                    RawEntry::Inline {
                        slot,
                        key: k,
                        value: v,
                        expiry,
                        ..
                    } => {
                        if k == key {
                            found = Some((slot, None, k.len() + v.len(), self.is_dead(expiry)));
                            break;
                        }
                    }
                    RawEntry::Pointer { slot, raw, class } => {
                        if secmask & (1 << slot) != 0 {
                            let ptr = swar::slot_ptr(raw);
                            let (klen, vlen) = self.read_kv_scratch(ptr, class, &mut cost);
                            if self.scratch_key(klen) == key {
                                found = Some((
                                    slot,
                                    Some((ptr, class)),
                                    klen + vlen,
                                    self.is_dead(self.scratch_expiry()),
                                ));
                                break;
                            }
                        }
                    }
                }
            }
            if let Some((slot, slab, kv_len, dead)) = found {
                if dead {
                    self.expiry.lazy_expired += 1;
                    self.reclaim_slot(addr, &bytes, slot, kv_len, slab, &mut cost);
                    return (
                        false,
                        OpCost {
                            accesses: cost,
                            hit: false,
                        },
                    );
                }
                let mut bucket = Bucket::decode(&bytes);
                bucket.remove(slot);
                self.write_bucket(addr, &bucket, &mut cost);
                if let Some((ptr, class)) = slab {
                    self.alloc.free(SlabAddr {
                        addr: self.chain_to_addr(ptr),
                        class,
                    });
                }
                self.count -= 1;
                self.stored_kv_bytes -= kv_len as u64;
                return (
                    true,
                    OpCost {
                        accesses: cost,
                        hit: true,
                    },
                );
            }
            match swar::chain_of(&bytes) {
                Some(p) => addr = self.chain_to_addr(p),
                None => {
                    return (
                        false,
                        OpCost {
                            accesses: cost,
                            hit: false,
                        },
                    )
                }
            }
        }
    }

    /// Deletes `key`, returning whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.delete_with_cost(key).0
    }

    /// Inserts or replaces `key → value` with a lifecycle stamp.
    pub fn put_ttl(
        &mut self,
        key: &[u8],
        value: &[u8],
        expiry_tick: u32,
    ) -> Result<bool, HashError> {
        self.put_with_cost_ttl(key, value, expiry_tick)
            .map(|c| c.hit)
    }

    /// Rewrites the lifecycle stamp of a live `key` (memcache `touch`),
    /// with the cost. Returns `hit = false` when the key is absent or
    /// dead (a dead entry is reclaimed on the way out).
    pub fn touch_with_cost(&mut self, key: &[u8], expiry_tick: u32) -> (bool, OpCost) {
        let mut cost = 0u64;
        let sec = secondary_hash(key);
        let mut addr = self.bucket_addr(primary_hash(key) % self.n_buckets);
        let mut bytes = [0u8; BUCKET_BYTES];
        loop {
            self.read_bucket_raw(addr, &mut bytes, &mut cost);
            let secmask = swar::sec_match_mask(&bytes, sec);
            enum Hit {
                // Slot index of the inline run start; stamp patched in the
                // raw image and written back whole.
                Inline {
                    slot: usize,
                    kv_len: usize,
                    dead: bool,
                },
                // Slab record: stamp patched in scratch and rewritten.
                Pointer {
                    slot: usize,
                    ptr: u32,
                    class: SlabClass,
                    kv_len: usize,
                    dead: bool,
                },
            }
            let mut hit: Option<Hit> = None;
            for e in RawEntries::new(&bytes) {
                match e {
                    RawEntry::Inline {
                        slot,
                        key: k,
                        value: v,
                        expiry,
                        ..
                    } => {
                        if k == key {
                            hit = Some(Hit::Inline {
                                slot,
                                kv_len: k.len() + v.len(),
                                dead: self.is_dead(expiry),
                            });
                            break;
                        }
                    }
                    RawEntry::Pointer { slot, raw, class } => {
                        if secmask & (1 << slot) != 0 {
                            let ptr = swar::slot_ptr(raw);
                            let (klen, vlen) = self.read_kv_scratch(ptr, class, &mut cost);
                            if self.scratch_key(klen) == key {
                                hit = Some(Hit::Pointer {
                                    slot,
                                    ptr,
                                    class,
                                    kv_len: klen + vlen,
                                    dead: self.is_dead(self.scratch_expiry()),
                                });
                                break;
                            }
                        }
                    }
                }
            }
            match hit {
                Some(Hit::Inline { slot, kv_len, dead }) => {
                    if dead {
                        self.expiry.lazy_expired += 1;
                        self.reclaim_slot(addr, &bytes, slot, kv_len, None, &mut cost);
                        return (
                            false,
                            OpCost {
                                accesses: cost,
                                hit: false,
                            },
                        );
                    }
                    // Patch the stamp in the raw image: the run header's
                    // expiry bytes live at offsets 2..6 of the run.
                    let mut patched = bytes;
                    let base = slot * crate::layout::SLOT_BYTES + 2;
                    patched[base..base + 4].copy_from_slice(&expiry_tick.to_le_bytes());
                    self.mem.write(addr, &patched);
                    cost += 1;
                    self.expiry.touches += 1;
                    return (
                        true,
                        OpCost {
                            accesses: cost,
                            hit: true,
                        },
                    );
                }
                Some(Hit::Pointer {
                    slot,
                    ptr,
                    class,
                    kv_len,
                    dead,
                }) => {
                    if dead {
                        self.expiry.lazy_expired += 1;
                        self.reclaim_slot(
                            addr,
                            &bytes,
                            slot,
                            kv_len,
                            Some((ptr, class)),
                            &mut cost,
                        );
                        return (
                            false,
                            OpCost {
                                accesses: cost,
                                hit: false,
                            },
                        );
                    }
                    // Patch the stamp in scratch (still holds this record)
                    // and rewrite the slab record in place.
                    self.kv_scratch[3..7].copy_from_slice(&expiry_tick.to_le_bytes());
                    let data_addr = self.chain_to_addr(ptr);
                    self.mem.write(data_addr, &self.kv_scratch);
                    cost += 1;
                    self.expiry.touches += 1;
                    return (
                        true,
                        OpCost {
                            accesses: cost,
                            hit: true,
                        },
                    );
                }
                None => {}
            }
            match swar::chain_of(&bytes) {
                Some(p) => addr = self.chain_to_addr(p),
                None => {
                    return (
                        false,
                        OpCost {
                            accesses: cost,
                            hit: false,
                        },
                    )
                }
            }
        }
    }

    /// Rewrites the lifecycle stamp of a live `key`.
    pub fn touch(&mut self, key: &[u8], expiry_tick: u32) -> bool {
        self.touch_with_cost(key, expiry_tick).0
    }

    /// One bounded reaper pass: scans up to `max_buckets` bucket frames
    /// (primary buckets and their chained frames each count one) starting
    /// from a persistent cursor, reclaiming every dead entry found
    /// through the normal free path. Deterministic: same table state +
    /// same clock ⇒ same sweep.
    pub fn sweep_expired(&mut self, max_buckets: u64) -> SweepCost {
        let mut out = SweepCost::default();
        if max_buckets == 0 || self.n_buckets == 0 {
            return out;
        }
        self.expiry.sweep_passes += 1;
        let mut bytes = [0u8; BUCKET_BYTES];
        let mut budget = max_buckets;
        while budget > 0 {
            let primary = self.sweep_cursor % self.n_buckets;
            self.sweep_cursor = (self.sweep_cursor + 1) % self.n_buckets;
            let mut addr = self.bucket_addr(primary);
            // Walk the whole chain of this primary bucket, spending one
            // budget unit per frame; a chain longer than the remaining
            // budget is still finished (bounded by chain length).
            loop {
                self.read_bucket_raw(addr, &mut bytes, &mut out.accesses);
                out.scanned += 1;
                self.expiry.sweep_buckets += 1;
                budget = budget.saturating_sub(1);
                out.reclaimed += self.sweep_frame(addr, &mut bytes, &mut out.accesses);
                match swar::chain_of(&bytes) {
                    Some(p) => addr = self.chain_to_addr(p),
                    None => break,
                }
            }
            if budget == 0 {
                break;
            }
        }
        out
    }

    /// Reclaims every dead entry in one 64-byte frame; returns how many.
    /// Decodes the frame at most once and writes it back at most once.
    fn sweep_frame(&mut self, addr: u64, bytes: &mut [u8; BUCKET_BYTES], cost: &mut u64) -> u64 {
        use crate::layout::SLOTS_PER_BUCKET;
        // A dead entry staged for reclaim: (slot, bytes, slab handle).
        type DeadSlot = (usize, usize, Option<(u32, SlabClass)>);
        // Collect dead slots first (fixed-size, no allocation), then
        // mutate — at most 10 entries per frame.
        let mut dead: [DeadSlot; SLOTS_PER_BUCKET] = [(0, 0, None); SLOTS_PER_BUCKET];
        let mut n_dead = 0usize;
        // First pass: inline entries are decodable from the raw frame.
        for e in RawEntries::new(bytes) {
            if let RawEntry::Inline {
                slot,
                key: k,
                value: v,
                expiry,
                ..
            } = e
            {
                if self.is_dead(expiry) {
                    dead[n_dead] = (slot, k.len() + v.len(), None);
                    n_dead += 1;
                }
            }
        }
        // Second pass: pointer entries need the slab record for the stamp
        // (one extra access per pointer slot, the reaper's price).
        let mut ptr_slots: [(usize, u32, SlabClass); SLOTS_PER_BUCKET] =
            [(0, 0, SlabClass::MIN); SLOTS_PER_BUCKET];
        let mut n_ptr = 0usize;
        for e in RawEntries::new(bytes) {
            if let RawEntry::Pointer { slot, raw, class } = e {
                ptr_slots[n_ptr] = (slot, swar::slot_ptr(raw), class);
                n_ptr += 1;
            }
        }
        for &(slot, ptr, class) in &ptr_slots[..n_ptr] {
            let (klen, vlen) = self.read_kv_scratch(ptr, class, cost);
            if self.is_dead(self.scratch_expiry()) {
                dead[n_dead] = (slot, klen + vlen, Some((ptr, class)));
                n_dead += 1;
            }
        }
        if n_dead == 0 {
            return 0;
        }
        // `Bucket::remove` only clears bits — it never shifts other
        // entries — so removal order is irrelevant.
        let mut bucket = Bucket::decode(bytes);
        for &(slot, kv_len, slab) in &dead[..n_dead] {
            bucket.remove(slot);
            if let Some((ptr, class)) = slab {
                self.alloc.free(SlabAddr {
                    addr: self.chain_to_addr(ptr),
                    class,
                });
            }
            self.count -= 1;
            self.stored_kv_bytes -= kv_len as u64;
            self.expiry.reaped_entries += 1;
            self.expiry.reaped_bytes += kv_len as u64;
        }
        let encoded = bucket.encode();
        self.mem.write(addr, &encoded);
        *cost += 1;
        // Keep the caller's view of the frame current (chain pointer is
        // preserved by remove, but the slot image changed).
        *bytes = encoded;
        n_dead as u64
    }
}

/// Slab KV record header: 1-byte key length + 2-byte value length +
/// 4-byte expiry stamp (little-endian tick; 0 = immortal).
pub const KV_HEADER: usize = 7;

/// Slab bytes needed for a non-inline KV: header + payloads.
fn kv_data_len(key: &[u8], value: &[u8]) -> u64 {
    KV_HEADER as u64 + key.len() as u64 + value.len() as u64
}

fn fits_class(class: SlabClass, key: &[u8], value: &[u8]) -> bool {
    kv_data_len(key, value) <= class.size()
}

fn encode_kv(buf: &mut [u8], key: &[u8], value: &[u8], expiry: u32) {
    buf[0] = key.len() as u8;
    buf[1..3].copy_from_slice(&(value.len() as u16).to_le_bytes());
    buf[3..7].copy_from_slice(&expiry.to_le_bytes());
    buf[KV_HEADER..KV_HEADER + key.len()].copy_from_slice(key);
    buf[KV_HEADER + key.len()..KV_HEADER + key.len() + value.len()].copy_from_slice(value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_mem::FlatMemory;

    fn table(mem_bytes: u64, ratio: f64, inline: usize) -> HashTable<FlatMemory> {
        HashTable::new(
            FlatMemory::new(mem_bytes),
            HashTableConfig::new(mem_bytes, ratio, inline),
        )
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut t = table(1 << 20, 0.5, 24);
        assert!(!t.put(b"hello", b"world").unwrap());
        assert_eq!(t.get(b"hello").unwrap(), b"world");
        assert_eq!(t.len(), 1);
        assert!(t.put(b"hello", b"earth").unwrap(), "replace reports hit");
        assert_eq!(t.get(b"hello").unwrap(), b"earth");
        assert_eq!(t.len(), 1);
        assert!(t.delete(b"hello"));
        assert_eq!(t.get(b"hello"), None);
        assert!(!t.delete(b"hello"));
        assert_eq!(t.len(), 0);
        assert_eq!(t.stored_bytes(), 0);
    }

    #[test]
    fn inline_get_costs_one_access() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put(b"k1", b"v1").unwrap();
        let (v, cost) = t.get_with_cost(b"k1");
        assert_eq!(v.unwrap(), b"v1");
        assert_eq!(cost.accesses, 1, "inline GET = 1 bucket read");
    }

    #[test]
    fn inline_put_costs_two_accesses() {
        let mut t = table(1 << 20, 0.5, 24);
        let cost = t.put_with_cost(b"k1", b"v1").unwrap();
        assert_eq!(cost.accesses, 2, "inline PUT = bucket read + write");
        // Replacement too.
        let cost = t.put_with_cost(b"k1", b"v2").unwrap();
        assert_eq!(cost.accesses, 2);
    }

    #[test]
    fn noninline_adds_one_access() {
        let mut t = table(1 << 20, 0.5, 24);
        let value = vec![7u8; 100]; // beyond threshold
        let cost = t.put_with_cost(b"key", &value).unwrap();
        assert_eq!(cost.accesses, 3, "read bucket + write data + write bucket");
        let (v, cost) = t.get_with_cost(b"key");
        assert_eq!(v.unwrap(), value);
        assert_eq!(cost.accesses, 2, "read bucket + read data");
        // In-place same-class update: read bucket + read old data (key
        // check) + write data.
        let cost = t.put_with_cost(b"key", &[8u8; 101]).unwrap();
        assert_eq!(cost.accesses, 3);
        assert_eq!(t.get(b"key").unwrap(), vec![8u8; 101]);
    }

    #[test]
    fn many_keys_roundtrip() {
        let mut t = table(1 << 22, 0.5, 24);
        let n = 2000u32;
        for i in 0..n {
            let k = format!("key-{i}");
            let v = format!("value-{}", i * 3);
            t.put(k.as_bytes(), v.as_bytes()).unwrap();
        }
        assert_eq!(t.len(), n as u64);
        for i in 0..n {
            let k = format!("key-{i}");
            assert_eq!(
                t.get(k.as_bytes()).unwrap(),
                format!("value-{}", i * 3).as_bytes()
            );
        }
        // Delete half, verify the rest.
        for i in (0..n).step_by(2) {
            assert!(t.delete(format!("key-{i}").as_bytes()));
        }
        for i in 0..n {
            let present = t.get(format!("key-{i}").as_bytes()).is_some();
            assert_eq!(present, i % 2 == 1);
        }
    }

    #[test]
    fn values_of_every_size_class() {
        let mut t = table(1 << 22, 0.25, 24);
        // 497 is the largest value fitting the paper's 512B slab class
        // beside an 8-byte key and the 7-byte data header.
        for size in [0usize, 1, 24, 25, 48, 49, 64, 100, 255, 256, 400, 497] {
            let key = format!("size-{size}");
            let value = vec![size as u8; size];
            t.put(key.as_bytes(), &value).unwrap();
            assert_eq!(t.get(key.as_bytes()).unwrap(), value, "size {size}");
        }
    }

    #[test]
    fn value_too_large_rejected() {
        let mut t = table(1 << 20, 0.5, 24);
        let huge = vec![0u8; 600]; // paper ladder tops at 512
        assert_eq!(t.put(b"k", &huge), Err(HashError::ValueTooLarge));
        // Extended ladder accepts it.
        let mut t = HashTable::new(
            FlatMemory::new(1 << 20),
            HashTableConfig {
                extended_slabs: true,
                ..HashTableConfig::new(1 << 20, 0.5, 24)
            },
        );
        t.put(b"k", &huge).unwrap();
        assert_eq!(t.get(b"k").unwrap(), huge);
    }

    #[test]
    fn collision_chains_work() {
        // Tiny index (1 bucket) forces every key into one chain.
        let mut t = HashTable::new(
            FlatMemory::new(1 << 16),
            HashTableConfig::new(1 << 16, 64.0 / (1 << 16) as f64, 24),
        );
        assert_eq!(t.n_buckets(), 1);
        for i in 0..100u32 {
            t.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(t.get(format!("k{i}").as_bytes()).unwrap(), b"v");
        }
        // Chain walks cost more than one access.
        let (_, cost) = t.get_with_cost(b"k99");
        assert!(cost.accesses >= 1);
        // Deleting everything keeps the chain walkable.
        for i in 0..100u32 {
            assert!(t.delete(format!("k{i}").as_bytes()), "k{i}");
        }
        assert!(t.is_empty());
    }

    #[test]
    fn shrink_to_inline_reclaims_slab() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put(b"k", &[1u8; 200]).unwrap();
        let allocs_before = t.allocator().stats().frees;
        t.put(b"k", b"small").unwrap();
        assert_eq!(t.get(b"k").unwrap(), b"small");
        assert!(t.allocator().stats().frees > allocs_before, "slab freed");
        let (_, cost) = t.get_with_cost(b"k");
        assert_eq!(cost.accesses, 1, "now served inline");
    }

    #[test]
    fn grow_from_inline_to_slab() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put(b"k", b"small").unwrap();
        t.put(b"k", &vec![2u8; 300]).unwrap();
        assert_eq!(t.get(b"k").unwrap(), vec![2u8; 300]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put(b"abc", b"defg").unwrap(); // 7 bytes
        assert_eq!(t.stored_bytes(), 7);
        t.put(b"abc", b"de").unwrap(); // 5 bytes
        assert_eq!(t.stored_bytes(), 5);
        t.delete(b"abc");
        assert_eq!(t.stored_bytes(), 0);
        assert_eq!(t.memory_utilization(), 0.0);
    }

    #[test]
    fn empty_key_rejected() {
        let mut t = table(1 << 20, 0.5, 24);
        assert_eq!(t.put(b"", b"v"), Err(HashError::KeyTooLarge));
    }

    #[test]
    fn fill_until_oom_then_recover() {
        let mut t = table(1 << 14, 0.25, 24);
        let mut inserted = Vec::new();
        let mut i = 0u32;
        loop {
            let k = format!("key-{i}");
            match t.put(k.as_bytes(), &[0u8; 40]) {
                Ok(_) => inserted.push(k),
                Err(HashError::OutOfMemory) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            i += 1;
            assert!(i < 100_000, "table never filled");
        }
        assert!(!inserted.is_empty());
        // All inserted keys still readable at capacity.
        for k in &inserted {
            assert!(t.get(k.as_bytes()).is_some(), "{k} lost near OOM");
        }
        // Delete everything; memory is reusable.
        for k in &inserted {
            assert!(t.delete(k.as_bytes()));
        }
        assert!(t.put(b"after", &[0u8; 40]).is_ok());
    }

    #[test]
    fn zero_length_value_inline() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put(b"empty", b"").unwrap();
        assert_eq!(t.get(b"empty").unwrap(), b"");
        assert!(t.delete(b"empty"));
    }

    #[test]
    fn lazy_expiry_inline_get_reclaims() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"k", b"v", 10).unwrap();
        assert_eq!(t.get(b"k").unwrap(), b"v", "live before the deadline");
        t.set_now_tick(9);
        assert_eq!(t.get(b"k").unwrap(), b"v", "live at tick 9 < 10");
        t.set_now_tick(10);
        assert_eq!(t.get(b"k"), None, "dead once now >= stamp");
        assert_eq!(t.len(), 0, "lazy hit reclaimed the slot");
        assert_eq!(t.stored_bytes(), 0);
        let s = t.expiry_stats();
        assert_eq!(s.lazy_expired, 1);
        assert_eq!(s.reaped_entries, 1);
        assert_eq!(s.reaped_bytes, 2);
        // The slot is genuinely free: a different key can land there.
        t.put(b"k", b"reborn").unwrap();
        assert_eq!(t.get(b"k").unwrap(), b"reborn");
    }

    #[test]
    fn lazy_expiry_slab_get_frees_allocation() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"big", &[7u8; 200], 5).unwrap();
        let frees_before = t.allocator().stats().frees;
        t.set_now_tick(5);
        assert_eq!(t.get(b"big"), None);
        assert!(
            t.allocator().stats().frees > frees_before,
            "slab record freed on lazy expiry"
        );
        assert_eq!(t.len(), 0);
        assert_eq!(t.stored_bytes(), 0);
    }

    #[test]
    fn immortal_entries_ignore_clock() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put(b"forever", b"v").unwrap();
        t.put_ttl(b"also-forever", &[1u8; 100], 0).unwrap();
        t.set_now_tick(u32::MAX);
        assert_eq!(t.get(b"forever").unwrap(), b"v");
        assert_eq!(t.get(b"also-forever").unwrap(), vec![1u8; 100]);
    }

    #[test]
    fn overwrite_of_dead_entry_is_insert() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"k", b"old", 3).unwrap();
        t.set_now_tick(3);
        let cost = t.put_with_cost_ttl(b"k", b"new", 0).unwrap();
        assert!(!cost.hit, "replacing a dead entry reports an insert");
        assert_eq!(t.expiry_stats().expired_overwrites, 1);
        assert_eq!(t.get(b"k").unwrap(), b"new");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_of_dead_entry_reports_absent() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"k", b"v", 2).unwrap();
        t.set_now_tick(2);
        assert!(!t.delete(b"k"), "dead entry deletes as a miss");
        assert_eq!(t.len(), 0, "but is physically reclaimed");
    }

    #[test]
    fn touch_extends_inline_and_slab() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"in", b"v", 10).unwrap();
        t.put_ttl(b"slab", &[9u8; 150], 10).unwrap();
        t.set_now_tick(8);
        assert!(t.touch(b"in", 20));
        assert!(t.touch(b"slab", 20));
        t.set_now_tick(15);
        assert_eq!(t.get(b"in").unwrap(), b"v", "touched past the old stamp");
        assert_eq!(t.get(b"slab").unwrap(), vec![9u8; 150]);
        t.set_now_tick(20);
        assert_eq!(t.get(b"in"), None);
        assert_eq!(t.get(b"slab"), None);
        assert_eq!(t.expiry_stats().touches, 2);
    }

    #[test]
    fn touch_misses_on_absent_or_dead() {
        let mut t = table(1 << 20, 0.5, 24);
        assert!(!t.touch(b"nope", 5));
        t.put_ttl(b"k", b"v", 2).unwrap();
        t.set_now_tick(2);
        assert!(!t.touch(b"k", 100), "dead entry cannot be revived");
        assert_eq!(t.len(), 0, "touch reclaimed the corpse");
        t.set_now_tick(200);
        assert_eq!(t.get(b"k"), None);
    }

    #[test]
    fn touch_can_make_immortal() {
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"k", b"v", 10).unwrap();
        assert!(t.touch(b"k", 0));
        t.set_now_tick(u32::MAX);
        assert_eq!(t.get(b"k").unwrap(), b"v");
    }

    #[test]
    fn sweep_reclaims_dead_entries() {
        let mut t = table(1 << 20, 0.5, 24);
        let n = 200u32;
        for i in 0..n {
            let k = format!("key-{i}");
            // Half expire at tick 10, half are immortal. Mix inline and
            // slab-backed values.
            let ttl = if i % 2 == 0 { 10 } else { 0 };
            if i % 3 == 0 {
                t.put_ttl(k.as_bytes(), &[i as u8; 120], ttl).unwrap();
            } else {
                t.put_ttl(k.as_bytes(), b"v", ttl).unwrap();
            }
        }
        assert_eq!(t.len(), n as u64);
        t.set_now_tick(10);
        // Sweep every bucket (budget covers the whole index).
        let mut reclaimed = 0;
        let mut guard = 0;
        while reclaimed < (n / 2) as u64 {
            let c = t.sweep_expired(t.n_buckets());
            reclaimed += c.reclaimed;
            guard += 1;
            assert!(guard < 16, "sweep never converged");
        }
        assert_eq!(t.len(), (n / 2) as u64, "all dead entries reaped");
        for i in 0..n {
            let present = t.get(format!("key-{i}").as_bytes()).is_some();
            assert_eq!(present, i % 2 == 1, "key-{i}");
        }
        let s = t.expiry_stats();
        assert_eq!(s.reaped_entries, (n / 2) as u64);
        assert!(s.sweep_buckets > 0);
    }

    #[test]
    fn sweep_budget_bounds_work() {
        let mut t = table(1 << 20, 0.5, 24);
        for i in 0..50u32 {
            t.put_ttl(format!("k{i}").as_bytes(), b"v", 1).unwrap();
        }
        t.set_now_tick(1);
        assert_eq!(t.sweep_expired(0).scanned, 0, "zero budget scans nothing");
        let c = t.sweep_expired(4);
        assert!(c.scanned >= 4, "budget consumed (chains may add frames)");
        // Cursor persists: repeated bounded sweeps eventually cover the
        // whole index.
        let mut total = c.reclaimed;
        for _ in 0..((t.n_buckets() / 4) + 2) {
            total += t.sweep_expired(4).reclaimed;
        }
        assert_eq!(total, 50, "bounded sweeps converge via the cursor");
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let build = || {
            let mut t = table(1 << 20, 0.5, 24);
            for i in 0..100u32 {
                let ttl = if i % 4 == 0 { 7 } else { 0 };
                t.put_ttl(format!("k{i}").as_bytes(), &[i as u8; 30], ttl)
                    .unwrap();
            }
            t.set_now_tick(7);
            t
        };
        let mut a = build();
        let mut b = build();
        for _ in 0..8 {
            let ca = a.sweep_expired(16);
            let cb = b.sweep_expired(16);
            assert_eq!(ca, cb, "sweep cost identical for identical state");
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.expiry_stats(), b.expiry_stats());
    }

    #[test]
    fn expired_key_invisible_before_reclaim() {
        // A dead-but-unreclaimed entry must not satisfy false-positive
        // secondary-hash probes for other keys, and its bytes stay
        // counted until reclaim (physical accounting).
        let mut t = table(1 << 20, 0.5, 24);
        t.put_ttl(b"k", b"v", 1).unwrap();
        t.set_now_tick(1);
        assert_eq!(t.stored_bytes(), 2, "still counted while unreclaimed");
        assert_eq!(t.get(b"k"), None);
        assert_eq!(t.stored_bytes(), 0, "reclaim corrects accounting");
    }
}
