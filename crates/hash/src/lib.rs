#![warn(missing_docs)]
//! The KV-Direct hash index (paper §3.3.1, Figure 5).
//!
//! KV storage is split into a fixed-size **hash index** — an array of 64 B
//! buckets — and a dynamically allocated region managed by the slab
//! allocator. Each bucket holds 10 hash slots of 5 bytes (31-bit pointer
//! into the dynamic region + 9-bit secondary hash), per-slot slab type
//! fields, bitmaps marking the beginning and extent of *inline* KV pairs,
//! and a chain pointer for collision overflow.
//!
//! Design points reproduced exactly:
//!
//! * **64 B buckets** — matching the PCIe DMA sweet spot of Figure 3a.
//! * **Inline KVs** — pairs up to the configured inline threshold are
//!   stored in the bucket itself, re-purposing slot bytes, so a GET costs
//!   one memory access and a PUT two.
//! * **Secondary hash** — 9 bits per pointer slot give a 1/512 false
//!   positive rate; the full key is always verified in the slab data.
//! * **Chaining** — collision resolution that balances GET and PUT and is
//!   robust to clustering (the paper's argument against cuckoo/hopscotch
//!   for write-intensive workloads); chained buckets are 64 B slabs.
//! * **Tunables** — the *hash index ratio* (fraction of memory given to
//!   the index) and *inline threshold* are initialization-time parameters;
//!   [`tuning`] reproduces the optimization procedure of Figures 6/9/10.
//!
//! The type field is 4 bits wide rather than the paper's 3 to address the
//! extended slab ladder (see `kvd-slab` docs and DESIGN.md).

pub mod hashing;
pub mod layout;
pub mod swar;
pub mod table;
pub mod tuning;

pub use layout::{
    tick_of_us, Bucket, BucketEntry, BUCKET_BYTES, EXPIRY_TICK_US, MAX_INLINE_KV, SLOTS_PER_BUCKET,
};
pub use swar::{RawEntries, RawEntry};
pub use table::{ExpiryStats, HashError, HashTable, HashTableConfig, OpCost, SweepCost};
pub use tuning::{fill_to_utilization, measure_costs, optimal_config, MeasuredCosts};
