//! SWAR (SIMD-within-a-register) probing over raw 64-byte buckets.
//!
//! The paper's pipeline matches a request's 9-bit secondary hash against
//! all 10 bucket slots in one cycle of combinational logic. This module
//! is the software analogue: the bucket stays in its on-wire `[u8; 64]`
//! form and probing works on whole words —
//!
//! * each 5-byte slot is read as one unaligned little-endian `u64`
//!   (`[31-bit pointer | 9-bit secondary hash]` in the low 40 bits), so a
//!   tag compare is a single XOR + mask instead of byte-by-byte decoding;
//! * the 10 four-bit slab-type fields are classified zero/nonzero in two
//!   word operations over the packed nibble array, yielding the
//!   pointer-slot bitmap without touching individual nibbles.
//!
//! [`RawEntries`] walks a raw bucket in exactly the same slot order as
//! [`Bucket::entries`](crate::layout::Bucket::entries) but borrows key
//! and value bytes straight from the buffer — no decode, no `Vec`. The
//! hot read/write paths in [`table`](crate::table) are built on it; the
//! decoded [`Bucket`](crate::layout::Bucket) remains the mutation type.

use kvd_slab::SlabClass;

use crate::layout::{BUCKET_BYTES, INLINE_HEADER, SLOTS_PER_BUCKET, SLOT_BYTES};

/// Low 40 bits of a slot word: 31-bit pointer + 9-bit secondary hash.
pub const SLOT_MASK: u64 = 0xFF_FFFF_FFFF;
/// LSB of each of the 10 packed type nibbles.
const NIBBLE_LSB: u64 = 0x11_1111_1111;
/// Valid bits of the 10-slot bitmaps.
const SLOT_BITS: u16 = 0x3FF;

/// The raw 40-bit word of `slot` (unaligned 8-byte load, masked).
///
/// The furthest slot starts at byte 45, so the 8-byte load ends at byte
/// 53 — always inside the 64-byte bucket.
#[inline]
pub fn slot_raw(bytes: &[u8; BUCKET_BYTES], slot: usize) -> u64 {
    debug_assert!(slot < SLOTS_PER_BUCKET);
    let off = slot * SLOT_BYTES;
    let mut w = [0u8; 8];
    w.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(w) & SLOT_MASK
}

/// The 31-bit pointer of a raw slot word.
#[inline]
pub fn slot_ptr(raw: u64) -> u32 {
    (raw & 0x7FFF_FFFF) as u32
}

/// The 9-bit secondary hash of a raw slot word.
#[inline]
pub fn slot_sec(raw: u64) -> u16 {
    ((raw >> 31) & 0x1FF) as u16
}

/// One-XOR tag compare: does the slot word carry secondary hash `sec`?
#[inline]
pub fn sec_matches(raw: u64, sec: u16) -> bool {
    ((raw >> 31) ^ sec as u64) & 0x1FF == 0
}

/// Bitmap over all ten slots whose 9-bit secondary-hash field equals
/// `sec` — the widened form of [`sec_matches`], two slots per compare.
///
/// Adjacent slots `2p` and `2p+1` occupy ten consecutive bytes starting
/// at byte `10p`, so one unaligned 16-byte load covers both: slot `2p`'s
/// secondary hash sits at bits `31..40` of the little-endian word and
/// slot `2p+1`'s at bits `71..80` (40 bits further along). XORing a
/// needle with `sec` replicated at both positions turns the pair probe
/// into two mask tests on a single `u128`. The last pair starts at byte
/// 40, so the furthest load ends at byte 56 — inside the 64-byte bucket.
///
/// The mask is liveness-blind: free slots are all-zero words, so their
/// bit is set whenever `sec == 0`. Callers intersect with the bitmaps
/// ([`probe_candidates`]) or only consult bits of live pointer slots.
#[inline]
pub fn sec_match_mask(bytes: &[u8; BUCKET_BYTES], sec: u16) -> u16 {
    const LO: u128 = 0x1FF << 31;
    const HI: u128 = 0x1FF << 71;
    let needle = ((sec as u128) << 31) | ((sec as u128) << 71);
    let mut mask = 0u16;
    let mut p = 0;
    while p < SLOTS_PER_BUCKET / 2 {
        let off = p * 2 * SLOT_BYTES;
        let mut w16 = [0u8; 16];
        w16.copy_from_slice(&bytes[off..off + 16]);
        let x = u128::from_le_bytes(w16) ^ needle;
        mask |= u16::from(x & LO == 0) << (2 * p);
        mask |= u16::from(x & HI == 0) << (2 * p + 1);
        p += 1;
    }
    mask
}

/// The 4-bit slab-type field of `slot`.
#[inline]
pub fn slot_type(bytes: &[u8; BUCKET_BYTES], slot: usize) -> u8 {
    let nib = bytes[50 + slot / 2];
    if slot.is_multiple_of(2) {
        nib & 0x0F
    } else {
        nib >> 4
    }
}

/// The `used` bitmap (bit per slot).
#[inline]
pub fn used_bits(bytes: &[u8; BUCKET_BYTES]) -> u16 {
    u16::from_le_bytes([bytes[55], bytes[56]]) & SLOT_BITS
}

/// The `start` bitmap (bit per slot).
#[inline]
pub fn start_bits(bytes: &[u8; BUCKET_BYTES]) -> u16 {
    u16::from_le_bytes([bytes[57], bytes[58]]) & SLOT_BITS
}

/// The chain pointer, if the valid bit is set.
#[inline]
pub fn chain_of(bytes: &[u8; BUCKET_BYTES]) -> Option<u32> {
    let raw = u32::from_le_bytes([bytes[59], bytes[60], bytes[61], bytes[62]]);
    if raw & 0x8000_0000 != 0 {
        Some(raw & 0x7FFF_FFFF)
    } else {
        None
    }
}

/// Number of free slots.
#[inline]
pub fn free_slots_of(bytes: &[u8; BUCKET_BYTES]) -> usize {
    SLOTS_PER_BUCKET - used_bits(bytes).count_ones() as usize
}

/// Bitmap of slots whose type nibble is nonzero (i.e. slots that would
/// hold a slab pointer if live), computed nibble-parallel: fold each
/// nibble's bits onto its LSB, mask, then gather the surviving LSBs.
#[inline]
pub fn pointer_type_bits(bytes: &[u8; BUCKET_BYTES]) -> u16 {
    let mut w8 = [0u8; 8];
    w8[..5].copy_from_slice(&bytes[50..55]);
    let w = u64::from_le_bytes(w8);
    let mut nz = (w | (w >> 1) | (w >> 2) | (w >> 3)) & NIBBLE_LSB;
    let mut bits = 0u16;
    while nz != 0 {
        bits |= 1 << (nz.trailing_zeros() / 4);
        nz &= nz - 1;
    }
    bits
}

/// Bitmap of live pointer slots (used, entry start, nonzero type) whose
/// secondary hash matches `sec` — the SWAR probe a GET performs before
/// touching slab data.
#[inline]
pub fn probe_candidates(bytes: &[u8; BUCKET_BYTES], sec: u16) -> u16 {
    used_bits(bytes) & start_bits(bytes) & pointer_type_bits(bytes) & sec_match_mask(bytes, sec)
}

/// One entry of a raw bucket, borrowing from the 64-byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawEntry<'a> {
    /// An inline KV run; `key`/`value` point into the bucket buffer.
    Inline {
        /// First slot of the run.
        slot: usize,
        /// Number of slots the run occupies.
        nslots: usize,
        /// The key bytes, borrowed.
        key: &'a [u8],
        /// The value bytes, borrowed.
        value: &'a [u8],
        /// Expiry tick; 0 = never expires.
        expiry: u32,
    },
    /// A pointer to slab-allocated KV data.
    Pointer {
        /// The slot holding the pointer.
        slot: usize,
        /// The raw 40-bit slot word (see [`slot_ptr`]/[`slot_sec`]).
        raw: u64,
        /// Slab class of the target allocation.
        class: SlabClass,
    },
}

/// Zero-allocation entry walk over a raw bucket, yielding entries in the
/// same slot order as [`Bucket::entries`](crate::layout::Bucket::entries).
pub struct RawEntries<'a> {
    bytes: &'a [u8; BUCKET_BYTES],
    used: u16,
    start: u16,
    ptr_bits: u16,
    slot: usize,
}

impl<'a> RawEntries<'a> {
    /// Starts a walk over `bytes`.
    pub fn new(bytes: &'a [u8; BUCKET_BYTES]) -> Self {
        RawEntries {
            bytes,
            used: used_bits(bytes),
            start: start_bits(bytes),
            ptr_bits: pointer_type_bits(bytes),
            slot: 0,
        }
    }
}

impl<'a> Iterator for RawEntries<'a> {
    type Item = RawEntry<'a>;

    fn next(&mut self) -> Option<RawEntry<'a>> {
        while self.slot < SLOTS_PER_BUCKET {
            let slot = self.slot;
            let bit = 1u16 << slot;
            if self.used & bit == 0 || self.start & bit == 0 {
                self.slot += 1;
                continue;
            }
            if self.ptr_bits & bit != 0 {
                self.slot += 1;
                let raw = slot_raw(self.bytes, slot);
                let class = SlabClass::from_type_field(slot_type(self.bytes, slot))
                    .expect("nonzero type field validated on insert");
                return Some(RawEntry::Pointer { slot, raw, class });
            }
            let mut nslots = 1;
            while slot + nslots < SLOTS_PER_BUCKET {
                let b = 1u16 << (slot + nslots);
                if self.used & b != 0 && self.start & b == 0 && self.ptr_bits & b == 0 {
                    nslots += 1;
                } else {
                    break;
                }
            }
            self.slot = slot + nslots;
            let run = &self.bytes[slot * SLOT_BYTES..(slot + nslots) * SLOT_BYTES];
            let klen = run[0] as usize;
            let vlen = run[1] as usize;
            let expiry = u32::from_le_bytes([run[2], run[3], run[4], run[5]]);
            debug_assert!(INLINE_HEADER + klen + vlen <= nslots * SLOT_BYTES);
            return Some(RawEntry::Inline {
                slot,
                nslots,
                key: &run[INLINE_HEADER..INLINE_HEADER + klen],
                value: &run[INLINE_HEADER + klen..INLINE_HEADER + klen + vlen],
                expiry,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Bucket, BucketEntry};

    fn class(size: u64) -> SlabClass {
        SlabClass::for_size(size).unwrap()
    }

    /// Decoded-scan equivalent of a raw walk, for comparison.
    fn scan(bytes: &[u8; BUCKET_BYTES]) -> Vec<BucketEntry> {
        Bucket::decode(bytes).entries()
    }

    fn raw_as_decoded(bytes: &[u8; BUCKET_BYTES]) -> Vec<BucketEntry> {
        RawEntries::new(bytes)
            .map(|e| match e {
                RawEntry::Inline {
                    slot,
                    nslots,
                    key,
                    value,
                    expiry,
                } => BucketEntry::Inline {
                    slot,
                    nslots,
                    key: key.to_vec(),
                    value: value.to_vec(),
                    expiry,
                },
                RawEntry::Pointer { slot, raw, class } => BucketEntry::Pointer {
                    slot,
                    ptr: slot_ptr(raw),
                    sec: slot_sec(raw),
                    class,
                },
            })
            .collect()
    }

    #[test]
    fn raw_walk_matches_decoded_scan_on_mixed_bucket() {
        let mut b = Bucket::empty();
        b.insert_inline(b"aa", b"1111").unwrap();
        b.insert_pointer(0x7FFF_FFFF, 511, class(128)).unwrap();
        b.insert_inline(b"b", b"").unwrap();
        b.insert_pointer(42, 0, class(32)).unwrap();
        b.set_chain(Some(77));
        let bytes = b.encode();
        assert_eq!(raw_as_decoded(&bytes), scan(&bytes));
        assert_eq!(chain_of(&bytes), Some(77));
        assert_eq!(free_slots_of(&bytes), b.free_slots());
    }

    #[test]
    fn probe_candidates_matches_slot_scan() {
        let mut b = Bucket::empty();
        b.insert_pointer(1, 100, class(32)).unwrap();
        b.insert_inline(b"key", b"padpad").unwrap(); // occupies slots, type 0
        b.insert_pointer(2, 100, class(64)).unwrap();
        b.insert_pointer(3, 7, class(512)).unwrap();
        let bytes = b.encode();
        let hits = probe_candidates(&bytes, 100);
        let expect: u16 = scan(&bytes)
            .iter()
            .filter_map(|e| match e {
                BucketEntry::Pointer { slot, sec: 100, .. } => Some(1u16 << slot),
                _ => None,
            })
            .sum();
        assert_eq!(hits, expect);
        assert_eq!(probe_candidates(&bytes, 7).count_ones(), 1);
        assert_eq!(probe_candidates(&bytes, 8), 0);
    }

    #[test]
    fn sec_match_mask_equals_per_slot_compares() {
        // Pseudo-random bucket images: the pair probe must agree with
        // ten independent `sec_matches` calls for every slot, including
        // free slots (all-zero words match `sec == 0` by design).
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for round in 0..64 {
            let mut bytes = [0u8; BUCKET_BYTES];
            for b in bytes.iter_mut() {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                *b = (x >> 56) as u8;
            }
            for sec in [0u16, 1, 0x0FF, 0x100, 0x1FF, (x >> 40) as u16 & 0x1FF] {
                let mut expect = 0u16;
                for slot in 0..SLOTS_PER_BUCKET {
                    if sec_matches(slot_raw(&bytes, slot), sec) {
                        expect |= 1 << slot;
                    }
                }
                assert_eq!(
                    sec_match_mask(&bytes, sec),
                    expect,
                    "round {round}, sec {sec:#x}"
                );
            }
        }
    }

    #[test]
    fn slot_word_fields_roundtrip() {
        let mut b = Bucket::empty();
        b.insert_pointer(0x2AAA_AAAA, 0x155, class(256)).unwrap();
        let bytes = b.encode();
        let raw = slot_raw(&bytes, 0);
        assert_eq!(slot_ptr(raw), 0x2AAA_AAAA);
        assert_eq!(slot_sec(raw), 0x155);
        assert!(sec_matches(raw, 0x155));
        assert!(!sec_matches(raw, 0x154));
    }

    #[test]
    fn pointer_type_bits_sees_every_nibble() {
        for slot in 0..SLOTS_PER_BUCKET {
            let mut bytes = [0u8; BUCKET_BYTES];
            // Set only this slot's type nibble.
            if slot.is_multiple_of(2) {
                bytes[50 + slot / 2] = 0x01;
            } else {
                bytes[50 + slot / 2] = 0x10;
            }
            assert_eq!(pointer_type_bits(&bytes), 1 << slot, "slot {slot}");
        }
        assert_eq!(pointer_type_bits(&[0u8; BUCKET_BYTES]), 0);
    }
}
