//! Key hashing.
//!
//! Two independent hashes per key: the primary hash selects the bucket,
//! and 9 bits of the secondary hash are stored next to each pointer slot
//! so lookups can skip non-matching slots without fetching their KV data
//! (1/512 false-positive probability, paper §3.3.1). Chaining makes the
//! table robust to hash quality, but a uniform mixer keeps clustering
//! representative of the paper's setup.

/// Number of secondary-hash bits stored in a slot.
pub const SEC_HASH_BITS: u32 = 9;

/// FNV-1a with a 64-bit seed fold and an avalanche finisher.
fn hash_seeded(key: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finisher for avalanche.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// The primary hash: selects the bucket.
pub fn primary_hash(key: &[u8]) -> u64 {
    hash_seeded(key, 0x1234_5678_9ABC_DEF0)
}

/// The secondary hash: 9 bits stored beside pointer slots.
pub fn secondary_hash(key: &[u8]) -> u16 {
    (hash_seeded(key, 0x0FED_CBA9_8765_4321) & ((1 << SEC_HASH_BITS) - 1)) as u16
}

/// Hash used by the out-of-order engine's reservation station (a
/// different stream again, so dependency-station collisions are
/// independent of bucket collisions).
pub fn station_hash(key: &[u8]) -> u64 {
    hash_seeded(key, 0x5151_5151_5151_5151)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(primary_hash(b"key"), primary_hash(b"key"));
        assert_eq!(secondary_hash(b"key"), secondary_hash(b"key"));
    }

    #[test]
    fn secondary_fits_nine_bits() {
        for i in 0..1000u32 {
            let k = i.to_le_bytes();
            assert!(secondary_hash(&k) < 512);
        }
    }

    #[test]
    fn primary_and_secondary_decorrelated() {
        // Keys colliding in low primary bits should not collide in the
        // secondary hash more than chance predicts.
        let mut sec_collisions = 0;
        let base = secondary_hash(&0u32.to_le_bytes());
        for i in 1..2000u32 {
            if secondary_hash(&i.to_le_bytes()) == base {
                sec_collisions += 1;
            }
        }
        // Expected ~2000/512 ≈ 4.
        assert!(sec_collisions < 20, "got {sec_collisions}");
    }

    #[test]
    fn buckets_spread_uniformly() {
        let n_buckets = 64u64;
        let mut counts = vec![0u32; n_buckets as usize];
        let n = 64_000;
        for i in 0..n {
            counts[(primary_hash(&(i as u64).to_le_bytes()) % n_buckets) as usize] += 1;
        }
        let expect = n / n_buckets as u32;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 2,
                "bucket {b}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn different_streams_differ() {
        let k = b"same-key";
        let p = primary_hash(k);
        let s = station_hash(k);
        assert_ne!(p, s);
    }
}
