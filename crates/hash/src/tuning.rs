//! Hash-table tuning experiments (paper §5.1.1, Figures 6, 9, 10).
//!
//! The table has two initialization-time free parameters — inline
//! threshold and hash index ratio. The paper measures average memory
//! accesses per operation while sweeping them against memory utilization,
//! then chooses, for a required utilization and KV size, the largest hash
//! index ratio that still reaches the utilization (Figure 10's dashed
//! line) because more index means more inlining and fewer accesses.

use kvd_mem::{FlatMemory, MemoryEngine};
use kvd_sim::DetRng;

use crate::table::{HashError, HashTable, HashTableConfig};

/// Key length used by the tuning workloads (an 8-byte identifier, like
/// the paper's pointer-sized keys in PageRank / sparse logistic
/// regression).
pub const TUNING_KEY_LEN: usize = 8;

/// Average operation costs measured at some utilization.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredCosts {
    /// Utilization at which the measurement ran.
    pub utilization: f64,
    /// Mean memory accesses per GET of an existing key.
    pub get_avg: f64,
    /// Mean memory accesses per PUT (update of an existing key).
    pub put_avg: f64,
    /// Mean accesses per insertion of a new key (measured during fill).
    pub insert_avg: f64,
}

fn key_bytes(id: u64) -> [u8; TUNING_KEY_LEN] {
    id.to_le_bytes()
}

fn value_for(kv_size: usize, id: u64) -> Vec<u8> {
    assert!(
        kv_size > TUNING_KEY_LEN,
        "kv size must exceed the key length"
    );
    let mut v = vec![0u8; kv_size - TUNING_KEY_LEN];
    let tag = id.to_le_bytes();
    let n = v.len().min(8);
    v[..n].copy_from_slice(&tag[..n]);
    v
}

/// Fills `table` with `kv_size`-byte KVs (8-byte keys) until it reaches
/// `target_utilization` or runs out of memory.
///
/// Returns the inserted key ids and the mean insertion cost.
pub fn fill_to_utilization<M: MemoryEngine>(
    table: &mut HashTable<M>,
    kv_size: usize,
    target_utilization: f64,
) -> (Vec<u64>, f64) {
    let mut ids = Vec::new();
    let mut accesses = 0u64;
    let mut id = 0u64;
    while table.memory_utilization() < target_utilization {
        match table.put_with_cost(&key_bytes(id), &value_for(kv_size, id)) {
            Ok(cost) => {
                accesses += cost.accesses;
                ids.push(id);
            }
            Err(HashError::OutOfMemory) => break,
            Err(e) => panic!("unexpected fill error: {e}"),
        }
        id += 1;
    }
    let insert_avg = if ids.is_empty() {
        0.0
    } else {
        accesses as f64 / ids.len() as f64
    };
    (ids, insert_avg)
}

/// Measures average GET and PUT costs over `samples` random existing keys.
pub fn measure_costs<M: MemoryEngine>(
    table: &mut HashTable<M>,
    ids: &[u64],
    kv_size: usize,
    samples: usize,
    seed: u64,
) -> MeasuredCosts {
    assert!(!ids.is_empty(), "cannot measure an empty table");
    let mut rng = DetRng::seed(seed);
    let mut get_total = 0u64;
    let mut put_total = 0u64;
    for _ in 0..samples {
        let id = ids[rng.usize_below(ids.len())];
        let (v, cost) = table.get_with_cost(&key_bytes(id));
        assert!(v.is_some(), "inserted key {id} must be present");
        get_total += cost.accesses;
        let cost = table
            .put_with_cost(&key_bytes(id), &value_for(kv_size, id))
            .expect("update of existing key cannot OOM");
        assert!(cost.hit, "update must hit");
        put_total += cost.accesses;
    }
    MeasuredCosts {
        utilization: table.memory_utilization(),
        get_avg: get_total as f64 / samples as f64,
        put_avg: put_total as f64 / samples as f64,
        insert_avg: 0.0,
    }
}

/// Builds a fresh table, fills it to `utilization`, and measures costs —
/// the single data point behind every cell of Figures 6/9/11.
pub fn point(
    total_memory: u64,
    hash_index_ratio: f64,
    inline_threshold: usize,
    kv_size: usize,
    utilization: f64,
    seed: u64,
) -> MeasuredCosts {
    let mut table = HashTable::new(
        FlatMemory::new(total_memory),
        HashTableConfig::new(total_memory, hash_index_ratio, inline_threshold),
    );
    let (ids, insert_avg) = fill_to_utilization(&mut table, kv_size, utilization);
    if ids.is_empty() {
        return MeasuredCosts {
            utilization: 0.0,
            get_avg: 0.0,
            put_avg: 0.0,
            insert_avg: 0.0,
        };
    }
    table.mem_mut().reset_stats();
    let mut m = measure_costs(&mut table, &ids, kv_size, 2000.min(ids.len() * 2), seed);
    m.insert_avg = insert_avg;
    m
}

/// Like [`point`], but with KV sizes drawn uniformly from `sizes` — the
/// mixed-size workload behind Figure 6, where the inline threshold trades
/// inlining gains against bucket pressure.
pub fn point_mixed(
    total_memory: u64,
    hash_index_ratio: f64,
    inline_threshold: usize,
    sizes: &[usize],
    utilization: f64,
    seed: u64,
) -> MeasuredCosts {
    assert!(!sizes.is_empty());
    let mut table = HashTable::new(
        FlatMemory::new(total_memory),
        HashTableConfig::new(total_memory, hash_index_ratio, inline_threshold),
    );
    let mut rng = DetRng::seed(seed ^ 0xFEED);
    // Fill with per-key deterministic sizes so updates keep sizes stable.
    let size_of = |id: u64| sizes[(id % sizes.len() as u64) as usize];
    let mut ids = Vec::new();
    let mut id = 0u64;
    let mut insert_accesses = 0u64;
    while table.memory_utilization() < utilization {
        let kv = size_of(id);
        match table.put_with_cost(&key_bytes(id), &value_for(kv, id)) {
            Ok(c) => {
                insert_accesses += c.accesses;
                ids.push(id);
            }
            Err(HashError::OutOfMemory) => break,
            Err(e) => panic!("unexpected fill error: {e}"),
        }
        id += 1;
    }
    if ids.is_empty() {
        return MeasuredCosts {
            utilization: 0.0,
            get_avg: 0.0,
            put_avg: 0.0,
            insert_avg: 0.0,
        };
    }
    let samples = 2000.min(ids.len() * 2);
    let mut get_total = 0u64;
    let mut put_total = 0u64;
    for _ in 0..samples {
        let id = ids[rng.usize_below(ids.len())];
        let (v, cost) = table.get_with_cost(&key_bytes(id));
        assert!(v.is_some());
        get_total += cost.accesses;
        let cost = table
            .put_with_cost(&key_bytes(id), &value_for(size_of(id), id))
            .expect("update cannot OOM");
        put_total += cost.accesses;
    }
    MeasuredCosts {
        utilization: table.memory_utilization(),
        get_avg: get_total as f64 / samples as f64,
        put_avg: put_total as f64 / samples as f64,
        insert_avg: insert_accesses as f64 / ids.len() as f64,
    }
}

/// The highest utilization a configuration can reach before OOM
/// (Figure 10's per-ratio ceiling).
pub fn max_achievable_utilization(
    total_memory: u64,
    hash_index_ratio: f64,
    inline_threshold: usize,
    kv_size: usize,
) -> f64 {
    let mut table = HashTable::new(
        FlatMemory::new(total_memory),
        HashTableConfig::new(total_memory, hash_index_ratio, inline_threshold),
    );
    let (_, _) = fill_to_utilization(&mut table, kv_size, 1.0);
    table.memory_utilization()
}

/// The paper's offline tuning procedure (Figure 10): choose the largest
/// hash index ratio whose achievable utilization still meets the target,
/// then return it with the measured access cost at the target.
///
/// Returns `(ratio, costs_at_target)`.
pub fn optimal_config(
    total_memory: u64,
    inline_threshold: usize,
    kv_size: usize,
    target_utilization: f64,
    seed: u64,
) -> Option<(f64, MeasuredCosts)> {
    let ratios = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    for &r in &ratios {
        let max = max_achievable_utilization(total_memory, r, inline_threshold, kv_size);
        if max >= target_utilization {
            let costs = point(
                total_memory,
                r,
                inline_threshold,
                kv_size,
                target_utilization,
                seed,
            );
            return Some((r, costs));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: u64 = 1 << 19; // 512 KiB keeps tests fast

    #[test]
    fn fill_reaches_target() {
        let mut t = HashTable::new(FlatMemory::new(MEM), HashTableConfig::new(MEM, 0.5, 24));
        let (ids, insert_avg) = fill_to_utilization(&mut t, 16, 0.3);
        assert!(t.memory_utilization() >= 0.3);
        assert!(!ids.is_empty());
        assert!(insert_avg >= 2.0, "inline insert costs at least 2");
    }

    #[test]
    fn inline_point_close_to_ideal_at_low_utilization() {
        // Paper: "close to 1 memory access per GET and close to 2 memory
        // accesses per PUT under non-extreme memory utilizations".
        let m = point(MEM, 0.6, 24, 16, 0.35, 1);
        assert!(m.get_avg < 1.5, "GET {}", m.get_avg);
        assert!(m.put_avg < 3.0 && m.put_avg >= 2.0, "PUT {}", m.put_avg);
    }

    #[test]
    fn accesses_grow_with_utilization() {
        // Figure 6/9b: memory access count increases with utilization.
        let lo = point(MEM, 0.6, 24, 16, 0.25, 2);
        let hi = point(MEM, 0.6, 24, 16, 0.5, 2);
        assert!(hi.utilization > lo.utilization);
        assert!(
            hi.get_avg >= lo.get_avg - 0.05,
            "GET {} → {}",
            lo.get_avg,
            hi.get_avg
        );
    }

    #[test]
    fn offline_kvs_cost_one_more_access() {
        // Figure 9: inline vs offline. Same KV size; thresholds straddle.
        let inline = point(MEM, 0.6, 24, 16, 0.3, 3);
        let offline = point(MEM, 0.3, 10, 16, 0.3, 3);
        assert!(
            offline.get_avg > inline.get_avg + 0.5,
            "inline {} offline {}",
            inline.get_avg,
            offline.get_avg
        );
    }

    #[test]
    fn max_utilization_drops_with_ratio_for_offline_kvs() {
        // Figure 10: for non-inline KVs, a bigger index starves the
        // dynamic region, capping achievable utilization.
        let lo_ratio = max_achievable_utilization(MEM, 0.2, 10, 64);
        let hi_ratio = max_achievable_utilization(MEM, 0.8, 10, 64);
        assert!(
            lo_ratio > hi_ratio,
            "ratio 0.2 → {lo_ratio}, ratio 0.8 → {hi_ratio}"
        );
    }

    #[test]
    fn optimal_config_meets_target() {
        let (ratio, costs) = optimal_config(MEM, 24, 16, 0.4, 4).expect("achievable");
        assert!((0.1..=0.9).contains(&ratio));
        assert!(costs.utilization >= 0.4);
        // An impossible target returns None.
        assert!(optimal_config(MEM, 10, 64, 0.99, 4).is_none());
    }
}
