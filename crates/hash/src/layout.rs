//! Bucket wire format (paper Figure 5).
//!
//! Each 64-byte bucket packs:
//!
//! | bytes   | contents                                          |
//! |---------|---------------------------------------------------|
//! | 0..50   | 10 hash slots × 5 B (31-bit pointer + 9-bit hash) |
//! | 50..55  | 10 slab-type fields × 4 bits                      |
//! | 55..57  | `used` bitmap (10 bits, LE u16)                   |
//! | 57..59  | `start` bitmap (10 bits, LE u16)                  |
//! | 59..63  | chain pointer (31-bit, bit 31 = valid, LE u32)    |
//! | 63      | reserved                                          |
//!
//! Inline KVs re-purpose consecutive slots' bytes: a run begins at a slot
//! whose `start` bit is set and whose type field is 0, and continues
//! through slots whose `used` bit is set but `start` is clear. Run bytes
//! hold `[klen u8][vlen u8][exp u32 LE][key][value]` — `exp` is the
//! entry's lifecycle stamp in coarse expiry ticks (see
//! [`EXPIRY_TICK_US`]); 0 means the entry never expires.

use kvd_slab::SlabClass;

/// Hash slots per bucket (paper: 10).
pub const SLOTS_PER_BUCKET: usize = 10;
/// Bytes per hash slot (31-bit pointer + 9-bit secondary hash).
pub const SLOT_BYTES: usize = 5;
/// Bucket size in bytes, matching the PCIe DMA sweet spot.
pub const BUCKET_BYTES: usize = 64;
/// Header bytes of an inline KV (key length + value length + expiry
/// stamp).
pub const INLINE_HEADER: usize = 6;
/// Largest inline KV (key + value) a bucket can hold.
pub const MAX_INLINE_KV: usize = SLOTS_PER_BUCKET * SLOT_BYTES - INLINE_HEADER;

/// Microseconds of simulated time per expiry tick (1 ms). A u32 tick
/// stamp spans ~49.7 days — comfortably past memcached's 30-day
/// relative-exptime horizon — while one integer compare per probe keeps
/// the lifecycle check free on the hot path. Stamp 0 = immortal; an
/// entry is dead once `now_tick >= stamp`.
pub const EXPIRY_TICK_US: u64 = 1_000;

/// Converts a simulated-time microsecond count to an expiry tick.
#[inline]
pub fn tick_of_us(us: u64) -> u32 {
    (us / EXPIRY_TICK_US).min(u32::MAX as u64) as u32
}

/// One decoded entry of a bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BucketEntry {
    /// A KV pair stored inline across `nslots` slots starting at `slot`.
    Inline {
        /// First slot of the run.
        slot: usize,
        /// Number of slots the run occupies.
        nslots: usize,
        /// The key bytes.
        key: Vec<u8>,
        /// The value bytes.
        value: Vec<u8>,
        /// Expiry tick; 0 = never expires.
        expiry: u32,
    },
    /// A pointer to slab-allocated KV data.
    Pointer {
        /// The slot holding the pointer.
        slot: usize,
        /// 31-bit granule offset into the dynamic region.
        ptr: u32,
        /// 9-bit secondary hash of the key.
        sec: u16,
        /// Slab class of the target allocation.
        class: SlabClass,
    },
}

/// A decoded bucket; encode/decode is exact and lossless.
///
/// # Examples
///
/// ```
/// use kvd_hash::{Bucket, BucketEntry};
///
/// let mut b = Bucket::empty();
/// assert!(b.insert_inline(b"k", b"value").is_some());
/// let bytes = b.encode();
/// let d = Bucket::decode(&bytes);
/// match &d.entries()[0] {
///     BucketEntry::Inline { key, value, .. } => {
///         assert_eq!(key, b"k");
///         assert_eq!(value, b"value");
///     }
///     _ => panic!("expected inline"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    slot_bytes: [u8; SLOTS_PER_BUCKET * SLOT_BYTES],
    types: [u8; SLOTS_PER_BUCKET],
    used: u16,
    start: u16,
    chain: Option<u32>,
}

impl Bucket {
    /// An empty bucket: no entries, no chain.
    pub fn empty() -> Self {
        Bucket {
            slot_bytes: [0; SLOTS_PER_BUCKET * SLOT_BYTES],
            types: [0; SLOTS_PER_BUCKET],
            used: 0,
            start: 0,
            chain: None,
        }
    }

    /// Decodes a bucket from its 64-byte wire form.
    pub fn decode(bytes: &[u8; BUCKET_BYTES]) -> Self {
        let mut slot_bytes = [0u8; SLOTS_PER_BUCKET * SLOT_BYTES];
        slot_bytes.copy_from_slice(&bytes[0..50]);
        let mut types = [0u8; SLOTS_PER_BUCKET];
        for (i, t) in types.iter_mut().enumerate() {
            let nib = bytes[50 + i / 2];
            *t = if i % 2 == 0 { nib & 0x0F } else { nib >> 4 };
        }
        let used = u16::from_le_bytes([bytes[55], bytes[56]]) & 0x3FF;
        let start = u16::from_le_bytes([bytes[57], bytes[58]]) & 0x3FF;
        let raw_chain = u32::from_le_bytes([bytes[59], bytes[60], bytes[61], bytes[62]]);
        let chain = if raw_chain & 0x8000_0000 != 0 {
            Some(raw_chain & 0x7FFF_FFFF)
        } else {
            None
        };
        Bucket {
            slot_bytes,
            types,
            used,
            start,
            chain,
        }
    }

    /// Encodes to the 64-byte wire form.
    pub fn encode(&self) -> [u8; BUCKET_BYTES] {
        let mut out = [0u8; BUCKET_BYTES];
        out[0..50].copy_from_slice(&self.slot_bytes);
        for i in 0..SLOTS_PER_BUCKET {
            debug_assert!(self.types[i] <= 0x0F, "type field overflow");
            if i % 2 == 0 {
                out[50 + i / 2] |= self.types[i] & 0x0F;
            } else {
                out[50 + i / 2] |= (self.types[i] & 0x0F) << 4;
            }
        }
        out[55..57].copy_from_slice(&self.used.to_le_bytes());
        out[57..59].copy_from_slice(&self.start.to_le_bytes());
        let raw_chain = match self.chain {
            Some(p) => {
                debug_assert!(p < 0x8000_0000, "chain pointer overflow");
                p | 0x8000_0000
            }
            None => 0,
        };
        out[59..63].copy_from_slice(&raw_chain.to_le_bytes());
        out
    }

    /// The chain pointer (31-bit granule offset), if any.
    pub fn chain(&self) -> Option<u32> {
        self.chain
    }

    /// Sets or clears the chain pointer.
    pub fn set_chain(&mut self, chain: Option<u32>) {
        if let Some(p) = chain {
            assert!(p < 0x8000_0000, "chain pointer overflow");
        }
        self.chain = chain;
    }

    fn is_used(&self, slot: usize) -> bool {
        self.used & (1 << slot) != 0
    }

    fn is_start(&self, slot: usize) -> bool {
        self.start & (1 << slot) != 0
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> usize {
        SLOTS_PER_BUCKET - (self.used & 0x3FF).count_ones() as usize
    }

    /// Returns `true` if the bucket has no entries.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Decodes all entries.
    pub fn entries(&self) -> Vec<BucketEntry> {
        let mut out = Vec::new();
        let mut slot = 0;
        while slot < SLOTS_PER_BUCKET {
            if !self.is_used(slot) || !self.is_start(slot) {
                slot += 1;
                continue;
            }
            if self.types[slot] != 0 {
                let (ptr, sec) = self.decode_slot(slot);
                let class = SlabClass::from_type_field(self.types[slot])
                    .expect("nonzero type field validated on insert");
                out.push(BucketEntry::Pointer {
                    slot,
                    ptr,
                    sec,
                    class,
                });
                slot += 1;
            } else {
                let mut nslots = 1;
                while slot + nslots < SLOTS_PER_BUCKET
                    && self.is_used(slot + nslots)
                    && !self.is_start(slot + nslots)
                    && self.types[slot + nslots] == 0
                {
                    nslots += 1;
                }
                let run = &self.slot_bytes[slot * SLOT_BYTES..(slot + nslots) * SLOT_BYTES];
                let klen = run[0] as usize;
                let vlen = run[1] as usize;
                let expiry = u32::from_le_bytes([run[2], run[3], run[4], run[5]]);
                debug_assert!(INLINE_HEADER + klen + vlen <= nslots * SLOT_BYTES);
                let key = run[INLINE_HEADER..INLINE_HEADER + klen].to_vec();
                let value = run[INLINE_HEADER + klen..INLINE_HEADER + klen + vlen].to_vec();
                out.push(BucketEntry::Inline {
                    slot,
                    nslots,
                    key,
                    value,
                    expiry,
                });
                slot += nslots;
            }
        }
        out
    }

    fn decode_slot(&self, slot: usize) -> (u32, u16) {
        let b = &self.slot_bytes[slot * SLOT_BYTES..(slot + 1) * SLOT_BYTES];
        let raw = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], 0, 0, 0]);
        let ptr = (raw & 0x7FFF_FFFF) as u32;
        let sec = ((raw >> 31) & 0x1FF) as u16;
        (ptr, sec)
    }

    fn encode_slot(&mut self, slot: usize, ptr: u32, sec: u16) {
        debug_assert!(ptr < 0x8000_0000);
        debug_assert!(sec < 512);
        let raw = (ptr as u64) | ((sec as u64) << 31);
        self.slot_bytes[slot * SLOT_BYTES..(slot + 1) * SLOT_BYTES]
            .copy_from_slice(&raw.to_le_bytes()[0..5]);
    }

    /// Slots needed to hold an inline KV of `kv_len` (key+value) bytes.
    pub fn inline_slots_needed(kv_len: usize) -> usize {
        (kv_len + INLINE_HEADER).div_ceil(SLOT_BYTES)
    }

    /// Inserts a pointer entry; returns its slot, or `None` if full.
    pub fn insert_pointer(&mut self, ptr: u32, sec: u16, class: SlabClass) -> Option<usize> {
        let slot = (0..SLOTS_PER_BUCKET).find(|&s| !self.is_used(s))?;
        self.encode_slot(slot, ptr, sec);
        self.types[slot] = class.type_field();
        assert!(
            self.types[slot] <= 0x0F,
            "slab class beyond 4-bit type field"
        );
        self.used |= 1 << slot;
        self.start |= 1 << slot;
        Some(slot)
    }

    /// Inserts an inline KV that never expires; compacts the bucket if
    /// free slots exist but are fragmented. Returns the starting slot, or
    /// `None` if it cannot fit.
    pub fn insert_inline(&mut self, key: &[u8], value: &[u8]) -> Option<usize> {
        self.insert_inline_expiring(key, value, 0)
    }

    /// Inserts an inline KV with a lifecycle stamp (`expiry` tick; 0 =
    /// immortal); compacts the bucket if free slots exist but are
    /// fragmented. Returns the starting slot, or `None` if it cannot fit.
    pub fn insert_inline_expiring(
        &mut self,
        key: &[u8],
        value: &[u8],
        expiry: u32,
    ) -> Option<usize> {
        let kv_len = key.len() + value.len();
        if kv_len > MAX_INLINE_KV || key.len() > u8::MAX as usize || value.len() > u8::MAX as usize
        {
            return None;
        }
        let need = Self::inline_slots_needed(kv_len);
        if self.free_slots() < need {
            return None;
        }
        let slot = match self.find_contiguous_free(need) {
            Some(s) => s,
            None => {
                self.compact();
                self.find_contiguous_free(need)
                    .expect("compaction must make free slots contiguous")
            }
        };
        let mut buf = [0u8; SLOTS_PER_BUCKET * SLOT_BYTES];
        let run = &mut buf[..need * SLOT_BYTES];
        run[0] = key.len() as u8;
        run[1] = value.len() as u8;
        run[2..6].copy_from_slice(&expiry.to_le_bytes());
        run[INLINE_HEADER..INLINE_HEADER + key.len()].copy_from_slice(key);
        run[INLINE_HEADER + key.len()..INLINE_HEADER + kv_len].copy_from_slice(value);
        self.slot_bytes[slot * SLOT_BYTES..(slot + need) * SLOT_BYTES].copy_from_slice(run);
        for s in slot..slot + need {
            self.used |= 1 << s;
            self.start &= !(1 << s);
            self.types[s] = 0;
        }
        self.start |= 1 << slot;
        Some(slot)
    }

    fn find_contiguous_free(&self, need: usize) -> Option<usize> {
        let mut run = 0;
        for s in 0..SLOTS_PER_BUCKET {
            if self.is_used(s) {
                run = 0;
            } else {
                run += 1;
                if run == need {
                    return Some(s + 1 - need);
                }
            }
        }
        None
    }

    /// Repacks all entries to the left, leaving free slots contiguous at
    /// the end. The bucket is rewritten wholesale on the next write-back,
    /// so compaction costs no extra memory access.
    pub fn compact(&mut self) {
        let entries = self.entries();
        let chain = self.chain;
        *self = Bucket::empty();
        self.chain = chain;
        for e in entries {
            match e {
                BucketEntry::Inline {
                    key, value, expiry, ..
                } => {
                    self.insert_inline_expiring(&key, &value, expiry)
                        .expect("entries fit before compaction");
                }
                BucketEntry::Pointer {
                    ptr, sec, class, ..
                } => {
                    self.insert_pointer(ptr, sec, class)
                        .expect("entries fit before compaction");
                }
            }
        }
    }

    /// Removes the entry starting at `slot` (pointer or inline run).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not the start of an entry.
    pub fn remove(&mut self, slot: usize) {
        assert!(
            self.is_used(slot) && self.is_start(slot),
            "not an entry start"
        );
        if self.types[slot] != 0 {
            self.clear_slot(slot);
        } else {
            self.clear_slot(slot);
            let mut s = slot + 1;
            while s < SLOTS_PER_BUCKET && self.is_used(s) && !self.is_start(s) && self.types[s] == 0
            {
                self.clear_slot(s);
                s += 1;
            }
        }
    }

    fn clear_slot(&mut self, slot: usize) {
        self.used &= !(1 << slot);
        self.start &= !(1 << slot);
        self.types[slot] = 0;
        self.slot_bytes[slot * SLOT_BYTES..(slot + 1) * SLOT_BYTES].fill(0);
    }
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(size: u64) -> SlabClass {
        SlabClass::for_size(size).unwrap()
    }

    #[test]
    fn empty_roundtrip() {
        let b = Bucket::empty();
        assert_eq!(Bucket::decode(&b.encode()), b);
        assert_eq!(b.free_slots(), 10);
        assert!(b.entries().is_empty());
    }

    #[test]
    fn pointer_roundtrip() {
        let mut b = Bucket::empty();
        let slot = b.insert_pointer(0x7FFF_FFFF, 511, class(128)).unwrap();
        assert_eq!(slot, 0);
        let d = Bucket::decode(&b.encode());
        match &d.entries()[0] {
            BucketEntry::Pointer {
                ptr, sec, class: c, ..
            } => {
                assert_eq!(*ptr, 0x7FFF_FFFF);
                assert_eq!(*sec, 511);
                assert_eq!(c.size(), 128);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn inline_roundtrip_various_sizes() {
        for kv in [(1usize, 1usize), (3, 7), (8, 8), (16, 28), (20, 24)] {
            let key: Vec<u8> = (0..kv.0 as u8).collect();
            let value: Vec<u8> = (100..100 + kv.1 as u8).collect();
            let mut b = Bucket::empty();
            b.insert_inline(&key, &value).unwrap();
            let d = Bucket::decode(&b.encode());
            match &d.entries()[0] {
                BucketEntry::Inline {
                    key: k, value: v, ..
                } => {
                    assert_eq!(k, &key);
                    assert_eq!(v, &value);
                }
                e => panic!("unexpected {e:?}"),
            }
        }
    }

    #[test]
    fn max_inline_kv_fills_bucket() {
        let key = vec![1u8; 8];
        let value = vec![2u8; MAX_INLINE_KV - 8];
        let mut b = Bucket::empty();
        assert_eq!(b.insert_inline(&key, &value), Some(0));
        assert_eq!(b.free_slots(), 0);
        // Over the limit fails.
        let mut b2 = Bucket::empty();
        assert_eq!(b2.insert_inline(&key, &[0u8; MAX_INLINE_KV - 7]), None);
    }

    #[test]
    fn mixed_entries_coexist() {
        let mut b = Bucket::empty();
        b.insert_inline(b"aa", b"1111").unwrap(); // 3 slots
        b.insert_pointer(42, 7, class(64)).unwrap();
        b.insert_inline(b"bb", b"2").unwrap(); // 2 slots
        let d = Bucket::decode(&b.encode());
        let es = d.entries();
        assert_eq!(es.len(), 3);
        assert!(matches!(&es[1], BucketEntry::Pointer { ptr: 42, .. }));
    }

    #[test]
    fn chain_roundtrip() {
        let mut b = Bucket::empty();
        b.set_chain(Some(12345));
        let d = Bucket::decode(&b.encode());
        assert_eq!(d.chain(), Some(12345));
        b.set_chain(None);
        assert_eq!(Bucket::decode(&b.encode()).chain(), None);
        // Chain pointer 0 is valid and distinct from no-chain.
        b.set_chain(Some(0));
        assert_eq!(Bucket::decode(&b.encode()).chain(), Some(0));
    }

    #[test]
    fn remove_inline_frees_run() {
        let mut b = Bucket::empty();
        let s = b.insert_inline(b"key1", b"0123456789").unwrap(); // 20B → 4 slots
        assert_eq!(b.free_slots(), 6);
        b.remove(s);
        assert_eq!(b.free_slots(), 10);
        assert!(b.entries().is_empty());
    }

    #[test]
    fn remove_pointer_keeps_others() {
        let mut b = Bucket::empty();
        let s0 = b.insert_pointer(1, 1, class(32)).unwrap();
        let _s1 = b.insert_pointer(2, 2, class(32)).unwrap();
        b.remove(s0);
        let es = b.entries();
        assert_eq!(es.len(), 1);
        assert!(matches!(&es[0], BucketEntry::Pointer { ptr: 2, .. }));
    }

    #[test]
    fn compaction_defragments() {
        let mut b = Bucket::empty();
        // Fill with 5 two-slot inline KVs, then remove alternating ones.
        let mut starts = Vec::new();
        for i in 0..5u8 {
            starts.push(b.insert_inline(&[i], &[i; 3]).unwrap());
        }
        assert_eq!(b.free_slots(), 0);
        b.remove(starts[0]);
        b.remove(starts[2]);
        b.remove(starts[4]);
        // 6 free slots but fragmented in 2-slot holes; a 5-slot inline KV
        // needs compaction.
        let key = [9u8; 4];
        let val = [8u8; 15]; // 19B + 6 header = 5 slots
        let s = b.insert_inline(&key, &val);
        assert!(s.is_some(), "compaction should make room");
        let es = b.entries();
        assert_eq!(es.len(), 3);
        assert!(es.iter().any(|e| matches!(
            e,
            BucketEntry::Inline { key: k, .. } if k == &key
        )));
    }

    #[test]
    fn full_bucket_rejects_pointer() {
        let mut b = Bucket::empty();
        for i in 0..10 {
            assert!(b.insert_pointer(i, 0, class(32)).is_some());
        }
        assert_eq!(b.insert_pointer(11, 0, class(32)), None);
        assert_eq!(b.free_slots(), 0);
    }

    #[test]
    fn inline_slots_needed_math() {
        assert_eq!(Bucket::inline_slots_needed(1), 2); // 7B
        assert_eq!(Bucket::inline_slots_needed(4), 2); // 10B
        assert_eq!(Bucket::inline_slots_needed(5), 3); // 11B
        assert_eq!(Bucket::inline_slots_needed(MAX_INLINE_KV), 10);
    }

    #[test]
    fn inline_expiry_stamp_roundtrips() {
        let mut b = Bucket::empty();
        b.insert_inline_expiring(b"k", b"v", 0xDEAD_BEEF).unwrap();
        b.insert_inline(b"k2", b"immortal").unwrap();
        let d = Bucket::decode(&b.encode());
        let es = d.entries();
        assert!(matches!(
            &es[0],
            BucketEntry::Inline {
                expiry: 0xDEAD_BEEF,
                ..
            }
        ));
        assert!(matches!(&es[1], BucketEntry::Inline { expiry: 0, .. }));
        // The stamp survives compaction.
        let mut c = d.clone();
        c.compact();
        assert_eq!(c.entries(), es);
    }

    #[test]
    fn exhaustive_bitpattern_roundtrip() {
        // Stress the nibble/bitmap packing with varied patterns.
        let mut b = Bucket::empty();
        b.insert_pointer(0x2AAA_AAAA, 0x155, class(512)).unwrap();
        b.insert_inline(&[0xFF; 5], &[0x00; 5]).unwrap();
        b.insert_pointer(0x1555_5555, 0x0AA, class(32)).unwrap();
        b.set_chain(Some(0x7FFF_FFFF));
        let d = Bucket::decode(&b.encode());
        assert_eq!(d, b);
        assert_eq!(d.encode(), b.encode());
    }
}
