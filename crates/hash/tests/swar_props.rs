//! Property tests pinning SWAR probing to the per-slot decoded scan.
//!
//! The raw bucket walk ([`RawEntries`]) and the word-level secondary-hash
//! probe ([`swar::probe_candidates`]) are the hot-path replacements for
//! `Bucket::decode` + `Bucket::entries`; these properties assert the two
//! views agree over arbitrary bucket contents — inline runs of every
//! length, pointer slots with arbitrary tags, mixed and fragmented
//! buckets — and that the table built on the raw walk still matches a
//! reference map when every key hashes into one chained bucket.

use kvd_hash::swar::{self, RawEntry};
use kvd_hash::{Bucket, BucketEntry, HashTable, HashTableConfig, RawEntries};
use kvd_mem::FlatMemory;
use kvd_slab::SlabClass;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum BucketOp {
    InsertInline {
        key: Vec<u8>,
        value: Vec<u8>,
        expiry: u32,
    },
    InsertPointer {
        ptr: u32,
        sec: u16,
        class_idx: usize,
    },
    RemoveNth(usize),
    SetChain(Option<u32>),
}

fn bucket_op() -> impl Strategy<Value = BucketOp> {
    prop_oneof![
        (
            prop::collection::vec(any::<u8>(), 1..12),
            prop::collection::vec(any::<u8>(), 0..30),
            any::<u32>()
        )
            .prop_map(|(key, value, expiry)| BucketOp::InsertInline { key, value, expiry }),
        (any::<u32>(), any::<u16>(), 0usize..5).prop_map(|(p, s, c)| {
            BucketOp::InsertPointer {
                ptr: p & 0x7FFF_FFFF,
                sec: s & 0x1FF,
                class_idx: c,
            }
        }),
        any::<usize>().prop_map(BucketOp::RemoveNth),
        prop::option::of(any::<u32>().prop_map(|p| p & 0x7FFF_FFFF)).prop_map(BucketOp::SetChain),
    ]
}

/// Builds an arbitrary (valid) bucket from an op sequence.
fn build(ops: Vec<BucketOp>) -> Bucket {
    let mut b = Bucket::empty();
    for op in ops {
        match op {
            BucketOp::InsertInline { key, value, expiry } => {
                let _ = b.insert_inline_expiring(&key, &value, expiry);
            }
            BucketOp::InsertPointer {
                ptr,
                sec,
                class_idx,
            } => {
                let _ = b.insert_pointer(ptr, sec, SlabClass::from_index(class_idx));
            }
            BucketOp::RemoveNth(n) => {
                let entries = b.entries();
                if !entries.is_empty() {
                    let slot = match &entries[n % entries.len()] {
                        BucketEntry::Inline { slot, .. } => *slot,
                        BucketEntry::Pointer { slot, .. } => *slot,
                    };
                    b.remove(slot);
                }
            }
            BucketOp::SetChain(c) => b.set_chain(c),
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The zero-copy raw walk yields exactly the entries (same order,
    /// same slots, same bytes) as the decoded per-slot scan.
    #[test]
    fn raw_walk_matches_decoded_scan(ops in prop::collection::vec(bucket_op(), 0..40)) {
        let b = build(ops);
        let bytes = b.encode();
        let raw: Vec<BucketEntry> = RawEntries::new(&bytes)
            .map(|e| match e {
                RawEntry::Inline { slot, nslots, key, value, expiry } => BucketEntry::Inline {
                    slot,
                    nslots,
                    key: key.to_vec(),
                    value: value.to_vec(),
                    expiry,
                },
                RawEntry::Pointer { slot, raw, class } => BucketEntry::Pointer {
                    slot,
                    ptr: swar::slot_ptr(raw),
                    sec: swar::slot_sec(raw),
                    class,
                },
            })
            .collect();
        prop_assert_eq!(raw, b.entries());
        prop_assert_eq!(swar::chain_of(&bytes), b.chain());
        prop_assert_eq!(swar::free_slots_of(&bytes), b.free_slots());
    }

    /// The word-level secondary-hash probe flags exactly the pointer
    /// slots a per-slot scan would, for every possible 9-bit tag.
    #[test]
    fn probe_matches_per_slot_scan(
        ops in prop::collection::vec(bucket_op(), 0..40),
        sec in 0u16..512,
    ) {
        let b = build(ops);
        let bytes = b.encode();
        let expect: u16 = b
            .entries()
            .iter()
            .filter_map(|e| match e {
                BucketEntry::Pointer { slot, sec: s, .. } if *s == sec => Some(1u16 << slot),
                _ => None,
            })
            .sum();
        prop_assert_eq!(swar::probe_candidates(&bytes, sec), expect);
    }

    /// The widened pair probe (five 16-byte loads covering two slots
    /// each) agrees with ten independent one-word tag compares, for
    /// arbitrary bucket contents and every 9-bit tag.
    #[test]
    fn pair_probe_matches_per_slot_compares(
        ops in prop::collection::vec(bucket_op(), 0..40),
        sec in 0u16..512,
    ) {
        let bytes = build(ops).encode();
        let mut expect = 0u16;
        for slot in 0..10 {
            if swar::sec_matches(swar::slot_raw(&bytes, slot), sec) {
                expect |= 1 << slot;
            }
        }
        prop_assert_eq!(swar::sec_match_mask(&bytes, sec), expect);
    }

    /// A single-bucket index forces every key through chained buckets;
    /// the SWAR-walking table must still match a reference map, via both
    /// the owned and the scratch-buffer read paths.
    #[test]
    fn chained_table_matches_reference(
        ops in prop::collection::vec(
            (any::<u8>(), prop::option::of(0usize..120)),
            1..150,
        )
    ) {
        let mem = 1u64 << 16;
        let mut table = HashTable::new(
            FlatMemory::new(mem),
            HashTableConfig::new(mem, 64.0 / mem as f64, 24),
        );
        prop_assert_eq!(table.n_buckets(), 1);
        let mut reference = std::collections::HashMap::new();
        let mut scratch = Vec::new();
        for (k, v) in ops {
            let key = format!("key-{}", k % 30).into_bytes();
            match v {
                Some(len) => {
                    let value = vec![k; len];
                    table.put(&key, &value).expect("64KiB fits this workload");
                    reference.insert(key, value);
                }
                None => {
                    let existed = table.delete(&key);
                    prop_assert_eq!(existed, reference.remove(&key).is_some());
                }
            }
        }
        for (k, v) in &reference {
            let owned = table.get(k);
            prop_assert_eq!(owned.as_ref(), Some(v));
            let hit = table.get_into(k, &mut scratch);
            prop_assert_eq!(hit, Some(v.len()));
            prop_assert_eq!(&scratch, v);
        }
        prop_assert_eq!(table.len(), reference.len() as u64);
    }
}
