//! Golden-bytes tests for the bucket layout (paper Figure 5).
//!
//! The 64-byte bucket encoding is the on-"disk" format of the hash
//! index; pin it so refactors cannot silently shuffle fields (which would
//! corrupt any persisted or cross-version state).

use kvd_hash::{Bucket, BUCKET_BYTES};
use kvd_slab::SlabClass;

#[test]
fn golden_empty_bucket_is_zero() {
    assert_eq!(Bucket::empty().encode(), [0u8; BUCKET_BYTES]);
}

#[test]
fn golden_pointer_slot_layout() {
    let mut b = Bucket::empty();
    // ptr = 0x12345678 (31-bit granule offset), sec = 0x1AB (9 bits),
    // class = 64B (type field 2) in slot 0.
    b.insert_pointer(0x1234_5678, 0x1AB, SlabClass::for_size(64).expect("valid"));
    let bytes = b.encode();
    // Slot 0 bytes 0..5: little-endian (ptr | sec << 31) = 0x0D578_9345678.
    let raw = (0x1234_5678u64) | ((0x1ABu64) << 31);
    assert_eq!(&bytes[0..5], &raw.to_le_bytes()[0..5]);
    // Type nibbles at byte 50: slot0 low nibble = 2.
    assert_eq!(bytes[50], 0x02);
    // used/start bitmaps: bit 0 set.
    assert_eq!(u16::from_le_bytes([bytes[55], bytes[56]]), 0b1);
    assert_eq!(u16::from_le_bytes([bytes[57], bytes[58]]), 0b1);
    // No chain.
    assert_eq!(&bytes[59..63], &[0, 0, 0, 0]);
}

#[test]
fn golden_inline_kv_layout() {
    let mut b = Bucket::empty();
    b.insert_inline(b"ab", b"123").expect("fits");
    let bytes = b.encode();
    // 6-byte header + 2+3 payload = 11 bytes → 3 slots: klen, vlen,
    // expiry stamp (LE u32, 0 = immortal), key, value.
    assert_eq!(
        &bytes[0..11],
        &[2, 3, 0, 0, 0, 0, b'a', b'b', b'1', b'2', b'3']
    );
    // 3 slots used, 1 start.
    assert_eq!(u16::from_le_bytes([bytes[55], bytes[56]]), 0b111);
    assert_eq!(u16::from_le_bytes([bytes[57], bytes[58]]), 0b001);
    // Inline slots carry type 0.
    assert_eq!(bytes[50], 0x00);
}

#[test]
fn golden_inline_expiry_stamp_layout() {
    let mut b = Bucket::empty();
    b.insert_inline_expiring(b"ab", b"123", 0x0102_0304)
        .expect("fits");
    let bytes = b.encode();
    // The stamp sits at run bytes 2..6, little-endian.
    assert_eq!(
        &bytes[0..11],
        &[2, 3, 0x04, 0x03, 0x02, 0x01, b'a', b'b', b'1', b'2', b'3']
    );
}

#[test]
fn golden_chain_pointer_layout() {
    let mut b = Bucket::empty();
    b.set_chain(Some(0x0123_4567));
    let bytes = b.encode();
    // Bit 31 is the valid flag.
    assert_eq!(
        u32::from_le_bytes([bytes[59], bytes[60], bytes[61], bytes[62]]),
        0x0123_4567 | 0x8000_0000
    );
    // Byte 63 is reserved and stays zero.
    assert_eq!(bytes[63], 0);
}
