//! Property tests for the bucket wire format and the hash table.
//!
//! The bucket codec is the trickiest bit-packing in the system (slots,
//! nibble type fields, dual bitmaps, chain pointer); these properties
//! pin it against a model and guarantee the encode/decode pair is total
//! and lossless under arbitrary operation sequences.

use kvd_hash::{Bucket, BucketEntry, HashTable, HashTableConfig};
use kvd_mem::FlatMemory;
use kvd_slab::SlabClass;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum BucketOp {
    InsertInline {
        key: Vec<u8>,
        value: Vec<u8>,
        expiry: u32,
    },
    InsertPointer {
        ptr: u32,
        sec: u16,
        class_idx: usize,
    },
    RemoveNth(usize),
    SetChain(Option<u32>),
}

fn bucket_op() -> impl Strategy<Value = BucketOp> {
    prop_oneof![
        (
            prop::collection::vec(any::<u8>(), 1..12),
            prop::collection::vec(any::<u8>(), 0..20),
            any::<u32>()
        )
            .prop_map(|(key, value, expiry)| BucketOp::InsertInline { key, value, expiry }),
        (any::<u32>(), any::<u16>(), 0usize..5).prop_map(|(p, s, c)| {
            BucketOp::InsertPointer {
                ptr: p & 0x7FFF_FFFF,
                sec: s & 0x1FF,
                class_idx: c,
            }
        }),
        any::<usize>().prop_map(BucketOp::RemoveNth),
        prop::option::of(any::<u32>().prop_map(|p| p & 0x7FFF_FFFF)).prop_map(BucketOp::SetChain),
    ]
}

/// Reference model: an ordered list of logical entries plus a chain.
#[derive(Debug, Clone, PartialEq)]
enum ModelEntry {
    Inline(Vec<u8>, Vec<u8>, u32),
    Pointer(u32, u16, usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary op sequences: the bucket agrees with a simple model and
    /// the wire codec round-trips after every step.
    #[test]
    fn bucket_matches_model(ops in prop::collection::vec(bucket_op(), 0..40)) {
        let mut b = Bucket::empty();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut chain: Option<u32> = None;
        for op in ops {
            match op {
                BucketOp::InsertInline { key, value, expiry } => {
                    if b.insert_inline_expiring(&key, &value, expiry).is_some() {
                        model.push(ModelEntry::Inline(key, value, expiry));
                    }
                }
                BucketOp::InsertPointer { ptr, sec, class_idx } => {
                    let class = SlabClass::from_index(class_idx);
                    if b.insert_pointer(ptr, sec, class).is_some() {
                        model.push(ModelEntry::Pointer(ptr, sec, class_idx));
                    }
                }
                BucketOp::RemoveNth(n) => {
                    let entries = b.entries();
                    if !entries.is_empty() {
                        let n = n % entries.len();
                        let slot = match &entries[n] {
                            BucketEntry::Inline { slot, .. } => *slot,
                            BucketEntry::Pointer { slot, .. } => *slot,
                        };
                        b.remove(slot);
                        // Identify the removed logical entry in the model.
                        let target = match &entries[n] {
                            BucketEntry::Inline { key, value, expiry, .. } => {
                                ModelEntry::Inline(key.clone(), value.clone(), *expiry)
                            }
                            BucketEntry::Pointer { ptr, sec, class, .. } => {
                                ModelEntry::Pointer(*ptr, *sec, class.index())
                            }
                        };
                        let pos = model
                            .iter()
                            .position(|e| *e == target)
                            .expect("decoded entry exists in model");
                        model.remove(pos);
                    }
                }
                BucketOp::SetChain(c) => {
                    b.set_chain(c);
                    chain = c;
                }
            }
            // Wire roundtrip after every mutation.
            let decoded = Bucket::decode(&b.encode());
            prop_assert_eq!(&decoded, &b);
            prop_assert_eq!(decoded.chain(), chain);
            // Model equivalence (as multisets of logical entries).
            let mut got: Vec<ModelEntry> = b
                .entries()
                .into_iter()
                .map(|e| match e {
                    BucketEntry::Inline { key, value, expiry, .. } => {
                        ModelEntry::Inline(key, value, expiry)
                    }
                    BucketEntry::Pointer { ptr, sec, class, .. } => {
                        ModelEntry::Pointer(ptr, sec, class.index())
                    }
                })
                .collect();
            let mut want = model.clone();
            let sort_key = |e: &ModelEntry| format!("{e:?}");
            got.sort_by_key(sort_key);
            want.sort_by_key(sort_key);
            prop_assert_eq!(got, want);
        }
    }

    /// The table matches a reference map for arbitrary keys and value
    /// sizes spanning inline and every slab class.
    #[test]
    fn table_matches_reference(
        ops in prop::collection::vec(
            (any::<u8>(), prop::option::of(0usize..500)),
            1..250,
        )
    ) {
        let mem = 1u64 << 20;
        let mut table = HashTable::new(
            FlatMemory::new(mem),
            HashTableConfig::new(mem, 0.5, 24),
        );
        let mut reference = std::collections::HashMap::new();
        for (k, v) in ops {
            let key = format!("key-{}", k % 40).into_bytes();
            match v {
                Some(len) => {
                    let value = vec![k; len];
                    table.put(&key, &value).expect("1MiB fits this workload");
                    reference.insert(key, value);
                }
                None => {
                    let existed = table.delete(&key);
                    prop_assert_eq!(existed, reference.remove(&key).is_some());
                }
            }
        }
        for (k, v) in &reference {
            let got = table.get(k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        prop_assert_eq!(table.len(), reference.len() as u64);
        // Memory accounting is exact.
        let expect_bytes: usize = reference.iter().map(|(k, v)| k.len() + v.len()).sum();
        prop_assert_eq!(table.stored_bytes(), expect_bytes as u64);
    }

    /// Decoding any bucket we encoded never panics and is idempotent.
    #[test]
    fn encode_decode_idempotent(
        keys in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 1..10),
             prop::collection::vec(any::<u8>(), 0..10)),
            0..6,
        )
    ) {
        let mut b = Bucket::empty();
        for (k, v) in keys {
            let _ = b.insert_inline(&k, &v);
        }
        let once = b.encode();
        let twice = Bucket::decode(&once).encode();
        prop_assert_eq!(once, twice);
    }
}
