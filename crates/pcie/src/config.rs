//! PCIe endpoint configuration with the paper's measured constants.

use kvd_sim::{Bandwidth, LatencyModel, SimTime};

/// Configuration of one PCIe endpoint as measured in the paper (§2.4, §4).
///
/// The defaults describe the testbed: a PCIe Gen3 x8 link on an Intel
/// Stratix V based programmable NIC, attached through a bifurcated x16
/// connector (two x8 endpoints total; model one `DmaPort` per endpoint).
///
/// # Examples
///
/// ```
/// use kvd_pcie::PcieConfig;
///
/// let cfg = PcieConfig::gen3_x8();
/// assert_eq!(cfg.tlp_overhead_bytes, 26);
/// assert_eq!(cfg.read_tags, 64);
/// // 64B accesses have a theoretical ceiling of ~87 Mops.
/// let mops = cfg.bandwidth.bytes_per_sec() / (64.0 + 26.0) / 1e6;
/// assert!((mops - 87.5).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PcieConfig {
    /// Usable data bandwidth per direction (paper: 7.87 GB/s theoretical
    /// for a Gen3 x8 endpoint).
    pub bandwidth: Bandwidth,
    /// TLP header + padding per DMA request for 64-bit addressing
    /// (paper: 26 bytes).
    pub tlp_overhead_bytes: u64,
    /// Maximum TLP payload size; larger requests are split.
    pub max_payload_bytes: u64,
    /// DMA read tags supported by the FPGA DMA engine (paper: 64),
    /// limiting read concurrency.
    pub read_tags: u16,
    /// Posted TLP header credits advertised by the root complex for DMA
    /// writes (paper: 88).
    pub posted_header_credits: u32,
    /// Non-posted TLP header credits for DMA reads (paper: 84).
    pub nonposted_header_credits: u32,
    /// Round-trip latency of a cached DMA read, including FPGA processing
    /// delay (paper: 800 ns).
    pub cached_read_latency: LatencyModel,
    /// Extra latency spread of random non-cached reads, from host DRAM
    /// access, refresh and PCIe response reordering (paper: +250 ns mean;
    /// modelled as uniform 0–500 ns on top of the cached latency).
    pub noncached_extra: SimTime,
    /// Time for the root complex to absorb a posted write and return the
    /// credit (much shorter than a read round trip).
    pub posted_credit_return: SimTime,
    /// Extra attempts the DMA engine makes when a read completion is
    /// corrupted or times out before giving up on the transaction.
    pub read_retry_limit: u32,
    /// Backoff before the first retry; doubles on each further retry
    /// (bounded exponential backoff, as a hardware retry engine would).
    pub retry_backoff: SimTime,
    /// How long the engine waits for a lost completion before declaring
    /// the tag dead and reclaiming it (PCIe completion timeout).
    pub tag_timeout: SimTime,
}

impl PcieConfig {
    /// The paper's PCIe Gen3 x8 endpoint.
    pub fn gen3_x8() -> Self {
        PcieConfig {
            bandwidth: Bandwidth::from_gbytes_per_sec(7.87),
            tlp_overhead_bytes: 26,
            max_payload_bytes: 256,
            read_tags: 64,
            posted_header_credits: 88,
            nonposted_header_credits: 84,
            cached_read_latency: LatencyModel::fixed(SimTime::from_ns(800)),
            noncached_extra: SimTime::from_ns(500),
            posted_credit_return: SimTime::from_ns(300),
            read_retry_limit: 4,
            retry_backoff: SimTime::from_ns(200),
            tag_timeout: SimTime::from_us(10),
        }
    }

    /// Mean round-trip latency of a random (non-cached) 64 B DMA read.
    ///
    /// The paper quotes ~1050 ns (800 ns cached + 250 ns average extra);
    /// used for back-of-envelope concurrency math (92 in-flight requests
    /// needed to saturate the link at 64 B).
    pub fn mean_random_read_latency(&self) -> SimTime {
        self.cached_read_latency.mean() + self.noncached_extra / 2
    }

    /// Wire bytes for one DMA of `payload` bytes (TLP splitting included).
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        let tlps = payload.div_ceil(self.max_payload_bytes).max(1);
        payload + tlps * self.tlp_overhead_bytes
    }

    /// Theoretical Mops ceiling for back-to-back DMAs of `payload` bytes,
    /// ignoring latency and concurrency limits (bandwidth-only bound).
    pub fn bandwidth_bound_mops(&self, payload: u64) -> f64 {
        self.bandwidth.bytes_per_sec() / self.wire_bytes(payload) as f64 / 1e6
    }
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig::gen3_x8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let cfg = PcieConfig::gen3_x8();
        assert_eq!(cfg.read_tags, 64);
        assert_eq!(cfg.posted_header_credits, 88);
        assert_eq!(cfg.nonposted_header_credits, 84);
        assert_eq!(cfg.cached_read_latency.base(), SimTime::from_ns(800));
        // Paper: ~1050ns mean random read RTT.
        assert_eq!(cfg.mean_random_read_latency(), SimTime::from_ns(1050));
    }

    #[test]
    fn wire_bytes_includes_tlp_split() {
        let cfg = PcieConfig::gen3_x8();
        assert_eq!(cfg.wire_bytes(64), 90);
        assert_eq!(cfg.wire_bytes(256), 256 + 26);
        assert_eq!(cfg.wire_bytes(257), 257 + 2 * 26);
        // Zero-byte DMA still needs a header.
        assert_eq!(cfg.wire_bytes(0), 26);
    }

    #[test]
    fn sixty_four_byte_theoretical_throughput_matches_paper() {
        // Paper §2.4: "the theoretical throughput is therefore 5.6 GB/s, or
        // 87 Mops" for 64-byte granularity.
        let cfg = PcieConfig::gen3_x8();
        let mops = cfg.bandwidth_bound_mops(64);
        assert!((mops - 87.4).abs() < 1.0, "got {mops}");
        let payload_gbs = mops * 1e6 * 64.0 / 1e9;
        assert!((payload_gbs - 5.6).abs() < 0.1, "got {payload_gbs}");
    }
}
