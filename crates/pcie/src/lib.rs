#![warn(missing_docs)]
//! PCIe Gen3 DMA engine model for the KV-Direct reproduction.
//!
//! KV-Direct's key-value processor lives on the NIC and reaches the host
//! key-value storage through PCIe DMA, which §2.4 of the paper identifies
//! as the new bottleneck. This crate models one PCIe Gen3 x8 endpoint with
//! the exact constraints the paper measures:
//!
//! * **TLP overhead** — each DMA read or write needs a transport-layer
//!   packet with 26 bytes of header and padding for 64-bit addressing, so a
//!   64-byte access costs 90 bytes of link time (⇒ 87 Mops theoretical for
//!   Gen3 x8's 7.87 GB/s).
//! * **Credit-based flow control** — the root complex advertises 88 TLP
//!   posted header credits (DMA writes) and 84 non-posted header credits
//!   (DMA reads).
//! * **DMA read tags** — the FPGA DMA engine supports 64 PCIe tags, capping
//!   read concurrency at 64 in-flight requests, which with the ~1 µs
//!   round-trip latency caps random 64 B read throughput near 60 Mops
//!   (paper Figure 3a).
//! * **Latency** — cached DMA reads take ~800 ns (FPGA processing included);
//!   random non-cached reads add ~250 ns on average from DRAM access,
//!   refresh and PCIe response reordering (paper Figure 3b).
//!
//! [`DmaPort`] is a discrete-event model of a single endpoint;
//! [`stream`] contains the closed-loop saturation experiments
//! behind Figure 3.

pub mod config;
pub mod port;
pub mod stream;

pub use config::PcieConfig;
pub use port::{DmaError, DmaKind, DmaPort, PortStats};
pub use stream::{saturate_reads, saturate_writes, StreamResult};
