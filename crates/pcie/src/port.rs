//! Discrete-event model of one PCIe DMA endpoint.
//!
//! [`DmaPort`] tracks both link directions, the read-tag pool, and the
//! posted/non-posted credit pools. Callers submit reads and writes with a
//! timestamp and get back the completion time; if tags or credits are
//! exhausted the call transparently waits for the earliest release, exactly
//! like the FPGA DMA engine stalls its pipeline.

use kvd_sim::{
    BandwidthLink, CostSource, CreditPool, DetRng, EventQueue, FaultPlane, Histogram, OpLedger,
    PcieFault, SimTime, TagPool,
};

use crate::config::PcieConfig;

/// Which kind of DMA transaction to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaKind {
    /// Non-posted read; consumes a tag and a non-posted header credit.
    Read,
    /// Posted write; consumes a posted header credit only.
    Write,
}

/// Internal completion event kinds.
#[derive(Debug, Clone, Copy)]
enum Release {
    ReadDone { tag: u16 },
    WriteCreditReturn,
}

/// Aggregate traffic statistics of a [`DmaPort`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Completed DMA reads.
    pub reads: u64,
    /// Completed DMA writes.
    pub writes: u64,
    /// Payload bytes read.
    pub read_bytes: u64,
    /// Payload bytes written.
    pub write_bytes: u64,
    /// Times a read had to wait for a free tag.
    pub tag_stalls: u64,
    /// Times a transaction had to wait for a flow-control credit.
    pub credit_stalls: u64,
    /// Completions that arrived corrupted (LCRC failure) and were retried.
    pub corruptions: u64,
    /// Duplicate completions absorbed by the replay check.
    pub replays: u64,
    /// Reads whose completion never arrived; the tag was reclaimed after
    /// the completion timeout.
    pub timeouts: u64,
    /// Retry attempts performed by the bounded-backoff recovery engine.
    pub retries: u64,
    /// Reads abandoned after the retry budget ran out.
    pub failed_reads: u64,
}

/// Unrecoverable DMA failure surfaced by [`DmaPort::try_read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// Every attempt was corrupted or timed out; the engine gave up after
    /// `attempts` tries.
    RetriesExhausted {
        /// Total attempts made (1 initial + configured retries).
        attempts: u32,
    },
}

impl std::fmt::Display for DmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmaError::RetriesExhausted { attempts } => {
                write!(f, "DMA read failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DmaError {}

/// One PCIe Gen3 endpoint with tag- and credit-limited DMA.
///
/// # Examples
///
/// ```
/// use kvd_pcie::{DmaPort, PcieConfig};
/// use kvd_sim::SimTime;
///
/// let mut port = DmaPort::new(PcieConfig::gen3_x8(), 7);
/// // A single cached 64B read completes in ~815ns (800ns RTT + wire time).
/// let done = port.read(SimTime::ZERO, 64, true);
/// assert!(done >= SimTime::from_ns(800) && done < SimTime::from_ns(900));
/// ```
pub struct DmaPort {
    cfg: PcieConfig,
    /// NIC→host direction: read request TLPs and write TLPs.
    tx: BandwidthLink,
    /// Host→NIC direction: read completion TLPs.
    rx: BandwidthLink,
    tags: TagPool,
    nonposted: CreditPool,
    posted: CreditPool,
    releases: EventQueue<Release>,
    rng: DetRng,
    faults: FaultPlane,
    stats: PortStats,
    read_latency: Histogram,
}

impl DmaPort {
    /// Creates an idle port with the given configuration and RNG seed.
    pub fn new(cfg: PcieConfig, seed: u64) -> Self {
        DmaPort::with_faults(cfg, seed, FaultPlane::disabled())
    }

    /// Creates a port whose transactions suffer faults drawn from `faults`.
    pub fn with_faults(cfg: PcieConfig, seed: u64, faults: FaultPlane) -> Self {
        DmaPort {
            tags: TagPool::new(cfg.read_tags),
            nonposted: CreditPool::new(cfg.nonposted_header_credits),
            posted: CreditPool::new(cfg.posted_header_credits),
            tx: BandwidthLink::new(cfg.bandwidth),
            rx: BandwidthLink::new(cfg.bandwidth),
            releases: EventQueue::new(),
            rng: DetRng::seed(seed),
            faults,
            stats: PortStats::default(),
            read_latency: Histogram::new(),
            cfg,
        }
    }

    /// The endpoint configuration.
    pub fn config(&self) -> &PcieConfig {
        &self.cfg
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &PortStats {
        &self.stats
    }

    /// The port's fault plane (injection counters live here).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Mutable fault-plane access (rate changes, counter resets).
    pub fn faults_mut(&mut self) -> &mut FaultPlane {
        &mut self.faults
    }

    /// Histogram of read round-trip latencies (picoseconds).
    pub fn read_latency(&self) -> &Histogram {
        &self.read_latency
    }

    /// Applies all resource releases scheduled at or before `now`.
    fn drain_releases(&mut self, now: SimTime) {
        while let Some(at) = self.releases.peek_time() {
            if at > now {
                break;
            }
            let (_, rel) = self.releases.pop().expect("peeked event vanished");
            match rel {
                Release::ReadDone { tag } => {
                    self.tags.release(tag);
                    self.nonposted.release();
                }
                Release::WriteCreditReturn => self.posted.release(),
            }
        }
    }

    /// Blocks (in simulated time) until a read tag and non-posted credit
    /// are available; returns the possibly-postponed issue time.
    fn wait_read_resources(&mut self, mut now: SimTime) -> (SimTime, u16) {
        loop {
            self.drain_releases(now);
            if self.tags.available() > 0 && self.nonposted.available() > 0 {
                let tag = self.tags.acquire().expect("tag checked available");
                assert!(self.nonposted.try_acquire(), "credit checked available");
                return (now, tag);
            }
            if self.tags.available() == 0 {
                self.stats.tag_stalls += 1;
            } else {
                self.stats.credit_stalls += 1;
            }
            let next = self
                .releases
                .peek_time()
                .expect("resources exhausted with no pending release");
            now = now.max(next);
        }
    }

    fn wait_posted_credit(&mut self, mut now: SimTime) -> SimTime {
        loop {
            self.drain_releases(now);
            if self.posted.try_acquire() {
                return now;
            }
            self.stats.credit_stalls += 1;
            let next = self
                .releases
                .peek_time()
                .expect("credits exhausted with no pending return");
            now = now.max(next);
        }
    }

    /// Issues a DMA read of `bytes` at `now`; returns its completion time.
    ///
    /// `cached` selects the paper's cached-read latency (800 ns); random
    /// reads to host DRAM add a 0–500 ns uniform spread (≈250 ns mean).
    ///
    /// # Panics
    ///
    /// Panics if the fault plane exhausts the retry budget; fault-aware
    /// callers use [`DmaPort::try_read`].
    pub fn read(&mut self, now: SimTime, bytes: u64, cached: bool) -> SimTime {
        self.try_read(now, bytes, cached)
            .expect("DMA read retry budget exhausted")
    }

    /// Issues a DMA read of `bytes` at `now`; returns its completion time
    /// or the failure after the bounded-backoff retry budget runs out.
    ///
    /// Recovery policy on an injected fault:
    ///
    /// * **Corrupted completion** — the TLPs still serialize on the link,
    ///   then fail the LCRC check; the tag frees immediately and the
    ///   engine retries after an exponential backoff.
    /// * **Lost completion (timeout)** — nothing arrives; the engine
    ///   waits out `tag_timeout`, reclaims the tag, then retries.
    /// * **Replayed completion** — the duplicate burns host→NIC
    ///   bandwidth but is absorbed by the sequence check; no retry.
    pub fn try_read(
        &mut self,
        now: SimTime,
        bytes: u64,
        cached: bool,
    ) -> Result<SimTime, DmaError> {
        let mut retries = 0u32;
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt_at = now;
        let mut first_issue = None;
        loop {
            let (issue, tag) = self.wait_read_resources(attempt_at);
            let first_issue = *first_issue.get_or_insert(issue);
            // Request TLP (header only) serializes on the NIC→host link.
            let req_done = self.tx.transfer(issue, self.cfg.tlp_overhead_bytes);
            // Host-side service latency.
            let mut latency = self.cfg.cached_read_latency.sample(&mut self.rng);
            if !cached {
                latency +=
                    SimTime::from_ps(self.rng.u64_below(self.cfg.noncached_extra.as_ps() + 1));
            }
            let completion_bytes = self.cfg.wire_bytes(bytes);
            let retry_from = match self.faults.pcie_fault() {
                fault @ (PcieFault::None | PcieFault::Replay) => {
                    // Completion TLP(s) serialize on the host→NIC link.
                    let done = self.rx.transfer(req_done + latency, completion_bytes);
                    if fault == PcieFault::Replay {
                        // The duplicate completion serializes too, but the
                        // data was already accepted from the first copy.
                        self.stats.replays += 1;
                        self.rx.transfer(done, completion_bytes);
                    }
                    self.releases.push(done, Release::ReadDone { tag });
                    self.stats.reads += 1;
                    self.stats.read_bytes += bytes;
                    // Latency is measured from first issue (tag acquired),
                    // matching the paper's Figure 3b which plots per-request
                    // RTT, not queueing behind a saturating open loop.
                    self.read_latency.record_time(done - first_issue);
                    return Ok(done);
                }
                PcieFault::Corrupt => {
                    // Corrupted completion serializes, then fails LCRC; the
                    // tag frees as soon as the bad completion is consumed.
                    let done = self.rx.transfer(req_done + latency, completion_bytes);
                    self.releases.push(done, Release::ReadDone { tag });
                    self.stats.corruptions += 1;
                    done
                }
                PcieFault::Timeout => {
                    // No completion arrives; the tag is dead until the
                    // completion timeout reclaims it.
                    let dead = issue + self.cfg.tag_timeout;
                    self.releases.push(dead, Release::ReadDone { tag });
                    self.stats.timeouts += 1;
                    dead
                }
            };
            if retries >= self.cfg.read_retry_limit {
                self.stats.failed_reads += 1;
                self.faults.count_exhausted();
                return Err(DmaError::RetriesExhausted {
                    attempts: retries + 1,
                });
            }
            retries += 1;
            self.stats.retries += 1;
            self.faults.count_retry();
            attempt_at = retry_from + backoff;
            backoff = backoff * 2;
        }
    }

    /// Issues a posted DMA write of `bytes` at `now`; returns the time the
    /// last TLP leaves the NIC (posted writes do not wait for the host).
    pub fn write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let issue = self.wait_posted_credit(now);
        let wire = self.cfg.wire_bytes(bytes);
        let sent = self.tx.transfer(issue, wire);
        // The root complex absorbs the TLP and returns the credit shortly
        // after it lands.
        self.releases.push(
            sent + self.cfg.posted_credit_return,
            Release::WriteCreditReturn,
        );
        self.stats.writes += 1;
        self.stats.write_bytes += bytes;
        sent
    }

    /// Issues either kind of DMA.
    pub fn dma(&mut self, now: SimTime, kind: DmaKind, bytes: u64, cached: bool) -> SimTime {
        match kind {
            DmaKind::Read => self.read(now, bytes, cached),
            DmaKind::Write => self.write(now, bytes),
        }
    }

    /// Payload bytes moved in both directions.
    pub fn payload_bytes(&self) -> u64 {
        self.stats.read_bytes + self.stats.write_bytes
    }

    /// Number of in-flight reads (issued, completion pending).
    pub fn inflight_reads(&self) -> usize {
        (self.cfg.read_tags as usize) - self.tags.available()
    }

    /// Read-tag pressure: in-flight reads relative to the tag window
    /// (paper: 64 outstanding TLP tags). 1.0 means a new read must wait
    /// for a completion — the PCIe-side backpressure signal the admission
    /// layer watches.
    pub fn tag_pressure(&self) -> f64 {
        self.inflight_reads() as f64 / self.cfg.read_tags as f64
    }

    /// The time at which all submitted traffic has drained from both link
    /// directions (used by closed-loop throughput drivers).
    pub fn horizon(&self) -> SimTime {
        self.tx.free_at().max(self.rx.free_at())
    }
}

impl CostSource for DmaPort {
    fn emit_costs(&self, out: &mut OpLedger) {
        // Traffic only: the fault-flavored `PortStats` fields
        // (corruptions, replays, timeouts, retries) are already counted
        // by the port's fault plane, which emits them below.
        let s = self.stats();
        out.pcie.dma_reads += s.reads;
        out.pcie.dma_writes += s.writes;
        out.pcie.read_bytes += s.read_bytes;
        out.pcie.write_bytes += s.write_bytes;
        out.pcie.tag_stalls += s.tag_stalls;
        out.pcie.credit_stalls += s.credit_stalls;
        self.faults().emit_costs(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::FaultRates;

    fn port() -> DmaPort {
        DmaPort::new(PcieConfig::gen3_x8(), 42)
    }

    #[test]
    fn single_cached_read_latency() {
        let mut p = port();
        let done = p.read(SimTime::ZERO, 64, true);
        // 800ns RTT + 26B request + 90B completion serialization ≈ 815ns.
        assert!(done > SimTime::from_ns(800));
        assert!(done < SimTime::from_ns(850), "got {done}");
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.stats().read_bytes, 64);
    }

    #[test]
    fn noncached_read_adds_spread() {
        let mut p = port();
        let mut min = SimTime::from_secs(1);
        let mut max = SimTime::ZERO;
        for i in 0..200 {
            // Space requests out so they don't queue.
            let t0 = SimTime::from_us(10 * i);
            let done = p.read(t0, 64, false);
            let lat = done - t0;
            min = min.min(lat);
            max = max.max(lat);
        }
        assert!(min >= SimTime::from_ns(800));
        assert!(max > SimTime::from_ns(1200), "spread too small: {max}");
        assert!(max <= SimTime::from_ns(1350));
    }

    #[test]
    fn tag_pool_limits_concurrency() {
        let mut p = port();
        // Issue 100 reads at t=0: only 64 tags exist, so some must stall.
        for _ in 0..100 {
            p.read(SimTime::ZERO, 64, false);
        }
        assert!(p.stats().tag_stalls > 0);
        // In-flight reads never exceeded the tag count, and tag pressure
        // reports the same envelope as a fraction.
        assert!(p.inflight_reads() <= 64);
        assert!(p.tag_pressure() <= 1.0);
        assert_eq!(p.tag_pressure(), p.inflight_reads() as f64 / 64.0);
    }

    #[test]
    fn writes_are_posted_and_fast() {
        let mut p = port();
        let done = p.write(SimTime::ZERO, 64);
        // A write only waits for serialization (~11ns for 90B), not an RTT.
        assert!(done < SimTime::from_ns(50), "got {done}");
    }

    #[test]
    fn write_credits_bound_burst() {
        let mut p = port();
        // 88 posted credits; a large burst must hit credit stalls eventually
        // if serialization outpaces credit return. With 90B TLPs at 7.87GB/s
        // a TLP takes ~11.4ns; credits return 300ns after send, so ~27
        // credits are consumed before the first return — no stall. Issue
        // enough to wrap the credit window several times.
        for _ in 0..1000 {
            p.write(SimTime::ZERO, 64);
        }
        assert_eq!(p.stats().writes, 1000);
        // Throughput stays bandwidth-bound: last completion near
        // 1000 * 90B / 7.87GB/s ≈ 11.4us.
        let last = p.write(SimTime::ZERO, 64);
        assert!(
            last > SimTime::from_us(11) && last < SimTime::from_us(16),
            "{last}"
        );
    }

    #[test]
    fn read_throughput_is_tag_limited_at_64b() {
        // Closed-loop: keep 200 requests outstanding, measure completions.
        let mut p = port();
        let n = 5000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = last.max(p.read(SimTime::ZERO, 64, false));
        }
        let mops = n as f64 / last.as_secs_f64() / 1e6;
        // Paper Figure 3a: ~60 Mops for 64B random reads (64 tags / ~1.05us).
        assert!(mops > 50.0 && mops < 70.0, "got {mops} Mops");
    }

    #[test]
    fn write_throughput_near_bandwidth_bound_at_64b() {
        let mut p = port();
        let n = 5000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = last.max(p.write(SimTime::ZERO, 64));
        }
        let mops = n as f64 / last.as_secs_f64() / 1e6;
        // Bandwidth bound is 87.4 Mops; posted writes should get close.
        assert!(mops > 80.0, "got {mops} Mops");
    }

    #[test]
    fn large_reads_split_tlps() {
        let mut p = port();
        let done_small = p.read(SimTime::ZERO, 64, true) - SimTime::ZERO;
        let mut p2 = port();
        let done_big = p2.read(SimTime::ZERO, 1024, true) - SimTime::ZERO;
        // 1KiB completion (4 TLPs, 1128B wire) takes longer than 90B.
        assert!(done_big > done_small);
    }

    #[test]
    fn dma_dispatch_matches_direct_calls() {
        let mut a = port();
        let mut b = port();
        let ra = a.dma(SimTime::ZERO, DmaKind::Read, 64, true);
        let rb = b.read(SimTime::ZERO, 64, true);
        assert_eq!(ra, rb);
        let wa = a.dma(SimTime::from_us(5), DmaKind::Write, 64, true);
        let wb = b.write(SimTime::from_us(5), 64);
        assert_eq!(wa, wb);
    }

    fn faulty_port(rates: FaultRates) -> DmaPort {
        DmaPort::with_faults(PcieConfig::gen3_x8(), 42, FaultPlane::new(rates, 7))
    }

    #[test]
    fn disabled_fault_plane_is_bit_identical_to_plain_port() {
        let mut plain = port();
        let mut faulty = faulty_port(FaultRates::ZERO);
        for i in 0..500u64 {
            let t0 = SimTime::from_ns(137 * i);
            assert_eq!(plain.read(t0, 64, false), faulty.read(t0, 64, false));
            assert_eq!(plain.write(t0, 64), faulty.write(t0, 64));
        }
        assert_eq!(plain.stats(), faulty.stats());
        assert_eq!(faulty.faults().counters().total_faults(), 0);
    }

    #[test]
    fn always_corrupt_exhausts_retries_with_growing_backoff() {
        let rates = FaultRates {
            pcie_corrupt: 1.0,
            ..FaultRates::ZERO
        };
        let mut p = faulty_port(rates);
        let err = p.try_read(SimTime::ZERO, 64, true).unwrap_err();
        // read_retry_limit = 4 extra attempts -> 5 total.
        assert_eq!(err, DmaError::RetriesExhausted { attempts: 5 });
        assert_eq!(p.stats().corruptions, 5);
        assert_eq!(p.stats().retries, 4);
        assert_eq!(p.stats().failed_reads, 1);
        assert_eq!(p.stats().reads, 0, "failed reads must not count as reads");
        let c = p.faults().counters();
        assert_eq!(c.pcie_corruptions, 5);
        assert_eq!(c.retries, 4);
        assert_eq!(c.exhausted, 1);
    }

    #[test]
    fn backoff_doubles_between_attempts() {
        // With corrupt rate 1.0 all 5 attempts fail; total elapsed includes
        // backoffs 200 + 400 + 800 + 1600 ns = 3 us of pure backoff, plus
        // 5 failed round trips (~815 ns each).
        let rates = FaultRates {
            pcie_corrupt: 1.0,
            ..FaultRates::ZERO
        };
        let mut p = faulty_port(rates);
        let before = SimTime::ZERO;
        let _ = p.try_read(before, 64, true);
        // Each retry restarts at prior-done + backoff, so the 5th attempt
        // issues no earlier than 4*815ns + (200+400+800)ns ≈ 4.6 us.
        // Verify via a follow-up clean read on a fresh port being far faster.
        let mut clean = port();
        let clean_done = clean.read(SimTime::ZERO, 64, true);
        assert!(clean_done < SimTime::from_ns(850));
    }

    #[test]
    fn timeout_reclaims_tag_after_completion_timeout() {
        let rates = FaultRates {
            pcie_timeout: 1.0,
            ..FaultRates::ZERO
        };
        let mut cfg = PcieConfig::gen3_x8();
        cfg.read_retry_limit = 1;
        cfg.read_tags = 1;
        let mut p = DmaPort::with_faults(cfg.clone(), 42, FaultPlane::new(rates, 7));
        // Attempt 1 issues at t=0, times out, tag reclaimed at 10us; retry
        // issues at 10.2us (backoff), times out again -> dead until 20.2us.
        let err = p.try_read(SimTime::ZERO, 64, true).unwrap_err();
        assert_eq!(err, DmaError::RetriesExhausted { attempts: 2 });
        assert_eq!(p.stats().timeouts, 2);
        // Turn faults off: the next read at t=0 must stall on the dead tag
        // until the completion timeout reclaims it at 20.2us, then finish
        // in one clean round trip.
        p.faults_mut().set_rates(FaultRates::ZERO);
        let reclaim_at = cfg.tag_timeout * 2 + cfg.retry_backoff;
        let done = p.read(SimTime::ZERO, 64, true);
        assert!(done > reclaim_at, "issued before tag reclamation: {done}");
        assert!(done < reclaim_at + SimTime::from_us(1), "got {done}");
        assert!(p.stats().tag_stalls > 0);
    }

    #[test]
    fn replay_burns_bandwidth_but_succeeds() {
        let rates = FaultRates {
            pcie_replay: 1.0,
            ..FaultRates::ZERO
        };
        let mut p = faulty_port(rates);
        let done = p.try_read(SimTime::ZERO, 64, true).expect("replay absorbs");
        assert!(done < SimTime::from_ns(850));
        assert_eq!(p.stats().replays, 1);
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.faults().counters().pcie_replays, 1);
        // The duplicate completion occupies the rx link: a back-to-back
        // second read on a replaying port finishes later than on a clean one.
        let mut clean = port();
        clean.read(SimTime::ZERO, 64, true);
        let second_clean = clean.read(SimTime::ZERO, 64, true);
        let second_replay = p.read(SimTime::ZERO, 64, true);
        assert!(
            second_replay > second_clean,
            "{second_replay} vs {second_clean}"
        );
    }

    #[test]
    fn moderate_fault_rate_recovers_deterministically() {
        let rates = FaultRates {
            pcie_corrupt: 0.2,
            pcie_timeout: 0.05,
            ..FaultRates::ZERO
        };
        let run = |seed| {
            let mut p =
                DmaPort::with_faults(PcieConfig::gen3_x8(), 42, FaultPlane::new(rates, seed));
            let mut oks = 0u32;
            let mut last = SimTime::ZERO;
            for i in 0..300u64 {
                // Rare retry-budget exhaustion is a legal outcome at these
                // rates (p ≈ 0.25^5 per op); determinism is what's asserted.
                if let Ok(done) = p.try_read(SimTime::from_us(20 * i), 64, false) {
                    oks += 1;
                    last = done;
                }
            }
            (last, oks, p.stats().clone(), p.faults().counters())
        };
        let (a_last, a_oks, a_stats, a_counters) = run(7);
        let (b_last, b_oks, b_stats, b_counters) = run(7);
        assert_eq!(a_last, b_last);
        assert_eq!(
            (a_oks, &a_stats, &a_counters),
            (b_oks, &b_stats, &b_counters)
        );
        assert!(a_oks > 290, "recovery should absorb most faults: {a_oks}");
        assert!(a_counters.total_faults() > 0, "faults should have fired");
        let (_, _, c_stats, _) = run(8);
        assert_ne!(a_stats, c_stats, "different fault seed, different schedule");
    }
}
