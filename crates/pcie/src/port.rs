//! Discrete-event model of one PCIe DMA endpoint.
//!
//! [`DmaPort`] tracks both link directions, the read-tag pool, and the
//! posted/non-posted credit pools. Callers submit reads and writes with a
//! timestamp and get back the completion time; if tags or credits are
//! exhausted the call transparently waits for the earliest release, exactly
//! like the FPGA DMA engine stalls its pipeline.

use kvd_sim::{BandwidthLink, CreditPool, DetRng, EventQueue, Histogram, SimTime, TagPool};

use crate::config::PcieConfig;

/// Which kind of DMA transaction to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaKind {
    /// Non-posted read; consumes a tag and a non-posted header credit.
    Read,
    /// Posted write; consumes a posted header credit only.
    Write,
}

/// Internal completion event kinds.
#[derive(Debug, Clone, Copy)]
enum Release {
    ReadDone { tag: u16 },
    WriteCreditReturn,
}

/// Aggregate traffic statistics of a [`DmaPort`].
#[derive(Debug, Clone, Default)]
pub struct PortStats {
    /// Completed DMA reads.
    pub reads: u64,
    /// Completed DMA writes.
    pub writes: u64,
    /// Payload bytes read.
    pub read_bytes: u64,
    /// Payload bytes written.
    pub write_bytes: u64,
    /// Times a read had to wait for a free tag.
    pub tag_stalls: u64,
    /// Times a transaction had to wait for a flow-control credit.
    pub credit_stalls: u64,
}

/// One PCIe Gen3 endpoint with tag- and credit-limited DMA.
///
/// # Examples
///
/// ```
/// use kvd_pcie::{DmaPort, PcieConfig};
/// use kvd_sim::SimTime;
///
/// let mut port = DmaPort::new(PcieConfig::gen3_x8(), 7);
/// // A single cached 64B read completes in ~815ns (800ns RTT + wire time).
/// let done = port.read(SimTime::ZERO, 64, true);
/// assert!(done >= SimTime::from_ns(800) && done < SimTime::from_ns(900));
/// ```
pub struct DmaPort {
    cfg: PcieConfig,
    /// NIC→host direction: read request TLPs and write TLPs.
    tx: BandwidthLink,
    /// Host→NIC direction: read completion TLPs.
    rx: BandwidthLink,
    tags: TagPool,
    nonposted: CreditPool,
    posted: CreditPool,
    releases: EventQueue<Release>,
    rng: DetRng,
    stats: PortStats,
    read_latency: Histogram,
}

impl DmaPort {
    /// Creates an idle port with the given configuration and RNG seed.
    pub fn new(cfg: PcieConfig, seed: u64) -> Self {
        DmaPort {
            tags: TagPool::new(cfg.read_tags),
            nonposted: CreditPool::new(cfg.nonposted_header_credits),
            posted: CreditPool::new(cfg.posted_header_credits),
            tx: BandwidthLink::new(cfg.bandwidth),
            rx: BandwidthLink::new(cfg.bandwidth),
            releases: EventQueue::new(),
            rng: DetRng::seed(seed),
            stats: PortStats::default(),
            read_latency: Histogram::new(),
            cfg,
        }
    }

    /// The endpoint configuration.
    pub fn config(&self) -> &PcieConfig {
        &self.cfg
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &PortStats {
        &self.stats
    }

    /// Histogram of read round-trip latencies (picoseconds).
    pub fn read_latency(&self) -> &Histogram {
        &self.read_latency
    }

    /// Applies all resource releases scheduled at or before `now`.
    fn drain_releases(&mut self, now: SimTime) {
        while let Some(at) = self.releases.peek_time() {
            if at > now {
                break;
            }
            let (_, rel) = self.releases.pop().expect("peeked event vanished");
            match rel {
                Release::ReadDone { tag } => {
                    self.tags.release(tag);
                    self.nonposted.release();
                }
                Release::WriteCreditReturn => self.posted.release(),
            }
        }
    }

    /// Blocks (in simulated time) until a read tag and non-posted credit
    /// are available; returns the possibly-postponed issue time.
    fn wait_read_resources(&mut self, mut now: SimTime) -> (SimTime, u16) {
        loop {
            self.drain_releases(now);
            if self.tags.available() > 0 && self.nonposted.available() > 0 {
                let tag = self.tags.acquire().expect("tag checked available");
                assert!(self.nonposted.try_acquire(), "credit checked available");
                return (now, tag);
            }
            if self.tags.available() == 0 {
                self.stats.tag_stalls += 1;
            } else {
                self.stats.credit_stalls += 1;
            }
            let next = self
                .releases
                .peek_time()
                .expect("resources exhausted with no pending release");
            now = now.max(next);
        }
    }

    fn wait_posted_credit(&mut self, mut now: SimTime) -> SimTime {
        loop {
            self.drain_releases(now);
            if self.posted.try_acquire() {
                return now;
            }
            self.stats.credit_stalls += 1;
            let next = self
                .releases
                .peek_time()
                .expect("credits exhausted with no pending return");
            now = now.max(next);
        }
    }

    /// Issues a DMA read of `bytes` at `now`; returns its completion time.
    ///
    /// `cached` selects the paper's cached-read latency (800 ns); random
    /// reads to host DRAM add a 0–500 ns uniform spread (≈250 ns mean).
    pub fn read(&mut self, now: SimTime, bytes: u64, cached: bool) -> SimTime {
        let (issue, tag) = self.wait_read_resources(now);
        // Request TLP (header only) serializes on the NIC→host link.
        let req_done = self.tx.transfer(issue, self.cfg.tlp_overhead_bytes);
        // Host-side service latency.
        let mut latency = self.cfg.cached_read_latency.sample(&mut self.rng);
        if !cached {
            latency += SimTime::from_ps(self.rng.u64_below(self.cfg.noncached_extra.as_ps() + 1));
        }
        // Completion TLP(s) serialize on the host→NIC link.
        let completion_bytes = self.cfg.wire_bytes(bytes);
        let done = self.rx.transfer(req_done + latency, completion_bytes);
        self.releases.push(done, Release::ReadDone { tag });
        self.stats.reads += 1;
        self.stats.read_bytes += bytes;
        // Latency is measured from issue (tag acquired), matching the
        // paper's Figure 3b which plots per-request RTT, not queueing
        // behind a saturating open loop.
        self.read_latency.record_time(done - issue);
        done
    }

    /// Issues a posted DMA write of `bytes` at `now`; returns the time the
    /// last TLP leaves the NIC (posted writes do not wait for the host).
    pub fn write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let issue = self.wait_posted_credit(now);
        let wire = self.cfg.wire_bytes(bytes);
        let sent = self.tx.transfer(issue, wire);
        // The root complex absorbs the TLP and returns the credit shortly
        // after it lands.
        self.releases.push(
            sent + self.cfg.posted_credit_return,
            Release::WriteCreditReturn,
        );
        self.stats.writes += 1;
        self.stats.write_bytes += bytes;
        sent
    }

    /// Issues either kind of DMA.
    pub fn dma(&mut self, now: SimTime, kind: DmaKind, bytes: u64, cached: bool) -> SimTime {
        match kind {
            DmaKind::Read => self.read(now, bytes, cached),
            DmaKind::Write => self.write(now, bytes),
        }
    }

    /// Payload bytes moved in both directions.
    pub fn payload_bytes(&self) -> u64 {
        self.stats.read_bytes + self.stats.write_bytes
    }

    /// Number of in-flight reads (issued, completion pending).
    pub fn inflight_reads(&self) -> usize {
        (self.cfg.read_tags as usize) - self.tags.available()
    }

    /// The time at which all submitted traffic has drained from both link
    /// directions (used by closed-loop throughput drivers).
    pub fn horizon(&self) -> SimTime {
        self.tx.free_at().max(self.rx.free_at())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> DmaPort {
        DmaPort::new(PcieConfig::gen3_x8(), 42)
    }

    #[test]
    fn single_cached_read_latency() {
        let mut p = port();
        let done = p.read(SimTime::ZERO, 64, true);
        // 800ns RTT + 26B request + 90B completion serialization ≈ 815ns.
        assert!(done > SimTime::from_ns(800));
        assert!(done < SimTime::from_ns(850), "got {done}");
        assert_eq!(p.stats().reads, 1);
        assert_eq!(p.stats().read_bytes, 64);
    }

    #[test]
    fn noncached_read_adds_spread() {
        let mut p = port();
        let mut min = SimTime::from_secs(1);
        let mut max = SimTime::ZERO;
        for i in 0..200 {
            // Space requests out so they don't queue.
            let t0 = SimTime::from_us(10 * i);
            let done = p.read(t0, 64, false);
            let lat = done - t0;
            min = min.min(lat);
            max = max.max(lat);
        }
        assert!(min >= SimTime::from_ns(800));
        assert!(max > SimTime::from_ns(1200), "spread too small: {max}");
        assert!(max <= SimTime::from_ns(1350));
    }

    #[test]
    fn tag_pool_limits_concurrency() {
        let mut p = port();
        // Issue 100 reads at t=0: only 64 tags exist, so some must stall.
        for _ in 0..100 {
            p.read(SimTime::ZERO, 64, false);
        }
        assert!(p.stats().tag_stalls > 0);
        // In-flight reads never exceeded the tag count.
        assert!(p.inflight_reads() <= 64);
    }

    #[test]
    fn writes_are_posted_and_fast() {
        let mut p = port();
        let done = p.write(SimTime::ZERO, 64);
        // A write only waits for serialization (~11ns for 90B), not an RTT.
        assert!(done < SimTime::from_ns(50), "got {done}");
    }

    #[test]
    fn write_credits_bound_burst() {
        let mut p = port();
        // 88 posted credits; a large burst must hit credit stalls eventually
        // if serialization outpaces credit return. With 90B TLPs at 7.87GB/s
        // a TLP takes ~11.4ns; credits return 300ns after send, so ~27
        // credits are consumed before the first return — no stall. Issue
        // enough to wrap the credit window several times.
        for _ in 0..1000 {
            p.write(SimTime::ZERO, 64);
        }
        assert_eq!(p.stats().writes, 1000);
        // Throughput stays bandwidth-bound: last completion near
        // 1000 * 90B / 7.87GB/s ≈ 11.4us.
        let last = p.write(SimTime::ZERO, 64);
        assert!(
            last > SimTime::from_us(11) && last < SimTime::from_us(16),
            "{last}"
        );
    }

    #[test]
    fn read_throughput_is_tag_limited_at_64b() {
        // Closed-loop: keep 200 requests outstanding, measure completions.
        let mut p = port();
        let n = 5000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = last.max(p.read(SimTime::ZERO, 64, false));
        }
        let mops = n as f64 / last.as_secs_f64() / 1e6;
        // Paper Figure 3a: ~60 Mops for 64B random reads (64 tags / ~1.05us).
        assert!(mops > 50.0 && mops < 70.0, "got {mops} Mops");
    }

    #[test]
    fn write_throughput_near_bandwidth_bound_at_64b() {
        let mut p = port();
        let n = 5000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = last.max(p.write(SimTime::ZERO, 64));
        }
        let mops = n as f64 / last.as_secs_f64() / 1e6;
        // Bandwidth bound is 87.4 Mops; posted writes should get close.
        assert!(mops > 80.0, "got {mops} Mops");
    }

    #[test]
    fn large_reads_split_tlps() {
        let mut p = port();
        let done_small = p.read(SimTime::ZERO, 64, true) - SimTime::ZERO;
        let mut p2 = port();
        let done_big = p2.read(SimTime::ZERO, 1024, true) - SimTime::ZERO;
        // 1KiB completion (4 TLPs, 1128B wire) takes longer than 90B.
        assert!(done_big > done_small);
    }

    #[test]
    fn dma_dispatch_matches_direct_calls() {
        let mut a = port();
        let mut b = port();
        let ra = a.dma(SimTime::ZERO, DmaKind::Read, 64, true);
        let rb = b.read(SimTime::ZERO, 64, true);
        assert_eq!(ra, rb);
        let wa = a.dma(SimTime::from_us(5), DmaKind::Write, 64, true);
        let wb = b.write(SimTime::from_us(5), 64);
        assert_eq!(wa, wb);
    }
}
