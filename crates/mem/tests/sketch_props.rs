//! Property tests for the frequency plane behind the adaptive cache.
//!
//! Three guarantees the admission filter and the retune loop lean on:
//!
//! 1. **Count-min never underestimates** (at sample period 1): the
//!    estimate is a min over per-row counters that each saw every
//!    occurrence, so `estimate(x) >= true_count(x)` always.
//! 2. **Space-saving error bound**: every tracked entry's recorded
//!    error is at most `total/k`, and `count - err` never exceeds the
//!    item's true count — the lower bound the hot-key shed policy uses
//!    is sound.
//! 3. **Halving weakly preserves ordering**: `floor(x/2)` is monotone
//!    and commutes with `min`, so the sketch's relative ranking of two
//!    items survives an epoch reset.

use kvd_mem::{FreqSketch, SketchConfig, SpaceSaving};
use proptest::prelude::*;
use std::collections::HashMap;

fn exact_sketch(seed: u64) -> FreqSketch {
    FreqSketch::new(SketchConfig {
        rows: 4,
        cols: 256,
        sample_period: 1,
        halve_every: 0,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_min_never_underestimates(
        items in prop::collection::vec(0u64..64, 1..600),
        seed in 0u64..1 << 48,
    ) {
        let mut s = exact_sketch(seed);
        let mut truth: HashMap<u64, u32> = HashMap::new();
        for &it in &items {
            s.observe(it);
            *truth.entry(it).or_insert(0) += 1;
        }
        for (&it, &count) in &truth {
            prop_assert!(
                s.estimate(it) >= count,
                "estimate({it}) = {} < true {count}",
                s.estimate(it)
            );
        }
    }

    #[test]
    fn space_saving_error_bound_holds(
        items in prop::collection::vec(0u64..512, 1..800),
        k in 2usize..24,
    ) {
        let mut ss = SpaceSaving::new(k);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &it in &items {
            ss.observe(it);
            *truth.entry(it).or_insert(0) += 1;
        }
        let total = ss.total();
        prop_assert_eq!(total, items.len() as u64);
        for e in ss.entries() {
            // The classic space-saving guarantees: the recorded error is
            // bounded by total/k, and the lower bound count - err never
            // exceeds the item's true count (soundness of "provably hot").
            prop_assert!(
                e.err <= total / k as u64,
                "err {} > total/k = {}",
                e.err,
                total / k as u64
            );
            let true_count = truth.get(&e.item).copied().unwrap_or(0);
            prop_assert!(
                e.count - e.err <= true_count,
                "lower bound {} exceeds true count {true_count}",
                e.count - e.err
            );
            prop_assert!(
                e.count >= true_count,
                "tracked count {} underestimates true {true_count}",
                e.count
            );
        }
        // Any item with true frequency above total/k must be tracked.
        for (&it, &count) in &truth {
            if count > total / k as u64 {
                prop_assert!(
                    ss.estimate(it).is_some(),
                    "heavy item {it} (count {count} > {}) untracked",
                    total / k as u64
                );
            }
        }
    }

    #[test]
    fn halving_preserves_estimate_ordering(
        items in prop::collection::vec(0u64..64, 2..600),
        seed in 0u64..1 << 48,
    ) {
        let mut s = exact_sketch(seed);
        for &it in &items {
            s.observe(it);
        }
        let before: Vec<u32> = (0..64).map(|it| s.estimate(it)).collect();
        s.halve();
        let after: Vec<u32> = (0..64).map(|it| s.estimate(it)).collect();
        for a in 0..64usize {
            for b in 0..64usize {
                if before[a] < before[b] {
                    prop_assert!(
                        after[a] <= after[b],
                        "halving inverted order: {} vs {} became {} vs {}",
                        before[a], before[b], after[a], after[b]
                    );
                }
            }
            prop_assert!(after[a] <= before[a] / 2 + 1, "halving must shrink");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic(
        items in prop::collection::vec(0u64..1024, 1..400),
        seed in 0u64..1 << 48,
    ) {
        let cfg = SketchConfig {
            sample_period: 4,
            ..SketchConfig::data_path(seed)
        };
        let (mut a, mut b) = (FreqSketch::new(cfg), FreqSketch::new(cfg));
        for &it in &items {
            prop_assert_eq!(a.observe(it), b.observe(it), "sampling diverged");
        }
        prop_assert_eq!(a.samples(), b.samples());
        for &it in &items {
            prop_assert_eq!(a.estimate(it), b.estimate(it));
        }
    }
}
