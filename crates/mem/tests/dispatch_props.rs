//! Property tests for the dispatched memory stack.
//!
//! The load dispatcher + NIC DRAM cache + host memory must be
//! *functionally invisible*: any access pattern, any dispatch ratio, any
//! alignment — the bytes that come back equal what a flat memory returns.
//! (The paper's correctness story depends on this: the cache is
//! write-back with ECC-bit metadata and no valid bits, so an encoding
//! slip silently corrupts the KVS.)

use kvd_mem::{DispatchConfig, DispatchedMemory, FlatMemory, MemoryEngine, NicDramConfig};
use kvd_sim::Bandwidth;
use proptest::prelude::*;

const CAP: u64 = 1 << 18; // 256 KiB host

fn dispatched(ratio: f64) -> DispatchedMemory {
    DispatchedMemory::new(
        CAP,
        NicDramConfig {
            capacity: CAP / 16,
            bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
        },
        DispatchConfig::new(ratio),
    )
}

#[derive(Debug, Clone)]
enum Access {
    Write { addr: u64, data: Vec<u8> },
    Read { addr: u64, len: usize },
}

fn access() -> impl Strategy<Value = Access> {
    prop_oneof![
        (0u64..CAP - 512, prop::collection::vec(any::<u8>(), 1..300))
            .prop_map(|(addr, data)| Access::Write { addr, data }),
        (0u64..CAP - 512, 1usize..300).prop_map(|(addr, len)| Access::Read { addr, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential: dispatched == flat for every pattern and ratio.
    #[test]
    fn dispatched_equals_flat(
        ratio_pct in 0u32..=100,
        ops in prop::collection::vec(access(), 1..150),
    ) {
        let mut d = dispatched(ratio_pct as f64 / 100.0);
        let mut f = FlatMemory::new(CAP);
        for op in &ops {
            match op {
                Access::Write { addr, data } => {
                    d.write(*addr, data);
                    f.write(*addr, data);
                }
                Access::Read { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    d.read(*addr, &mut a);
                    f.read(*addr, &mut b);
                    prop_assert_eq!(&a, &b, "divergence at {:#x}+{}", addr, len);
                }
            }
        }
        // Full sweep at the end catches stale dirty lines that were never
        // re-read during the run.
        let mut a = vec![0u8; 4096];
        let mut b = vec![0u8; 4096];
        for chunk in 0..(CAP / 4096) {
            d.read(chunk * 4096, &mut a);
            f.read(chunk * 4096, &mut b);
            prop_assert_eq!(&a, &b, "sweep divergence in chunk {}", chunk);
        }
    }

    /// Cache-hit accounting is conservative: hits never exceed total
    /// lookups, and a PCIe-only engine never reports DRAM traffic.
    #[test]
    fn accounting_sane(ops in prop::collection::vec(access(), 1..100)) {
        let mut d = dispatched(0.5);
        let mut zero = dispatched(0.0);
        for op in &ops {
            match op {
                Access::Write { addr, data } => {
                    d.write(*addr, data);
                    zero.write(*addr, data);
                }
                Access::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    d.read(*addr, &mut buf);
                    zero.read(*addr, &mut buf);
                }
            }
        }
        let s = d.stats();
        prop_assert!(s.cache_hits <= s.cache_hits + s.cache_misses);
        let z = zero.stats();
        prop_assert_eq!(z.dram_reads + z.dram_writes, 0);
        prop_assert_eq!(z.cache_hits, 0);
    }
}
