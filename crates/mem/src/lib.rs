#![warn(missing_docs)]
//! Memory subsystem models for the KV-Direct reproduction.
//!
//! KV-Direct stores the key-value corpus in **host memory** (64 GiB in the
//! paper) reached over PCIe, and uses the NIC's small on-board **DRAM**
//! (4 GiB, 12.8 GB/s) neither as pure cache nor as a fixed partition but as
//! a *hybrid*: a cache for a fixed, hash-selected portion of host memory
//! (§3.3.4, Figure 7). This crate provides:
//!
//! * [`HostMemory`] — a sparse, allocate-on-touch byte store so paper-scale
//!   address spaces work laptop-scale.
//! * [`NicDram`] — the on-board DRAM: a 4-way set-associative 64 B-line
//!   cache with per-line metadata kept in the spare ECC bits (the paper's
//!   trick of widening the parity granularity — here 64 to 512 data bits
//!   to free 8 bits per 64 B line for tag + dirty + valid).
//! * [`LoadDispatcher`] — the hash split between cacheable and
//!   non-cacheable addresses, parameterized by the load dispatch ratio `l`,
//!   plus the paper's balance equation for choosing `l`.
//! * [`FreqSketch`] / [`SpaceSaving`] — the sampled frequency plane behind
//!   the adaptive cache: TinyLFU-style fill admission and online retuning
//!   of `l` from the measured hit rate ([`AdaptiveCacheConfig`]).
//! * [`MemoryEngine`] / [`AccessStats`] — the unified access interface the
//!   hash table and slab allocator run against, with DMA/DRAM accounting
//!   (the paper's currency: memory accesses per KV operation).
//! * [`FlatMemory`] — a counting-only engine for pure algorithmic
//!   experiments (Figures 6/9/10/11).
//! * [`DispatchedMemory`] — the full host + NIC-DRAM + dispatcher stack
//!   (Figure 14), including a timed replay driver.

pub mod dispatch;
pub mod engine;
pub mod host;
pub mod nicdram;
pub mod replay;
pub mod sketch;

pub use dispatch::{DispatchConfig, LoadDispatcher};
pub use engine::{
    AccessKind, AccessStats, AdaptiveCacheConfig, CacheStats, DispatchedMemory, EccStats,
    FlatMemory, MemoryEngine, DEFAULT_BYPASS_THRESHOLD,
};
pub use host::HostMemory;
pub use nicdram::{FillVictim, NicDram, NicDramConfig, WAYS};
pub use sketch::{FreqSketch, HeavyHitter, SketchConfig, SpaceSaving};

/// Cache-line granularity used throughout the paper (bytes).
pub const LINE: u64 = 64;
