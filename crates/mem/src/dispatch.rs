//! Load dispatch between PCIe (host memory) and NIC DRAM.
//!
//! §3.3.4 of the paper: NIC DRAM is too small to shoulder a fixed share of
//! the corpus and too slow to serve as a cache for *all* of host memory, so
//! KV-Direct caches a fixed hash-selected fraction `l` ("load dispatch
//! ratio") of host memory. The hash is over the 64 B line address so that a
//! hash-index bucket and a slab-allocated object are equally likely to be
//! cacheable.
//!
//! The balance equation the paper solves for `l` (loads proportional to
//! device throughputs):
//!
//! ```text
//!            l                     tput_DRAM
//! ─────────────────────────  =  ─────────────
//! (1 − l) + l·(1 − h(l))         tput_PCIe
//! ```
//!
//! with cache hit probability `h(l) = k/l` under uniform workload and
//! `h(l) = log(k·n)/log(l·n)` under the long-tail (Zipf) workload, where
//! `k` is the NIC:host memory size ratio and `n` the number of KVs.

/// Configuration for the [`LoadDispatcher`].
#[derive(Debug, Clone, Copy)]
pub struct DispatchConfig {
    /// The load dispatch ratio `l`: fraction of host memory (by line hash)
    /// that is cacheable in NIC DRAM. 0 disables the NIC DRAM entirely;
    /// 1 makes everything cacheable (pure cache mode, which the paper
    /// rejects because DRAM throughput is lower than two PCIe links).
    pub ratio: f64,
}

impl DispatchConfig {
    /// A dispatcher with the given ratio.
    pub fn new(ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0,1]");
        DispatchConfig { ratio }
    }

    /// PCIe-only operation (the Figure 14 baseline).
    pub fn pcie_only() -> Self {
        DispatchConfig { ratio: 0.0 }
    }
}

/// Splits line addresses into cacheable and non-cacheable sets by hash.
///
/// # Examples
///
/// ```
/// use kvd_mem::{DispatchConfig, LoadDispatcher};
///
/// let d = LoadDispatcher::new(DispatchConfig::new(0.5));
/// let cacheable = (0..10_000u64).filter(|&l| d.is_cacheable(l)).count();
/// // Roughly half the lines are cacheable.
/// assert!((4_500..5_500).contains(&cacheable));
/// ```
#[derive(Debug, Clone)]
pub struct LoadDispatcher {
    cfg: DispatchConfig,
    threshold: u64,
}

impl LoadDispatcher {
    /// Creates a dispatcher.
    pub fn new(cfg: DispatchConfig) -> Self {
        let threshold = if cfg.ratio >= 1.0 {
            u64::MAX
        } else {
            (cfg.ratio * u64::MAX as f64) as u64
        };
        LoadDispatcher { cfg, threshold }
    }

    /// The configured ratio `l`.
    pub fn ratio(&self) -> f64 {
        self.cfg.ratio
    }

    /// The hash threshold below which a line is cacheable.
    pub fn threshold(&self) -> u64 {
        if self.cfg.ratio == 0.0 {
            0
        } else {
            self.threshold
        }
    }

    /// Moves the dispatch ratio to `ratio`, recomputing the hash
    /// threshold — the adaptive plane's online retune step. Which lines
    /// change cacheability is exactly the hash band between the old and
    /// new thresholds (see [`hash_line`]), so the caller can sweep the
    /// affected lines without a full flush.
    pub fn set_ratio(&mut self, ratio: f64) {
        assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0,1]");
        self.cfg.ratio = ratio;
        self.threshold = if ratio >= 1.0 {
            u64::MAX
        } else {
            (ratio * u64::MAX as f64) as u64
        };
    }

    /// Whether 64 B line `line` belongs to the cacheable portion.
    pub fn is_cacheable(&self, line: u64) -> bool {
        if self.cfg.ratio == 0.0 {
            return false;
        }
        hash_line(line) <= self.threshold
    }
}

/// A fixed 64-bit mixer (SplitMix64 finalizer); uniform enough that any
/// address-space region is cacheable in proportion `l`, which is the
/// paper's requirement for the hash. Public so the adaptive plane can
/// identify the migration band when the threshold moves.
pub fn hash_line(line: u64) -> u64 {
    let mut z = line.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cache hit probability under **uniform** workload: `h(l) = k/l`,
/// clamped to 1 (paper §3.3.4).
pub fn hit_rate_uniform(k: f64, l: f64) -> f64 {
    if l <= 0.0 {
        return 0.0;
    }
    (k / l).min(1.0)
}

/// Cache hit probability under the **long-tail** (Zipf) workload:
/// `h(l) = log(k·n)/log(l·n)` for `k ≤ l` (paper §3.3.4). The paper notes
/// this reaches ~0.7 with a 1M-line cache over a 1G-line corpus.
pub fn hit_rate_zipf(k: f64, l: f64, n: f64) -> f64 {
    if l <= 0.0 || k <= 0.0 {
        return 0.0;
    }
    if k >= l {
        return 1.0;
    }
    let num = (k * n).ln();
    let den = (l * n).ln();
    if den <= 0.0 {
        1.0
    } else {
        (num / den).clamp(0.0, 1.0)
    }
}

/// Load imbalance of a candidate ratio: `DRAM load / PCIe load` minus the
/// device throughput ratio; zero means balanced.
fn balance_error(l: f64, h: f64, tput_dram: f64, tput_pcie: f64) -> f64 {
    let pcie_load = (1.0 - l) + l * (1.0 - h);
    let dram_load = l;
    dram_load * tput_pcie - pcie_load * tput_dram
}

/// Solves the paper's balance equation for the optimal load dispatch
/// ratio under a uniform workload.
pub fn optimal_ratio_uniform(k: f64, tput_dram: f64, tput_pcie: f64) -> f64 {
    solve(|l| balance_error(l, hit_rate_uniform(k, l), tput_dram, tput_pcie))
}

/// Solves the balance equation under the long-tail workload with `n` KVs.
pub fn optimal_ratio_zipf(k: f64, n: f64, tput_dram: f64, tput_pcie: f64) -> f64 {
    solve(|l| balance_error(l, hit_rate_zipf(k, l, n), tput_dram, tput_pcie))
}

/// Solves the balance equation with a **measured** hit rate `h` in place
/// of the analytic `h(l)` models — the adaptive retune step. With `h`
/// independent of `l` the equation is linear and closes to
/// `l* = tput_dram / (tput_pcie + h·tput_dram)`.
pub fn optimal_ratio_measured(h: f64, tput_dram: f64, tput_pcie: f64) -> f64 {
    let h = h.clamp(0.0, 1.0);
    (tput_dram / (tput_pcie + h * tput_dram)).clamp(0.0, 1.0)
}

/// Bisection on `[0, 1]`; the balance error is monotone in `l` (DRAM load
/// grows, PCIe load shrinks).
fn solve(err: impl Fn(f64) -> f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if err(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_zero_never_cacheable() {
        let d = LoadDispatcher::new(DispatchConfig::pcie_only());
        assert!((0..1000).all(|l| !d.is_cacheable(l)));
    }

    #[test]
    fn ratio_one_always_cacheable() {
        let d = LoadDispatcher::new(DispatchConfig::new(1.0));
        assert!((0..1000).all(|l| d.is_cacheable(l)));
    }

    #[test]
    fn cacheable_fraction_tracks_ratio() {
        for ratio in [0.25, 0.5, 0.75] {
            let d = LoadDispatcher::new(DispatchConfig::new(ratio));
            let n = 100_000u64;
            let c = (0..n).filter(|&l| d.is_cacheable(l)).count() as f64 / n as f64;
            assert!((c - ratio).abs() < 0.01, "ratio {ratio}: got {c}");
        }
    }

    #[test]
    fn dispatch_is_deterministic() {
        let a = LoadDispatcher::new(DispatchConfig::new(0.5));
        let b = LoadDispatcher::new(DispatchConfig::new(0.5));
        assert!((0..1000).all(|l| a.is_cacheable(l) == b.is_cacheable(l)));
    }

    #[test]
    #[should_panic(expected = "ratio must be in [0,1]")]
    fn rejects_bad_ratio() {
        DispatchConfig::new(1.5);
    }

    #[test]
    fn uniform_hit_rate_matches_paper_formula() {
        // k = 1/16 (4GiB NIC : 64GiB host); at l = 0.5, h = 0.125.
        assert!((hit_rate_uniform(1.0 / 16.0, 0.5) - 0.125).abs() < 1e-9);
        // Caching under uniform workload is inefficient (paper): h small.
        assert!(hit_rate_uniform(1.0 / 16.0, 1.0) < 0.07);
        // Clamped when the cache covers the corpus.
        assert_eq!(hit_rate_uniform(0.5, 0.25), 1.0);
    }

    #[test]
    fn zipf_hit_rate_matches_paper_example() {
        // Paper: "the cache hit probability is as high as 0.7 with 1M
        // cache in 1G corpus" (k·n = 1M lines, l·n ≈ n = 1G lines).
        let n = 1e9;
        let k = 1e6 / n;
        let h = hit_rate_zipf(k, 1.0, n);
        assert!((h - 0.667).abs() < 0.05, "got {h}");
    }

    #[test]
    fn zipf_hit_rate_exceeds_uniform() {
        let k = 1.0 / 16.0;
        let n = 1e8;
        for l in [0.3, 0.5, 0.8] {
            assert!(hit_rate_zipf(k, l, n) > hit_rate_uniform(k, l));
        }
    }

    #[test]
    fn optimal_ratio_balances_loads() {
        // Paper devices: DRAM 12.8 GB/s vs 2x PCIe ~13.2 GB/s.
        let k = 1.0 / 16.0;
        let l = optimal_ratio_zipf(k, 1e8, 12.8, 13.2);
        assert!((0.0..=1.0).contains(&l));
        let h = hit_rate_zipf(k, l, 1e8);
        let err = balance_error(l, h, 12.8, 13.2);
        assert!(err.abs() < 1e-3, "unbalanced: {err}");
        // Paper §5.2 uses ~0.5-0.6 load dispatch ratios; sanity-check range.
        assert!(l > 0.3 && l < 0.8, "got {l}");
    }

    #[test]
    fn set_ratio_matches_fresh_dispatcher() {
        let mut d = LoadDispatcher::new(DispatchConfig::new(0.25));
        d.set_ratio(0.6);
        let fresh = LoadDispatcher::new(DispatchConfig::new(0.6));
        assert_eq!(d.threshold(), fresh.threshold());
        assert!((0..10_000).all(|l| d.is_cacheable(l) == fresh.is_cacheable(l)));
    }

    #[test]
    fn measured_optimum_agrees_with_balance_equation() {
        for h in [0.0, 0.3, 0.7, 1.0] {
            let l = optimal_ratio_measured(h, 12.8, 13.2);
            assert!(balance_error(l, h, 12.8, 13.2).abs() < 1e-9, "h={h}");
        }
        // Higher hit rate offloads PCIe: optimum shrinks monotonically.
        assert!(optimal_ratio_measured(0.9, 12.8, 13.2) < optimal_ratio_measured(0.1, 12.8, 13.2));
    }

    #[test]
    fn threshold_moves_only_the_band() {
        let lo = LoadDispatcher::new(DispatchConfig::new(0.4));
        let hi = LoadDispatcher::new(DispatchConfig::new(0.6));
        for line in 0..10_000u64 {
            let h = hash_line(line);
            let in_band = h > lo.threshold() && h <= hi.threshold();
            assert_eq!(
                lo.is_cacheable(line) != hi.is_cacheable(line),
                in_band,
                "line {line}"
            );
        }
    }

    #[test]
    fn optimal_ratio_uniform_degenerates_to_bandwidth_split() {
        // Under uniform access the cache barely hits (h = k/l), so the
        // optimum approaches a pure bandwidth-proportional partition:
        // l* ≈ tput_dram·(1−k)/tput_pcie.
        let k = 1.0 / 16.0;
        let u = optimal_ratio_uniform(k, 12.8, 13.2);
        let expected = 12.8 * (1.0 - k) / 13.2;
        assert!((u - expected).abs() < 0.02, "got {u}, expected {expected}");
        // Under Zipf, hits offload PCIe so much that a smaller cacheable
        // fraction already balances the devices.
        let z = optimal_ratio_zipf(k, 1e8, 12.8, 13.2);
        assert!(z < u, "zipf {z} should be below uniform {u}");
        assert!(z > 0.3 && z < 0.8, "zipf optimum {z} out of range");
    }
}
