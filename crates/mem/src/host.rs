//! Sparse host memory.
//!
//! The paper's KVS occupies 64 GiB of host memory. To let the same address
//! arithmetic run on a development machine, [`HostMemory`] is paged and
//! allocates 64 KiB pages on first touch; untouched pages read as zero.

use std::collections::HashMap;

/// Page size for sparse allocation (simulation artifact, not a paper
/// parameter).
const PAGE_SHIFT: u32 = 16;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse, allocate-on-touch byte-addressable memory.
///
/// # Examples
///
/// ```
/// use kvd_mem::HostMemory;
///
/// let mut m = HostMemory::new(1 << 30); // 1 GiB address space
/// m.write(0x1234_5678, b"hello");
/// let mut buf = [0u8; 5];
/// m.read(0x1234_5678, &mut buf);
/// assert_eq!(&buf, b"hello");
/// // Untouched memory reads as zero.
/// m.read(0, &mut buf);
/// assert_eq!(&buf, &[0; 5]);
/// ```
pub struct HostMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    capacity: u64,
}

impl HostMemory {
    /// Creates a memory with `capacity` bytes of address space.
    pub fn new(capacity: u64) -> Self {
        HostMemory {
            pages: HashMap::new(),
            capacity,
        }
    }

    /// Total address-space capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of memory actually resident (allocated pages).
    pub fn resident_bytes(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    fn check_range(&self, addr: u64, len: usize) {
        assert!(
            addr.checked_add(len as u64)
                .is_some_and(|end| end <= self.capacity),
            "access [{addr:#x}, +{len}) out of bounds (capacity {:#x})",
            self.capacity
        );
    }

    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        self.check_range(addr, buf.len());
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `data` at `addr`, allocating pages as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.check_range(addr, data.len());
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
            p[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_filled_by_default() {
        let m = HostMemory::new(1 << 20);
        let mut buf = [0xAAu8; 16];
        m.read(1000, &mut buf);
        assert_eq!(buf, [0; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut m = HostMemory::new(1 << 20);
        // Straddle the 64KiB page boundary.
        let addr = (1 << 16) - 3;
        let data: Vec<u8> = (0..10).collect();
        m.write(addr, &data);
        let mut buf = vec![0u8; 10];
        m.read(addr, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(m.resident_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn sparse_residency() {
        let mut m = HostMemory::new(1 << 40); // 1 TiB address space
        m.write(1 << 39, &[1]);
        assert_eq!(m.resident_bytes(), PAGE_SIZE as u64);
        assert_eq!(m.capacity(), 1 << 40);
    }

    #[test]
    fn u64_helpers() {
        let mut m = HostMemory::new(1 << 20);
        m.write_u64(64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_u64(64), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_read() {
        let m = HostMemory::new(100);
        let mut buf = [0u8; 8];
        m.read(96, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_write() {
        let mut m = HostMemory::new(100);
        m.write(u64::MAX - 2, &[1, 2, 3]);
    }

    #[test]
    fn overwrite_replaces() {
        let mut m = HostMemory::new(1 << 20);
        m.write(10, b"aaaa");
        m.write(12, b"bb");
        let mut buf = [0u8; 4];
        m.read(10, &mut buf);
        assert_eq!(&buf, b"aabb");
    }
}
