//! Timed replay of memory access traces (paper Figure 14).
//!
//! Figure 14 measures the achievable memory access throughput with the
//! DRAM load dispatcher against a PCIe-only baseline, under uniform and
//! long-tail address distributions and several read percentages. This
//! module replays a line-granular access trace through the functional
//! cache and charges each device — two PCIe Gen3 x8 [`DmaPort`]s and the
//! NIC DRAM channel — in simulated time; sustained throughput is the trace
//! length divided by the slowest device's finish time.

use kvd_pcie::{DmaPort, PcieConfig};
use kvd_sim::{BandwidthLink, SimTime};

use crate::dispatch::{hash_line, optimal_ratio_measured, DispatchConfig, LoadDispatcher};
use crate::engine::{AccessKind, AdaptiveCacheConfig};
use crate::nicdram::{NicDram, NicDramConfig};
use crate::sketch::{FreqSketch, SpaceSaving};
use crate::LINE;

/// Configuration of a timed replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Host memory size in bytes (defines the line address space).
    pub host_capacity: u64,
    /// NIC DRAM configuration.
    pub dram: NicDramConfig,
    /// Load dispatch ratio.
    pub dispatch: DispatchConfig,
    /// Per-endpoint PCIe configuration.
    pub pcie: PcieConfig,
    /// Number of PCIe endpoints (the paper's NIC has two Gen3 x8 in a
    /// bifurcated x16).
    pub pcie_ports: usize,
    /// Adaptive cache plane (TinyLFU admission + online retune); `None`
    /// replays the paper's static policy.
    pub adaptive: Option<AdaptiveCacheConfig>,
}

impl ReplayConfig {
    /// A laptop-scale configuration preserving the paper's ratios:
    /// host:DRAM = 16:1, two PCIe Gen3 x8 endpoints.
    pub fn paper_scaled(host_capacity: u64, dispatch_ratio: f64) -> Self {
        ReplayConfig {
            host_capacity,
            dram: NicDramConfig {
                capacity: host_capacity / 16,
                bandwidth: kvd_sim::Bandwidth::from_gbytes_per_sec(12.8),
            },
            dispatch: DispatchConfig::new(dispatch_ratio),
            pcie: PcieConfig::gen3_x8(),
            pcie_ports: 2,
            adaptive: None,
        }
    }
}

/// Outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Number of accesses replayed.
    pub ops: u64,
    /// Simulated time until the last device finished.
    pub elapsed: SimTime,
    /// Sustained throughput in Mops.
    pub mops: f64,
    /// NIC DRAM cache hit rate over cacheable accesses (admission
    /// rejections count as misses).
    pub hit_rate: f64,
    /// Fraction of accesses that touched PCIe.
    pub pcie_fraction: f64,
    /// Load dispatch ratio at end of run (moves only in adaptive mode).
    pub final_ratio: f64,
    /// Retune steps the adaptive plane took.
    pub retune_steps: u64,
    /// Conflict fills the TinyLFU admission rejected.
    pub rejected_fills: u64,
}

/// Replays `(line, kind)` accesses through the dispatched memory stack.
///
/// # Examples
///
/// ```
/// use kvd_mem::replay::{replay_lines, ReplayConfig};
/// use kvd_mem::AccessKind;
///
/// let cfg = ReplayConfig::paper_scaled(1 << 22, 0.5);
/// let trace = (0..10_000u64).map(|i| (i % 1000, AccessKind::Read));
/// let r = replay_lines(&cfg, trace);
/// assert!(r.mops > 0.0);
/// ```
pub fn replay_lines(
    cfg: &ReplayConfig,
    accesses: impl IntoIterator<Item = (u64, AccessKind)>,
) -> ReplayResult {
    assert!(cfg.pcie_ports >= 1);
    let mut cache = NicDram::new(cfg.dram.clone(), cfg.host_capacity);
    let mut dispatcher = LoadDispatcher::new(cfg.dispatch);
    let mut adaptive = cfg
        .adaptive
        .clone()
        .map(|c| (FreqSketch::new(c.sketch), SpaceSaving::new(c.top_k), c));
    let mut ports: Vec<DmaPort> = (0..cfg.pcie_ports)
        .map(|i| DmaPort::new(cfg.pcie.clone(), 0x5EED + i as u64))
        .collect();
    let mut dram = BandwidthLink::new(cfg.dram.bandwidth);
    let mut next_port = 0usize;
    let mut ops = 0u64;
    let mut pcie_ops = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let (mut win_hits, mut win_misses) = (0u64, 0u64);
    let mut epoch_ticks = 0u64;
    let mut retune_steps = 0u64;
    let mut rejected_fills = 0u64;
    let mut reject_streak = 0u64;
    let total_lines = cfg.host_capacity / LINE;
    let scratch = [0u8; LINE as usize];
    let mut victim = [0u8; LINE as usize];

    let mut pcie = |ports: &mut Vec<DmaPort>, kind: AccessKind| {
        let port = &mut ports[next_port];
        next_port = (next_port + 1) % cfg.pcie_ports;
        match kind {
            AccessKind::Read => port.read(SimTime::ZERO, LINE, false),
            AccessKind::Write => port.write(SimTime::ZERO, LINE),
        }
    };

    for (line, kind) in accesses {
        let line = line % total_lines;
        ops += 1;
        // Adaptive bookkeeping: sketch observation + the access-count
        // epoch that drives retuning (mirrors DispatchedMemory).
        if let Some((sketch, hot, acfg)) = &mut adaptive {
            if sketch.observe(line) {
                hot.observe(line);
            }
            epoch_ticks += 1;
            if epoch_ticks >= acfg.epoch_accesses && win_hits + win_misses > 0 {
                epoch_ticks = 0;
                let h = win_hits as f64 / (win_hits + win_misses) as f64;
                (win_hits, win_misses) = (0, 0);
                let target = optimal_ratio_measured(h, acfg.tput_dram, acfg.tput_pcie)
                    .clamp(acfg.min_ratio, acfg.max_ratio);
                let current = dispatcher.ratio();
                if (target - current).abs() > acfg.deadband {
                    let next = current + (target - current).clamp(-acfg.max_step, acfg.max_step);
                    let old_t = dispatcher.threshold();
                    dispatcher.set_ratio(next);
                    let new_t = dispatcher.threshold();
                    let (lo, hi) = (old_t.min(new_t), old_t.max(new_t));
                    retune_steps += 1;
                    // Migration sweep: dirty retirees cost a DRAM
                    // read-out plus a PCIe write-back each.
                    cache.retire_if(
                        |l| {
                            let h = hash_line(l);
                            h > lo && h <= hi
                        },
                        |_, _| {
                            dram.transfer(SimTime::ZERO, LINE);
                            pcie(&mut ports, AccessKind::Write);
                        },
                    );
                }
            }
        }
        if dispatcher.is_cacheable(line) {
            if cache.lookup(line) {
                hits += 1;
                win_hits += 1;
                // Hit: one DRAM access (read or write-and-dirty).
                dram.transfer(SimTime::ZERO, LINE);
                match kind {
                    AccessKind::Read => {
                        let mut buf = [0u8; LINE as usize];
                        cache.read_hit(line, &mut buf);
                    }
                    AccessKind::Write => cache.write_hit(line, &scratch),
                }
            } else {
                misses += 1;
                win_misses += 1;
                // TinyLFU admission: the incomer must out-count the
                // coldest resident of its set, or serve over PCIe
                // without displacing anyone.
                let way = match &adaptive {
                    None => Some(cache.rr_victim(line)),
                    Some((sketch, _, acfg)) => {
                        let mut coldest: Option<(usize, u32)> = None;
                        let mut free = None;
                        for (w, occ) in cache.occupants(line).iter().enumerate() {
                            match occ {
                                None => {
                                    free = Some(w);
                                    break;
                                }
                                Some(resident) => {
                                    let est = sketch.estimate(*resident);
                                    if coldest.is_none_or(|(_, c)| est < c) {
                                        coldest = Some((w, est));
                                    }
                                }
                            }
                        }
                        match (free, coldest) {
                            (Some(w), _) => Some(w),
                            (None, Some((w, cold))) => {
                                if cold == 0 || sketch.estimate(line) > cold {
                                    reject_streak = 0;
                                    Some(w)
                                } else {
                                    reject_streak += 1;
                                    if acfg.admit_every > 0 && reject_streak >= acfg.admit_every {
                                        // Starvation hatch (mirrors
                                        // `DispatchedMemory::admit`).
                                        reject_streak = 0;
                                        Some(w)
                                    } else {
                                        rejected_fills += 1;
                                        None
                                    }
                                }
                            }
                            (None, None) => unreachable!("set has ways"),
                        }
                    }
                };
                match way {
                    Some(way) => {
                        // Miss: PCIe fetch + DRAM fill (+ dirty write-back).
                        pcie_ops += 1;
                        pcie(&mut ports, AccessKind::Read);
                        dram.transfer(SimTime::ZERO, LINE);
                        let ev = cache.fill_way(
                            line,
                            way,
                            &scratch,
                            kind == AccessKind::Write,
                            &mut victim,
                        );
                        if ev.dirty {
                            // Evicted dirty line: DRAM read-out + PCIe write-back.
                            dram.transfer(SimTime::ZERO, LINE);
                            pcie(&mut ports, AccessKind::Write);
                            pcie_ops += 1;
                        }
                    }
                    None => {
                        // Rejected: the access itself goes over PCIe.
                        pcie_ops += 1;
                        pcie(&mut ports, kind);
                    }
                }
            }
        } else {
            pcie_ops += 1;
            pcie(&mut ports, kind);
        }
    }

    let mut elapsed = dram.free_at();
    for p in &ports {
        elapsed = elapsed.max(p.horizon());
    }
    let secs = elapsed.as_secs_f64();
    ReplayResult {
        ops,
        elapsed,
        mops: if secs > 0.0 {
            ops as f64 / secs / 1e6
        } else {
            0.0
        },
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        pcie_fraction: pcie_ops as f64 / ops.max(1) as f64,
        final_ratio: dispatcher.ratio(),
        retune_steps,
        rejected_fills,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::{DetRng, ZipfSampler};

    fn uniform_trace(n: u64, lines: u64, read_pct: f64, seed: u64) -> Vec<(u64, AccessKind)> {
        let mut rng = DetRng::seed(seed);
        (0..n)
            .map(|_| {
                let kind = if rng.chance(read_pct) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                (rng.u64_below(lines), kind)
            })
            .collect()
    }

    fn zipf_trace(n: u64, lines: u64, read_pct: f64, seed: u64) -> Vec<(u64, AccessKind)> {
        let mut rng = DetRng::seed(seed);
        let zipf = ZipfSampler::new(lines, 0.99);
        (0..n)
            .map(|_| {
                let kind = if rng.chance(read_pct) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                // Scatter ranks over the line space deterministically so
                // hot lines are not all clustered at low addresses.
                let rank = zipf.sample(&mut rng);
                let line = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % lines;
                (line, kind)
            })
            .collect()
    }

    #[test]
    fn dispatch_beats_pcie_only_under_zipf() {
        let host = 1u64 << 24; // 16 MiB
        let lines = host / LINE;
        let trace = zipf_trace(200_000, lines, 1.0, 7);
        let base = replay_lines(&ReplayConfig::paper_scaled(host, 0.0), trace.clone());
        let disp = replay_lines(&ReplayConfig::paper_scaled(host, 0.5), trace);
        assert!(
            disp.mops > base.mops * 1.1,
            "dispatch {} vs baseline {}",
            disp.mops,
            base.mops
        );
    }

    #[test]
    fn zipf_hit_rate_substantial() {
        let host = 1u64 << 24;
        let lines = host / LINE;
        let r = replay_lines(
            &ReplayConfig::paper_scaled(host, 0.5),
            zipf_trace(200_000, lines, 1.0, 9),
        );
        // Paper: ~30% of accesses served from DRAM under long-tail, l=0.5.
        assert!(r.hit_rate > 0.3, "hit rate {}", r.hit_rate);
        assert!(r.pcie_fraction < 0.9);
    }

    #[test]
    fn uniform_caching_is_negligible() {
        let host = 1u64 << 24;
        let lines = host / LINE;
        let r = replay_lines(
            &ReplayConfig::paper_scaled(host, 0.5),
            uniform_trace(100_000, lines, 1.0, 11),
        );
        // k = 1/16, l = 0.5 ⇒ steady-state h ≈ k/l = 0.125.
        assert!(r.hit_rate < 0.25, "hit rate {}", r.hit_rate);
    }

    #[test]
    fn baseline_read_throughput_matches_two_ports() {
        // PCIe-only, 100% reads: two tag-limited ports ≈ 2 × 60 Mops.
        let host = 1u64 << 24;
        let lines = host / LINE;
        let r = replay_lines(
            &ReplayConfig::paper_scaled(host, 0.0),
            uniform_trace(100_000, lines, 1.0, 13),
        );
        assert!(r.mops > 100.0 && r.mops < 140.0, "got {}", r.mops);
        assert_eq!(r.pcie_fraction, 1.0);
    }

    #[test]
    fn writes_faster_than_reads_on_pcie_baseline() {
        let host = 1u64 << 24;
        let lines = host / LINE;
        let reads = replay_lines(
            &ReplayConfig::paper_scaled(host, 0.0),
            uniform_trace(50_000, lines, 1.0, 15),
        );
        let writes = replay_lines(
            &ReplayConfig::paper_scaled(host, 0.0),
            uniform_trace(50_000, lines, 0.0, 15),
        );
        assert!(writes.mops > reads.mops);
    }
}
