//! The unified memory access engine (paper §3.3.4, Figure 4).
//!
//! Both the hash index and slab-allocated KV data are reached through a
//! single engine that accounts every access — the paper's evaluation
//! currency is *memory accesses per KV operation* (Figures 6, 9, 10, 11).
//!
//! Two engines implement [`MemoryEngine`]:
//!
//! * [`FlatMemory`] — functional storage with access counting only; used
//!   for the pure algorithmic experiments where the paper also abstracts
//!   away the device (hash-table access counts).
//! * [`DispatchedMemory`] — the full stack: host memory behind PCIe, NIC
//!   DRAM cache, and the hash-based load dispatcher.

use kvd_sim::{CostSource, DramFault, FaultPlane, OpLedger};

use crate::dispatch::{hash_line, optimal_ratio_measured, DispatchConfig, LoadDispatcher};
use crate::host::HostMemory;
use crate::nicdram::{NicDram, NicDramConfig};
use crate::sketch::{FreqSketch, SketchConfig, SpaceSaving};
use crate::LINE;

/// Maximum bytes one DMA request covers (PCIe max payload: the paper's
/// engine splits above 256 B).
pub const MAX_DMA_PAYLOAD: u64 = 256;

/// Read or write, for trace recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A memory read.
    Read,
    /// A memory write.
    Write,
}

/// Access accounting shared by all engines.
///
/// A "DMA op" is one PCIe request (up to [`MAX_DMA_PAYLOAD`] bytes); a
/// "DRAM op" is one 64 B NIC-DRAM access. The paper's *memory access
/// count* is `dma_reads + dma_writes + dram_reads + dram_writes` — every
/// random access to either device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// PCIe DMA read requests issued.
    pub dma_reads: u64,
    /// PCIe DMA write requests issued.
    pub dma_writes: u64,
    /// Payload bytes moved by DMA reads.
    pub dma_read_bytes: u64,
    /// Payload bytes moved by DMA writes.
    pub dma_write_bytes: u64,
    /// NIC DRAM line reads.
    pub dram_reads: u64,
    /// NIC DRAM line writes.
    pub dram_writes: u64,
    /// Cache hits in NIC DRAM.
    pub cache_hits: u64,
    /// Cache misses in NIC DRAM.
    pub cache_misses: u64,
    /// Valid lines displaced clean by a cache fill.
    pub evict_clean: u64,
    /// Valid lines displaced dirty by a cache fill (write-back traffic).
    pub evict_dirty: u64,
    /// Fills that displaced a valid line (conflict misses — the thrash
    /// signal hit-rate analysis needs; fills into invalid ways are free).
    pub conflict_fills: u64,
}

impl AccessStats {
    /// Total random memory accesses (the paper's Figure 6/9/11 metric).
    pub fn accesses(&self) -> u64 {
        self.dma_reads + self.dma_writes + self.dram_reads + self.dram_writes
    }

    /// Total PCIe DMA requests.
    pub fn dma_ops(&self) -> u64 {
        self.dma_reads + self.dma_writes
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            dma_reads: self.dma_reads - earlier.dma_reads,
            dma_writes: self.dma_writes - earlier.dma_writes,
            dma_read_bytes: self.dma_read_bytes - earlier.dma_read_bytes,
            dma_write_bytes: self.dma_write_bytes - earlier.dma_write_bytes,
            dram_reads: self.dram_reads - earlier.dram_reads,
            dram_writes: self.dram_writes - earlier.dram_writes,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            evict_clean: self.evict_clean - earlier.evict_clean,
            evict_dirty: self.evict_dirty - earlier.evict_dirty,
            conflict_fills: self.conflict_fills - earlier.conflict_fills,
        }
    }

    /// Cache hit rate over the lookups in this (possibly windowed) stats
    /// view; 0 if there were none.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// Byte-addressable memory with access accounting.
///
/// All KVS structures (hash index, slab data, allocator stacks) run on
/// this interface, so the same data-structure code is measured against
/// [`FlatMemory`] for access counts and [`DispatchedMemory`] for the full
/// device stack.
pub trait MemoryEngine {
    /// Reads `buf.len()` bytes at `addr`.
    fn read(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `data` at `addr`.
    fn write(&mut self, addr: u64, data: &[u8]);

    /// Address-space capacity in bytes.
    fn capacity(&self) -> u64;

    /// Accumulated access statistics.
    fn stats(&self) -> AccessStats;

    /// Resets the statistics (storage contents are kept).
    fn reset_stats(&mut self);

    /// Reads a little-endian `u64`.
    fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

/// Number of DMA requests needed for an access of `len` bytes.
fn dma_requests(len: usize) -> u64 {
    ((len as u64).div_ceil(MAX_DMA_PAYLOAD)).max(1)
}

/// Functional memory with access counting only (no devices, no timing).
///
/// # Examples
///
/// ```
/// use kvd_mem::{FlatMemory, MemoryEngine};
///
/// let mut m = FlatMemory::new(1 << 20);
/// m.write(64, b"key");
/// let mut buf = [0u8; 3];
/// m.read(64, &mut buf);
/// assert_eq!(&buf, b"key");
/// assert_eq!(m.stats().dma_reads, 1);
/// assert_eq!(m.stats().dma_writes, 1);
/// ```
pub struct FlatMemory {
    mem: HostMemory,
    stats: AccessStats,
}

impl FlatMemory {
    /// Creates a flat memory with `capacity` bytes of address space.
    pub fn new(capacity: u64) -> Self {
        FlatMemory {
            mem: HostMemory::new(capacity),
            stats: AccessStats::default(),
        }
    }
}

impl MemoryEngine for FlatMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.mem.read(addr, buf);
        self.stats.dma_reads += dma_requests(buf.len());
        self.stats.dma_read_bytes += buf.len() as u64;
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        self.mem.write(addr, data);
        self.stats.dma_writes += dma_requests(data.len());
        self.stats.dma_write_bytes += data.len() as u64;
    }

    fn capacity(&self) -> u64 {
        self.mem.capacity()
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

/// ECC and degradation accounting of a [`DispatchedMemory`].
///
/// Faults are injected by the engine's [`FaultPlane`]; every injection is
/// *recovered* — data bytes are never corrupted — and these counters record
/// what the recovery cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Single-bit DRAM errors silently fixed by ECC.
    pub corrected: u64,
    /// Multi-bit errors ECC could only detect, forcing a line rebuild.
    pub uncorrectable: u64,
    /// Lines refetched from host memory after an uncorrectable error.
    pub refetches: u64,
    /// Dirty lines salvaged to host *before* the refetch (the cached copy
    /// was the only copy, so it is written back first).
    pub rescue_writebacks: u64,
    /// Host-memory stall events on the PCIe path.
    pub host_stalls: u64,
    /// Whether the degradation breaker has retired the NIC DRAM cache.
    pub bypassed: bool,
}

/// Uncorrectable errors tolerated before [`DispatchedMemory`] retires the
/// NIC DRAM cache and serves everything over PCIe (graceful degradation).
pub const DEFAULT_BYPASS_THRESHOLD: u64 = 16;

/// Configuration of the adaptive cache plane (off by default).
///
/// When enabled on a [`DispatchedMemory`], three mechanisms replace the
/// paper's static policies:
///
/// 1. a sampled [`FreqSketch`] over line addresses tracks access
///    frequency on the data path;
/// 2. cache fills become **TinyLFU-style**: on a conflict miss the
///    incomer must out-count the coldest resident of its set or the fill
///    is rejected (the access is served over PCIe and nothing is
///    displaced), so one-hit-wonder lines stop evicting hot buckets;
/// 3. every `epoch_accesses` line accesses the load dispatch ratio is
///    re-solved from the **measured** windowed hit rate
///    ([`optimal_ratio_measured`]) and migrated toward the optimum in
///    steps of at most `max_step`, with a `deadband` of hysteresis so a
///    noisy hit rate does not thrash the threshold. Lines whose
///    cacheability changes are retired in one sweep (dirty ones written
///    back) instead of a full flush.
#[derive(Debug, Clone)]
pub struct AdaptiveCacheConfig {
    /// Frequency sketch shape and sampling (seeded — determinism).
    pub sketch: SketchConfig,
    /// Heavy-hitter slots tracked for the hot-line rollup.
    pub top_k: usize,
    /// Line accesses between retune steps (access-count driven, never
    /// wall clock, so parallel runs stay bit-identical).
    pub epoch_accesses: u64,
    /// Largest ratio move per retune step (gradual migration).
    pub max_step: f64,
    /// No retune when the measured optimum is within this band of the
    /// current ratio (hysteresis).
    pub deadband: f64,
    /// NIC DRAM throughput term of the balance equation (GB/s).
    pub tput_dram: f64,
    /// PCIe throughput term of the balance equation (GB/s).
    pub tput_pcie: f64,
    /// Lower clamp on the retuned ratio.
    pub min_ratio: f64,
    /// Upper clamp on the retuned ratio.
    pub max_ratio: f64,
    /// Starvation escape hatch (the W-TinyLFU window, made deterministic):
    /// every `admit_every`-th *consecutive* rejected fill is admitted
    /// anyway, so a freshly shifted hot set — whose sketch counts are
    /// still building — cannot be locked out indefinitely by stale
    /// residents. `0` disables the hatch (pure TinyLFU).
    pub admit_every: u64,
}

impl AdaptiveCacheConfig {
    /// Data-path defaults: the paper's device throughputs (12.8 GB/s
    /// DRAM, 13.2 GB/s for two PCIe Gen3 x8 links), a [`SketchConfig`]
    /// sized for the hot path, 5%-max retune steps with a 2% deadband.
    pub fn data_path(seed: u64) -> Self {
        AdaptiveCacheConfig {
            sketch: SketchConfig::data_path(seed),
            top_k: 16,
            epoch_accesses: 8192,
            max_step: 0.05,
            deadband: 0.02,
            tput_dram: 12.8,
            tput_pcie: 13.2,
            min_ratio: 0.05,
            max_ratio: 0.95,
            admit_every: 8,
        }
    }
}

/// Counters of the adaptive cache plane's decisions (all zero when the
/// plane is disabled, except `admitted_fills` which counts every fill).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses the frequency sketch sampled.
    pub sketch_samples: u64,
    /// Cache fills performed (admission granted, or plane disabled).
    pub admitted_fills: u64,
    /// Conflict fills the TinyLFU admission rejected (served over PCIe,
    /// no displacement).
    pub rejected_fills: u64,
    /// Retune steps that actually moved the dispatch threshold.
    pub retune_steps: u64,
    /// Resident lines retired by threshold-migration sweeps.
    pub demoted_lines: u64,
}

/// Live state of the adaptive plane.
struct AdaptiveState {
    cfg: AdaptiveCacheConfig,
    sketch: FreqSketch,
    hot: SpaceSaving,
    /// Line accesses since the last retune step.
    epoch_ticks: u64,
    /// Consecutive rejected fills (drives the `admit_every` hatch).
    reject_streak: u64,
    /// Stats snapshot at the start of the current epoch (windowed hit
    /// rate for the balance equation).
    epoch_base: AccessStats,
}

/// The full memory stack: host memory behind PCIe DMA, NIC DRAM as a
/// write-back cache for the hash-selected cacheable portion.
///
/// Functionally exact (bytes stored and returned are authoritative across
/// both devices, including dirty write-backs); access statistics feed the
/// throughput composition used in the system benchmarks.
///
/// # Examples
///
/// ```
/// use kvd_mem::{DispatchConfig, DispatchedMemory, MemoryEngine, NicDramConfig};
/// use kvd_sim::Bandwidth;
///
/// let mut m = DispatchedMemory::new(
///     1 << 20, // 1 MiB host
///     NicDramConfig { capacity: 1 << 16, bandwidth: Bandwidth::from_gbytes_per_sec(12.8) },
///     DispatchConfig::new(0.5),
/// );
/// m.write(4096, b"value");
/// let mut buf = [0u8; 5];
/// m.read(4096, &mut buf);
/// assert_eq!(&buf, b"value");
/// ```
pub struct DispatchedMemory {
    host: HostMemory,
    cache: NicDram,
    dispatcher: LoadDispatcher,
    stats: AccessStats,
    cache_stats: CacheStats,
    adaptive: Option<AdaptiveState>,
    /// Stats snapshot for the caller-facing windowed hit rate.
    window_base: AccessStats,
    faults: FaultPlane,
    ecc: EccStats,
    bypass_threshold: u64,
}

impl DispatchedMemory {
    /// Creates the stack with the given host capacity, NIC DRAM and
    /// dispatch configuration.
    pub fn new(host_capacity: u64, dram: NicDramConfig, dispatch: DispatchConfig) -> Self {
        DispatchedMemory::with_faults(host_capacity, dram, dispatch, FaultPlane::disabled())
    }

    /// Creates the stack with DRAM bit errors and host stalls drawn from
    /// `faults`.
    pub fn with_faults(
        host_capacity: u64,
        dram: NicDramConfig,
        dispatch: DispatchConfig,
        faults: FaultPlane,
    ) -> Self {
        DispatchedMemory {
            cache: NicDram::new(dram, host_capacity),
            host: HostMemory::new(host_capacity),
            dispatcher: LoadDispatcher::new(dispatch),
            stats: AccessStats::default(),
            cache_stats: CacheStats::default(),
            adaptive: None,
            window_base: AccessStats::default(),
            faults,
            ecc: EccStats::default(),
            bypass_threshold: DEFAULT_BYPASS_THRESHOLD,
        }
    }

    /// Turns on the adaptive cache plane (frequency sketch, TinyLFU
    /// admission, online retune). Idempotent-ish: replaces any previous
    /// adaptive state.
    pub fn set_adaptive(&mut self, cfg: AdaptiveCacheConfig) {
        self.adaptive = Some(AdaptiveState {
            sketch: FreqSketch::new(cfg.sketch),
            hot: SpaceSaving::new(cfg.top_k),
            epoch_ticks: 0,
            reject_streak: 0,
            epoch_base: self.stats,
            cfg,
        });
    }

    /// Whether the adaptive cache plane is enabled.
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// The heavy-hitter rollup of the adaptive plane's sketch, if enabled.
    pub fn hot_lines(&self) -> Option<&SpaceSaving> {
        self.adaptive.as_ref().map(|a| &a.hot)
    }

    /// Counters of the adaptive plane's admission and retune decisions.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// The dispatcher (for inspecting the configured ratio).
    pub fn dispatcher(&self) -> &LoadDispatcher {
        &self.dispatcher
    }

    /// NIC DRAM cache hit rate since boot. Unlike the raw device
    /// counters this includes admission-rejected misses, which never
    /// reach the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Hit rate since the last [`roll_hit_window`] — the "recent" signal
    /// the retune loop and pressure gauges want, as opposed to the
    /// since-boot [`cache_hit_rate`].
    ///
    /// [`roll_hit_window`]: DispatchedMemory::roll_hit_window
    /// [`cache_hit_rate`]: DispatchedMemory::cache_hit_rate
    pub fn windowed_hit_rate(&self) -> f64 {
        self.stats.since(&self.window_base).hit_rate()
    }

    /// Starts a fresh hit-rate window (snapshots the current stats).
    pub fn roll_hit_window(&mut self) {
        self.window_base = self.stats;
    }

    /// The engine's fault plane (injection counters live here).
    pub fn faults(&self) -> &FaultPlane {
        &self.faults
    }

    /// Mutable fault-plane access (rate changes, counter resets).
    pub fn faults_mut(&mut self) -> &mut FaultPlane {
        &mut self.faults
    }

    /// ECC recovery and degradation statistics.
    pub fn ecc(&self) -> &EccStats {
        &self.ecc
    }

    /// Overrides the uncorrectable-error count that trips the cache-bypass
    /// breaker (default [`DEFAULT_BYPASS_THRESHOLD`]).
    pub fn set_bypass_threshold(&mut self, threshold: u64) {
        self.bypass_threshold = threshold.max(1);
    }

    /// Whether `line` is currently served by the NIC DRAM cache.
    fn cacheable(&self, line: u64) -> bool {
        !self.ecc.bypassed && self.dispatcher.is_cacheable(line)
    }

    /// Rebuilds a cache line hit by an uncorrectable DRAM error: a dirty
    /// line is salvaged to host first (it is the only copy), then the line
    /// is refetched so the damaged bits are overwritten. Data survives;
    /// only extra traffic and counters show the event happened.
    fn recover_uncorrectable(&mut self, line: u64) {
        self.ecc.uncorrectable += 1;
        if self.cache.is_dirty(line) {
            let mut data = [0u8; LINE as usize];
            self.cache.peek(line, &mut data);
            self.host.write(line * LINE, &data);
            self.stats.dma_writes += 1;
            self.stats.dma_write_bytes += LINE;
            self.ecc.rescue_writebacks += 1;
        }
        let mut data = [0u8; LINE as usize];
        self.host.read(line * LINE, &mut data);
        self.stats.dma_reads += 1;
        self.stats.dma_read_bytes += LINE;
        self.cache.restore(line, &data, false);
        self.stats.dram_writes += 1;
        self.ecc.refetches += 1;
        if self.ecc.uncorrectable >= self.bypass_threshold {
            self.trip_bypass();
        }
    }

    /// Retires the NIC DRAM cache after persistent uncorrectable errors:
    /// all dirty lines are flushed to host, then every access goes over
    /// PCIe. The store keeps serving — degraded, not dead.
    fn trip_bypass(&mut self) {
        self.ecc.bypassed = true;
        for (line, data) in self.cache.flush_dirty() {
            self.host.write(line * LINE, &data);
            self.stats.dma_writes += 1;
            self.stats.dma_write_bytes += LINE;
        }
    }

    /// Feeds the adaptive plane one line access: sketch observation,
    /// heavy-hitter rollup, and the epoch tick that drives retuning.
    /// No-op when the plane is off or the cache is bypassed.
    fn observe_line(&mut self, line: u64) {
        if self.ecc.bypassed {
            return;
        }
        let retune_due = match &mut self.adaptive {
            None => return,
            Some(ad) => {
                if ad.sketch.observe(line) {
                    self.cache_stats.sketch_samples += 1;
                    ad.hot.observe(line);
                }
                ad.epoch_ticks += 1;
                ad.epoch_ticks >= ad.cfg.epoch_accesses
            }
        };
        if retune_due {
            self.retune();
        }
    }

    /// One retune step: re-solve the balance equation with the epoch's
    /// measured hit rate, move the dispatch threshold at most `max_step`
    /// toward the optimum (with hysteresis), and retire the lines whose
    /// cacheability changed — dirty ones written back, nothing flushed
    /// wholesale.
    fn retune(&mut self) {
        let (measured, cfg_vals) = {
            let ad = self
                .adaptive
                .as_mut()
                .expect("retune without adaptive state");
            ad.epoch_ticks = 0;
            let win = self.stats.since(&ad.epoch_base);
            ad.epoch_base = self.stats;
            if win.cache_hits + win.cache_misses == 0 {
                return; // nothing cacheable this epoch: no signal
            }
            (
                win.hit_rate(),
                (
                    ad.cfg.tput_dram,
                    ad.cfg.tput_pcie,
                    ad.cfg.min_ratio,
                    ad.cfg.max_ratio,
                    ad.cfg.deadband,
                    ad.cfg.max_step,
                ),
            )
        };
        let (tput_dram, tput_pcie, min_r, max_r, deadband, max_step) = cfg_vals;
        let target = optimal_ratio_measured(measured, tput_dram, tput_pcie).clamp(min_r, max_r);
        let current = self.dispatcher.ratio();
        if (target - current).abs() <= deadband {
            return; // hysteresis: hold the threshold against noise
        }
        let next = current + (target - current).clamp(-max_step, max_step);
        let old_t = self.dispatcher.threshold();
        self.dispatcher.set_ratio(next);
        let new_t = self.dispatcher.threshold();
        let (lo, hi) = (old_t.min(new_t), old_t.max(new_t));
        // Retire every resident line in the migration band. Demotions
        // (threshold down) may be dirty and write back; promotions
        // (threshold up) retire stale copies left from before an earlier
        // demotion — those are clean by invariant.
        let DispatchedMemory {
            cache, host, stats, ..
        } = self;
        let (clean, dirty) = cache.retire_if(
            |line| {
                let h = hash_line(line);
                h > lo && h <= hi
            },
            |line, data| {
                host.write(line * LINE, data);
                stats.dma_writes += 1;
                stats.dma_write_bytes += LINE;
            },
        );
        self.cache_stats.retune_steps += 1;
        self.cache_stats.demoted_lines += clean + dirty;
    }

    /// TinyLFU admission for a conflict miss on `line`: picks the way and
    /// decides whether the incomer earns it. `None` means rejected —
    /// serve over PCIe, displace nothing. Invalid ways always admit; a
    /// coldest resident with zero estimated frequency is surrendered
    /// (that is how a cold cache warms); otherwise the incomer must
    /// strictly out-count the coldest resident.
    fn admit(&mut self, line: u64) -> Option<usize> {
        let Some(ad) = self.adaptive.as_mut() else {
            return Some(self.cache.rr_victim(line));
        };
        let mut coldest: Option<(usize, u32)> = None;
        for (way, occupant) in self.cache.occupants(line).iter().enumerate() {
            match occupant {
                None => return Some(way), // free way: no displacement
                Some(resident) => {
                    let est = ad.sketch.estimate(*resident);
                    if coldest.is_none_or(|(_, c)| est < c) {
                        coldest = Some((way, est));
                    }
                }
            }
        }
        let (way, cold_est) = coldest.expect("set has at least one way");
        if cold_est == 0 || ad.sketch.estimate(line) > cold_est {
            ad.reject_streak = 0;
            Some(way)
        } else {
            ad.reject_streak += 1;
            if ad.cfg.admit_every > 0 && ad.reject_streak >= ad.cfg.admit_every {
                // Starvation hatch: admit this one anyway (see
                // `AdaptiveCacheConfig::admit_every`).
                ad.reject_streak = 0;
                Some(way)
            } else {
                self.cache_stats.rejected_fills += 1;
                None
            }
        }
    }

    /// Fetches `line` from host over PCIe and installs it into `way`,
    /// writing back any displaced dirty victim. Counts the traffic.
    fn miss_fill(&mut self, line: u64, way: usize) {
        if self.faults.host_stall() {
            self.ecc.host_stalls += 1;
        }
        let mut data = [0u8; LINE as usize];
        self.host.read(line * LINE, &mut data);
        self.stats.dma_reads += 1;
        self.stats.dma_read_bytes += LINE;
        self.stats.cache_misses += 1;
        let mut victim = [0u8; LINE as usize];
        let ev = self.cache.fill_way(line, way, &data, false, &mut victim);
        if let Some(victim_line) = ev.line {
            self.stats.conflict_fills += 1;
            if ev.dirty {
                self.stats.evict_dirty += 1;
                // Dirty write-back over PCIe.
                self.host.write(victim_line * LINE, &victim);
                self.stats.dma_writes += 1;
                self.stats.dma_write_bytes += LINE;
            } else {
                self.stats.evict_clean += 1;
            }
        }
        // The fill itself is a DRAM write.
        self.stats.dram_writes += 1;
        self.cache_stats.admitted_fills += 1;
    }

    /// Serves a rejected or degraded access straight from host memory,
    /// counting one DMA request.
    fn pcie_direct(&mut self, line: u64, kind: AccessKind, in_line: usize, buf: &mut [u8]) {
        match kind {
            AccessKind::Read => {
                self.stats.dma_reads += 1;
                self.stats.dma_read_bytes += buf.len() as u64;
                self.host.read(line * LINE + in_line as u64, buf);
            }
            AccessKind::Write => {
                self.stats.dma_writes += 1;
                self.stats.dma_write_bytes += buf.len() as u64;
                self.host.write(line * LINE + in_line as u64, buf);
            }
        }
    }

    fn access_line(&mut self, line: u64, kind: AccessKind, in_line: usize, buf: &mut [u8]) {
        self.observe_line(line);
        if self.cacheable(line) {
            let was_hit = self.cache.lookup(line);
            if was_hit {
                self.stats.cache_hits += 1;
            } else {
                match self.admit(line) {
                    Some(way) => self.miss_fill(line, way),
                    None => {
                        // Admission rejected: a miss served over PCIe
                        // without polluting the cache.
                        self.stats.cache_misses += 1;
                        if self.faults.host_stall() {
                            self.ecc.host_stalls += 1;
                        }
                        self.pcie_direct(line, kind, in_line, buf);
                        return;
                    }
                }
            }
            // The DRAM access may trip an ECC event on the stored line.
            match self.faults.dram_fault() {
                DramFault::None => {}
                DramFault::Corrected => self.ecc.corrected += 1,
                DramFault::Uncorrectable => self.recover_uncorrectable(line),
            }
            if self.ecc.bypassed {
                // The breaker tripped on this very access. Recovery left
                // the line clean (host copy authoritative), so serve the
                // access over PCIe like every access from now on.
                self.pcie_direct(line, kind, in_line, buf);
                return;
            }
            let mut data = [0u8; LINE as usize];
            self.cache.read_hit(line, &mut data);
            match kind {
                AccessKind::Read => {
                    self.stats.dram_reads += 1;
                    buf.copy_from_slice(&data[in_line..in_line + buf.len()]);
                }
                AccessKind::Write => {
                    data[in_line..in_line + buf.len()].copy_from_slice(buf);
                    self.cache.write_hit(line, &data);
                    self.stats.dram_writes += 1;
                }
            }
        } else {
            // Non-cacheable: straight to host over PCIe. Contiguous-run
            // coalescing happens one level up in `access`.
            if self.faults.host_stall() {
                self.ecc.host_stalls += 1;
            }
            match kind {
                AccessKind::Read => self.host.read(line * LINE + in_line as u64, buf),
                AccessKind::Write => self.host.write(line * LINE + in_line as u64, buf),
            }
        }
    }

    fn access(&mut self, addr: u64, kind: AccessKind, buf: &mut [u8]) {
        assert!(
            addr + buf.len() as u64 <= self.host.capacity(),
            "access out of bounds"
        );
        // Split the range into 64B lines; cacheable lines go through the
        // cache individually, non-cacheable runs coalesce into DMA
        // requests of up to MAX_DMA_PAYLOAD.
        let mut off = 0usize;
        let mut pcie_run = 0u64; // bytes of the current non-cacheable run
        while off < buf.len() {
            let a = addr + off as u64;
            let line = a / LINE;
            let in_line = (a % LINE) as usize;
            let n = (LINE as usize - in_line).min(buf.len() - off);
            if self.cacheable(line) {
                self.flush_pcie_run(&mut pcie_run, kind);
                self.access_line(line, kind, in_line, &mut buf[off..off + n]);
            } else {
                self.access_line(line, kind, in_line, &mut buf[off..off + n]);
                pcie_run += n as u64;
            }
            off += n;
        }
        self.flush_pcie_run(&mut pcie_run, kind);
    }

    /// Accounts the DMA requests for a completed run of non-cacheable
    /// bytes.
    fn flush_pcie_run(&mut self, run: &mut u64, kind: AccessKind) {
        if *run == 0 {
            return;
        }
        let requests = run.div_ceil(MAX_DMA_PAYLOAD);
        match kind {
            AccessKind::Read => {
                self.stats.dma_reads += requests;
                self.stats.dma_read_bytes += *run;
            }
            AccessKind::Write => {
                self.stats.dma_writes += requests;
                self.stats.dma_write_bytes += *run;
            }
        }
        *run = 0;
    }
}

impl MemoryEngine for DispatchedMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.access(addr, AccessKind::Read, buf);
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        // `access` needs a mutable buffer for the read path; writes only
        // read from it. A copy keeps the public signature conventional.
        let mut tmp = data.to_vec();
        self.access(addr, AccessKind::Write, &mut tmp);
    }

    fn capacity(&self) -> u64 {
        self.host.capacity()
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

/// Folds an [`AccessStats`] into the ledger's PCIe and DRAM sections
/// (traffic and cache behavior only — fault events belong to the fault
/// plane that injected them).
fn emit_access_stats(s: &AccessStats, out: &mut OpLedger) {
    out.pcie.dma_reads += s.dma_reads;
    out.pcie.dma_writes += s.dma_writes;
    out.pcie.read_bytes += s.dma_read_bytes;
    out.pcie.write_bytes += s.dma_write_bytes;
    out.dram.reads += s.dram_reads;
    out.dram.writes += s.dram_writes;
    out.dram.cache_hits += s.cache_hits;
    out.dram.cache_misses += s.cache_misses;
}

impl CostSource for FlatMemory {
    fn emit_costs(&self, out: &mut OpLedger) {
        emit_access_stats(&self.stats, out);
    }
}

impl CostSource for DispatchedMemory {
    fn emit_costs(&self, out: &mut OpLedger) {
        emit_access_stats(&self.stats, out);
        // The adaptive-cache ledger section: eviction quality from the
        // traffic stats, policy decisions from the plane's own counters.
        out.cache.evict_clean += self.stats.evict_clean;
        out.cache.evict_dirty += self.stats.evict_dirty;
        out.cache.conflict_fills += self.stats.conflict_fills;
        out.cache.sketch_samples += self.cache_stats.sketch_samples;
        out.cache.admitted_fills += self.cache_stats.admitted_fills;
        out.cache.rejected_fills += self.cache_stats.rejected_fills;
        out.cache.retune_steps += self.cache_stats.retune_steps;
        out.cache.demoted_lines += self.cache_stats.demoted_lines;
        // ECC recovery bookkeeping that is disjoint from the fault
        // plane's own counts: what recovery *did*, not what was injected.
        out.dram.refetches += self.ecc.refetches;
        out.dram.rescue_writebacks += self.ecc.rescue_writebacks;
        self.faults.emit_costs(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::Bandwidth;

    fn dispatched(ratio: f64) -> DispatchedMemory {
        DispatchedMemory::new(
            1 << 20,
            NicDramConfig {
                capacity: 1 << 16,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            DispatchConfig::new(ratio),
        )
    }

    #[test]
    fn flat_memory_counts_requests() {
        let mut m = FlatMemory::new(1 << 20);
        let mut buf = [0u8; 64];
        m.read(0, &mut buf);
        m.read(0, &mut buf);
        m.write(0, &buf);
        let s = m.stats();
        assert_eq!(s.dma_reads, 2);
        assert_eq!(s.dma_writes, 1);
        assert_eq!(s.accesses(), 3);
        // A 254B KV needs one request; a 300B one needs two.
        let mut big = [0u8; 254];
        m.read(0, &mut big);
        assert_eq!(m.stats().dma_reads, 3);
        let mut bigger = [0u8; 300];
        m.read(0, &mut bigger);
        assert_eq!(m.stats().dma_reads, 5);
    }

    #[test]
    fn flat_memory_reset_keeps_contents() {
        let mut m = FlatMemory::new(1 << 20);
        m.write(10, b"abc");
        m.reset_stats();
        assert_eq!(m.stats(), AccessStats::default());
        let mut buf = [0u8; 3];
        m.read(10, &mut buf);
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn dispatched_roundtrip_all_ratios() {
        for ratio in [0.0, 0.3, 1.0] {
            let mut m = dispatched(ratio);
            for i in 0..64u64 {
                let addr = i * 997 % ((1 << 20) - 16);
                m.write_u64(addr, i * 31 + 7);
            }
            for i in 0..64u64 {
                let addr = i * 997 % ((1 << 20) - 16);
                assert_eq!(m.read_u64(addr), i * 31 + 7, "ratio {ratio} addr {addr}");
            }
        }
    }

    #[test]
    fn dispatched_matches_flat_reference() {
        // Differential test: DispatchedMemory must behave exactly like a
        // flat memory for any access pattern.
        let mut d = dispatched(0.5);
        let mut f = FlatMemory::new(1 << 20);
        let mut rng = kvd_sim::DetRng::seed(99);
        for _ in 0..2000 {
            let addr = rng.u64_below((1 << 20) - 300);
            let len = 1 + rng.usize_below(300);
            if rng.chance(0.5) {
                let mut data = vec![0u8; len];
                rng.fill_bytes(&mut data);
                d.write(addr, &data);
                f.write(addr, &data);
            } else {
                let mut a = vec![0u8; len];
                let mut b = vec![0u8; len];
                d.read(addr, &mut a);
                f.read(addr, &mut b);
                assert_eq!(a, b, "divergence at {addr:#x}+{len}");
            }
        }
    }

    #[test]
    fn pcie_only_never_touches_dram() {
        let mut m = dispatched(0.0);
        let mut buf = [0u8; 64];
        for i in 0..100 {
            m.read(i * 64, &mut buf);
        }
        let s = m.stats();
        assert_eq!(s.dram_reads + s.dram_writes, 0);
        assert_eq!(s.dma_reads, 100);
    }

    #[test]
    fn fully_cacheable_repeated_access_hits() {
        let mut m = dispatched(1.0);
        let mut buf = [0u8; 64];
        m.read(4096, &mut buf); // may miss
        m.reset_stats();
        for _ in 0..10 {
            m.read(4096, &mut buf);
        }
        let s = m.stats();
        assert_eq!(s.cache_hits, 10);
        assert_eq!(s.dma_reads, 0, "hits must not touch PCIe");
        assert_eq!(s.dram_reads, 10);
    }

    #[test]
    fn cacheable_write_then_evict_then_read_back() {
        // Force an eviction by dirtying a line and then filling its whole
        // 4-way set with conflicting lines; verify the dirty data
        // survived via host write-back.
        let mut m = dispatched(1.0);
        let sets = (1u64 << 16) / LINE / crate::nicdram::WAYS as u64; // 256
        let line_a = 3u64;
        m.write(line_a * LINE, &[0xAB; 64]);
        for tag in 4..8u64 {
            m.write((tag * sets + 3) * LINE, &[0xCD; 64]);
        }
        let mut buf = [0u8; 64];
        m.read(line_a * LINE, &mut buf); // must refetch from host
        assert_eq!(buf, [0xAB; 64]);
        assert!(m.stats().dma_writes >= 1, "dirty eviction must write back");
        let s = m.stats();
        assert!(s.evict_dirty >= 1, "satellite: dirty evictions visible");
        assert!(s.conflict_fills >= s.evict_clean + s.evict_dirty);
    }

    fn adaptive(ratio: f64, seed: u64, epoch: u64) -> DispatchedMemory {
        let mut m = dispatched(ratio);
        let mut cfg = AdaptiveCacheConfig::data_path(seed);
        cfg.epoch_accesses = epoch;
        m.set_adaptive(cfg);
        m
    }

    #[test]
    fn adaptive_engine_matches_flat_reference() {
        // The adaptive plane changes *placement and cost*, never bytes:
        // differential against flat memory through admission rejections,
        // retune sweeps, and threshold migrations in both directions.
        let mut d = adaptive(0.5, 3, 512);
        let mut f = FlatMemory::new(1 << 20);
        let mut rng = kvd_sim::DetRng::seed(123);
        for _ in 0..4000 {
            let addr = rng.u64_below((1 << 20) - 300);
            let len = 1 + rng.usize_below(300);
            if rng.chance(0.5) {
                let mut data = vec![0u8; len];
                rng.fill_bytes(&mut data);
                d.write(addr, &data);
                f.write(addr, &data);
            } else {
                let mut a = vec![0u8; len];
                let mut b = vec![0u8; len];
                d.read(addr, &mut a);
                f.read(addr, &mut b);
                assert_eq!(a, b, "divergence at {addr:#x}+{len}");
            }
        }
        let cs = d.cache_stats();
        assert!(cs.sketch_samples > 0, "sketch must sample");
        assert!(cs.retune_steps > 0, "retune must fire at this epoch size");
    }

    #[test]
    fn adaptive_plane_is_seed_deterministic() {
        let run = || {
            let mut m = adaptive(0.5, 7, 256);
            let mut rng = kvd_sim::DetRng::seed(5);
            let mut buf = [0u8; 64];
            for _ in 0..3000 {
                let addr = rng.u64_below((1 << 20) - 64);
                if rng.chance(0.3) {
                    m.write(addr, &buf);
                } else {
                    m.read(addr, &mut buf);
                }
            }
            (m.stats(), m.cache_stats(), m.dispatcher().ratio().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tinylfu_admission_shields_hot_lines_from_scans() {
        let mut m = dispatched(1.0);
        let mut cfg = AdaptiveCacheConfig::data_path(1);
        cfg.sketch.sample_period = 1; // count everything: deterministic estimates
        cfg.admit_every = 0; // pure TinyLFU: the hatch has its own test below
        m.set_adaptive(cfg);
        let sets = (1u64 << 16) / LINE / crate::nicdram::WAYS as u64;
        let hot: Vec<u64> = (4..8).map(|t| t * sets).collect(); // one full set
        let mut buf = [0u8; 64];
        for _ in 0..20 {
            for &l in &hot {
                m.read(l * LINE, &mut buf);
            }
        }
        // A one-hit-wonder scan through the same set (tags 8..58 all
        // exist at ratio 16 with 4 ways: 64 tags).
        for t in 8..58u64 {
            m.read(t * sets * LINE, &mut buf);
        }
        assert!(
            m.cache_stats().rejected_fills >= 40,
            "scan lines must be rejected: {:?}",
            m.cache_stats()
        );
        // The hot set survived the scan: re-reads are all hits.
        let before = m.stats().cache_hits;
        for &l in &hot {
            m.read(l * LINE, &mut buf);
        }
        assert_eq!(m.stats().cache_hits, before + hot.len() as u64);
    }

    #[test]
    fn starvation_hatch_admits_every_nth_consecutive_rejection() {
        let mut m = dispatched(1.0);
        let mut cfg = AdaptiveCacheConfig::data_path(1);
        cfg.sketch.sample_period = 1;
        cfg.admit_every = 8;
        m.set_adaptive(cfg);
        let sets = (1u64 << 16) / LINE / crate::nicdram::WAYS as u64;
        let mut buf = [0u8; 64];
        // Pin a hot set, then stream one-hit wonders through it forever:
        // without the hatch nothing new is ever admitted, with it every
        // 8th consecutive rejection lets one through.
        for _ in 0..20 {
            for t in 4..8u64 {
                m.read(t * sets * LINE, &mut buf);
            }
        }
        for t in 8..40u64 {
            m.read(t * sets * LINE, &mut buf);
        }
        let s = m.cache_stats();
        // 32 scan fills: streaks of 7 rejections punctuated by a hatch
        // admission (the first admission resets the victim estimate, so
        // later scan lines evict the previous scan line, not a hot one).
        assert!(s.rejected_fills >= 7, "scan must mostly be rejected: {s:?}");
        let displaced = m.stats().conflict_fills;
        assert!(
            displaced > 0,
            "the hatch must admit at least one scan line: {s:?}"
        );
    }

    #[test]
    fn retune_climbs_toward_measured_optimum() {
        // A perfectly cache-friendly workload (hit rate -> 1) rebalances
        // toward l* = d/(p + h*d) = 12.8/26.0 ~ 0.49 from below, in
        // max_step increments.
        let mut m = adaptive(0.2, 2, 256);
        let cacheable: Vec<u64> = (0..4096u64)
            .filter(|&l| m.dispatcher().is_cacheable(l))
            .take(32)
            .collect();
        let mut buf = [0u8; 64];
        for _ in 0..200 {
            for &l in &cacheable {
                m.read(l * LINE, &mut buf);
            }
        }
        let ratio = m.dispatcher().ratio();
        assert!(
            (0.42..=0.55).contains(&ratio),
            "ratio {ratio} did not converge (steps: {})",
            m.cache_stats().retune_steps
        );
        assert!(m.cache_stats().retune_steps >= 2);
    }

    #[test]
    fn windowed_hit_rate_is_recent_not_lifetime() {
        let mut m = dispatched(1.0);
        let mut buf = [0u8; 64];
        // Cold pass over non-resident lines: all misses.
        for i in 0..64u64 {
            m.read((1024 + i) * LINE, &mut buf);
        }
        assert_eq!(m.windowed_hit_rate(), 0.0);
        m.roll_hit_window();
        // Hot pass: all hits — the window sees only these.
        for i in 0..64u64 {
            m.read((1024 + i) * LINE, &mut buf);
        }
        assert_eq!(m.windowed_hit_rate(), 1.0);
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-9, "lifetime is mixed");
    }

    #[test]
    fn noncacheable_run_coalesces_dma() {
        let mut m = dispatched(0.0);
        let mut buf = vec![0u8; 256];
        m.read(0, &mut buf);
        // 256 contiguous non-cacheable bytes = 1 DMA request.
        assert_eq!(m.stats().dma_reads, 1);
        let mut buf = vec![0u8; 512];
        m.read(0, &mut buf);
        assert_eq!(m.stats().dma_reads, 3);
    }

    fn dispatched_faulty(ratio: f64, rates: kvd_sim::FaultRates, seed: u64) -> DispatchedMemory {
        DispatchedMemory::with_faults(
            1 << 20,
            NicDramConfig {
                capacity: 1 << 16,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            DispatchConfig::new(ratio),
            FaultPlane::new(rates, seed),
        )
    }

    #[test]
    fn disabled_fault_plane_is_bit_identical_to_plain_engine() {
        let mut plain = dispatched(0.5);
        let mut faulty = dispatched_faulty(0.5, kvd_sim::FaultRates::ZERO, 7);
        let mut rng = kvd_sim::DetRng::seed(4);
        for _ in 0..500 {
            let addr = rng.u64_below((1 << 20) - 64);
            if rng.chance(0.5) {
                let mut data = [0u8; 48];
                rng.fill_bytes(&mut data);
                plain.write(addr, &data);
                faulty.write(addr, &data);
            } else {
                let mut a = [0u8; 48];
                let mut b = [0u8; 48];
                plain.read(addr, &mut a);
                faulty.read(addr, &mut b);
                assert_eq!(a, b);
            }
        }
        assert_eq!(plain.stats(), faulty.stats());
        assert_eq!(*faulty.ecc(), EccStats::default());
        assert_eq!(faulty.faults().counters().total_faults(), 0);
    }

    #[test]
    fn corrected_ecc_errors_only_count() {
        let rates = kvd_sim::FaultRates {
            dram_bit_error: 1.0,
            dram_uncorrectable: 0.0, // every bit error is correctable
            ..kvd_sim::FaultRates::ZERO
        };
        let mut m = dispatched_faulty(1.0, rates, 7);
        let mut clean = dispatched(1.0);
        let mut buf = [0u8; 64];
        for i in 0..50u64 {
            m.write(i * 64, &[i as u8; 64]);
            clean.write(i * 64, &[i as u8; 64]);
        }
        for i in 0..50u64 {
            m.read(i * 64, &mut buf);
            assert_eq!(buf, [i as u8; 64], "ECC-corrected data must be intact");
        }
        assert!(m.ecc().corrected > 0);
        assert_eq!(m.ecc().uncorrectable, 0);
        assert_eq!(m.ecc().refetches, 0);
        // Corrected errors are free: no extra traffic vs the clean engine.
        for i in 0..50u64 {
            clean.read(i * 64, &mut buf);
        }
        assert_eq!(m.stats(), clean.stats());
    }

    #[test]
    fn uncorrectable_error_on_clean_line_refetches() {
        let rates = kvd_sim::FaultRates {
            dram_bit_error: 1.0,
            dram_uncorrectable: 1.0, // every bit error is fatal to the line
            ..kvd_sim::FaultRates::ZERO
        };
        let mut m = dispatched_faulty(1.0, rates, 7);
        m.set_bypass_threshold(1_000_000); // keep the breaker out of the way
        let mut buf = [0u8; 64];
        m.read(4096, &mut buf); // clean line: rebuild is refetch-only
        assert_eq!(m.ecc().uncorrectable, 1);
        assert_eq!(m.ecc().refetches, 1);
        assert_eq!(m.ecc().rescue_writebacks, 0);
        assert!(m.stats().dma_reads >= 1, "refetch goes over PCIe");
    }

    #[test]
    fn uncorrectable_error_on_dirty_line_salvages_first() {
        let rates = kvd_sim::FaultRates {
            dram_bit_error: 1.0,
            dram_uncorrectable: 1.0,
            ..kvd_sim::FaultRates::ZERO
        };
        let mut m = dispatched_faulty(1.0, rates, 7);
        m.set_bypass_threshold(1_000_000);
        // The write itself draws a fault on a clean line (refetch only),
        // then dirties it; the read's fault hits the now-dirty line.
        m.write(4096, &[0xEE; 64]);
        let rescued_before = m.ecc().rescue_writebacks;
        let mut buf = [0u8; 64];
        m.read(4096, &mut buf);
        assert_eq!(buf, [0xEE; 64], "dirty data must survive the rebuild");
        assert!(m.ecc().rescue_writebacks > rescued_before);
        // After recovery the authoritative copy reached host memory, so a
        // fresh engine sharing nothing would... (cannot share HostMemory;
        // instead verify the line is clean now: another uncorrectable hit
        // must not rescue again).
        let rescued = m.ecc().rescue_writebacks;
        m.read(4096, &mut buf);
        assert_eq!(buf, [0xEE; 64]);
        assert_eq!(m.ecc().rescue_writebacks, rescued, "line was left clean");
    }

    #[test]
    fn persistent_uncorrectable_errors_trip_cache_bypass() {
        let rates = kvd_sim::FaultRates {
            dram_bit_error: 1.0,
            dram_uncorrectable: 1.0,
            ..kvd_sim::FaultRates::ZERO
        };
        let mut m = dispatched_faulty(1.0, rates, 7);
        m.set_bypass_threshold(4);
        // Dirty a few lines so the breaker has something to flush.
        for i in 0..8u64 {
            m.write(i * 64, &[i as u8 + 1; 64]);
        }
        assert!(m.ecc().bypassed, "breaker should have tripped");
        let dram_ops_at_trip = m.stats().dram_reads + m.stats().dram_writes;
        // Degraded mode: everything over PCIe, and all data still intact.
        let mut buf = [0u8; 64];
        for i in 0..8u64 {
            m.read(i * 64, &mut buf);
            assert_eq!(buf, [i as u8 + 1; 64], "flush must preserve dirty data");
        }
        let s = m.stats();
        assert_eq!(s.dram_reads + s.dram_writes, dram_ops_at_trip);
        assert!(m.ecc().uncorrectable >= 4);
    }

    #[test]
    fn faulty_engine_still_matches_flat_reference() {
        // The fault plane injects and recovers; bytes must stay exact.
        let rates = kvd_sim::FaultRates {
            dram_bit_error: 0.3,
            dram_uncorrectable: 0.25,
            host_stall: 0.1,
            ..kvd_sim::FaultRates::ZERO
        };
        let mut d = dispatched_faulty(0.5, rates, 11);
        d.set_bypass_threshold(50); // let the breaker trip mid-run
        let mut f = FlatMemory::new(1 << 20);
        let mut rng = kvd_sim::DetRng::seed(99);
        for _ in 0..2000 {
            let addr = rng.u64_below((1 << 20) - 300);
            let len = 1 + rng.usize_below(300);
            if rng.chance(0.5) {
                let mut data = vec![0u8; len];
                rng.fill_bytes(&mut data);
                d.write(addr, &data);
                f.write(addr, &data);
            } else {
                let mut a = vec![0u8; len];
                let mut b = vec![0u8; len];
                d.read(addr, &mut a);
                f.read(addr, &mut b);
                assert_eq!(a, b, "divergence at {addr:#x}+{len}");
            }
        }
        assert!(d.ecc().bypassed, "this rate must have tripped the breaker");
        assert!(d.ecc().corrected > 0);
        assert!(d.ecc().rescue_writebacks > 0);
        assert!(d.ecc().host_stalls > 0);
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        let rates = kvd_sim::FaultRates {
            dram_bit_error: 0.2,
            dram_uncorrectable: 0.25,
            host_stall: 0.05,
            ..kvd_sim::FaultRates::ZERO
        };
        let run = |seed: u64| {
            let mut m = dispatched_faulty(0.5, rates, seed);
            let mut rng = kvd_sim::DetRng::seed(1);
            let mut buf = [0u8; 64];
            for _ in 0..1000 {
                let addr = rng.u64_below((1 << 20) - 64);
                if rng.chance(0.5) {
                    m.write(addr, &buf);
                } else {
                    m.read(addr, &mut buf);
                }
            }
            (m.stats(), *m.ecc(), m.faults().counters())
        };
        assert_eq!(run(7), run(7));
        let (_, e7, _) = run(7);
        let (_, e8, _) = run(8);
        assert_ne!(e7, e8, "different seeds must differ somewhere");
        assert!(e7.corrected + e7.uncorrectable > 0);
    }

    #[test]
    fn stats_since_subtracts() {
        let mut m = FlatMemory::new(1 << 16);
        let mut buf = [0u8; 8];
        m.read(0, &mut buf);
        let snap = m.stats();
        m.read(0, &mut buf);
        m.write(0, &buf);
        let d = m.stats().since(&snap);
        assert_eq!(d.dma_reads, 1);
        assert_eq!(d.dma_writes, 1);
    }
}
