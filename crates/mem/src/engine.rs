//! The unified memory access engine (paper §3.3.4, Figure 4).
//!
//! Both the hash index and slab-allocated KV data are reached through a
//! single engine that accounts every access — the paper's evaluation
//! currency is *memory accesses per KV operation* (Figures 6, 9, 10, 11).
//!
//! Two engines implement [`MemoryEngine`]:
//!
//! * [`FlatMemory`] — functional storage with access counting only; used
//!   for the pure algorithmic experiments where the paper also abstracts
//!   away the device (hash-table access counts).
//! * [`DispatchedMemory`] — the full stack: host memory behind PCIe, NIC
//!   DRAM cache, and the hash-based load dispatcher.

use crate::dispatch::{DispatchConfig, LoadDispatcher};
use crate::host::HostMemory;
use crate::nicdram::{NicDram, NicDramConfig};
use crate::LINE;

/// Maximum bytes one DMA request covers (PCIe max payload: the paper's
/// engine splits above 256 B).
pub const MAX_DMA_PAYLOAD: u64 = 256;

/// Read or write, for trace recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A memory read.
    Read,
    /// A memory write.
    Write,
}

/// Access accounting shared by all engines.
///
/// A "DMA op" is one PCIe request (up to [`MAX_DMA_PAYLOAD`] bytes); a
/// "DRAM op" is one 64 B NIC-DRAM access. The paper's *memory access
/// count* is `dma_reads + dma_writes + dram_reads + dram_writes` — every
/// random access to either device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// PCIe DMA read requests issued.
    pub dma_reads: u64,
    /// PCIe DMA write requests issued.
    pub dma_writes: u64,
    /// Payload bytes moved by DMA reads.
    pub dma_read_bytes: u64,
    /// Payload bytes moved by DMA writes.
    pub dma_write_bytes: u64,
    /// NIC DRAM line reads.
    pub dram_reads: u64,
    /// NIC DRAM line writes.
    pub dram_writes: u64,
    /// Cache hits in NIC DRAM.
    pub cache_hits: u64,
    /// Cache misses in NIC DRAM.
    pub cache_misses: u64,
}

impl AccessStats {
    /// Total random memory accesses (the paper's Figure 6/9/11 metric).
    pub fn accesses(&self) -> u64 {
        self.dma_reads + self.dma_writes + self.dram_reads + self.dram_writes
    }

    /// Total PCIe DMA requests.
    pub fn dma_ops(&self) -> u64 {
        self.dma_reads + self.dma_writes
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        AccessStats {
            dma_reads: self.dma_reads - earlier.dma_reads,
            dma_writes: self.dma_writes - earlier.dma_writes,
            dma_read_bytes: self.dma_read_bytes - earlier.dma_read_bytes,
            dma_write_bytes: self.dma_write_bytes - earlier.dma_write_bytes,
            dram_reads: self.dram_reads - earlier.dram_reads,
            dram_writes: self.dram_writes - earlier.dram_writes,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
        }
    }
}

/// Byte-addressable memory with access accounting.
///
/// All KVS structures (hash index, slab data, allocator stacks) run on
/// this interface, so the same data-structure code is measured against
/// [`FlatMemory`] for access counts and [`DispatchedMemory`] for the full
/// device stack.
pub trait MemoryEngine {
    /// Reads `buf.len()` bytes at `addr`.
    fn read(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `data` at `addr`.
    fn write(&mut self, addr: u64, data: &[u8]);

    /// Address-space capacity in bytes.
    fn capacity(&self) -> u64;

    /// Accumulated access statistics.
    fn stats(&self) -> AccessStats;

    /// Resets the statistics (storage contents are kept).
    fn reset_stats(&mut self);

    /// Reads a little-endian `u64`.
    fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

/// Number of DMA requests needed for an access of `len` bytes.
fn dma_requests(len: usize) -> u64 {
    ((len as u64).div_ceil(MAX_DMA_PAYLOAD)).max(1)
}

/// Functional memory with access counting only (no devices, no timing).
///
/// # Examples
///
/// ```
/// use kvd_mem::{FlatMemory, MemoryEngine};
///
/// let mut m = FlatMemory::new(1 << 20);
/// m.write(64, b"key");
/// let mut buf = [0u8; 3];
/// m.read(64, &mut buf);
/// assert_eq!(&buf, b"key");
/// assert_eq!(m.stats().dma_reads, 1);
/// assert_eq!(m.stats().dma_writes, 1);
/// ```
pub struct FlatMemory {
    mem: HostMemory,
    stats: AccessStats,
}

impl FlatMemory {
    /// Creates a flat memory with `capacity` bytes of address space.
    pub fn new(capacity: u64) -> Self {
        FlatMemory {
            mem: HostMemory::new(capacity),
            stats: AccessStats::default(),
        }
    }
}

impl MemoryEngine for FlatMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.mem.read(addr, buf);
        self.stats.dma_reads += dma_requests(buf.len());
        self.stats.dma_read_bytes += buf.len() as u64;
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        self.mem.write(addr, data);
        self.stats.dma_writes += dma_requests(data.len());
        self.stats.dma_write_bytes += data.len() as u64;
    }

    fn capacity(&self) -> u64 {
        self.mem.capacity()
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

/// The full memory stack: host memory behind PCIe DMA, NIC DRAM as a
/// write-back cache for the hash-selected cacheable portion.
///
/// Functionally exact (bytes stored and returned are authoritative across
/// both devices, including dirty write-backs); access statistics feed the
/// throughput composition used in the system benchmarks.
///
/// # Examples
///
/// ```
/// use kvd_mem::{DispatchConfig, DispatchedMemory, MemoryEngine, NicDramConfig};
/// use kvd_sim::Bandwidth;
///
/// let mut m = DispatchedMemory::new(
///     1 << 20, // 1 MiB host
///     NicDramConfig { capacity: 1 << 16, bandwidth: Bandwidth::from_gbytes_per_sec(12.8) },
///     DispatchConfig::new(0.5),
/// );
/// m.write(4096, b"value");
/// let mut buf = [0u8; 5];
/// m.read(4096, &mut buf);
/// assert_eq!(&buf, b"value");
/// ```
pub struct DispatchedMemory {
    host: HostMemory,
    cache: NicDram,
    dispatcher: LoadDispatcher,
    stats: AccessStats,
}

impl DispatchedMemory {
    /// Creates the stack with the given host capacity, NIC DRAM and
    /// dispatch configuration.
    pub fn new(host_capacity: u64, dram: NicDramConfig, dispatch: DispatchConfig) -> Self {
        DispatchedMemory {
            cache: NicDram::new(dram, host_capacity),
            host: HostMemory::new(host_capacity),
            dispatcher: LoadDispatcher::new(dispatch),
            stats: AccessStats::default(),
        }
    }

    /// The dispatcher (for inspecting the configured ratio).
    pub fn dispatcher(&self) -> &LoadDispatcher {
        &self.dispatcher
    }

    /// NIC DRAM cache hit rate so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Ensures `line` is resident in the cache, fetching from host and
    /// writing back any dirty eviction. Counts the traffic.
    fn ensure_resident(&mut self, line: u64) {
        if self.cache.lookup(line) {
            return;
        }
        // Miss: fetch the line from host memory over PCIe.
        let mut data = [0u8; LINE as usize];
        self.host.read(line * LINE, &mut data);
        self.stats.dma_reads += 1;
        self.stats.dma_read_bytes += LINE;
        self.stats.cache_misses += 1;
        if let Some((evicted_line, old)) = self.cache.fill(line, &data, false) {
            // Dirty write-back over PCIe.
            self.host.write(evicted_line * LINE, &old);
            self.stats.dma_writes += 1;
            self.stats.dma_write_bytes += LINE;
        }
        // The fill itself is a DRAM write.
        self.stats.dram_writes += 1;
    }

    fn access_line(&mut self, line: u64, kind: AccessKind, in_line: usize, buf: &mut [u8]) {
        if self.dispatcher.is_cacheable(line) {
            let was_hit = self.cache.lookup(line);
            self.ensure_resident(line);
            if was_hit {
                self.stats.cache_hits += 1;
            }
            let mut data = [0u8; LINE as usize];
            self.cache.read_hit(line, &mut data);
            match kind {
                AccessKind::Read => {
                    self.stats.dram_reads += 1;
                    buf.copy_from_slice(&data[in_line..in_line + buf.len()]);
                }
                AccessKind::Write => {
                    data[in_line..in_line + buf.len()].copy_from_slice(buf);
                    self.cache.write_hit(line, &data);
                    self.stats.dram_writes += 1;
                }
            }
        } else {
            // Non-cacheable: straight to host over PCIe. Contiguous-run
            // coalescing happens one level up in `access`.
            match kind {
                AccessKind::Read => self.host.read(line * LINE + in_line as u64, buf),
                AccessKind::Write => self.host.write(line * LINE + in_line as u64, buf),
            }
        }
    }

    fn access(&mut self, addr: u64, kind: AccessKind, buf: &mut [u8]) {
        assert!(
            addr + buf.len() as u64 <= self.host.capacity(),
            "access out of bounds"
        );
        // Split the range into 64B lines; cacheable lines go through the
        // cache individually, non-cacheable runs coalesce into DMA
        // requests of up to MAX_DMA_PAYLOAD.
        let mut off = 0usize;
        let mut pcie_run = 0u64; // bytes of the current non-cacheable run
        while off < buf.len() {
            let a = addr + off as u64;
            let line = a / LINE;
            let in_line = (a % LINE) as usize;
            let n = (LINE as usize - in_line).min(buf.len() - off);
            if self.dispatcher.is_cacheable(line) {
                self.flush_pcie_run(&mut pcie_run, kind);
                self.access_line(line, kind, in_line, &mut buf[off..off + n]);
            } else {
                self.access_line(line, kind, in_line, &mut buf[off..off + n]);
                pcie_run += n as u64;
            }
            off += n;
        }
        self.flush_pcie_run(&mut pcie_run, kind);
    }

    /// Accounts the DMA requests for a completed run of non-cacheable
    /// bytes.
    fn flush_pcie_run(&mut self, run: &mut u64, kind: AccessKind) {
        if *run == 0 {
            return;
        }
        let requests = run.div_ceil(MAX_DMA_PAYLOAD);
        match kind {
            AccessKind::Read => {
                self.stats.dma_reads += requests;
                self.stats.dma_read_bytes += *run;
            }
            AccessKind::Write => {
                self.stats.dma_writes += requests;
                self.stats.dma_write_bytes += *run;
            }
        }
        *run = 0;
    }
}

impl MemoryEngine for DispatchedMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.access(addr, AccessKind::Read, buf);
    }

    fn write(&mut self, addr: u64, data: &[u8]) {
        // `access` needs a mutable buffer for the read path; writes only
        // read from it. A copy keeps the public signature conventional.
        let mut tmp = data.to_vec();
        self.access(addr, AccessKind::Write, &mut tmp);
    }

    fn capacity(&self) -> u64 {
        self.host.capacity()
    }

    fn stats(&self) -> AccessStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_sim::Bandwidth;

    fn dispatched(ratio: f64) -> DispatchedMemory {
        DispatchedMemory::new(
            1 << 20,
            NicDramConfig {
                capacity: 1 << 16,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            DispatchConfig::new(ratio),
        )
    }

    #[test]
    fn flat_memory_counts_requests() {
        let mut m = FlatMemory::new(1 << 20);
        let mut buf = [0u8; 64];
        m.read(0, &mut buf);
        m.read(0, &mut buf);
        m.write(0, &buf);
        let s = m.stats();
        assert_eq!(s.dma_reads, 2);
        assert_eq!(s.dma_writes, 1);
        assert_eq!(s.accesses(), 3);
        // A 254B KV needs one request; a 300B one needs two.
        let mut big = [0u8; 254];
        m.read(0, &mut big);
        assert_eq!(m.stats().dma_reads, 3);
        let mut bigger = [0u8; 300];
        m.read(0, &mut bigger);
        assert_eq!(m.stats().dma_reads, 5);
    }

    #[test]
    fn flat_memory_reset_keeps_contents() {
        let mut m = FlatMemory::new(1 << 20);
        m.write(10, b"abc");
        m.reset_stats();
        assert_eq!(m.stats(), AccessStats::default());
        let mut buf = [0u8; 3];
        m.read(10, &mut buf);
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn dispatched_roundtrip_all_ratios() {
        for ratio in [0.0, 0.3, 1.0] {
            let mut m = dispatched(ratio);
            for i in 0..64u64 {
                let addr = i * 997 % ((1 << 20) - 16);
                m.write_u64(addr, i * 31 + 7);
            }
            for i in 0..64u64 {
                let addr = i * 997 % ((1 << 20) - 16);
                assert_eq!(m.read_u64(addr), i * 31 + 7, "ratio {ratio} addr {addr}");
            }
        }
    }

    #[test]
    fn dispatched_matches_flat_reference() {
        // Differential test: DispatchedMemory must behave exactly like a
        // flat memory for any access pattern.
        let mut d = dispatched(0.5);
        let mut f = FlatMemory::new(1 << 20);
        let mut rng = kvd_sim::DetRng::seed(99);
        for _ in 0..2000 {
            let addr = rng.u64_below((1 << 20) - 300);
            let len = 1 + rng.usize_below(300);
            if rng.chance(0.5) {
                let mut data = vec![0u8; len];
                rng.fill_bytes(&mut data);
                d.write(addr, &data);
                f.write(addr, &data);
            } else {
                let mut a = vec![0u8; len];
                let mut b = vec![0u8; len];
                d.read(addr, &mut a);
                f.read(addr, &mut b);
                assert_eq!(a, b, "divergence at {addr:#x}+{len}");
            }
        }
    }

    #[test]
    fn pcie_only_never_touches_dram() {
        let mut m = dispatched(0.0);
        let mut buf = [0u8; 64];
        for i in 0..100 {
            m.read(i * 64, &mut buf);
        }
        let s = m.stats();
        assert_eq!(s.dram_reads + s.dram_writes, 0);
        assert_eq!(s.dma_reads, 100);
    }

    #[test]
    fn fully_cacheable_repeated_access_hits() {
        let mut m = dispatched(1.0);
        let mut buf = [0u8; 64];
        m.read(4096, &mut buf); // may miss
        m.reset_stats();
        for _ in 0..10 {
            m.read(4096, &mut buf);
        }
        let s = m.stats();
        assert_eq!(s.cache_hits, 10);
        assert_eq!(s.dma_reads, 0, "hits must not touch PCIe");
        assert_eq!(s.dram_reads, 10);
    }

    #[test]
    fn cacheable_write_then_evict_then_read_back() {
        // Force an eviction by writing two lines that collide in the
        // direct-mapped cache, then verify the first line's data survived
        // via host write-back.
        let mut m = dispatched(1.0);
        let slots = (1u64 << 16) / LINE; // 1024 slots
                                         // Find two colliding cacheable lines.
        let line_a = 3u64;
        let line_b = 3 + slots;
        m.write(line_a * LINE, &[0xAB; 64]);
        m.write(line_b * LINE, &[0xCD; 64]); // evicts a (dirty)
        let mut buf = [0u8; 64];
        m.read(line_a * LINE, &mut buf); // must refetch from host
        assert_eq!(buf, [0xAB; 64]);
        assert!(m.stats().dma_writes >= 1, "dirty eviction must write back");
    }

    #[test]
    fn noncacheable_run_coalesces_dma() {
        let mut m = dispatched(0.0);
        let mut buf = vec![0u8; 256];
        m.read(0, &mut buf);
        // 256 contiguous non-cacheable bytes = 1 DMA request.
        assert_eq!(m.stats().dma_reads, 1);
        let mut buf = vec![0u8; 512];
        m.read(0, &mut buf);
        assert_eq!(m.stats().dma_reads, 3);
    }

    #[test]
    fn stats_since_subtracts() {
        let mut m = FlatMemory::new(1 << 16);
        let mut buf = [0u8; 8];
        m.read(0, &mut buf);
        let snap = m.stats();
        m.read(0, &mut buf);
        m.write(0, &buf);
        let d = m.stats().since(&snap);
        assert_eq!(d.dma_reads, 1);
        assert_eq!(d.dma_writes, 1);
    }
}
