//! NIC on-board DRAM modelled as a 4-way set-associative write-back
//! cache.
//!
//! The paper's programmable NIC carries 4 GiB of DDR3-1600 (12.8 GB/s) —
//! an order of magnitude smaller than the 64 GiB host KVS and slightly
//! slower than the two PCIe Gen3 x8 links combined (§3.3.4). KV-Direct
//! uses it as a cache for the *cacheable portion* of host memory selected
//! by the load dispatcher.
//!
//! Per-line metadata (address tag + dirty + valid flags) is stored in the
//! spare ECC bits: ECC DRAM has 8 ECC bits per 64 data bits; widening the
//! Hamming parity granularity from 64 to 512 data bits frees 8 bits per
//! 64 B line (§4, "DRAM Load Dispatcher"; the paper widens to 256 bits
//! for 6 spare bits and a direct-mapped cache — we spend two more ECC
//! bits to get 4-way associativity with a valid bit, see DESIGN.md §16).
//! The valid bit is what lets the adaptive plane retire lines when the
//! load-dispatch threshold migrates: a demoted line's cached copy would
//! otherwise go stale while host writes bypass the cache, then be served
//! again if the line is later re-promoted.

use kvd_sim::Bandwidth;

use crate::LINE;

/// Spare metadata bits available per 64 B line via the ECC trick
/// (parity granularity widened from 64 to 512 data bits).
pub const ECC_SPARE_BITS: u32 = 8;

/// Associativity of the cache. With [`ECC_SPARE_BITS`] = 8 and
/// `tag bits = log2(host:DRAM ratio) + log2(WAYS)`, a dirty bit and a
/// valid bit, the paper's 16:1 capacity ratio fits exactly
/// (4 + 2 + 1 + 1 = 8).
pub const WAYS: usize = 4;

/// Configuration of the NIC on-board DRAM.
#[derive(Debug, Clone)]
pub struct NicDramConfig {
    /// Capacity in bytes (paper: 4 GiB; scaled down in tests).
    pub capacity: u64,
    /// Random-access bandwidth (paper: 12.8 GB/s, single DDR3-1600
    /// channel).
    pub bandwidth: Bandwidth,
}

impl NicDramConfig {
    /// The paper's NIC DRAM, scaled by `scale` (capacity only; bandwidth is
    /// a property of the device, not the corpus size).
    pub fn paper_scaled(scale: u64) -> Self {
        assert!(scale > 0);
        NicDramConfig {
            capacity: (4u64 << 30) / scale,
            bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    tag: u8,
    dirty: bool,
    valid: bool,
}

/// The victim a [`NicDram::fill_way`] displaced: its host line address
/// and whether the caller must write its contents back to host memory
/// (the victim's bytes are in the caller-provided buffer either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillVictim {
    /// The displaced host line, `None` if the way was invalid (no
    /// conflict).
    pub line: Option<u64>,
    /// Whether the displaced line was dirty and must be written back.
    pub dirty: bool,
}

/// A 4-way set-associative, write-back, 64 B-line cache over host line
/// addresses.
///
/// Host lines map to sets by `line % sets`; the tag is `line / sets`,
/// which together with the dirty and valid bits must fit the ECC spare
/// bits (`log2(ratio) + log2(WAYS)` tag bits + 2 ≤ 8 ⇒ host:DRAM
/// capacity ratio ≤ 16, exactly the paper's ratio).
///
/// Replacement is split from installation so the memory engine can run
/// TinyLFU-style admission: [`rr_victim`] returns the default
/// round-robin choice, [`occupants`] exposes the set's resident lines
/// for frequency comparison, and [`fill_way`] installs into whichever
/// way the policy picked — copying any displaced line into a
/// caller-provided buffer, so the hot path never allocates.
///
/// # Examples
///
/// ```
/// use kvd_mem::{NicDram, NicDramConfig, LINE};
/// use kvd_sim::Bandwidth;
///
/// let cfg = NicDramConfig {
///     capacity: 64 * 1024,
///     bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
/// };
/// let mut cache = NicDram::new(cfg, 16 * 64 * 1024); // 16:1 host ratio
/// assert!(cache.lookup(0)); // tags 0..3 start resident (zeroed)
/// let far = 4 * (64 * 1024 / LINE); // tag 4: not resident
/// assert!(!cache.lookup(far));
/// ```
///
/// [`rr_victim`]: NicDram::rr_victim
/// [`occupants`]: NicDram::occupants
/// [`fill_way`]: NicDram::fill_way
pub struct NicDram {
    cfg: NicDramConfig,
    sets: u64,
    /// `sets * WAYS` entries, way-major within a set
    /// (`meta[set * WAYS + way]`).
    meta: Vec<LineMeta>,
    data: Vec<u8>,
    /// Per-set round-robin replacement cursor.
    rr: Vec<u8>,
    hits: u64,
    misses: u64,
    writebacks: u64,
    evict_clean: u64,
    evict_dirty: u64,
    conflict_fills: u64,
}

impl NicDram {
    /// Creates a cache for a host memory of `host_capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the host:DRAM ratio needs more metadata than the ECC
    /// spare bits provide, or if sizes are not multiples of the 64 B line.
    pub fn new(cfg: NicDramConfig, host_capacity: u64) -> Self {
        assert_eq!(cfg.capacity % LINE, 0, "capacity must be line-aligned");
        assert_eq!(
            host_capacity % LINE,
            0,
            "host capacity must be line-aligned"
        );
        let slots = cfg.capacity / LINE;
        assert!(
            slots >= WAYS as u64 && slots.is_multiple_of(WAYS as u64),
            "cache too small for {WAYS}-way sets"
        );
        let sets = slots / WAYS as u64;
        let ratio = host_capacity.div_ceil(cfg.capacity).max(1);
        // Tag bits = log2(ratio · WAYS); together with the dirty and valid
        // bits they must fit the ECC spare bits.
        let tag_bits = (ratio * WAYS as u64).next_power_of_two().trailing_zeros();
        assert!(
            tag_bits + 2 <= ECC_SPARE_BITS,
            "host:DRAM ratio {ratio} needs more metadata than {ECC_SPARE_BITS} ECC spare bits"
        );
        // Initialization stays zero-coherent without any flush: way `w` of
        // every set holds tag `w`, valid and clean, all-zero data — the
        // first `capacity` bytes of a zero-initialized host memory.
        let meta = (0..slots)
            .map(|i| LineMeta {
                tag: (i % WAYS as u64) as u8,
                dirty: false,
                valid: true,
            })
            .collect();
        NicDram {
            sets,
            meta,
            data: vec![0; cfg.capacity as usize],
            rr: vec![0; sets as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
            evict_clean: 0,
            evict_dirty: 0,
            conflict_fills: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NicDramConfig {
        &self.cfg
    }

    fn set_of(&self, host_line: u64) -> u64 {
        host_line % self.sets
    }

    fn tag_of(&self, host_line: u64) -> u8 {
        let t = host_line / self.sets;
        debug_assert!(t <= u8::MAX as u64, "tag overflow");
        t as u8
    }

    /// The resident way of `host_line`, if any.
    fn way_of(&self, host_line: u64) -> Option<usize> {
        let set = self.set_of(host_line);
        let tag = self.tag_of(host_line);
        let base = (set as usize) * WAYS;
        (0..WAYS).find(|&w| {
            let m = &self.meta[base + w];
            m.valid && m.tag == tag
        })
    }

    fn data_off(&self, set: u64, way: usize) -> usize {
        ((set as usize) * WAYS + way) * LINE as usize
    }

    /// Returns `true` if `host_line` is resident.
    pub fn lookup(&self, host_line: u64) -> bool {
        self.way_of(host_line).is_some()
    }

    /// The host lines resident in `host_line`'s set, by way (`None` for
    /// invalid ways) — the candidates a frequency-aware replacement
    /// policy compares against.
    pub fn occupants(&self, host_line: u64) -> [Option<u64>; WAYS] {
        let set = self.set_of(host_line);
        let base = (set as usize) * WAYS;
        let mut out = [None; WAYS];
        for (w, slot) in out.iter_mut().enumerate() {
            let m = &self.meta[base + w];
            if m.valid {
                *slot = Some(m.tag as u64 * self.sets + set);
            }
        }
        out
    }

    /// The default replacement choice for `host_line`'s set: an invalid
    /// way if one exists, else the set's round-robin cursor (advanced).
    pub fn rr_victim(&mut self, host_line: u64) -> usize {
        let set = self.set_of(host_line);
        let base = (set as usize) * WAYS;
        if let Some(w) = (0..WAYS).find(|&w| !self.meta[base + w].valid) {
            return w;
        }
        let cursor = &mut self.rr[set as usize];
        let w = *cursor as usize % WAYS;
        *cursor = ((w + 1) % WAYS) as u8;
        w
    }

    /// Reads a resident line into `buf` (64 bytes) and counts a hit.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident; callers must [`lookup`] first.
    ///
    /// [`lookup`]: NicDram::lookup
    pub fn read_hit(&mut self, host_line: u64, buf: &mut [u8]) {
        let way = self
            .way_of(host_line)
            .expect("read_hit on non-resident line");
        assert_eq!(buf.len() as u64, LINE);
        let off = self.data_off(self.set_of(host_line), way);
        buf.copy_from_slice(&self.data[off..off + LINE as usize]);
        self.hits += 1;
    }

    /// Writes a resident line and marks it dirty; counts a hit.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn write_hit(&mut self, host_line: u64, data: &[u8]) {
        let way = self
            .way_of(host_line)
            .expect("write_hit on non-resident line");
        assert_eq!(data.len() as u64, LINE);
        let set = self.set_of(host_line);
        let off = self.data_off(set, way);
        self.data[off..off + LINE as usize].copy_from_slice(data);
        self.meta[(set as usize) * WAYS + way].dirty = true;
        self.hits += 1;
    }

    /// Installs `host_line` with `data` into `way` of its set, copying
    /// any displaced line's contents into `victim_buf` (64 bytes, no
    /// allocation). Counts a miss; the caller writes a dirty victim back
    /// to host memory.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident or `way >= WAYS`.
    pub fn fill_way(
        &mut self,
        host_line: u64,
        way: usize,
        data: &[u8],
        dirty: bool,
        victim_buf: &mut [u8],
    ) -> FillVictim {
        assert_eq!(data.len() as u64, LINE);
        assert_eq!(victim_buf.len() as u64, LINE);
        assert!(way < WAYS, "way out of range");
        assert!(!self.lookup(host_line), "fill of already-resident line");
        self.misses += 1;
        let set = self.set_of(host_line);
        let off = self.data_off(set, way);
        let old = self.meta[(set as usize) * WAYS + way];
        let victim = if old.valid {
            self.conflict_fills += 1;
            if old.dirty {
                self.writebacks += 1;
                self.evict_dirty += 1;
            } else {
                self.evict_clean += 1;
            }
            victim_buf.copy_from_slice(&self.data[off..off + LINE as usize]);
            FillVictim {
                line: Some(old.tag as u64 * self.sets + set),
                dirty: old.dirty,
            }
        } else {
            FillVictim {
                line: None,
                dirty: false,
            }
        };
        self.meta[(set as usize) * WAYS + way] = LineMeta {
            tag: self.tag_of(host_line),
            dirty,
            valid: true,
        };
        self.data[off..off + LINE as usize].copy_from_slice(data);
        victim
    }

    /// Installs `host_line` at the default round-robin victim —
    /// the non-adaptive fill path.
    pub fn fill(
        &mut self,
        host_line: u64,
        data: &[u8],
        dirty: bool,
        victim_buf: &mut [u8],
    ) -> FillVictim {
        let way = self.rr_victim(host_line);
        self.fill_way(host_line, way, data, dirty, victim_buf)
    }

    /// Whether a resident line is dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn is_dirty(&self, host_line: u64) -> bool {
        let way = self
            .way_of(host_line)
            .expect("is_dirty on non-resident line");
        self.meta[(self.set_of(host_line) as usize) * WAYS + way].dirty
    }

    /// Reads a resident line without hit accounting (ECC recovery path).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn peek(&self, host_line: u64, buf: &mut [u8]) {
        let way = self.way_of(host_line).expect("peek of non-resident line");
        assert_eq!(buf.len() as u64, LINE);
        let off = self.data_off(self.set_of(host_line), way);
        buf.copy_from_slice(&self.data[off..off + LINE as usize]);
    }

    /// Overwrites a resident line in place with a fresh copy and sets its
    /// dirty state — the ECC recovery refill after an uncorrectable error.
    /// No hit/miss accounting (this is not a demand access).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn restore(&mut self, host_line: u64, data: &[u8], dirty: bool) {
        let way = self
            .way_of(host_line)
            .expect("restore of non-resident line");
        assert_eq!(data.len() as u64, LINE);
        let set = self.set_of(host_line);
        let off = self.data_off(set, way);
        self.data[off..off + LINE as usize].copy_from_slice(data);
        self.meta[(set as usize) * WAYS + way].dirty = dirty;
    }

    /// Invalidates every resident line for which `retire` returns true —
    /// the threshold-migration sweep of the adaptive dispatcher. Dirty
    /// lines are handed to `writeback` (host line, contents) before
    /// invalidation. Returns `(clean, dirty)` lines retired. No
    /// allocation: contents are passed by reference out of the array.
    pub fn retire_if(
        &mut self,
        mut retire: impl FnMut(u64) -> bool,
        mut writeback: impl FnMut(u64, &[u8]),
    ) -> (u64, u64) {
        let (mut clean, mut dirty) = (0u64, 0u64);
        for set in 0..self.sets {
            for way in 0..WAYS {
                let idx = (set as usize) * WAYS + way;
                let m = self.meta[idx];
                if !m.valid {
                    continue;
                }
                let line = m.tag as u64 * self.sets + set;
                if !retire(line) {
                    continue;
                }
                if m.dirty {
                    let off = idx * LINE as usize;
                    writeback(line, &self.data[off..off + LINE as usize]);
                    self.writebacks += 1;
                    dirty += 1;
                } else {
                    clean += 1;
                }
                self.meta[idx].valid = false;
                self.meta[idx].dirty = false;
            }
        }
        (clean, dirty)
    }

    /// Drains every dirty line, clearing the dirty flags, and returns the
    /// (host line, contents) pairs for the caller to write back — used when
    /// the degradation breaker retires the cache from service.
    pub fn flush_dirty(&mut self) -> Vec<(u64, Box<[u8]>)> {
        let mut out = Vec::new();
        for set in 0..self.sets {
            for way in 0..WAYS {
                let idx = (set as usize) * WAYS + way;
                let m = &mut self.meta[idx];
                if m.valid && m.dirty {
                    m.dirty = false;
                    let line = m.tag as u64 * self.sets + set;
                    let off = idx * LINE as usize;
                    out.push((line, self.data[off..off + LINE as usize].into()));
                }
            }
        }
        out
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty write-backs so far (demand evictions + migration sweeps).
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Valid lines displaced by a fill while clean.
    pub fn evict_clean(&self) -> u64 {
        self.evict_clean
    }

    /// Valid lines displaced by a fill while dirty.
    pub fn evict_dirty(&self) -> u64 {
        self.evict_dirty
    }

    /// Fills that displaced a valid line (conflict misses; fills into
    /// invalid ways are not conflicts).
    pub fn conflict_fills(&self) -> u64 {
        self.conflict_fills
    }

    /// Hit rate over all lookups that were served.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> NicDram {
        // 4 KiB cache (64 slots = 16 sets x 4 ways) over a 64 KiB host:
        // ratio 16, like the paper.
        NicDram::new(
            NicDramConfig {
                capacity: 4096,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            64 * 1024,
        )
    }

    /// Sets in the test cache (16).
    const SETS: u64 = 4096 / LINE / WAYS as u64;

    #[test]
    fn cold_cache_holds_low_tags_zeroed() {
        let mut c = cache();
        // Tags 0..WAYS start resident, zero-filled, coherent with zeroed
        // host memory (the no-flush initialization).
        for tag in 0..WAYS as u64 {
            assert!(c.lookup(tag * SETS + 5), "tag {tag} must start resident");
        }
        let mut buf = [0xFFu8; 64];
        c.read_hit(5, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        // Tag WAYS does not fit the initial residency.
        assert!(!c.lookup(WAYS as u64 * SETS + 5));
    }

    #[test]
    fn fill_then_hit() {
        let mut c = cache();
        let line = WAYS as u64 * SETS + 3; // tag 4, set 3
        assert!(!c.lookup(line));
        let data = [7u8; 64];
        let mut victim = [0u8; 64];
        let ev = c.fill(line, &data, false, &mut victim);
        assert!(!ev.dirty, "initial lines are clean");
        assert!(ev.line.is_some(), "set was full of valid lines");
        assert!(c.lookup(line));
        let mut buf = [0u8; 64];
        c.read_hit(line, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.conflict_fills(), 1);
        assert_eq!(c.evict_clean(), 1);
    }

    #[test]
    fn four_way_set_holds_four_conflicting_lines() {
        let mut c = cache();
        // Four lines of the same set (tags 4..8) can all be resident at
        // once after the initial occupants rotate out.
        let mut victim = [0u8; 64];
        for tag in 4..8u64 {
            c.fill(tag * SETS + 2, &[tag as u8; 64], false, &mut victim);
        }
        for tag in 4..8u64 {
            assert!(c.lookup(tag * SETS + 2), "tag {tag} evicted too early");
        }
        // A fifth conflicting line displaces one of them.
        c.fill(8 * SETS + 2, &[8u8; 64], false, &mut victim);
        let resident = (4..9u64).filter(|&t| c.lookup(t * SETS + 2)).count();
        assert_eq!(resident, WAYS);
    }

    #[test]
    fn dirty_eviction_returns_contents() {
        let mut c = cache();
        // Dirty the tag-0 occupant of set 9, then displace it by filling
        // enough conflicting lines to wrap the round-robin cursor.
        c.write_hit(9, &[3u8; 64]);
        let mut victim = [0u8; 64];
        let mut seen_dirty = None;
        for tag in 4..8u64 {
            let ev = c.fill(tag * SETS + 9, &[4u8; 64], false, &mut victim);
            if ev.dirty {
                seen_dirty = Some((ev.line.unwrap(), victim));
            }
        }
        let (line, data) = seen_dirty.expect("dirty line must be evicted");
        assert_eq!(line, 9);
        assert_eq!(&data[..], &[3u8; 64]);
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.evict_dirty(), 1);
    }

    #[test]
    fn fill_marked_dirty_writes_back_later() {
        let mut c = cache();
        let mut victim = [0u8; 64];
        let target = WAYS as u64 * SETS + 1; // tag 4, set 1
        let ev = c.fill(target, &[1u8; 64], true, &mut victim); // write-allocate
        assert!(!ev.dirty);
        // Displace the whole set; the dirty fill must surface.
        let mut dirty_evictions = 0;
        for tag in 5..9u64 {
            let ev = c.fill(tag * SETS + 1, &[2u8; 64], false, &mut victim);
            if ev.dirty {
                assert_eq!(ev.line, Some(target));
                assert_eq!(victim, [1u8; 64]);
                dirty_evictions += 1;
            }
        }
        assert_eq!(dirty_evictions, 1);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = cache();
        let mut buf = [0u8; 64];
        c.read_hit(0, &mut buf);
        c.read_hit(1, &mut buf);
        let mut victim = [0u8; 64];
        c.fill(WAYS as u64 * SETS, &[0u8; 64], false, &mut victim);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn occupants_reports_the_set() {
        let mut c = cache();
        let occ = c.occupants(7);
        // Initially: tags 0..WAYS of set 7.
        for (w, line) in occ.iter().enumerate() {
            assert_eq!(*line, Some(w as u64 * SETS + 7));
        }
        // After retiring one way, it reads back as None.
        c.retire_if(|line| line == SETS + 7, |_, _| {});
        let occ = c.occupants(7);
        assert_eq!(occ[1], None);
        assert_eq!(occ[0], Some(7));
    }

    #[test]
    fn rr_victim_prefers_invalid_ways() {
        let mut c = cache();
        c.retire_if(|line| line == 2 * SETS + 3, |_, _| {});
        assert_eq!(c.rr_victim(3 + 4 * SETS), 2, "invalid way wins");
        // With all ways valid again, the cursor rotates.
        let mut victim = [0u8; 64];
        c.fill(4 * SETS + 3, &[0u8; 64], false, &mut victim);
        let (a, b) = (c.rr_victim(3), c.rr_victim(3));
        assert_ne!(a, b, "cursor must advance");
    }

    #[test]
    fn retire_sweep_writes_back_dirty_and_invalidates() {
        let mut c = cache();
        c.write_hit(5, &[9u8; 64]); // dirty line 5 (tag 0, set 5)
        let mut written = Vec::new();
        let (clean, dirty) = c.retire_if(
            |line| line % SETS == 5, // everything in set 5
            |line, data| written.push((line, data[0])),
        );
        assert_eq!(dirty, 1);
        assert_eq!(clean, WAYS as u64 - 1);
        assert_eq!(written, vec![(5, 9)]);
        assert!(!c.lookup(5), "retired lines are gone");
        // A retired dirty line must not write back again via flush.
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn read_hit_requires_residency() {
        let mut c = cache();
        let mut buf = [0u8; 64];
        c.read_hit(WAYS as u64 * SETS, &mut buf);
    }

    #[test]
    #[should_panic(expected = "ECC spare bits")]
    fn rejects_ratio_beyond_ecc_bits() {
        // Ratio 32 needs 5+2 tag bits + dirty + valid = 9 > 8 spare bits.
        NicDram::new(
            NicDramConfig {
                capacity: 4096,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            32 * 4096,
        );
    }

    #[test]
    fn paper_ratio_fits_ecc_bits() {
        // 16:1 (the paper's 64GiB:4GiB) needs 6 tag bits + dirty + valid = 8.
        let c = NicDram::new(NicDramConfig::paper_scaled(1024), (64u64 << 30) / 1024);
        assert_eq!(c.config().capacity, 4 << 20);
    }
}
