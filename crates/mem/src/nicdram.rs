//! NIC on-board DRAM modelled as a direct-mapped write-back cache.
//!
//! The paper's programmable NIC carries 4 GiB of DDR3-1600 (12.8 GB/s) —
//! an order of magnitude smaller than the 64 GiB host KVS and slightly
//! slower than the two PCIe Gen3 x8 links combined (§3.3.4). KV-Direct
//! uses it as a cache for the *cacheable portion* of host memory selected
//! by the load dispatcher.
//!
//! Per-line metadata (address tag + dirty flag) is stored in the spare ECC
//! bits: ECC DRAM has 8 ECC bits per 64 data bits; widening the Hamming
//! parity granularity from 64 to 256 data bits frees 6 bits per 64 B line
//! (§4, "DRAM Load Dispatcher"). No valid bit is needed because the NIC
//! accesses the KVS exclusively: the cache is initialized to tag 0, clean,
//! all-zero data — coherent with zero-initialized host memory.

use kvd_sim::Bandwidth;

use crate::LINE;

/// Spare metadata bits available per 64 B line via the ECC trick.
pub const ECC_SPARE_BITS: u32 = 6;

/// Configuration of the NIC on-board DRAM.
#[derive(Debug, Clone)]
pub struct NicDramConfig {
    /// Capacity in bytes (paper: 4 GiB; scaled down in tests).
    pub capacity: u64,
    /// Random-access bandwidth (paper: 12.8 GB/s, single DDR3-1600
    /// channel).
    pub bandwidth: Bandwidth,
}

impl NicDramConfig {
    /// The paper's NIC DRAM, scaled by `scale` (capacity only; bandwidth is
    /// a property of the device, not the corpus size).
    pub fn paper_scaled(scale: u64) -> Self {
        assert!(scale > 0);
        NicDramConfig {
            capacity: (4u64 << 30) / scale,
            bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    tag: u8,
    dirty: bool,
}

/// Result of a cache fill: the dirty line that had to be written back, if
/// any.
pub type Eviction = Option<(u64, Box<[u8]>)>;

/// A direct-mapped, write-back, 64 B-line cache over host line addresses.
///
/// Host lines map to slots by `line % slots`; the tag is `line / slots`,
/// which must fit the ECC spare bits (tag + dirty ≤ 6 bits ⇒ host:DRAM
/// capacity ratio ≤ 32; the paper's ratio is 16, needing 4 tag bits + 1
/// dirty).
///
/// # Examples
///
/// ```
/// use kvd_mem::{NicDram, NicDramConfig};
/// use kvd_sim::Bandwidth;
///
/// let cfg = NicDramConfig {
///     capacity: 64 * 1024,
///     bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
/// };
/// let mut cache = NicDram::new(cfg, 16 * 64 * 1024); // 16:1 host ratio
/// assert!(cache.lookup(0)); // tag-0 lines start resident (zeroed)
/// assert!(!cache.lookup(1024)); // a tag-1 line does not
/// ```
pub struct NicDram {
    cfg: NicDramConfig,
    slots: u64,
    meta: Vec<LineMeta>,
    data: Vec<u8>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl NicDram {
    /// Creates a cache for a host memory of `host_capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the host:DRAM ratio needs more metadata than the ECC
    /// spare bits provide, or if sizes are not multiples of the 64 B line.
    pub fn new(cfg: NicDramConfig, host_capacity: u64) -> Self {
        assert_eq!(cfg.capacity % LINE, 0, "capacity must be line-aligned");
        assert_eq!(
            host_capacity % LINE,
            0,
            "host capacity must be line-aligned"
        );
        let slots = cfg.capacity / LINE;
        assert!(slots > 0, "cache too small for even one line");
        let ratio = host_capacity.div_ceil(cfg.capacity).max(1);
        // Tag bits = log2(ratio); together with the dirty bit they must fit
        // the ECC spare bits.
        let tag_bits = ratio.next_power_of_two().trailing_zeros();
        assert!(
            tag_bits < ECC_SPARE_BITS,
            "host:DRAM ratio {ratio} needs more metadata than {ECC_SPARE_BITS} ECC spare bits"
        );
        NicDram {
            slots,
            meta: vec![LineMeta::default(); slots as usize],
            data: vec![0; cfg.capacity as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NicDramConfig {
        &self.cfg
    }

    fn slot_of(&self, host_line: u64) -> u64 {
        host_line % self.slots
    }

    fn tag_of(&self, host_line: u64) -> u8 {
        let t = host_line / self.slots;
        debug_assert!(t <= u8::MAX as u64, "tag overflow");
        t as u8
    }

    /// Returns `true` if `host_line` is resident.
    pub fn lookup(&self, host_line: u64) -> bool {
        let slot = self.slot_of(host_line);
        self.meta[slot as usize].tag == self.tag_of(host_line)
    }

    /// Reads a resident line into `buf` (64 bytes) and counts a hit.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident; callers must [`lookup`] first.
    ///
    /// [`lookup`]: NicDram::lookup
    pub fn read_hit(&mut self, host_line: u64, buf: &mut [u8]) {
        assert!(self.lookup(host_line), "read_hit on non-resident line");
        assert_eq!(buf.len() as u64, LINE);
        let off = (self.slot_of(host_line) * LINE) as usize;
        buf.copy_from_slice(&self.data[off..off + LINE as usize]);
        self.hits += 1;
    }

    /// Writes a resident line and marks it dirty; counts a hit.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn write_hit(&mut self, host_line: u64, data: &[u8]) {
        assert!(self.lookup(host_line), "write_hit on non-resident line");
        assert_eq!(data.len() as u64, LINE);
        let slot = self.slot_of(host_line);
        let off = (slot * LINE) as usize;
        self.data[off..off + LINE as usize].copy_from_slice(data);
        self.meta[slot as usize].dirty = true;
        self.hits += 1;
    }

    /// Installs `host_line` with `data`, evicting the previous occupant.
    ///
    /// Returns the evicted line's address and contents if it was dirty
    /// (the caller must write it back to host memory). Counts a miss.
    pub fn fill(&mut self, host_line: u64, data: &[u8], dirty: bool) -> Eviction {
        assert_eq!(data.len() as u64, LINE);
        assert!(!self.lookup(host_line), "fill of already-resident line");
        self.misses += 1;
        let slot = self.slot_of(host_line);
        let off = (slot * LINE) as usize;
        let old = &mut self.meta[slot as usize];
        let evicted = if old.dirty {
            self.writebacks += 1;
            let old_line = old.tag as u64 * self.slots + slot;
            Some((old_line, self.data[off..off + LINE as usize].into()))
        } else {
            None
        };
        self.meta[slot as usize] = LineMeta {
            tag: self.tag_of(host_line),
            dirty,
        };
        self.data[off..off + LINE as usize].copy_from_slice(data);
        evicted
    }

    /// Whether a resident line is dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn is_dirty(&self, host_line: u64) -> bool {
        assert!(self.lookup(host_line), "is_dirty on non-resident line");
        self.meta[self.slot_of(host_line) as usize].dirty
    }

    /// Reads a resident line without hit accounting (ECC recovery path).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn peek(&self, host_line: u64, buf: &mut [u8]) {
        assert!(self.lookup(host_line), "peek of non-resident line");
        assert_eq!(buf.len() as u64, LINE);
        let off = (self.slot_of(host_line) * LINE) as usize;
        buf.copy_from_slice(&self.data[off..off + LINE as usize]);
    }

    /// Overwrites a resident line in place with a fresh copy and sets its
    /// dirty state — the ECC recovery refill after an uncorrectable error.
    /// No hit/miss accounting (this is not a demand access).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn restore(&mut self, host_line: u64, data: &[u8], dirty: bool) {
        assert!(self.lookup(host_line), "restore of non-resident line");
        assert_eq!(data.len() as u64, LINE);
        let slot = self.slot_of(host_line);
        let off = (slot * LINE) as usize;
        self.data[off..off + LINE as usize].copy_from_slice(data);
        self.meta[slot as usize].dirty = dirty;
    }

    /// Drains every dirty line, clearing the dirty flags, and returns the
    /// (host line, contents) pairs for the caller to write back — used when
    /// the degradation breaker retires the cache from service.
    pub fn flush_dirty(&mut self) -> Vec<(u64, Box<[u8]>)> {
        let mut out = Vec::new();
        for slot in 0..self.slots {
            let m = &mut self.meta[slot as usize];
            if m.dirty {
                m.dirty = false;
                let line = m.tag as u64 * self.slots + slot;
                let off = (slot * LINE) as usize;
                out.push((line, self.data[off..off + LINE as usize].into()));
            }
        }
        out
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty write-backs so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate over all lookups that were served.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> NicDram {
        // 4 KiB cache (64 slots) over a 64 KiB host: ratio 16, like paper.
        NicDram::new(
            NicDramConfig {
                capacity: 4096,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            64 * 1024,
        )
    }

    #[test]
    fn cold_cache_holds_tag_zero_zeroes() {
        let mut c = cache();
        // Line 5 has tag 0: resident, zero-filled, coherent with zeroed
        // host memory (the paper's no-valid-bit initialization).
        assert!(c.lookup(5));
        let mut buf = [0xFFu8; 64];
        c.read_hit(5, &mut buf);
        assert_eq!(buf, [0u8; 64]);
        // Line 5 + 64 slots has tag 1: not resident.
        assert!(!c.lookup(5 + 64));
    }

    #[test]
    fn fill_then_hit() {
        let mut c = cache();
        let line = 64 + 3; // tag 1, slot 3
        assert!(!c.lookup(line));
        let data = [7u8; 64];
        let ev = c.fill(line, &data, false);
        assert!(ev.is_none(), "clean tag-0 line needs no writeback");
        assert!(c.lookup(line));
        let mut buf = [0u8; 64];
        c.read_hit(line, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn dirty_eviction_returns_contents() {
        let mut c = cache();
        // Dirty the tag-0 occupant of slot 9.
        c.write_hit(9, &[3u8; 64]);
        // Fill the same slot with tag 2 → must evict dirty line 9.
        let ev = c.fill(2 * 64 + 9, &[4u8; 64], false);
        let (line, data) = ev.expect("dirty line must be evicted");
        assert_eq!(line, 9);
        assert_eq!(&data[..], &[3u8; 64]);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn fill_marked_dirty_writes_back_later() {
        let mut c = cache();
        let ev = c.fill(64 + 1, &[1u8; 64], true); // write-allocate
        assert!(ev.is_none());
        let ev = c.fill(2 * 64 + 1, &[2u8; 64], false);
        let (line, data) = ev.expect("dirty filled line must evict");
        assert_eq!(line, 64 + 1);
        assert_eq!(&data[..], &[1u8; 64]);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = cache();
        let mut buf = [0u8; 64];
        c.read_hit(0, &mut buf);
        c.read_hit(1, &mut buf);
        c.fill(64, &[0u8; 64], false);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn read_hit_requires_residency() {
        let mut c = cache();
        let mut buf = [0u8; 64];
        c.read_hit(64, &mut buf);
    }

    #[test]
    #[should_panic(expected = "ECC spare bits")]
    fn rejects_ratio_beyond_ecc_bits() {
        // Ratio 64 needs 6 tag bits + dirty = 7 > 6 spare bits.
        NicDram::new(
            NicDramConfig {
                capacity: 4096,
                bandwidth: Bandwidth::from_gbytes_per_sec(12.8),
            },
            64 * 4096,
        );
    }

    #[test]
    fn paper_ratio_fits_ecc_bits() {
        // 16:1 (the paper's 64GiB:4GiB) needs 4 tag bits + 1 dirty ≤ 6.
        let c = NicDram::new(NicDramConfig::paper_scaled(1024), (64u64 << 30) / 1024);
        assert_eq!(c.config().capacity, 4 << 20);
    }
}
