//! Deterministic sampled frequency sketches for the adaptive cache plane.
//!
//! TurboKV (PAPERS.md) shows hot-key frequency tracking is cheap enough
//! to run on the data path of an accelerated KV store; this module is
//! the line-rate-friendly version of that idea for our simulated NIC:
//!
//! * [`FreqSketch`] — a count-min sketch over 64-bit items (line
//!   addresses on the memory path, key hashes on the processor path)
//!   with *seeded sampling* (only one access in `sample_period` updates
//!   the counters, drawn from a [`DetRng`] stream so parallel runs stay
//!   bit-identical) and *epoch halving* (all counters floor-halve after
//!   a fixed number of samples, so stale popularity ages out — the
//!   TinyLFU "reset" operation).
//! * [`SpaceSaving`] — the space-saving top-k heavy-hitter summary: a
//!   fixed array of `(item, count, err)` entries replaced at the
//!   minimum, giving the classic guarantee that any item with true
//!   frequency above `total/k` is tracked and every tracked count
//!   overestimates by at most its recorded error.
//!
//! Both structures allocate at construction only; `observe`/`estimate`
//! are allocation-free, preserving the workspace's zero-allocation
//! steady state when they sit on hot paths.
//!
//! Halving uses floor division, which weakly preserves ordering: for a
//! count-min estimate (a min over per-row counters) `floor(x/2)` is
//! monotone and commutes with `min`, so `est(a) <= est(b)` before a
//! halving implies it after — the property `tests/sketch_props.rs` pins.

use kvd_sim::DetRng;

/// Configuration of a [`FreqSketch`].
#[derive(Debug, Clone, Copy)]
pub struct SketchConfig {
    /// Count-min rows (independent hash functions).
    pub rows: usize,
    /// Counters per row; rounded up to a power of two.
    pub cols: usize,
    /// Only one observation in `sample_period` updates the counters
    /// (1 = every observation counts). Sampling is drawn from a seeded
    /// stream, so the same observation sequence always samples the same
    /// subset.
    pub sample_period: u64,
    /// Counted samples between epoch halvings (0 disables aging).
    pub halve_every: u64,
    /// Seed of the sampling stream.
    pub seed: u64,
}

impl SketchConfig {
    /// A small data-path profile: 4 rows x 1024 counters, 1-in-8
    /// sampling, halving every 4096 counted samples.
    pub fn data_path(seed: u64) -> Self {
        SketchConfig {
            rows: 4,
            cols: 1024,
            sample_period: 8,
            halve_every: 4096,
            seed,
        }
    }
}

/// A deterministic sampled count-min sketch over `u64` items.
///
/// # Examples
///
/// ```
/// use kvd_mem::sketch::{FreqSketch, SketchConfig};
///
/// let mut s = FreqSketch::new(SketchConfig {
///     rows: 4,
///     cols: 256,
///     sample_period: 1,
///     halve_every: 0,
///     seed: 7,
/// });
/// for _ in 0..10 {
///     s.observe(42);
/// }
/// s.observe(43);
/// assert!(s.estimate(42) >= 10); // count-min never underestimates
/// assert!(s.estimate(42) > s.estimate(43));
/// ```
#[derive(Debug, Clone)]
pub struct FreqSketch {
    counters: Vec<u32>,
    salts: Vec<u64>,
    mask: u64,
    sample_period: u64,
    halve_every: u64,
    rng: DetRng,
    samples_since_halve: u64,
    samples: u64,
    observed: u64,
    halvings: u64,
}

/// SplitMix64 finalizer: the same mixer the load dispatcher hashes line
/// addresses with, salted per row.
fn mix(item: u64, salt: u64) -> u64 {
    let mut z = item.wrapping_add(salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FreqSketch {
    /// Creates a sketch; all memory is allocated here.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`, `cols == 0` or `sample_period == 0`.
    pub fn new(cfg: SketchConfig) -> Self {
        assert!(cfg.rows > 0, "sketch needs at least one row");
        assert!(cfg.cols > 0, "sketch needs at least one counter");
        assert!(cfg.sample_period > 0, "sample period must be >= 1");
        let cols = cfg.cols.next_power_of_two();
        let mut seeder = DetRng::seed(cfg.seed ^ 0x5EE7_C0DE);
        let salts = (0..cfg.rows).map(|_| seeder.u64()).collect();
        FreqSketch {
            counters: vec![0; cfg.rows * cols],
            salts,
            mask: cols as u64 - 1,
            sample_period: cfg.sample_period,
            halve_every: cfg.halve_every,
            rng: DetRng::seed(cfg.seed),
            samples_since_halve: 0,
            samples: 0,
            observed: 0,
            halvings: 0,
        }
    }

    /// Feeds one observation; returns whether it was sampled into the
    /// counters. Deterministic: the same observation sequence samples
    /// the same subset for a given seed.
    pub fn observe(&mut self, item: u64) -> bool {
        self.observed += 1;
        if self.sample_period > 1 && self.rng.u64_below(self.sample_period) != 0 {
            return false;
        }
        self.samples += 1;
        let cols = self.mask + 1;
        for (row, &salt) in self.salts.iter().enumerate() {
            let idx = row as u64 * cols + (mix(item, salt) & self.mask);
            let c = &mut self.counters[idx as usize];
            *c = c.saturating_add(1);
        }
        if self.halve_every > 0 {
            self.samples_since_halve += 1;
            if self.samples_since_halve >= self.halve_every {
                self.halve();
            }
        }
        true
    }

    /// The count-min estimate: minimum over the item's row counters.
    /// Never underestimates the item's sampled count (between halvings).
    pub fn estimate(&self, item: u64) -> u32 {
        let cols = self.mask + 1;
        let mut est = u32::MAX;
        for (row, &salt) in self.salts.iter().enumerate() {
            let idx = row as u64 * cols + (mix(item, salt) & self.mask);
            est = est.min(self.counters[idx as usize]);
        }
        est
    }

    /// Floor-halves every counter (epoch aging). Weakly preserves the
    /// ordering of estimates.
    pub fn halve(&mut self) {
        for c in &mut self.counters {
            *c /= 2;
        }
        self.samples_since_halve = 0;
        self.halvings += 1;
    }

    /// Observations sampled into the counters so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Observations fed (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Epoch halvings performed.
    pub fn halvings(&self) -> u64 {
        self.halvings
    }
}

/// One space-saving summary entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The tracked item.
    pub item: u64,
    /// Its estimated count (an overestimate).
    pub count: u64,
    /// The overestimation bound: `count - err <= true count <= count`.
    pub err: u64,
}

/// The space-saving top-k heavy-hitter summary (Metwally et al.):
/// `k` slots, the minimum-count entry is displaced by unseen items and
/// inherits its count as error.
///
/// Linear-scan over a fixed array — `k` is small (paper-scale hot-key
/// defense wants tens of entries), so this stays allocation-free and
/// cache-resident.
///
/// # Examples
///
/// ```
/// use kvd_mem::sketch::SpaceSaving;
///
/// let mut ss = SpaceSaving::new(4);
/// for _ in 0..100 {
///     ss.observe(7);
/// }
/// for i in 0..10 {
///     ss.observe(100 + i);
/// }
/// let hot = ss.estimate(7).unwrap();
/// assert!(hot.count >= 100);
/// assert!(ss.share(7) > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    entries: Vec<HeavyHitter>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a summary with `k` slots (all memory allocated here).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "space-saving needs at least one slot");
        SpaceSaving {
            entries: Vec::with_capacity(k),
            total: 0,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, item: u64) {
        self.total += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.item == item) {
            e.count += 1;
            return;
        }
        if self.entries.len() < self.entries.capacity() {
            self.entries.push(HeavyHitter {
                item,
                count: 1,
                err: 0,
            });
            return;
        }
        // Displace the minimum-count entry; the newcomer inherits its
        // count (the space-saving overestimate) and records it as error.
        let min = self
            .entries
            .iter_mut()
            .min_by_key(|e| e.count)
            .expect("k > 0");
        *min = HeavyHitter {
            item,
            count: min.count + 1,
            err: min.count,
        };
    }

    /// The tracked entry for `item`, if it is currently in the summary.
    pub fn estimate(&self, item: u64) -> Option<HeavyHitter> {
        self.entries.iter().find(|e| e.item == item).copied()
    }

    /// `item`'s estimated share of all observations (0.0 if untracked).
    pub fn share(&self, item: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        match self.estimate(item) {
            Some(e) => e.count as f64 / self.total as f64,
            None => 0.0,
        }
    }

    /// Total observations fed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The tracked entries (unordered).
    pub fn entries(&self) -> &[HeavyHitter] {
        &self.entries
    }

    /// Floor-halves every count, error and the total (epoch aging, in
    /// step with [`FreqSketch::halve`]).
    pub fn halve(&mut self) {
        for e in &mut self.entries {
            e.count /= 2;
            e.err /= 2;
        }
        self.total /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(cfg: SketchConfig) -> FreqSketch {
        FreqSketch::new(SketchConfig {
            sample_period: 1,
            halve_every: 0,
            ..cfg
        })
    }

    #[test]
    fn unsampled_sketch_never_underestimates() {
        let mut s = exact(SketchConfig::data_path(3));
        let mut truth = std::collections::HashMap::new();
        let mut rng = DetRng::seed(9);
        for _ in 0..5000 {
            let item = rng.u64_below(64);
            s.observe(item);
            *truth.entry(item).or_insert(0u32) += 1;
        }
        for (&item, &count) in &truth {
            assert!(s.estimate(item) >= count, "underestimate for {item}");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut s = FreqSketch::new(SketchConfig {
                sample_period: 4,
                ..SketchConfig::data_path(seed)
            });
            let sampled: Vec<bool> = (0..1000).map(|i| s.observe(i % 13)).collect();
            (sampled, s.samples(), s.estimate(5))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds sample differently");
        let (_, samples, _) = run(7);
        // 1-in-4 sampling: roughly a quarter of the stream counts.
        assert!((150..350).contains(&samples), "sampled {samples}/1000");
    }

    #[test]
    fn halving_ages_and_preserves_order() {
        let mut s = exact(SketchConfig::data_path(1));
        for _ in 0..40 {
            s.observe(1);
        }
        for _ in 0..10 {
            s.observe(2);
        }
        let (hot, cold) = (s.estimate(1), s.estimate(2));
        s.halve();
        assert_eq!(s.estimate(1), hot / 2);
        assert_eq!(s.estimate(2), cold / 2);
        assert!(s.estimate(1) > s.estimate(2));
        assert_eq!(s.halvings(), 1);
    }

    #[test]
    fn automatic_halving_fires_on_schedule() {
        let mut s = FreqSketch::new(SketchConfig {
            rows: 2,
            cols: 64,
            sample_period: 1,
            halve_every: 100,
            seed: 0,
        });
        for i in 0..250u64 {
            s.observe(i % 7);
        }
        assert_eq!(s.halvings(), 2);
    }

    #[test]
    fn space_saving_tracks_the_heavy_hitter() {
        let mut ss = SpaceSaving::new(8);
        let mut rng = DetRng::seed(5);
        let mut hot_truth = 0u64;
        for _ in 0..10_000 {
            // ~40% of traffic on one item, the rest spread over 1000.
            let item = if rng.chance(0.4) {
                777
            } else {
                rng.u64_below(1000)
            };
            if item == 777 {
                hot_truth += 1;
            }
            ss.observe(item);
        }
        let e = ss.estimate(777).expect("heavy hitter must be tracked");
        assert!(e.count >= hot_truth, "count is an overestimate");
        assert!(e.count - e.err <= hot_truth, "error bound holds");
        assert!(ss.share(777) > 0.3);
    }

    #[test]
    fn space_saving_total_counts_everything() {
        let mut ss = SpaceSaving::new(2);
        for i in 0..100 {
            ss.observe(i);
        }
        assert_eq!(ss.total(), 100);
        assert_eq!(ss.entries().len(), 2);
        ss.halve();
        assert_eq!(ss.total(), 50);
    }
}
