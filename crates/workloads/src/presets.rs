//! Standard YCSB core workload presets.
//!
//! The paper evaluates with "YCSB workload [15]" mixes; these presets
//! map the YCSB core workloads A–F onto KV-Direct request streams so the
//! benchmark harnesses (and downstream users) can name them directly.
//! Workload D's "latest" distribution (reads skewed toward recent
//! inserts) and F's read-modify-write (a single NIC-side atomic in
//! KV-Direct, rather than YCSB's read+write pair) are included.

use kvd_net::{KvRequest, OpCode};
use kvd_sim::{DetRng, ZipfSampler};

/// The YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbPreset {
    /// A: update heavy — 50% reads, 50% updates, Zipf.
    A,
    /// B: read mostly — 95% reads, 5% updates, Zipf.
    B,
    /// C: read only — 100% reads, Zipf.
    C,
    /// D: read latest — 95% reads skewed to recent inserts, 5% inserts.
    D,
    /// E is a range-scan workload; hash KVS (including the paper's) do
    /// not support scans, so it is intentionally absent.
    /// F: read-modify-write — 50% reads, 50% RMW, Zipf.
    F,
}

impl YcsbPreset {
    /// All supported presets.
    pub fn all() -> [YcsbPreset; 5] {
        [
            YcsbPreset::A,
            YcsbPreset::B,
            YcsbPreset::C,
            YcsbPreset::D,
            YcsbPreset::F,
        ]
    }

    /// The YCSB name ("workload a" …).
    pub fn name(&self) -> &'static str {
        match self {
            YcsbPreset::A => "YCSB-A (update heavy)",
            YcsbPreset::B => "YCSB-B (read mostly)",
            YcsbPreset::C => "YCSB-C (read only)",
            YcsbPreset::D => "YCSB-D (read latest)",
            YcsbPreset::F => "YCSB-F (read-modify-write)",
        }
    }
}

/// A preset-driven request generator.
///
/// # Examples
///
/// ```
/// use kvd_workloads::presets::{PresetWorkload, YcsbPreset};
///
/// let mut w = PresetWorkload::new(YcsbPreset::A, 10_000, 100, 7);
/// let batch = w.batch(40);
/// assert_eq!(batch.len(), 40);
/// ```
pub struct PresetWorkload {
    preset: YcsbPreset,
    rng: DetRng,
    zipf: ZipfSampler,
    /// Keys 0..population exist; D appends.
    population: u64,
    value_len: usize,
    /// λ id used for F's read-modify-write (fetch-and-add).
    pub rmw_lambda: u16,
}

impl PresetWorkload {
    /// Creates a generator over an initial `population` of keys with
    /// `value_len`-byte values.
    pub fn new(preset: YcsbPreset, population: u64, value_len: usize, seed: u64) -> Self {
        assert!(population > 0);
        PresetWorkload {
            preset,
            rng: DetRng::seed(seed),
            zipf: ZipfSampler::new(population, 0.99),
            population,
            value_len,
            rmw_lambda: 1, // kvd-core builtin::ADD
        }
    }

    /// Current key population (grows under D).
    pub fn population(&self) -> u64 {
        self.population
    }

    fn key(&self, id: u64) -> [u8; 8] {
        id.to_le_bytes()
    }

    fn value(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.value_len];
        self.rng.fill_bytes(&mut v);
        v
    }

    /// Preload PUTs covering the initial population.
    pub fn preload(&mut self) -> Vec<KvRequest> {
        (0..self.population)
            .map(|id| {
                let v = self.value();
                KvRequest::put(&self.key(id), &v)
            })
            .collect()
    }

    /// Draws a Zipf-popular key id over the current population.
    fn zipf_key(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        // Scramble rank → id (stable for a fixed population).
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.population
    }

    /// Draws a "latest"-skewed key id: recency-weighted toward the end
    /// of the id space (YCSB-D semantics).
    fn latest_key(&mut self) -> u64 {
        let back = self.zipf.sample(&mut self.rng).min(self.population - 1);
        self.population - 1 - back
    }

    /// Generates the next request.
    pub fn next_request(&mut self) -> KvRequest {
        match self.preset {
            YcsbPreset::A => self.mix(0.5),
            YcsbPreset::B => self.mix(0.05),
            YcsbPreset::C => {
                let id = self.zipf_key();
                KvRequest::get(&self.key(id))
            }
            YcsbPreset::D => {
                if self.rng.chance(0.05) {
                    // Insert a brand-new key; the distribution follows.
                    let id = self.population;
                    self.population += 1;
                    self.zipf = ZipfSampler::new(self.population, 0.99);
                    let v = self.value();
                    KvRequest::put(&self.key(id), &v)
                } else {
                    let id = self.latest_key();
                    KvRequest::get(&self.key(id))
                }
            }
            YcsbPreset::F => {
                let id = self.zipf_key();
                if self.rng.chance(0.5) {
                    KvRequest::get(&self.key(id))
                } else {
                    // RMW as one NIC-side atomic (the point of Table 1).
                    KvRequest {
                        op: OpCode::UpdateScalar,
                        key: self.key(id).to_vec(),
                        value: 1u64.to_le_bytes().to_vec(),
                        lambda: self.rmw_lambda,
                        deadline_us: 0,
                        expiry_tick: 0,
                    }
                }
            }
        }
    }

    fn mix(&mut self, update_ratio: f64) -> KvRequest {
        let id = self.zipf_key();
        if self.rng.chance(update_ratio) {
            let v = self.value();
            KvRequest::put(&self.key(id), &v)
        } else {
            KvRequest::get(&self.key(id))
        }
    }

    /// Generates a batch.
    pub fn batch(&mut self, n: usize) -> Vec<KvRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_ops(preset: YcsbPreset, n: usize) -> (usize, usize, usize) {
        let mut w = PresetWorkload::new(preset, 10_000, 16, 1);
        let mut gets = 0;
        let mut puts = 0;
        let mut updates = 0;
        for _ in 0..n {
            match w.next_request().op {
                OpCode::Get => gets += 1,
                OpCode::Put => puts += 1,
                OpCode::UpdateScalar => updates += 1,
                _ => unreachable!("presets emit get/put/update only"),
            }
        }
        (gets, puts, updates)
    }

    #[test]
    fn mixes_match_ycsb_specs() {
        let n = 20_000;
        let (g, p, _) = count_ops(YcsbPreset::A, n);
        assert!((g as f64 / n as f64 - 0.5).abs() < 0.02, "A reads {g}");
        assert!(p > 0);
        let (g, _, _) = count_ops(YcsbPreset::B, n);
        assert!((g as f64 / n as f64 - 0.95).abs() < 0.01, "B reads {g}");
        let (g, p, u) = count_ops(YcsbPreset::C, n);
        assert_eq!((g, p, u), (n, 0, 0), "C is read-only");
        let (_, _, u) = count_ops(YcsbPreset::F, n);
        assert!((u as f64 / n as f64 - 0.5).abs() < 0.02, "F RMWs {u}");
    }

    #[test]
    fn d_inserts_grow_population_and_reads_skew_recent() {
        let mut w = PresetWorkload::new(YcsbPreset::D, 1_000, 16, 2);
        let before = w.population();
        let mut recent_reads = 0;
        let n = 10_000;
        for _ in 0..n {
            let r = w.next_request();
            if r.op == OpCode::Get {
                let id = u64::from_le_bytes(r.key.clone().try_into().expect("8B key"));
                // "Recent" = newest 10% of the population at request time.
                if id >= w.population() - w.population() / 10 {
                    recent_reads += 1;
                }
            }
        }
        assert!(w.population() > before, "D must insert");
        // YCSB-D reads concentrate on the latest keys.
        assert!(
            recent_reads as f64 / n as f64 > 0.5,
            "only {recent_reads}/{n} reads hit the newest 10%"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PresetWorkload::new(YcsbPreset::A, 1000, 8, 9);
        let mut b = PresetWorkload::new(YcsbPreset::A, 1000, 8, 9);
        assert_eq!(a.batch(200), b.batch(200));
    }

    #[test]
    fn preload_covers_population() {
        let mut w = PresetWorkload::new(YcsbPreset::B, 500, 8, 3);
        let pre = w.preload();
        assert_eq!(pre.len(), 500);
        assert!(pre
            .iter()
            .all(|r| r.op == OpCode::Put && r.value.len() == 8));
    }
}
