//! Memcache-protocol workload adapter.
//!
//! The serving front-end (`kvd-server`) speaks the memcache *text*
//! protocol, whose keys must be printable ASCII without whitespace or
//! control characters — the raw 8-byte little-endian ids the YCSB
//! presets emit are not legal on that wire. This module wraps
//! [`PresetWorkload`] and re-keys its request stream as
//! `k<16 hex digits>` so the same popularity distributions (uniform,
//! Zipf 0.99, latest) drive the TCP load generator.
//!
//! YCSB-F's read-modify-write has no memcache text verb, so F is mapped
//! to a SET of the same key — the mix ratio is preserved even though
//! the semantics collapse to an overwrite.

use kvd_net::OpCode;

use crate::presets::{PresetWorkload, YcsbPreset};
use crate::zipfhot::{ZipfHotSpec, ZipfHotWorkload};

/// Fixed length of every memcache-formatted key (`k` + 16 hex digits).
pub const MEMCACHE_KEY_LEN: usize = 17;

/// One memcache-protocol operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// `get <key>`.
    Get {
        /// ASCII key.
        key: Vec<u8>,
    },
    /// `set <key> ... <len>` + data block.
    Set {
        /// ASCII key.
        key: Vec<u8>,
        /// Data block (arbitrary bytes; the protocol length-prefixes it).
        value: Vec<u8>,
    },
}

impl MemOp {
    /// The ASCII key.
    pub fn key(&self) -> &[u8] {
        match self {
            MemOp::Get { key } | MemOp::Set { key, .. } => key,
        }
    }
}

/// Formats a key id as a legal memcache key: `k` + 16 lowercase hex
/// digits (17 bytes, well under the protocol's 250-byte limit).
pub fn memcache_key(id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(MEMCACHE_KEY_LEN);
    out.push(b'k');
    for shift in (0..16).rev() {
        let nibble = ((id >> (shift * 4)) & 0xF) as u8;
        out.push(char::from_digit(nibble as u32, 16).expect("nibble < 16") as u8);
    }
    out
}

/// Parses a key produced by [`memcache_key`] back to its id.
pub fn memcache_key_id(key: &[u8]) -> Option<u64> {
    if key.len() != MEMCACHE_KEY_LEN || key[0] != b'k' {
        return None;
    }
    let hex = std::str::from_utf8(&key[1..]).ok()?;
    u64::from_str_radix(hex, 16).ok()
}

/// A memcache-keyed YCSB workload: the preset's distribution with
/// ASCII keys, deterministic per seed.
///
/// # Examples
///
/// ```
/// use kvd_workloads::memcache::MemcacheWorkload;
/// use kvd_workloads::YcsbPreset;
///
/// let mut w = MemcacheWorkload::new(YcsbPreset::B, 1_000, 64, 7);
/// let op = w.next_op();
/// assert!(op.key().starts_with(b"k"));
/// ```
pub struct MemcacheWorkload {
    inner: Gen,
    value_len: usize,
}

/// The distribution engine behind the memcache adapter: a YCSB preset
/// or the moving-hot-set Zipf sweep.
enum Gen {
    Preset(PresetWorkload),
    ZipfHot(ZipfHotWorkload),
}

impl MemcacheWorkload {
    /// Creates a generator over `population` keys with `value_len`-byte
    /// values.
    pub fn new(preset: YcsbPreset, population: u64, value_len: usize, seed: u64) -> Self {
        MemcacheWorkload {
            inner: Gen::Preset(PresetWorkload::new(preset, population, value_len, seed)),
            value_len,
        }
    }

    /// Creates a moving-hot-set Zipf generator (`kvd-load --zipf θ
    /// --hot-shift N`): skewness `theta`, hot set re-scrambled every
    /// `shift_every` requests (0 = static), 10% SETs.
    pub fn zipf_hot(
        theta: f64,
        shift_every: u64,
        population: u64,
        value_len: usize,
        seed: u64,
    ) -> Self {
        MemcacheWorkload {
            inner: Gen::ZipfHot(ZipfHotWorkload::new(ZipfHotSpec {
                n_keys: population,
                theta,
                kv_size: (value_len + ZipfHotSpec::KEY_LEN) as u64,
                put_ratio: 0.1,
                shift_every,
                seed,
            })),
            value_len,
        }
    }

    /// Current key population (grows under YCSB-D).
    pub fn population(&self) -> u64 {
        match &self.inner {
            Gen::Preset(p) => p.population(),
            Gen::ZipfHot(z) => z.spec().n_keys,
        }
    }

    /// Value length every SET carries.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// SETs covering the initial population, for warm-start loads.
    pub fn preload(&mut self) -> Vec<MemOp> {
        let reqs = match &mut self.inner {
            Gen::Preset(p) => p.preload(),
            Gen::ZipfHot(z) => z.preload_requests(),
        };
        reqs.into_iter()
            .map(|r| MemOp::Set {
                key: rekey(&r.key),
                value: r.value,
            })
            .collect()
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> MemOp {
        let r = match &mut self.inner {
            Gen::Preset(p) => p.next_request(),
            Gen::ZipfHot(z) => z.next_request(),
        };
        let key = rekey(&r.key);
        match r.op {
            OpCode::Get => MemOp::Get { key },
            // PUT and (verb-less on this wire) RMW both become SET.
            _ => {
                let value = if r.op == OpCode::Put {
                    r.value
                } else {
                    vec![0xA5; self.value_len]
                };
                MemOp::Set { key, value }
            }
        }
    }

    /// Generates a batch.
    pub fn batch(&mut self, n: usize) -> Vec<MemOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

/// Re-keys a preset's 8-byte little-endian key as ASCII.
fn rekey(raw: &[u8]) -> Vec<u8> {
    let id = u64::from_le_bytes(raw.try_into().expect("presets emit 8-byte keys"));
    memcache_key(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_legal_memcache_ascii() {
        let mut w = MemcacheWorkload::new(YcsbPreset::A, 5_000, 32, 11);
        for op in w.batch(2_000) {
            let key = op.key();
            assert_eq!(key.len(), MEMCACHE_KEY_LEN);
            assert!(
                key.iter()
                    .all(|&b| b.is_ascii_graphic() && !b.is_ascii_whitespace()),
                "illegal key byte in {key:?}"
            );
        }
    }

    #[test]
    fn zipf_hot_mode_is_legal_and_deterministic() {
        let mut a = MemcacheWorkload::zipf_hot(1.2, 500, 4_096, 32, 9);
        let mut b = MemcacheWorkload::zipf_hot(1.2, 500, 4_096, 32, 9);
        let batch = a.batch(1_200);
        assert_eq!(batch, b.batch(1_200));
        for op in &batch {
            let key = op.key();
            assert_eq!(key.len(), MEMCACHE_KEY_LEN);
            assert!(memcache_key_id(key).is_some());
            if let MemOp::Set { value, .. } = op {
                assert_eq!(value.len(), 32);
            }
        }
        assert_eq!(a.population(), 4_096);
    }

    #[test]
    fn key_roundtrips_through_hex() {
        for id in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(memcache_key_id(&memcache_key(id)), Some(id));
        }
        assert_eq!(memcache_key_id(b"not-a-key"), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MemcacheWorkload::new(YcsbPreset::B, 1_000, 16, 3);
        let mut b = MemcacheWorkload::new(YcsbPreset::B, 1_000, 16, 3);
        assert_eq!(a.batch(300), b.batch(300));
    }

    #[test]
    fn preload_covers_population_with_sets() {
        let mut w = MemcacheWorkload::new(YcsbPreset::C, 200, 24, 5);
        let pre = w.preload();
        assert_eq!(pre.len(), 200);
        assert!(pre
            .iter()
            .all(|op| matches!(op, MemOp::Set { value, .. } if value.len() == 24)));
    }

    #[test]
    fn f_rmw_maps_to_set() {
        let mut w = MemcacheWorkload::new(YcsbPreset::F, 1_000, 16, 9);
        let sets = w
            .batch(4_000)
            .iter()
            .filter(|op| matches!(op, MemOp::Set { .. }))
            .count();
        // F is 50% RMW; all of it must surface as SETs here.
        assert!((sets as f64 / 4_000.0 - 0.5).abs() < 0.03, "{sets} sets");
    }
}
