//! Adversarial hot-key workload: Zipf sweeps with a moving hot set.
//!
//! The adaptive cache plane (frequency sketch, TinyLFU admission, online
//! dispatch retuning) earns its keep under skew that *changes*: a static
//! Zipf head is learned once and cached forever, but a head that jumps
//! mid-run forces the sketch to re-learn and the dispatcher to re-tune.
//! [`ZipfHotWorkload`] produces that stream: Zipf-distributed key ranks
//! at a configurable skewness (the sweep points the hot-key benchmark
//! uses are [`ZipfHotSpec::THETAS`] — 0.5, the paper's 0.99 long tail,
//! and an adversarial 1.2) mapped to key ids through a *phase-salted*
//! scramble. Every `shift_every` requests the phase advances and the
//! whole hot set moves to a fresh, deterministic region of the key
//! space — popularity ranks keep their Zipf shape, but which keys hold
//! them changes completely.

use kvd_net::KvRequest;
use kvd_ooo::SimOp;
use kvd_sim::{DetRng, ZipfSampler};

/// Specification of a hot-key workload.
#[derive(Debug, Clone, Copy)]
pub struct ZipfHotSpec {
    /// Number of distinct keys.
    pub n_keys: u64,
    /// Zipf skewness θ (0.5 = mild, 0.99 = paper long-tail, 1.2 =
    /// adversarial).
    pub theta: f64,
    /// Total KV size (key + value) in bytes; keys are 8 bytes.
    pub kv_size: u64,
    /// Fraction of PUTs (the remainder are GETs).
    pub put_ratio: f64,
    /// Requests between hot-set shifts; `0` never shifts (plain Zipf).
    pub shift_every: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ZipfHotSpec {
    /// Length of generated keys.
    pub const KEY_LEN: usize = 8;

    /// The skewness sweep the hot-key benchmark runs: mild, the paper's
    /// long tail, and the adversarial head-heavy mix.
    pub const THETAS: [f64; 3] = [0.5, 0.99, 1.2];

    /// The benchmark's default shape at a given skewness: 64 Ki keys,
    /// 16 B KVs, 10% PUTs, hot set shifting every 16 Ki requests.
    pub fn sweep_point(theta: f64, seed: u64) -> Self {
        ZipfHotSpec {
            n_keys: 64 << 10,
            theta,
            kv_size: 16,
            put_ratio: 0.1,
            shift_every: 16 << 10,
            seed,
        }
    }

    /// Value length implied by `kv_size`.
    pub fn value_len(&self) -> usize {
        assert!(
            self.kv_size as usize > Self::KEY_LEN,
            "kv size must exceed the 8-byte key"
        );
        self.kv_size as usize - Self::KEY_LEN
    }
}

/// The deterministic moving-hot-set generator.
///
/// # Examples
///
/// ```
/// use kvd_workloads::{ZipfHotSpec, ZipfHotWorkload};
///
/// let mut w = ZipfHotWorkload::new(ZipfHotSpec::sweep_point(1.2, 7));
/// let before = w.hottest_key_id();
/// let batch = w.batch(40);
/// assert_eq!(batch.len(), 40);
/// assert_eq!(before, w.hottest_key_id(), "no shift after 40 requests");
/// ```
pub struct ZipfHotWorkload {
    spec: ZipfHotSpec,
    rng: DetRng,
    zipf: ZipfSampler,
    /// Requests emitted so far; drives the phase.
    emitted: u64,
    /// Current hot-set phase: advances every `shift_every` requests and
    /// re-salts the rank→id scramble.
    phase: u64,
}

impl ZipfHotWorkload {
    /// Creates a generator.
    pub fn new(spec: ZipfHotSpec) -> Self {
        assert!(spec.n_keys > 0);
        assert!((0.0..=1.0).contains(&spec.put_ratio));
        assert!(spec.theta > 0.0, "use YcsbWorkload for uniform traffic");
        ZipfHotWorkload {
            rng: DetRng::seed(spec.seed),
            zipf: ZipfSampler::new(spec.n_keys, spec.theta),
            emitted: 0,
            phase: 0,
            spec,
        }
    }

    /// The specification.
    pub fn spec(&self) -> &ZipfHotSpec {
        &self.spec
    }

    /// The current phase (number of hot-set shifts so far).
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Phase-salted rank→id scramble: the popularity ranking keeps its
    /// Zipf shape, but the identity of the hot keys moves wholesale when
    /// the phase advances.
    fn scramble(&self, rank: u64) -> u64 {
        let salt = self
            .spec
            .seed
            .wrapping_add(self.phase.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            | 1;
        rank.wrapping_mul(salt).wrapping_add(salt >> 7) % self.spec.n_keys
    }

    /// The key id currently holding Zipf rank 0 (the hottest key).
    pub fn hottest_key_id(&self) -> u64 {
        self.scramble(0)
    }

    /// Key bytes for key id `id`.
    pub fn key(&self, id: u64) -> [u8; ZipfHotSpec::KEY_LEN] {
        id.to_le_bytes()
    }

    /// A deterministic value for key `id` (verifiable on GET).
    pub fn value(&self, id: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.spec.value_len()];
        let tag = id.wrapping_mul(0xBF58_476D_1CE4_E5B9).to_le_bytes();
        for (i, b) in v.iter_mut().enumerate() {
            *b = tag[i % 8] ^ (i as u8);
        }
        v
    }

    /// PUT requests inserting every key once.
    pub fn preload_requests(&self) -> Vec<KvRequest> {
        (0..self.spec.n_keys)
            .map(|id| KvRequest::put(&self.key(id), &self.value(id)))
            .collect()
    }

    /// Draws the next key id, advancing the phase when due.
    pub fn next_key_id(&mut self) -> u64 {
        if self.spec.shift_every > 0
            && self.emitted > 0
            && self.emitted.is_multiple_of(self.spec.shift_every)
        {
            self.phase += 1;
        }
        self.emitted += 1;
        let rank = self.zipf.sample(&mut self.rng);
        self.scramble(rank)
    }

    /// Generates the next request.
    pub fn next_request(&mut self) -> KvRequest {
        let id = self.next_key_id();
        if self.rng.chance(self.spec.put_ratio) {
            KvRequest::put(&self.key(id), &self.value(id))
        } else {
            KvRequest::get(&self.key(id))
        }
    }

    /// Generates a client-side batch (one packet's worth).
    pub fn batch(&mut self, n: usize) -> Vec<KvRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// Generates a `(key, op)` trace for the pipeline timing models and
    /// the memory replay driver.
    pub fn key_trace(&mut self, n: usize) -> Vec<(u64, SimOp)> {
        (0..n)
            .map(|_| {
                let id = self.next_key_id();
                let op = if self.rng.chance(self.spec.put_ratio) {
                    SimOp::Put
                } else {
                    SimOp::Get
                };
                (id, op)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn spec(theta: f64, shift_every: u64) -> ZipfHotSpec {
        ZipfHotSpec {
            n_keys: 10_000,
            theta,
            kv_size: 16,
            put_ratio: 0.1,
            shift_every,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ZipfHotWorkload::new(spec(1.2, 1000));
        let mut b = ZipfHotWorkload::new(spec(1.2, 1000));
        assert_eq!(a.batch(3000), b.batch(3000));
        assert_eq!(a.phase(), b.phase());
        assert_eq!(a.phase(), 2);
    }

    #[test]
    fn hot_set_moves_at_the_shift_boundary() {
        let mut w = ZipfHotWorkload::new(spec(1.2, 500));
        let before = w.hottest_key_id();
        let mut head_before = HashMap::new();
        for _ in 0..500 {
            *head_before.entry(w.next_key_id()).or_insert(0u32) += 1;
        }
        // Next draw crosses the boundary.
        let _ = w.next_key_id();
        assert_eq!(w.phase(), 1);
        let after = w.hottest_key_id();
        assert_ne!(before, after, "hot set did not move");
        let mut head_after = HashMap::new();
        for _ in 0..500 {
            *head_after.entry(w.next_key_id()).or_insert(0u32) += 1;
        }
        let top =
            |m: &HashMap<u64, u32>| m.iter().max_by_key(|(_, c)| **c).map(|(k, _)| *k).unwrap();
        assert_ne!(
            top(&head_before),
            top(&head_after),
            "empirical hottest key did not move"
        );
    }

    #[test]
    fn zero_shift_every_never_shifts() {
        let mut w = ZipfHotWorkload::new(spec(0.99, 0));
        let before = w.hottest_key_id();
        w.batch(5000);
        assert_eq!(w.phase(), 0);
        assert_eq!(w.hottest_key_id(), before);
    }

    #[test]
    fn higher_theta_concentrates_harder() {
        let head_share = |theta: f64| {
            let mut w = ZipfHotWorkload::new(spec(theta, 0));
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for _ in 0..30_000 {
                *counts.entry(w.next_key_id()).or_insert(0) += 1;
            }
            let mut freqs: Vec<u32> = counts.values().copied().collect();
            freqs.sort_unstable_by(|a, b| b.cmp(a));
            freqs.iter().take(10).sum::<u32>() as f64 / 30_000.0
        };
        let sweep: Vec<f64> = ZipfHotSpec::THETAS.iter().map(|&t| head_share(t)).collect();
        assert!(
            sweep[0] < sweep[1] && sweep[1] < sweep[2],
            "head shares not monotone in theta: {sweep:?}"
        );
        assert!(sweep[2] > 0.5, "theta 1.2 head too light: {}", sweep[2]);
    }
}
