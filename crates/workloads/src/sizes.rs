//! The paper's KV-size schedules (§5.2.1).
//!
//! "To test inline case, we use KV size that is a multiple of slot size
//! (when size ≤ 50, i.e. 10 slots). To test non-inline case, we use KV
//! size that is a power of two minus 2 bytes (for metadata)." Our slab
//! record metadata is 7 bytes (1-byte key length + 2-byte value length +
//! 4-byte expiry stamp), so the same principle yields powers of two
//! minus 7.

/// Inline KV sizes: multiples of the 5-byte slot size, 10..=50.
pub fn inline_kv_sizes() -> Vec<u64> {
    (2..=10).map(|slots| slots * 5).collect()
}

/// Non-inline KV sizes: powers of two minus the 7-byte record metadata
/// (57, 121, 249, 505 — the paper's 62/126/254/510 with its 2-byte
/// metadata). Each record exactly fills its slab class, like the
/// paper's schedule does.
pub fn noninline_kv_sizes() -> Vec<u64> {
    vec![57, 121, 249, 505]
}

/// The full Figure 16 x-axis: inline sizes then non-inline sizes.
pub fn paper_kv_sizes() -> Vec<u64> {
    let mut v = inline_kv_sizes();
    v.extend(noninline_kv_sizes());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_sizes_are_slot_multiples() {
        let v = inline_kv_sizes();
        assert_eq!(v.first(), Some(&10));
        assert_eq!(v.last(), Some(&50));
        assert!(v.iter().all(|s| s % 5 == 0));
    }

    #[test]
    fn noninline_sizes_are_pow2_minus_metadata() {
        for s in noninline_kv_sizes() {
            assert!((s + 7).is_power_of_two(), "{s}");
        }
    }

    #[test]
    fn schedule_is_sorted_and_disjoint() {
        let v = paper_kv_sizes();
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(v.len(), 13);
    }
}
