//! TTL-bearing cache workload (`MemcacheTtl`).
//!
//! Memcache-style deployments are not pure key-value traffic: most
//! stores carry an `exptime`, the TTL distribution is heavy-tailed
//! (session blobs live seconds, rendered fragments minutes, config
//! objects forever), and the live set is therefore a moving window over
//! the key space rather than a fixed population. This preset models
//! that regime over the same Zipf-0.99 popularity the YCSB presets use:
//! a GET/PUT mix where a configurable fraction of the PUTs stamp an
//! expiry tick drawn log-uniformly from `[min_ttl_ticks, max_ttl_ticks]`
//! and the rest store immortal values.
//!
//! Stamps are **absolute** ticks (the slot layout's encoding), so the
//! generator must be told the current tick as it emits: drive
//! [`MemcacheTtlWorkload::batch`] with the simulated clock you advance
//! between batches.

use kvd_net::KvRequest;
use kvd_sim::{DetRng, ZipfSampler};

/// Parameters of the [`MemcacheTtlWorkload`] mix.
#[derive(Debug, Clone, Copy)]
pub struct MemcacheTtl {
    /// Fraction of operations that are PUTs (the rest are GETs).
    pub update_ratio: f64,
    /// Fraction of PUTs that carry a TTL stamp (the rest are immortal).
    pub ttl_ratio: f64,
    /// Shortest TTL a stamped PUT can draw, in expiry ticks (ms).
    pub min_ttl_ticks: u32,
    /// Longest TTL a stamped PUT can draw, in expiry ticks (ms).
    pub max_ttl_ticks: u32,
}

impl MemcacheTtl {
    /// The paper-adjacent default: a cache-update mix (30% PUTs) where
    /// three quarters of the stores expire, with TTLs spread
    /// log-uniformly from 10 ms to 10 s of simulated time.
    pub fn paper() -> MemcacheTtl {
        MemcacheTtl {
            update_ratio: 0.3,
            ttl_ratio: 0.75,
            min_ttl_ticks: 10,
            max_ttl_ticks: 10_000,
        }
    }
}

/// A TTL-bearing request generator over Zipf-popular keys.
///
/// # Examples
///
/// ```
/// use kvd_workloads::ttl::{MemcacheTtl, MemcacheTtlWorkload};
///
/// let mut w = MemcacheTtlWorkload::new(MemcacheTtl::paper(), 10_000, 64, 7);
/// let batch = w.batch(100, 5_000); // current tick = 5s
/// assert_eq!(batch.len(), 100);
/// ```
pub struct MemcacheTtlWorkload {
    cfg: MemcacheTtl,
    rng: DetRng,
    zipf: ZipfSampler,
    population: u64,
    value_len: usize,
}

impl MemcacheTtlWorkload {
    /// Creates a generator over `population` keys with `value_len`-byte
    /// values, deterministic per `seed`.
    pub fn new(cfg: MemcacheTtl, population: u64, value_len: usize, seed: u64) -> Self {
        assert!(population > 0);
        assert!(
            cfg.min_ttl_ticks >= 1 && cfg.min_ttl_ticks <= cfg.max_ttl_ticks,
            "need 1 <= min_ttl_ticks <= max_ttl_ticks"
        );
        MemcacheTtlWorkload {
            cfg,
            rng: DetRng::seed(seed),
            zipf: ZipfSampler::new(population, 0.99),
            population,
            value_len,
        }
    }

    /// Key population.
    pub fn population(&self) -> u64 {
        self.population
    }

    fn key(&mut self) -> [u8; 8] {
        let rank = self.zipf.sample(&mut self.rng);
        let id = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.population;
        id.to_le_bytes()
    }

    /// Draws a TTL in ticks, log-uniform over the configured span.
    fn ttl_ticks(&mut self) -> u32 {
        let lo = (self.cfg.min_ttl_ticks as f64).ln();
        let hi = (self.cfg.max_ttl_ticks as f64).ln();
        let t = (lo + self.rng.f64() * (hi - lo)).exp();
        (t as u32).clamp(self.cfg.min_ttl_ticks, self.cfg.max_ttl_ticks)
    }

    /// Generates the next request; PUT stamps are absolute, computed
    /// against `now_tick`.
    pub fn next_request(&mut self, now_tick: u32) -> KvRequest {
        let key = self.key();
        if !self.rng.chance(self.cfg.update_ratio) {
            return KvRequest::get(&key);
        }
        let mut value = vec![0u8; self.value_len];
        self.rng.fill_bytes(&mut value);
        if self.rng.chance(self.cfg.ttl_ratio) {
            let expiry = now_tick.saturating_add(self.ttl_ticks()).max(1);
            KvRequest::put(&key, &value).with_ttl(expiry)
        } else {
            KvRequest::put(&key, &value)
        }
    }

    /// Generates a batch at one instant.
    pub fn batch(&mut self, n: usize, now_tick: u32) -> Vec<KvRequest> {
        (0..n).map(|_| self.next_request(now_tick)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_net::OpCode;

    #[test]
    fn mix_and_stamp_ratios_hold() {
        let mut w = MemcacheTtlWorkload::new(MemcacheTtl::paper(), 10_000, 16, 1);
        let n = 20_000;
        let batch = w.batch(n, 1_000);
        let puts: Vec<_> = batch.iter().filter(|r| r.op == OpCode::Put).collect();
        let stamped = puts.iter().filter(|r| r.expiry_tick != 0).count();
        assert!(
            (puts.len() as f64 / n as f64 - 0.3).abs() < 0.02,
            "{} puts",
            puts.len()
        );
        assert!(
            (stamped as f64 / puts.len() as f64 - 0.75).abs() < 0.03,
            "{stamped}/{} stamped",
            puts.len()
        );
    }

    #[test]
    fn stamps_are_absolute_and_within_span() {
        let cfg = MemcacheTtl::paper();
        let mut w = MemcacheTtlWorkload::new(cfg, 1_000, 16, 2);
        let now = 50_000;
        for r in w.batch(5_000, now) {
            if r.expiry_tick != 0 {
                assert!(r.expiry_tick > now, "stamp {} not in future", r.expiry_tick);
                assert!(r.expiry_tick <= now + cfg.max_ttl_ticks);
            }
        }
    }

    #[test]
    fn ttls_are_spread_not_clustered() {
        // Log-uniform: both decades of the default span must be drawn.
        let mut w = MemcacheTtlWorkload::new(MemcacheTtl::paper(), 1_000, 16, 3);
        let ttls: Vec<u32> = w
            .batch(20_000, 0)
            .iter()
            .filter(|r| r.expiry_tick != 0)
            .map(|r| r.expiry_tick)
            .collect();
        assert!(ttls.iter().any(|&t| t < 100), "no short TTLs drawn");
        assert!(ttls.iter().any(|&t| t > 5_000), "no long TTLs drawn");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = MemcacheTtlWorkload::new(MemcacheTtl::paper(), 1_000, 8, 9);
        let mut b = MemcacheTtlWorkload::new(MemcacheTtl::paper(), 1_000, 8, 9);
        assert_eq!(a.batch(500, 42), b.batch(500, 42));
    }
}
