//! YCSB-style request generation.

use kvd_net::KvRequest;
use kvd_ooo::SimOp;
use kvd_sim::{DetRng, ZipfSampler};

/// Key popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Uniform over the key space.
    Uniform,
    /// Zipf with the given skewness; the paper's long-tail is 0.99.
    Zipf(f64),
}

impl Dist {
    /// The paper's long-tail workload.
    pub fn long_tail() -> Dist {
        Dist::Zipf(0.99)
    }
}

/// Specification of a YCSB workload.
#[derive(Debug, Clone, Copy)]
pub struct YcsbSpec {
    /// Number of distinct keys.
    pub n_keys: u64,
    /// Total KV size (key + value) in bytes; keys are 8 bytes.
    pub kv_size: u64,
    /// Fraction of PUTs (the remainder are GETs).
    pub put_ratio: f64,
    /// Popularity distribution.
    pub dist: Dist,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbSpec {
    /// Length of generated keys.
    pub const KEY_LEN: usize = 8;

    /// Value length implied by `kv_size`.
    pub fn value_len(&self) -> usize {
        assert!(
            self.kv_size as usize > Self::KEY_LEN,
            "kv size must exceed the 8-byte key"
        );
        self.kv_size as usize - Self::KEY_LEN
    }
}

/// A deterministic YCSB request generator.
///
/// # Examples
///
/// ```
/// use kvd_workloads::{Dist, YcsbSpec, YcsbWorkload};
///
/// let mut w = YcsbWorkload::new(YcsbSpec {
///     n_keys: 1000,
///     kv_size: 16,
///     put_ratio: 0.5,
///     dist: Dist::long_tail(),
///     seed: 1,
/// });
/// let batch = w.batch(40);
/// assert_eq!(batch.len(), 40);
/// ```
pub struct YcsbWorkload {
    spec: YcsbSpec,
    rng: DetRng,
    zipf: Option<ZipfSampler>,
    /// Deterministic scramble so Zipf rank 0 is not always key 0
    /// (decorrelates popularity from insertion order and address space).
    scramble: u64,
}

impl YcsbWorkload {
    /// Creates a generator.
    pub fn new(spec: YcsbSpec) -> Self {
        assert!(spec.n_keys > 0);
        assert!((0.0..=1.0).contains(&spec.put_ratio));
        let zipf = match spec.dist {
            Dist::Uniform => None,
            Dist::Zipf(s) => Some(ZipfSampler::new(spec.n_keys, s)),
        };
        YcsbWorkload {
            rng: DetRng::seed(spec.seed),
            zipf,
            scramble: spec.seed | 1,
            spec,
        }
    }

    /// The specification.
    pub fn spec(&self) -> &YcsbSpec {
        &self.spec
    }

    /// Key bytes for key id `id`.
    pub fn key(&self, id: u64) -> [u8; YcsbSpec::KEY_LEN] {
        id.to_le_bytes()
    }

    /// A deterministic value for key `id` (verifiable on GET).
    pub fn value(&self, id: u64) -> Vec<u8> {
        let mut v = vec![0u8; self.spec.value_len()];
        let tag = id.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes();
        for (i, b) in v.iter_mut().enumerate() {
            *b = tag[i % 8] ^ (i as u8);
        }
        v
    }

    /// PUT requests inserting every key once (the paper preloads to 50 %
    /// utilization before measuring).
    pub fn preload_requests(&self) -> Vec<KvRequest> {
        (0..self.spec.n_keys)
            .map(|id| KvRequest::put(&self.key(id), &self.value(id)))
            .collect()
    }

    /// Draws the next key id according to the distribution.
    pub fn next_key_id(&mut self) -> u64 {
        let rank = match &self.zipf {
            None => self.rng.u64_below(self.spec.n_keys),
            Some(z) => z.sample(&mut self.rng),
        };
        // Scramble rank → id.
        rank.wrapping_mul(self.scramble | 1)
            .wrapping_add(self.scramble >> 3)
            % self.spec.n_keys
    }

    /// Generates the next request.
    pub fn next_request(&mut self) -> KvRequest {
        let id = self.next_key_id();
        if self.rng.chance(self.spec.put_ratio) {
            KvRequest::put(&self.key(id), &self.value(id))
        } else {
            KvRequest::get(&self.key(id))
        }
    }

    /// Generates a client-side batch (one packet's worth).
    pub fn batch(&mut self, n: usize) -> Vec<KvRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }

    /// Generates a `(key, op)` trace for the pipeline timing models.
    pub fn key_trace(&mut self, n: usize) -> Vec<(u64, SimOp)> {
        (0..n)
            .map(|_| {
                let id = self.next_key_id();
                let op = if self.rng.chance(self.spec.put_ratio) {
                    SimOp::Put
                } else {
                    SimOp::Get
                };
                (id, op)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvd_net::OpCode;

    fn spec(dist: Dist, put: f64) -> YcsbSpec {
        YcsbSpec {
            n_keys: 10_000,
            kv_size: 16,
            put_ratio: put,
            dist,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = YcsbWorkload::new(spec(Dist::long_tail(), 0.5));
        let mut b = YcsbWorkload::new(spec(Dist::long_tail(), 0.5));
        assert_eq!(a.batch(100), b.batch(100));
    }

    #[test]
    fn put_ratio_respected() {
        let mut w = YcsbWorkload::new(spec(Dist::Uniform, 0.3));
        let n = 20_000;
        let puts = (0..n)
            .filter(|_| w.next_request().op == OpCode::Put)
            .count() as f64
            / n as f64;
        assert!((puts - 0.3).abs() < 0.02, "got {puts}");
    }

    #[test]
    fn zipf_concentrates_on_few_keys() {
        let mut w = YcsbWorkload::new(spec(Dist::long_tail(), 0.0));
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(w.next_key_id()).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / 50_000.0 > 0.2,
            "long-tail head too light: {top10}"
        );
        // Uniform for comparison touches far more keys.
        let mut u = YcsbWorkload::new(spec(Dist::Uniform, 0.0));
        let distinct_u = (0..50_000)
            .map(|_| u.next_key_id())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct_u > counts.len(), "zipf should touch fewer keys");
    }

    #[test]
    fn keys_in_range_and_values_sized() {
        let mut w = YcsbWorkload::new(spec(Dist::long_tail(), 1.0));
        for _ in 0..1000 {
            let r = w.next_request();
            let id = u64::from_le_bytes(r.key.clone().try_into().unwrap());
            assert!(id < 10_000);
            assert_eq!(r.value.len(), 8, "16B KV − 8B key");
        }
    }

    #[test]
    fn preload_covers_every_key_once() {
        let w = YcsbWorkload::new(spec(Dist::Uniform, 0.5));
        let pre = w.preload_requests();
        assert_eq!(pre.len(), 10_000);
        let distinct: std::collections::HashSet<_> = pre.iter().map(|r| r.key.clone()).collect();
        assert_eq!(distinct.len(), 10_000);
        assert!(pre.iter().all(|r| r.op == OpCode::Put));
    }

    #[test]
    fn values_verifiable() {
        let w = YcsbWorkload::new(spec(Dist::Uniform, 0.5));
        assert_eq!(w.value(7), w.value(7));
        assert_ne!(w.value(7), w.value(8));
    }

    #[test]
    fn trace_generation() {
        let mut w = YcsbWorkload::new(spec(Dist::long_tail(), 0.5));
        let t = w.key_trace(1000);
        assert_eq!(t.len(), 1000);
        assert!(t.iter().any(|(_, op)| *op == SimOp::Put));
        assert!(t.iter().any(|(_, op)| *op == SimOp::Get));
    }
}
