#![warn(missing_docs)]
//! Workload generators for the KV-Direct evaluation (paper §5).
//!
//! The paper benchmarks with YCSB-style workloads: random KV pairs of a
//! given size, GET/PUT mixes, and two key-popularity distributions —
//! uniform and "long-tail" (Zipf, skewness 0.99). KV sizes follow §5.2.1:
//! inline cases use multiples of the 5-byte slot size (up to 10 slots);
//! non-inline cases use powers of two minus 2 bytes of metadata.
//!
//! [`YcsbWorkload`] produces request streams for the functional store and
//! key traces for the pipeline timing models.

pub mod memcache;
pub mod presets;
pub mod sizes;
pub mod ttl;
pub mod ycsb;
pub mod zipfhot;

pub use memcache::{memcache_key, memcache_key_id, MemOp, MemcacheWorkload};
pub use presets::{PresetWorkload, YcsbPreset};
pub use sizes::{inline_kv_sizes, noninline_kv_sizes, paper_kv_sizes};
pub use ttl::{MemcacheTtl, MemcacheTtlWorkload};
pub use ycsb::{Dist, YcsbSpec, YcsbWorkload};
pub use zipfhot::{ZipfHotSpec, ZipfHotWorkload};
