//! Plain-text table rendering for the benchmark harnesses.
//!
//! Every figure/table harness in `kvd-bench` prints its series as an
//! aligned text table with a caption referencing the paper's figure, plus
//! (where the paper gives numbers) a "paper" column next to our "measured"
//! column so the shape comparison is immediate.

use std::fmt::Write as _;

/// An aligned plain-text table builder.
///
/// # Examples
///
/// ```
/// use kvd_sim::report::Table;
///
/// let mut t = Table::new("Figure 3a: PCIe DMA throughput", &["size", "read Mops"]);
/// t.row(&["64".into(), "60.1".into()]);
/// let s = t.render();
/// assert!(s.contains("Figure 3a"));
/// assert!(s.contains("60.1"));
/// ```
pub struct Table {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a caption and column headers.
    pub fn new(caption: &str, headers: &[&str]) -> Self {
        Table {
            caption: caption.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have the same arity as the headers.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.caption);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats an ops/sec rate in Mops, the paper's unit.
pub fn fmt_mops(ops_per_sec: f64) -> String {
    format!("{:.1}", ops_per_sec / 1e6)
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("cap", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "20000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== cap ==");
        // Header and rows right-aligned to the same width.
        assert!(lines[1].contains("long_header"));
        assert!(lines[3].ends_with("2"));
        assert!(lines[4].ends_with("20000"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        let mut t = Table::new("cap", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn row_display_accepts_numbers() {
        let mut t = Table::new("cap", &["x", "y"]);
        t.row_display(&[1.5, 2.25]);
        assert!(t.render().contains("2.25"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_mops(180e6), "180.0");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4 * 1024 * 1024 * 1024), "4.0GiB");
    }
}
