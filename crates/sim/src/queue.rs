//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap that orders events by timestamp and
//! breaks ties by insertion order, so two events scheduled for the same
//! instant pop in the order they were pushed. Determinism matters: every
//! benchmark harness in this workspace must produce identical numbers for
//! identical seeds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use kvd_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(5), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        q.push(SimTime::from_ns(1), 'c');
        q.push(SimTime::from_ns(100), 'd');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'd');
    }
}
