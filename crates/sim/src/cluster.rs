//! Inter-node fabric primitives for the multi-host cluster plane.
//!
//! The single-host engine scales to N NICs sharing one server's DRAM
//! (`HostArbiter`/`CreditArbiter`); this module supplies what the next
//! level up needs: a timed point-to-point **node link** with
//! configurable latency and bandwidth ([`NodeLink`]) over which
//! replication frames and heartbeats travel, and the **cluster clock**
//! ([`ClusterClock`]) — the fixed-quantum window discipline that keeps
//! inter-node delivery deterministic regardless of how many OS workers
//! drive the member hosts.
//!
//! The delivery rule is the credit arbiter's conservative-lookahead
//! discipline applied between hosts: a frame sent during window `k` is
//! never visible to its destination before window `k + 1`. Within a
//! window every node therefore depends only on state settled at the
//! window boundary, so nodes can be stepped on any number of worker
//! threads and the merged ledgers stay bit-identical (the cluster-level
//! analogue of the per-shard null-message protocol).

use crate::ledger::{CostSource, OpLedger};
use crate::resource::BandwidthLink;
use crate::time::{Bandwidth, SimTime};

/// Latency/bandwidth shape of one inter-node link.
#[derive(Debug, Clone)]
pub struct NodeLinkConfig {
    /// One-way propagation latency between two hosts.
    pub latency: SimTime,
    /// Egress serialization bandwidth of a node.
    pub bandwidth: Bandwidth,
    /// Per-frame wire overhead (Ethernet/IP/UDP headers and padding).
    pub frame_overhead: u64,
}

impl NodeLinkConfig {
    /// A datacenter rack fabric: 100 Gb/s egress, 5 µs one-way between
    /// hosts (a few switch hops), 66 B of header/padding per frame.
    pub fn rack() -> Self {
        NodeLinkConfig {
            latency: SimTime::from_us(5),
            bandwidth: Bandwidth::from_gbits_per_sec(100.0),
            frame_overhead: 66,
        }
    }
}

/// One node's egress onto the cluster fabric: serialization on a
/// bandwidth-limited line plus fixed propagation latency, with frame
/// and byte counters that land in the ledger's cluster section.
///
/// # Examples
///
/// ```
/// use kvd_sim::{NodeLink, NodeLinkConfig, SimTime};
///
/// let mut link = NodeLink::new(NodeLinkConfig::rack());
/// let arrive = link.send(SimTime::ZERO, 128);
/// assert!(arrive >= SimTime::from_us(5), "at least the propagation delay");
/// assert_eq!(link.frames(), 1);
/// ```
#[derive(Debug)]
pub struct NodeLink {
    cfg: NodeLinkConfig,
    line: BandwidthLink,
    frames: u64,
    payload_bytes: u64,
}

impl NodeLink {
    /// Creates an idle link.
    pub fn new(cfg: NodeLinkConfig) -> Self {
        NodeLink {
            line: BandwidthLink::new(cfg.bandwidth),
            frames: 0,
            payload_bytes: 0,
            cfg,
        }
    }

    /// Sends a frame with `payload` bytes at `now`; returns its arrival
    /// time at the destination host.
    pub fn send(&mut self, now: SimTime, payload: u64) -> SimTime {
        let serialized = self.line.transfer(now, payload + self.cfg.frame_overhead);
        self.frames += 1;
        self.payload_bytes += payload;
        serialized + self.cfg.latency
    }

    /// When the egress line is next free to serialize.
    pub fn free_at(&self) -> SimTime {
        self.line.free_at()
    }

    /// Frames sent.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Payload bytes sent.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// The configuration.
    pub fn config(&self) -> &NodeLinkConfig {
        &self.cfg
    }
}

impl CostSource for NodeLink {
    fn emit_costs(&self, out: &mut OpLedger) {
        out.cluster.rep_frames += self.frames;
        out.cluster.rep_bytes += self.payload_bytes;
    }
}

/// The cluster's fixed-quantum window clock.
///
/// Window `k` spans `[k·q, (k+1)·q)`. The clock is pure arithmetic — it
/// exists so every layer (node stepping, frame delivery, heartbeat
/// emission, kill placement) quantizes time identically, which is what
/// the bit-determinism argument rests on.
#[derive(Debug, Clone, Copy)]
pub struct ClusterClock {
    quantum: SimTime,
}

impl ClusterClock {
    /// A clock with the given window quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: SimTime) -> Self {
        assert!(quantum > SimTime::ZERO, "cluster quantum must be positive");
        ClusterClock { quantum }
    }

    /// The window quantum.
    pub fn quantum(&self) -> SimTime {
        self.quantum
    }

    /// Start of window `k` (the issue floor for that window).
    pub fn floor(&self, k: u64) -> SimTime {
        self.quantum * k
    }

    /// End of window `k` (exclusive horizon).
    pub fn horizon(&self, k: u64) -> SimTime {
        self.quantum * (k + 1)
    }

    /// The window containing instant `t`.
    pub fn window_of(&self, t: SimTime) -> u64 {
        t.as_ps() / self.quantum.as_ps()
    }

    /// The earliest window in which a frame sent during window `k` with
    /// raw arrival time `arrival` may be delivered: never before
    /// `k + 1` (the one-window conservative lookahead), never before
    /// the arrival's own window.
    pub fn delivery_window(&self, sent_in: u64, arrival: SimTime) -> u64 {
        self.window_of(arrival).max(sent_in + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_charges_serialization_and_latency() {
        let cfg = NodeLinkConfig::rack();
        let mut link = NodeLink::new(cfg.clone());
        let a = link.send(SimTime::ZERO, 1 << 20);
        // 1 MiB at 100 Gb/s is ~84 µs of serialization plus 5 µs flight.
        assert!(a > SimTime::from_us(80), "got {}us", a.as_us());
        let b = link.send(SimTime::ZERO, 1 << 20);
        assert!(b > a, "second frame queues behind the first");
        assert_eq!(link.frames(), 2);
        assert_eq!(link.payload_bytes(), 2 << 20);
    }

    #[test]
    fn link_costs_land_in_the_cluster_section() {
        let mut link = NodeLink::new(NodeLinkConfig::rack());
        link.send(SimTime::ZERO, 100);
        link.send(SimTime::ZERO, 28);
        let mut ledger = OpLedger::default();
        link.emit_costs(&mut ledger);
        assert_eq!(ledger.cluster.rep_frames, 2);
        assert_eq!(ledger.cluster.rep_bytes, 128);
    }

    #[test]
    fn clock_windows_partition_time() {
        let clk = ClusterClock::new(SimTime::from_us(2));
        assert_eq!(clk.floor(0), SimTime::ZERO);
        assert_eq!(clk.horizon(0), SimTime::from_us(2));
        assert_eq!(clk.floor(3), SimTime::from_us(6));
        assert_eq!(clk.window_of(SimTime::from_ns(1_999)), 0);
        assert_eq!(clk.window_of(SimTime::from_us(2)), 1);
    }

    #[test]
    fn delivery_never_lands_in_the_sending_window() {
        let clk = ClusterClock::new(SimTime::from_us(2));
        // Raw arrival inside the sending window: pushed to the next.
        assert_eq!(clk.delivery_window(4, SimTime::from_us(9)), 5);
        // Raw arrival far in the future: its own window wins.
        assert_eq!(clk.delivery_window(4, SimTime::from_us(40)), 20);
    }
}
